// Fault-injection walkthrough: inject one fault of every kind into a
// trained SNN and show how the output spike train corrupts — the Eq. (3)
// detection criterion made visible, including ASCII rasters of the golden
// vs faulty output.
//
// Run:  ./build/examples/fault_injection_demo [--benchmark shd]
#include <cstdio>

#include "fault/injector.hpp"
#include "snn/spike_train.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "zoo/model_zoo.hpp"

using namespace snntest;

int main(int argc, char** argv) {
  util::CliParser cli({{"benchmark", "shd"}},
                      "Inject one fault of each kind and visualize the output corruption.");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  auto bundle = zoo::load_or_train(zoo::parse_benchmark(cli.get("benchmark")));
  auto& net = bundle.network;
  const auto sample = bundle.test->get(0);
  const auto golden = net.forward(sample.input);
  std::printf("\ngolden prediction for sample 0 (label %zu): class %zu\n", sample.label,
              golden.predicted_class());
  std::printf("golden output raster (rows = classes, cols = time):\n%s\n",
              snn::ascii_raster(golden.output(), 24, 64).c_str());

  // One representative fault of every kind, all on layer 0 / output layer.
  fault::FaultUniverseConfig universe_cfg;
  universe_cfg.neuron_threshold_variation = true;
  universe_cfg.neuron_leak_variation = true;
  universe_cfg.neuron_refractory_variation = true;
  universe_cfg.synapse_bitflip = true;

  const auto stats = fault::compute_weight_stats(net);
  fault::FaultInjector injector(net, stats);

  std::vector<fault::FaultDescriptor> demos;
  {
    fault::FaultDescriptor f;
    f.kind = fault::FaultKind::kNeuronDead;
    f.neuron = {0, 3};
    demos.push_back(f);
    f.kind = fault::FaultKind::kNeuronSaturated;
    f.neuron = {net.num_layers() - 1, 0};
    demos.push_back(f);
    f.kind = fault::FaultKind::kNeuronThresholdVariation;
    f.neuron = {0, 5};
    f.magnitude = 0.5f;
    demos.push_back(f);
    f = {};
    f.kind = fault::FaultKind::kSynapseDead;
    f.weight = {0, 0, 17};
    demos.push_back(f);
    f.kind = fault::FaultKind::kSynapseSaturatedPositive;
    f.magnitude = 1.5f * stats[0].max_abs;
    demos.push_back(f);
    f.kind = fault::FaultKind::kSynapseBitFlip;
    f.magnitude = 6;  // flip bit 6 of the int8 weight code
    demos.push_back(f);
  }

  util::TextTable table({"fault", "output L1 diff", "detected", "prediction"});
  for (const auto& fd : demos) {
    fault::ScopedFault scoped(injector, fd);
    const auto faulty = net.forward(sample.input);
    const double l1 = snn::output_distance(golden.output(), faulty.output());
    table.add_row({fd.to_string(), util::fmt_double(l1, 0), l1 > 0 ? "yes" : "no",
                   std::to_string(faulty.predicted_class())});
    if (fd.kind == fault::FaultKind::kNeuronSaturated) {
      std::printf("output raster with %s:\n%s\n", fd.to_string().c_str(),
                  snn::ascii_raster(faulty.output(), 24, 64).c_str());
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: a dataset sample often misses faults (low L1 diff) — that is exactly\n"
              "why the paper optimizes a dedicated test stimulus.\n");
  return 0;
}
