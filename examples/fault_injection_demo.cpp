// Fault-injection walkthrough: inject one fault of every kind into a
// trained SNN and show how the output spike train corrupts — the Eq. (3)
// detection criterion made visible, including ASCII rasters of the golden
// vs faulty output.
//
// Run:  ./build/examples/fault_injection_demo [--benchmark shd]
//
// With --checkpoint it also runs a checkpointed detection campaign through
// the differential engine, demonstrating kill/resume end-to-end:
//
//   # start a campaign and "kill" it after 150 faults
//   fault_injection_demo --checkpoint /tmp/demo.jsonl --interrupt-after 150
//   # pick up from the last completed shard and finish
//   fault_injection_demo --checkpoint /tmp/demo.jsonl --resume 1
#include <algorithm>
#include <atomic>
#include <cstdio>

#include "campaign/engine.hpp"
#include "fault/injector.hpp"
#include "fault/registry.hpp"
#include "obs/report.hpp"
#include "snn/spike_train.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/timer.hpp"
#include "zoo/model_zoo.hpp"

using namespace snntest;

int main(int argc, char** argv) {
  util::CliParser cli({{"benchmark", "shd"},
                       {"checkpoint", ""},
                       {"resume", "0"},
                       {"campaign-faults", "400"},
                       {"interrupt-after", "0"},
                       {"lane-width", "8"},
                       {"trace-out", ""},
                       {"metrics-out", ""}},
                      "Inject one fault of each kind and visualize the output corruption; "
                      "with --checkpoint, run a resumable detection campaign. --lane-width N "
                      "batches N same-layer faults per forward pass (1 = scalar engine; "
                      "results are bit-identical at every width).");
  // Validate every numeric flag up front — a malformed --lane-width must be
  // a usage error even on runs (no --checkpoint) that never read it.
  size_t campaign_faults = 0;
  size_t lane_width = 1;
  long interrupt_after = 0;
  try {
    if (!cli.parse(argc, argv)) return 0;
    campaign_faults = cli.get_size("campaign-faults");
    lane_width = std::max<size_t>(1, cli.get_size("lane-width"));
    interrupt_after = cli.get_int("interrupt-after");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  obs::configure(cli.get("trace-out"), cli.get("metrics-out"));
  obs::set_report_field("benchmark", cli.get("benchmark"));

  auto bundle = zoo::load_or_train(zoo::parse_benchmark(cli.get("benchmark")));
  auto& net = bundle.network;
  const auto sample = bundle.test->get(0);
  const auto golden = net.forward(sample.input);
  std::printf("\ngolden prediction for sample 0 (label %zu): class %zu\n", sample.label,
              golden.predicted_class());
  std::printf("golden output raster (rows = classes, cols = time):\n%s\n",
              snn::ascii_raster(golden.output(), 24, 64).c_str());

  // One representative fault of every kind, all on layer 0 / output layer.
  fault::FaultUniverseConfig universe_cfg;
  universe_cfg.neuron_threshold_variation = true;
  universe_cfg.neuron_leak_variation = true;
  universe_cfg.neuron_refractory_variation = true;
  universe_cfg.synapse_bitflip = true;

  const auto stats = fault::compute_weight_stats(net);
  fault::FaultInjector injector(net, stats);

  std::vector<fault::FaultDescriptor> demos;
  {
    fault::FaultDescriptor f;
    f.kind = fault::FaultKind::kNeuronDead;
    f.neuron = {0, 3};
    demos.push_back(f);
    f.kind = fault::FaultKind::kNeuronSaturated;
    f.neuron = {net.num_layers() - 1, 0};
    demos.push_back(f);
    f.kind = fault::FaultKind::kNeuronThresholdVariation;
    f.neuron = {0, 5};
    f.magnitude = 0.5f;
    demos.push_back(f);
    f = {};
    f.kind = fault::FaultKind::kSynapseDead;
    f.weight = {0, 0, 17};
    demos.push_back(f);
    f.kind = fault::FaultKind::kSynapseSaturatedPositive;
    f.magnitude = 1.5f * stats[0].max_abs;
    demos.push_back(f);
    f.kind = fault::FaultKind::kSynapseBitFlip;
    f.magnitude = 6;  // flip bit 6 of the int8 weight code
    demos.push_back(f);
  }

  util::TextTable table({"fault", "output L1 diff", "detected", "prediction"});
  for (const auto& fd : demos) {
    fault::ScopedFault scoped(injector, fd);
    const auto faulty = net.forward(sample.input);
    const double l1 = snn::output_distance(golden.output(), faulty.output());
    table.add_row({fd.to_string(), util::fmt_double(l1, 0), l1 > 0 ? "yes" : "no",
                   std::to_string(faulty.predicted_class())});
    if (fd.kind == fault::FaultKind::kNeuronSaturated) {
      std::printf("output raster with %s:\n%s\n", fd.to_string().c_str(),
                  snn::ascii_raster(faulty.output(), 24, 64).c_str());
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: a dataset sample often misses faults (low L1 diff) — that is exactly\n"
              "why the paper optimizes a dedicated test stimulus.\n");

  // --- optional: checkpointed campaign through the differential engine ---
  const std::string checkpoint = cli.get("checkpoint");
  if (checkpoint.empty()) return 0;

  const bool resume = cli.get_bool("resume");
  if (!resume) std::remove(checkpoint.c_str());

  util::Rng sample_rng(42);
  auto universe = fault::enumerate_faults(net);

  campaign::EngineConfig cfg;
  cfg.checkpoint_path = checkpoint;
  cfg.checkpoint_flush_every = 16;
  cfg.lane_width = lane_width;
  auto faults = fault::sample_faults(universe, campaign_faults, sample_rng);
  std::atomic<long> budget{interrupt_after};
  if (interrupt_after > 0) {
    // Simulated kill: stop claiming work after N faults, leaving a partial
    // checkpoint behind — exactly what SIGKILL mid-campaign leaves.
    cfg.cancel = [&budget] { return budget.fetch_sub(1) <= 0; };
  }
  std::printf("\n%s campaign: %zu sampled faults, checkpoint %s\n",
              resume ? "resuming" : "starting", faults.size(), checkpoint.c_str());
  campaign::CampaignResult result;
  try {
    result = campaign::run_campaign(net, sample.input, faults, cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("resumed from checkpoint: %zu, simulated now: %zu, detected: %zu/%zu\n",
              result.stats.faults_resumed, result.stats.faults_simulated,
              result.detected_count(), faults.size());
  if (result.stats.lane_batches > 0) {
    std::printf("lane batches: %zu carrying %zu faults (width %zu), %zu lanes retired early\n",
                result.stats.lane_batches, result.stats.lane_batched_faults, cfg.lane_width,
                result.stats.lanes_retired_early);
  }
  std::printf("layer forwards: %zu of %zu naive (%s saved), %s elapsed\n",
              result.stats.layer_forwards, result.stats.layer_forwards_naive,
              util::fmt_pct(result.stats.forward_savings()).c_str(),
              util::format_duration(result.stats.elapsed_seconds).c_str());
  if (!result.completed) {
    std::printf("campaign interrupted before completion — rerun with\n"
                "  --checkpoint %s --resume 1\nto continue from the last completed shard.\n",
                checkpoint.c_str());
  } else {
    std::printf("campaign complete.\n");
  }
  return 0;
}
