// In-field periodic testing scenario (paper Sec. I: the compact test "can
// be stored on-chip, taking up a small memory space, for in-field testing").
//
// Two modes:
//
//  * --dict schedule.snfd — replay a minimized test schedule produced by
//    `coverage_tool minimize --out` (or any dictionary with embedded
//    stimuli; non-schedule_ordered dictionaries are minimized here, which
//    is deterministic, so tool and device agree). The device executes the
//    scheduled stimuli in order, printing the coverage-vs-time curve as it
//    goes, and flags the first output-signature divergence.
//
//  * legacy (no --dict) — a single stored TestStimulus is applied
//    periodically over a simulated device lifetime; a latent fault appears
//    mid-life and the periodic test flags it.
//
// Run:  ./build/examples/infield_test [--benchmark shd] [--stimulus FILE]
//       [--dict schedule.snfd] [--fault-layer 0] [--fault-neuron 7]
//       [--json replay.json]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/test_generator.hpp"
#include "coverage/fault_dictionary.hpp"
#include "coverage/minimize.hpp"
#include "fault/injector.hpp"
#include "snn/spike_train.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "zoo/model_zoo.hpp"

using namespace snntest;

namespace {

fault::FaultDescriptor latent_fault(const util::CliParser& cli) {
  fault::FaultDescriptor latent;
  latent.kind = fault::FaultKind::kNeuronDead;
  latent.neuron = {cli.get_size("fault-layer"), cli.get_size("fault-neuron")};
  return latent;
}

/// Replay a coverage dictionary's (minimized) schedule on a faulty device.
int run_schedule_mode(const util::CliParser& cli, snn::Network& net) {
  coverage::FaultDictionary::LoadStats load_stats;
  auto loaded = coverage::FaultDictionary::load(cli.get("dict"), &load_stats);
  if (!loaded) {
    std::fprintf(stderr, "error: cannot load schedule dictionary %s\n", cli.get("dict").c_str());
    return 1;
  }
  const coverage::FaultDictionary& dict = *loaded;
  if (load_stats.records_skipped > 0) {
    std::printf("note: %zu damaged record(s) skipped in %s\n", load_stats.records_skipped,
                cli.get("dict").c_str());
  }

  // schedule_ordered dictionaries ARE the schedule (execute in file order);
  // anything else is minimized here — the minimizer is deterministic, so
  // the device derives the same schedule the factory tool would.
  coverage::TestSchedule schedule;
  if (dict.schedule_ordered) {
    schedule.num_faults = dict.num_faults;
    schedule.detectable_faults = dict.detectable_count();
    std::vector<char> covered(dict.num_faults, 0);
    for (size_t s = 0; s < dict.num_stimuli(); ++s) {
      coverage::ScheduleStep step;
      step.stimulus = s;
      for (size_t f : dict.detected_faults(s)) {
        if (!covered[f]) {
          covered[f] = 1;
          ++step.new_faults;
        }
      }
      schedule.covered_faults += step.new_faults;
      step.cumulative_detected = schedule.covered_faults;
      step.frames = std::max<uint64_t>(dict.stimulus(s).duration_frames, 1);
      schedule.scheduled_frames += step.frames;
      step.cumulative_frames = schedule.scheduled_frames;
      schedule.all_stimuli_frames += step.frames;
      schedule.steps.push_back(step);
    }
  } else {
    std::printf("dictionary is not schedule-ordered; minimizing locally\n");
    schedule = coverage::minimize_schedule(dict);
  }
  if (schedule.steps.empty()) {
    std::fprintf(stderr, "error: empty schedule (no detected faults recorded?)\n");
    return 1;
  }

  std::printf("schedule: %zu stimuli, %llu frames, covering %zu/%zu detectable faults\n\n",
              schedule.steps.size(), static_cast<unsigned long long>(schedule.scheduled_frames),
              schedule.covered_faults, schedule.detectable_faults);

  // t0: golden signatures per scheduled stimulus on the known-good device.
  std::vector<tensor::Tensor> golden;
  for (const auto& step : schedule.steps) {
    const auto& entry = dict.stimulus(step.stimulus);
    if (!entry.has_data()) {
      std::fprintf(stderr, "error: stimulus %s has no embedded spike train; rebuild the\n"
                           "dictionary with store_stimulus_data (coverage_tool build default)\n",
                   entry.name.c_str());
      return 1;
    }
    golden.push_back(net.forward(entry.data).output());
  }

  // Device lifetime: the latent fault is present when the periodic test
  // runs; execute the schedule and flag the first divergence.
  fault::FaultInjector injector(net);
  const auto latent = latent_fault(cli);
  injector.inject(latent);

  util::TextTable table(
      {"step", "stimulus", "frames", "cum. frames", "planned coverage", "L1 diff", "verdict"});
  int detected_step = -1;
  struct StepResult {
    std::string stimulus;
    uint64_t frames = 0;
    uint64_t cumulative_frames = 0;
    double diff = 0.0;
    bool flagged = false;
  };
  std::vector<StepResult> replay;
  for (size_t i = 0; i < schedule.steps.size(); ++i) {
    const auto& step = schedule.steps[i];
    const auto& entry = dict.stimulus(step.stimulus);
    const auto response = net.forward(entry.data).output();
    const double diff = snn::output_distance(golden[i], response);
    const bool flagged = diff > dict.detection_threshold;
    if (flagged && detected_step < 0) detected_step = static_cast<int>(i);
    replay.push_back({entry.name, step.frames, step.cumulative_frames, diff, flagged});
    table.add_row({std::to_string(i), entry.name, std::to_string(step.frames),
                   std::to_string(step.cumulative_frames),
                   util::fmt_pct(schedule.detectable_faults == 0
                                     ? 1.0
                                     : static_cast<double>(step.cumulative_detected) /
                                           static_cast<double>(schedule.detectable_faults)),
                   util::fmt_double(diff, 0), flagged ? "FAULTY" : "clean"});
  }
  injector.remove();
  std::printf("%s\n", table.render().c_str());

  if (!cli.get("json").empty()) {
    std::ofstream out(cli.get("json"));
    if (!out) {
      std::fprintf(stderr, "warning: cannot write JSON to %s\n", cli.get("json").c_str());
    } else {
      char buf[40];
      out << "{\"schema\":\"snntest-infield-replay-v1\",\"fault\":\""
          << util::json_escape(latent.to_string()) << "\",\"detected\":"
          << (detected_step >= 0 ? "true" : "false") << ",\"detected_step\":" << detected_step
          << ",\"scheduled_frames\":" << schedule.scheduled_frames
          << ",\"full_replay_frames\":" << schedule.all_stimuli_frames << ",\"steps\":[";
      for (size_t i = 0; i < replay.size(); ++i) {
        const StepResult& r = replay[i];
        if (i) out << ",";
        std::snprintf(buf, sizeof(buf), "%.17g", r.diff);
        out << "{\"stimulus\":\"" << util::json_escape(r.stimulus) << "\",\"frames\":" << r.frames
            << ",\"cumulative_frames\":" << r.cumulative_frames << ",\"l1_diff\":" << buf
            << ",\"flagged\":" << (r.flagged ? "true" : "false") << "}";
      }
      out << "]}\n";
      std::printf("JSON: %s\n", cli.get("json").c_str());
    }
  }

  if (detected_step >= 0) {
    std::printf("latent fault (%s) flagged at step %d after %llu frames"
                " (full replay would cost %llu frames).\n",
                latent.to_string().c_str(), detected_step,
                static_cast<unsigned long long>(schedule.steps[detected_step].cumulative_frames),
                static_cast<unsigned long long>(schedule.all_stimuli_frames));
    return 0;
  }
  std::printf("latent fault (%s) escaped the schedule — it was likely outside the\n"
              "dictionary's detectable set; extend the dictionary with more stimuli.\n",
              latent.to_string().c_str());
  return 2;
}

/// Everything after flag parsing; runs inside main's try so that flag
/// validation errors from the numeric getters (e.g. --checks=abc) exit
/// cleanly instead of aborting with an uncaught exception.
int run(const util::CliParser& cli) {
  auto bundle = zoo::load_or_train(zoo::parse_benchmark(cli.get("benchmark")));
  auto& net = bundle.network;

  if (!cli.get("dict").empty()) return run_schedule_mode(cli, net);

  // --- legacy mode: one stored stimulus applied periodically ---
  core::TestStimulus stored;
  const std::string path = cli.get("stimulus");
  if (!path.empty() && std::filesystem::exists(path)) {
    stored = core::TestStimulus::load(path);
    std::printf("loaded stimulus from %s\n", path.c_str());
  } else {
    std::printf("no stored stimulus; generating one (this is the one-time factory step)\n");
    core::TestGenConfig cfg;
    cfg.steps_stage1 = 200;
    cfg.t_limit_seconds = 120.0;
    core::TestGenerator generator(net, cfg);
    stored = generator.generate().stimulus;
  }
  const auto test_input = stored.assemble();
  std::printf("stimulus: %zu chunks, %zu steps (%.2f sample-equivalents), density %s\n\n",
              stored.num_chunks(), stored.total_steps(),
              stored.duration_in_samples(bundle.steps_per_sample),
              util::fmt_pct(stored.spike_density()).c_str());

  // --- t0: record the golden signature on the known-good device ---
  const auto golden_signature = net.forward(test_input).output();

  // --- device lifetime: periodic checks; a fault appears mid-life ---
  const int checks = static_cast<int>(cli.get_size("checks"));
  const int fault_onset = checks / 2;
  fault::FaultInjector injector(net);
  const auto latent = latent_fault(cli);

  util::TextTable table({"check", "signature L1 diff", "verdict"});
  int detected_at = -1;
  for (int k = 0; k < checks; ++k) {
    if (k == fault_onset) injector.inject(latent);
    const auto response = net.forward(test_input).output();
    const double diff = snn::output_distance(golden_signature, response);
    const bool flagged = diff > 0.0;
    if (flagged && detected_at < 0) detected_at = k;
    table.add_row({std::to_string(k), util::fmt_double(diff, 0),
                   flagged ? "FAULTY — pull from service" : "healthy"});
  }
  std::printf("%s\n", table.render().c_str());
  if (detected_at == fault_onset) {
    std::printf("latent fault (%s) appeared at check %d and was caught immediately.\n",
                latent.to_string().c_str(), fault_onset);
  } else if (detected_at >= 0) {
    std::printf("fault appeared at check %d, first flagged at check %d.\n", fault_onset,
                detected_at);
  } else {
    std::printf("fault escaped the stored test — consider regenerating with more iterations.\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli({{"benchmark", "shd"},
                       {"stimulus", ""},
                       {"dict", ""},
                       {"json", ""},
                       {"checks", "10"},
                       {"fault-layer", "0"},
                       {"fault-neuron", "7"}},
                      "Periodic in-field self-test with an on-chip stored stimulus or a\n"
                      "minimized coverage schedule (--dict, from coverage_tool minimize).");
  try {
    if (!cli.parse(argc, argv)) return 0;
    return run(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
