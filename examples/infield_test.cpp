// In-field periodic testing scenario (paper Sec. I: the compact test "can
// be stored on-chip, taking up a small memory space, for in-field testing").
//
// Simulates a device lifetime: the stored stimulus is applied periodically;
// mid-life a latent hardware fault appears (injected), and the periodic
// test flags the device by comparing the output signature against the
// golden signature recorded at t0.
//
// Run:  ./build/examples/infield_test [--benchmark shd] [--stimulus FILE]
//       (generates a stimulus on the fly if FILE is absent)
#include <cstdio>
#include <filesystem>

#include "core/test_generator.hpp"
#include "fault/injector.hpp"
#include "snn/spike_train.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "zoo/model_zoo.hpp"

using namespace snntest;

int main(int argc, char** argv) {
  util::CliParser cli({{"benchmark", "shd"}, {"stimulus", ""}, {"checks", "10"}},
                      "Periodic in-field self-test with an on-chip stored stimulus.");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  auto bundle = zoo::load_or_train(zoo::parse_benchmark(cli.get("benchmark")));
  auto& net = bundle.network;

  // --- obtain the stored test stimulus ---
  core::TestStimulus stored;
  const std::string path = cli.get("stimulus");
  if (!path.empty() && std::filesystem::exists(path)) {
    stored = core::TestStimulus::load(path);
    std::printf("loaded stimulus from %s\n", path.c_str());
  } else {
    std::printf("no stored stimulus; generating one (this is the one-time factory step)\n");
    core::TestGenConfig cfg;
    cfg.steps_stage1 = 200;
    cfg.t_limit_seconds = 120.0;
    core::TestGenerator generator(net, cfg);
    stored = generator.generate().stimulus;
  }
  const auto test_input = stored.assemble();
  std::printf("stimulus: %zu chunks, %zu steps (%.2f sample-equivalents), density %s\n\n",
              stored.num_chunks(), stored.total_steps(),
              stored.duration_in_samples(bundle.steps_per_sample),
              util::fmt_pct(stored.spike_density()).c_str());

  // --- t0: record the golden signature on the known-good device ---
  const auto golden_signature = net.forward(test_input).output();

  // --- device lifetime: periodic checks; a fault appears mid-life ---
  const int checks = cli.get_int("checks");
  const int fault_onset = checks / 2;
  fault::FaultInjector injector(net);
  fault::FaultDescriptor latent;
  latent.kind = fault::FaultKind::kNeuronDead;
  latent.neuron = {0, 7};

  util::TextTable table({"check", "signature L1 diff", "verdict"});
  bool fault_active = false;
  int detected_at = -1;
  for (int k = 0; k < checks; ++k) {
    if (k == fault_onset) {
      injector.inject(latent);
      fault_active = true;
    }
    const auto response = net.forward(test_input).output();
    const double diff = snn::output_distance(golden_signature, response);
    const bool flagged = diff > 0.0;
    if (flagged && detected_at < 0) detected_at = k;
    table.add_row({std::to_string(k), util::fmt_double(diff, 0),
                   flagged ? "FAULTY — pull from service" : "healthy"});
    (void)fault_active;
  }
  std::printf("%s\n", table.render().c_str());
  if (detected_at == fault_onset) {
    std::printf("latent fault (%s) appeared at check %d and was caught immediately.\n",
                latent.to_string().c_str(), fault_onset);
  } else if (detected_at >= 0) {
    std::printf("fault appeared at check %d, first flagged at check %d.\n", fault_onset,
                detected_at);
  } else {
    std::printf("fault escaped the stored test — consider regenerating with more iterations.\n");
  }
  return 0;
}
