// Coverage-database workbench: build, merge, query, minimize and report on
// persistent fault dictionaries (src/coverage, DESIGN.md §13).
//
//   coverage_tool build       --dict d.snfd [--benchmark nmnist] [--stimuli 8]
//                             [--stimulus-file stim.bin] [--fault-sample 2000]
//   coverage_tool orchestrate --dict d.snfd --shards 4 [--work-dir DIR]
//                             [build flags] [--chaos-crash-after N]
//   coverage_tool run-shard   --job j.bin --work-dir DIR --shard I --num-shards N
//   coverage_tool status      --work-dir DIR [--watch 1] [--interval 1] [--json 1]
//   coverage_tool merge       --out merged.snfd --inputs a.snfd,b.snfd
//   coverage_tool query       --dict d.snfd [--fault 17] [--stimulus 2]
//   coverage_tool minimize    --dict d.snfd [--out schedule.snfd] [--json r.json]
//   coverage_tool replay      --dict schedule.snfd [--frontier 1] [--json r.json]
//   coverage_tool report      --dict d.snfd [--json r.json]
//
// `build` is incremental: pairs the dictionary already holds are served as
// lookups (zero simulations on a warm re-run), only missing pairs simulate.
// `orchestrate` is `build` fanned out across worker processes (one per
// fault-universe shard, DESIGN.md §15) with crash recovery: the resulting
// dictionary file is byte-identical to what a single-process `build` of the
// same inputs writes. `run-shard` is the worker entry point it re-execs.
// `minimize` runs the lazy-greedy minimum-time set cover and can export the
// schedule as a self-contained, schedule_ordered dictionary that
// examples/infield_test --dict (or `replay` below) replays. `replay`
// executes such a schedule in file order against the live model, dropping
// every fault an earlier stimulus already detected — the minimum-time
// in-field loop; --frontier runs each step through the divergence-frontier
// engine (DESIGN.md §17). `status` reads the SNST status
// snapshots of a live or finished sharded campaign from ANOTHER process and
// renders coverage %, faults/s, per-shard progress and the ETA (DESIGN.md
// §16); --watch refreshes until the fleet commits.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/orchestrator.hpp"
#include "campaign/shard_worker.hpp"
#include "core/test_stimulus.hpp"
#include "coverage/incremental.hpp"
#include "coverage/minimize.hpp"
#include "fault/registry.hpp"
#include "obs/report.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/subprocess.hpp"
#include "zoo/model_zoo.hpp"

using namespace snntest;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: coverage_tool <build|orchestrate|run-shard|status|merge|query|minimize"
               "|replay|report> [--flags]\n"
               "       coverage_tool <subcommand> --help for per-subcommand flags\n");
  return 1;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const std::string item = s.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

coverage::FaultDictionary load_or_die(const std::string& path) {
  coverage::FaultDictionary::LoadStats stats;
  auto dict = coverage::FaultDictionary::load(path, &stats);
  if (!dict) {
    std::fprintf(stderr, "error: cannot load dictionary %s\n", path.c_str());
    std::exit(1);
  }
  if (stats.records_skipped > 0) {
    std::printf("note: %zu damaged record(s) skipped while loading %s\n", stats.records_skipped,
                path.c_str());
  }
  return std::move(*dict);
}

void print_schedule(const coverage::TestSchedule& schedule,
                    const coverage::FaultDictionary& dict) {
  util::TextTable table({"#", "stimulus", "frames", "new faults", "coverage", "cum. frames"});
  for (size_t i = 0; i < schedule.steps.size(); ++i) {
    const auto& step = schedule.steps[i];
    table.add_row({std::to_string(i), dict.stimulus(step.stimulus).name,
                   std::to_string(step.frames), std::to_string(step.new_faults),
                   util::fmt_pct(schedule.detectable_faults == 0
                                     ? 1.0
                                     : static_cast<double>(step.cumulative_detected) /
                                           static_cast<double>(schedule.detectable_faults)),
                   std::to_string(step.cumulative_frames)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("covered %zu/%zu detectable faults (universe %zu) in %llu frames;"
              " replaying all %zu stimuli costs %llu frames (%s of it scheduled)\n",
              schedule.covered_faults, schedule.detectable_faults, schedule.num_faults,
              static_cast<unsigned long long>(schedule.scheduled_frames), dict.num_stimuli(),
              static_cast<unsigned long long>(schedule.all_stimuli_frames),
              util::fmt_pct(schedule.all_stimuli_frames == 0
                                ? 0.0
                                : static_cast<double>(schedule.scheduled_frames) /
                                      static_cast<double>(schedule.all_stimuli_frames))
                  .c_str());
}

void write_schedule_json(const std::string& path, const coverage::TestSchedule& schedule,
                         const coverage::FaultDictionary& dict) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write JSON to %s\n", path.c_str());
    return;
  }
  char buf[64];
  out << "{\"num_faults\":" << schedule.num_faults
      << ",\"detectable_faults\":" << schedule.detectable_faults
      << ",\"covered_faults\":" << schedule.covered_faults
      << ",\"scheduled_frames\":" << schedule.scheduled_frames
      << ",\"all_stimuli_frames\":" << schedule.all_stimuli_frames;
  std::snprintf(buf, sizeof(buf), "%.17g", schedule.coverage_of_detectable());
  out << ",\"coverage_of_detectable\":" << buf << ",\"complete\":"
      << (schedule.complete() ? "true" : "false") << ",\"steps\":[";
  for (size_t i = 0; i < schedule.steps.size(); ++i) {
    const auto& step = schedule.steps[i];
    if (i) out << ",";
    out << "{\"stimulus\":\"" << util::json_escape(dict.stimulus(step.stimulus).name)
        << "\",\"frames\":" << step.frames << ",\"new_faults\":" << step.new_faults
        << ",\"cumulative_detected\":" << step.cumulative_detected
        << ",\"cumulative_frames\":" << step.cumulative_frames << "}";
  }
  out << "]}\n";
  std::printf("JSON: %s\n", path.c_str());
}

int cmd_build(int argc, char** argv) {
  util::CliParser cli({{"dict", "coverage.snfd"},
                       {"benchmark", "nmnist"},
                       {"train-budget", "1.0"},
                       {"stimuli", "8"},
                       {"stimulus-file", ""},
                       {"fault-sample", "2000"},
                       {"threads", "0"},
                       {"lane-width", "8"},
                       {"threshold", "0"},
                       {"detect-only", "0"},
                       {"frontier", "0"},
                       {"frontier-threshold", "0.5"},
                       {"golden-cache-budget", "0"},
                       {"trace-out", ""},
                       {"metrics-out", ""}},
                      "Build or incrementally extend a fault dictionary.");
  if (!cli.parse(argc, argv)) return 0;
  obs::configure(cli.get("trace-out"), cli.get("metrics-out"));

  const auto id = zoo::parse_benchmark(cli.get("benchmark"));
  zoo::ZooOptions zoo_opts;
  zoo_opts.train_budget = cli.get_double("train-budget");
  auto bundle = zoo::load_or_train(id, zoo_opts);
  auto& net = bundle.network;

  auto universe = fault::enumerate_faults(net);
  util::Rng sample_rng(99);
  const size_t sample_size = cli.get_size("fault-sample");
  auto faults = sample_size != 0 && universe.size() > sample_size
                    ? fault::sample_faults(universe, sample_size, sample_rng)
                    : universe;
  std::printf("model %s; fault universe %zu, simulating %zu\n", net.name().c_str(),
              universe.size(), faults.size());

  campaign::EngineConfig engine;
  engine.num_threads = cli.get_size("threads");
  engine.lane_width = cli.get_size("lane-width");
  engine.detection_threshold = cli.get_double("threshold");
  engine.detect_only = cli.get_bool("detect-only");
  engine.frontier = cli.get_bool("frontier");
  engine.frontier_threshold = cli.get_double("frontier-threshold");
  engine.golden_cache_budget_bytes = cli.get_size("golden-cache-budget");

  const std::string dict_path = cli.get("dict");
  coverage::FaultDictionary dict =
      coverage::make_dictionary(net, faults, engine.detection_threshold, engine.detect_only);
  if (std::filesystem::exists(dict_path)) {
    coverage::FaultDictionary::LoadStats stats;
    if (auto existing = coverage::FaultDictionary::load(dict_path, &stats)) {
      if (existing->compatible_with(dict)) {
        dict = std::move(*existing);
        std::printf("extending %s: %zu stimuli, %zu records already present"
                    " (%zu damaged record(s) skipped)\n",
                    dict_path.c_str(), dict.num_stimuli(), dict.num_records(),
                    stats.records_skipped);
      } else {
        std::printf("existing %s is for a different model/universe/settings; starting fresh\n",
                    dict_path.c_str());
      }
    } else {
      std::printf("existing %s unreadable; starting fresh\n", dict_path.c_str());
    }
  }

  // Stimulus sources: dataset test samples, plus the chunks of an optimized
  // TestStimulus when one is given.
  struct Source {
    std::string name;
    tensor::Tensor input;
  };
  std::vector<Source> sources;
  const size_t num_samples = cli.get_size("stimuli");
  for (size_t i = 0; i < num_samples; ++i) {
    const auto sample = bundle.test->get(i);
    sources.push_back({"sample" + std::to_string(i), sample.input});
  }
  const std::string stim_path = cli.get("stimulus-file");
  if (!stim_path.empty()) {
    const auto stored = core::TestStimulus::load(stim_path);
    for (size_t j = 0; j < stored.num_chunks(); ++j) {
      sources.push_back({"chunk" + std::to_string(j), stored.chunk(j)});
    }
  }

  util::TextTable table({"stimulus", "frames", "detected", "reused", "simulated"});
  size_t total_reused = 0, total_recorded = 0;
  for (const Source& src : sources) {
    coverage::IncrementalConfig config;
    config.engine = engine;
    config.stimulus_name = src.name;
    const auto out = coverage::run_incremental_campaign(net, src.input, faults, dict, config);
    total_reused += out.coverage.pairs_reused;
    total_recorded += out.coverage.pairs_recorded;
    table.add_row({src.name, std::to_string(src.input.shape().dim(0)),
                   std::to_string(out.campaign.detected_count()),
                   std::to_string(out.coverage.pairs_reused),
                   std::to_string(out.coverage.pairs_recorded)});
  }
  std::printf("%s\n", table.render().c_str());

  dict.save(dict_path);
  std::printf("dictionary %s: %zu stimuli, %zu records, %zu/%llu faults detectable"
              " (%zu pairs reused, %zu simulated this run)\n",
              dict_path.c_str(), dict.num_stimuli(), dict.num_records(), dict.detectable_count(),
              static_cast<unsigned long long>(dict.num_faults), total_reused, total_recorded);
  return 0;
}

int cmd_run_shard(int argc, char** argv) {
  util::CliParser cli({{"job", ""},
                       {"work-dir", "."},
                       {"shard", "0"},
                       {"num-shards", "1"},
                       {"flush-every", "16"},
                       {"chaos-crash-after", "0"},
                       {"chaos-hang-after", "0"}},
                      "Shard worker (internal: launched by `orchestrate`). Runs one fault-\n"
                      "universe shard of the job file and commits shard_<i>.snfd atomically.");
  if (!cli.parse(argc, argv)) return 0;
  campaign::ShardWorkerOptions opts;
  opts.job_path = cli.get("job");
  opts.work_dir = cli.get("work-dir");
  opts.shard_index = cli.get_size("shard");
  opts.num_shards = cli.get_size("num-shards");
  opts.flush_every = cli.get_size("flush-every");
  opts.crash_after = cli.get_size("chaos-crash-after");
  opts.hang_after = cli.get_size("chaos-hang-after");
  return campaign::run_shard_worker(opts);
}

/// Campaign directories under `root`: the root itself when it holds shard
/// files, else its immediate subdirectories that do (orchestrate runs one
/// campaign per stimulus under --work-dir/<stimulus>).
std::vector<std::string> find_campaign_dirs(const std::string& root) {
  const auto has_shards = [](const std::string& dir) {
    const campaign::ShardPaths p = campaign::shard_paths(dir, 0);
    return std::filesystem::exists(p.status) || std::filesystem::exists(p.final) ||
           std::filesystem::exists(p.heartbeat);
  };
  std::vector<std::string> dirs;
  if (has_shards(root)) {
    dirs.push_back(root);
    return dirs;
  }
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    if (entry.is_directory(ec) && has_shards(entry.path().string())) {
      dirs.push_back(entry.path().string());
    }
  }
  std::sort(dirs.begin(), dirs.end());
  return dirs;
}

int cmd_status(int argc, char** argv) {
  util::CliParser cli({{"work-dir", "orchestrate.work"},
                       {"shards", "0"},
                       {"watch", "0"},
                       {"interval", "1"},
                       {"json", "0"}},
                      "Live (or post-mortem) fleet view of a sharded campaign: reads the\n"
                      "shard status snapshots under --work-dir and renders coverage,\n"
                      "throughput, per-shard progress and the ETA. --shards 0 auto-detects\n"
                      "the fleet size; --watch refreshes every --interval seconds until\n"
                      "every shard commits; --json emits snntest-fleet-v1 instead.");
  if (!cli.parse(argc, argv)) return 0;
  const std::string root = cli.get("work-dir");
  const size_t shards = cli.get_size("shards");
  const bool watch = cli.get_bool("watch");
  const bool as_json = cli.get_bool("json");
  const double interval = cli.get_double("interval");

  for (;;) {
    const std::vector<std::string> dirs = find_campaign_dirs(root);
    if (dirs.empty() && !watch) {
      std::fprintf(stderr, "error: no shard files under %s\n", root.c_str());
      return 1;
    }
    std::string out;
    bool all_complete = !dirs.empty();
    if (as_json) {
      out += dirs.size() == 1 ? "" : "{\"campaigns\":{";
      for (size_t i = 0; i < dirs.size(); ++i) {
        const auto view = campaign::build_fleet_view(dirs[i], shards);
        all_complete = all_complete && view.completed;
        if (dirs.size() == 1) {
          out += campaign::fleet_status_json(view);
        } else {
          if (i) out += ",";
          out += "\"" + util::json_escape(dirs[i]) + "\":" + campaign::fleet_status_json(view);
        }
      }
      if (dirs.size() != 1) out += "}}";
      out += "\n";
    } else {
      for (const std::string& dir : dirs) {
        const auto view = campaign::build_fleet_view(dir, shards);
        all_complete = all_complete && view.completed;
        out += "== " + dir + " ==\n" + campaign::render_fleet(view) + "\n";
      }
      if (dirs.empty()) out = "waiting for shard files under " + root + "...\n";
    }
    if (watch && !as_json) std::fputs("\x1b[H\x1b[2J", stdout);  // home + clear
    std::fputs(out.c_str(), stdout);
    std::fflush(stdout);
    if (!watch || all_complete) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval > 0.0 ? interval : 1.0));
  }
  return 0;
}

int cmd_orchestrate(int argc, char** argv) {
  util::CliParser cli({{"dict", "coverage.snfd"},
                       {"benchmark", "nmnist"},
                       {"train-budget", "1.0"},
                       {"stimuli", "8"},
                       {"stimulus-file", ""},
                       {"fault-sample", "2000"},
                       {"threads", "0"},
                       {"lane-width", "8"},
                       {"threshold", "0"},
                       {"detect-only", "0"},
                       {"shards", "2"},
                       {"work-dir", "orchestrate.work"},
                       {"max-retries", "2"},
                       {"heartbeat-timeout", "60"},
                       {"flush-every", "16"},
                       {"chaos-crash-after", "0"},
                       {"chaos-hang-after", "0"},
                       {"collect-traces", "0"},
                       {"status-interval", "0.5"},
                       {"trace-out", ""},
                       {"metrics-out", ""}},
                      "Sharded multi-process `build`: the same dictionary, produced by\n"
                      "N crash-isolated worker processes per stimulus (DESIGN.md §15).\n"
                      "--chaos-crash-after/--chaos-hang-after sabotage every shard's FIRST\n"
                      "attempt (recovery drill); retries run clean. While running, the\n"
                      "fleet view is republished as <work-dir>/<stimulus>/fleet_status.json\n"
                      "(watch it live with `coverage_tool status --work-dir ... --watch 1`);\n"
                      "every campaign also leaves a flight_report.json, and\n"
                      "--collect-traces merges the per-worker Chrome traces into\n"
                      "trace_merged.json (chrome://tracing / Perfetto).");
  if (!cli.parse(argc, argv)) return 0;
  obs::configure(cli.get("trace-out"), cli.get("metrics-out"));

  const std::string exe = util::current_executable_path();
  if (exe.empty()) {
    std::fprintf(stderr, "error: cannot resolve own executable path for worker re-exec\n");
    return 1;
  }

  const auto id = zoo::parse_benchmark(cli.get("benchmark"));
  zoo::ZooOptions zoo_opts;
  zoo_opts.train_budget = cli.get_double("train-budget");
  auto bundle = zoo::load_or_train(id, zoo_opts);
  auto& net = bundle.network;

  auto universe = fault::enumerate_faults(net);
  util::Rng sample_rng(99);
  const size_t sample_size = cli.get_size("fault-sample");
  auto faults = sample_size != 0 && universe.size() > sample_size
                    ? fault::sample_faults(universe, sample_size, sample_rng)
                    : universe;
  std::printf("model %s; fault universe %zu, simulating %zu across %zu shard processes\n",
              net.name().c_str(), universe.size(), faults.size(), cli.get_size("shards"));
  std::printf("monitor: coverage_tool status --work-dir %s --watch 1\n",
              cli.get("work-dir").c_str());

  campaign::EngineConfig engine;
  engine.num_threads = cli.get_size("threads");
  engine.lane_width = cli.get_size("lane-width");
  engine.detection_threshold = cli.get_double("threshold");
  engine.detect_only = cli.get_bool("detect-only");

  const std::string dict_path = cli.get("dict");
  coverage::FaultDictionary dict =
      coverage::make_dictionary(net, faults, engine.detection_threshold, engine.detect_only);
  if (std::filesystem::exists(dict_path)) {
    if (auto existing = coverage::FaultDictionary::load(dict_path)) {
      if (existing->compatible_with(dict)) {
        dict = std::move(*existing);
        std::printf("extending %s: %zu stimuli, %zu records already present\n", dict_path.c_str(),
                    dict.num_stimuli(), dict.num_records());
      } else {
        std::printf("existing %s is for a different model/universe/settings; starting fresh\n",
                    dict_path.c_str());
      }
    }
  }

  struct Source {
    std::string name;
    tensor::Tensor input;
  };
  std::vector<Source> sources;
  const size_t num_samples = cli.get_size("stimuli");
  for (size_t i = 0; i < num_samples; ++i) {
    const auto sample = bundle.test->get(i);
    sources.push_back({"sample" + std::to_string(i), sample.input});
  }
  const std::string stim_path = cli.get("stimulus-file");
  if (!stim_path.empty()) {
    const auto stored = core::TestStimulus::load(stim_path);
    for (size_t j = 0; j < stored.num_chunks(); ++j) {
      sources.push_back({"chunk" + std::to_string(j), stored.chunk(j)});
    }
  }

  campaign::OrchestratorConfig ocfg;
  ocfg.num_shards = cli.get_size("shards");
  ocfg.max_retries = cli.get_size("max-retries");
  ocfg.heartbeat_timeout_seconds = cli.get_double("heartbeat-timeout");
  ocfg.flush_every = cli.get_size("flush-every");
  ocfg.collect_traces = cli.get_bool("collect-traces");
  ocfg.status_interval_seconds = cli.get_double("status-interval");
  const size_t crash_after = cli.get_size("chaos-crash-after");
  const size_t hang_after = cli.get_size("chaos-hang-after");
  ocfg.worker_command = [&](const campaign::ShardLaunch& launch) {
    auto cmd = campaign::default_worker_command(launch, exe);
    if (launch.attempt == 0 && crash_after > 0) {
      cmd.push_back("--chaos-crash-after");
      cmd.push_back(std::to_string(crash_after));
    }
    if (launch.attempt == 0 && hang_after > 0) {
      cmd.push_back("--chaos-hang-after");
      cmd.push_back(std::to_string(hang_after));
    }
    return cmd;
  };

  util::TextTable table({"stimulus", "frames", "attempts", "reused", "simulated"});
  for (const Source& src : sources) {
    campaign::ShardJob job;
    job.net = net;
    job.stimulus = src.input;
    job.faults = faults;
    job.engine = engine;
    job.stimulus_name = src.name;
    ocfg.work_dir = cli.get("work-dir") + "/" + src.name;

    const auto run = campaign::run_sharded_campaign(job, ocfg);
    if (!run.completed) {
      std::fprintf(stderr, "error: stimulus %s: shard abandoned after retry exhaustion"
                           " (see %s/shard_*.log)\n",
                   src.name.c_str(), ocfg.work_dir.c_str());
      return 1;
    }
    uint64_t reused = 0, recorded = 0;
    for (const auto& shard : run.shards) {
      reused += shard.stats.pairs_reused;
      recorded += shard.stats.pairs_recorded;
    }
    dict.merge(run.merged);
    table.add_row({src.name, std::to_string(src.input.shape().dim(0)),
                   std::to_string(run.total_attempts()), std::to_string(reused),
                   std::to_string(recorded)});
  }
  std::printf("%s\n", table.render().c_str());

  dict.save(dict_path);
  std::printf("dictionary %s: %zu stimuli, %zu records, %zu/%llu faults detectable\n",
              dict_path.c_str(), dict.num_stimuli(), dict.num_records(), dict.detectable_count(),
              static_cast<unsigned long long>(dict.num_faults));
  return 0;
}

int cmd_merge(int argc, char** argv) {
  util::CliParser cli({{"out", "merged.snfd"}, {"inputs", ""}},
                      "Merge dictionaries (comma-separated --inputs) into --out.");
  if (!cli.parse(argc, argv)) return 0;
  const auto inputs = split_csv(cli.get("inputs"));
  if (inputs.empty()) {
    std::fprintf(stderr, "error: merge needs --inputs a.snfd,b.snfd,...\n");
    return 1;
  }
  coverage::FaultDictionary merged = load_or_die(inputs[0]);
  for (size_t i = 1; i < inputs.size(); ++i) {
    const coverage::FaultDictionary next = load_or_die(inputs[i]);
    try {
      const auto stats = merged.merge(next);
      std::printf("%s: +%zu records, +%zu stimuli, %zu duplicates, %zu conflicts skipped\n",
                  inputs[i].c_str(), stats.records_added, stats.stimuli_added,
                  stats.duplicates_agreeing, stats.conflicts_skipped);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s: %s\n", inputs[i].c_str(), e.what());
      return 1;
    }
  }
  merged.save(cli.get("out"));
  std::printf("merged %zu file(s) -> %s: %zu stimuli, %zu records\n", inputs.size(),
              cli.get("out").c_str(), merged.num_stimuli(), merged.num_records());
  return 0;
}

int cmd_query(int argc, char** argv) {
  util::CliParser cli({{"dict", "coverage.snfd"}, {"fault", "-1"}, {"stimulus", "-1"}},
                      "Query a dictionary: per-stimulus rows, one fault, or one stimulus.");
  if (!cli.parse(argc, argv)) return 0;
  const coverage::FaultDictionary dict = load_or_die(cli.get("dict"));

  const int fault_idx = cli.get_int("fault");
  if (fault_idx >= 0) {
    if (static_cast<uint64_t>(fault_idx) >= dict.num_faults) {
      std::fprintf(stderr, "error: fault %d out of range (universe %llu)\n", fault_idx,
                   static_cast<unsigned long long>(dict.num_faults));
      return 1;
    }
    std::printf("stimuli detecting fault %d:\n", fault_idx);
    size_t hits = 0;
    for (size_t s = 0; s < dict.num_stimuli(); ++s) {
      const auto* r = dict.lookup(s, static_cast<size_t>(fault_idx));
      if (r == nullptr || !r->detected) continue;
      ++hits;
      std::printf("  %-16s first frame %lld, L1 %.17g\n", dict.stimulus(s).name.c_str(),
                  static_cast<long long>(r->first_detection_frame), r->output_l1);
    }
    if (hits == 0) std::printf("  (none — undetectable by the recorded stimuli)\n");
    return 0;
  }

  const int stim_idx = cli.get_int("stimulus");
  if (stim_idx >= 0) {
    if (static_cast<size_t>(stim_idx) >= dict.num_stimuli()) {
      std::fprintf(stderr, "error: stimulus %d out of range (%zu stimuli)\n", stim_idx,
                   dict.num_stimuli());
      return 1;
    }
    const auto detected = dict.detected_faults(static_cast<size_t>(stim_idx));
    std::printf("%s: %zu records, %zu detected faults\n",
                dict.stimulus(static_cast<size_t>(stim_idx)).name.c_str(),
                dict.records_for(static_cast<size_t>(stim_idx)), detected.size());
    return 0;
  }

  util::TextTable table({"stimulus", "frames", "records", "detected", "embedded"});
  for (size_t s = 0; s < dict.num_stimuli(); ++s) {
    const auto& entry = dict.stimulus(s);
    table.add_row({entry.name, std::to_string(entry.duration_frames),
                   std::to_string(dict.records_for(s)),
                   std::to_string(dict.detected_faults(s).size()), entry.has_data() ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("%zu/%llu faults detectable by at least one stimulus\n", dict.detectable_count(),
              static_cast<unsigned long long>(dict.num_faults));
  return 0;
}

int cmd_minimize(int argc, char** argv) {
  util::CliParser cli({{"dict", "coverage.snfd"}, {"out", ""}, {"json", ""}},
                      "Minimum-time test schedule (lazy-greedy weighted set cover).");
  if (!cli.parse(argc, argv)) return 0;
  const coverage::FaultDictionary dict = load_or_die(cli.get("dict"));
  const auto schedule = coverage::minimize_schedule(dict);
  print_schedule(schedule, dict);
  if (!cli.get("json").empty()) write_schedule_json(cli.get("json"), schedule, dict);
  if (!cli.get("out").empty()) {
    const auto sub = coverage::schedule_as_dictionary(dict, schedule);
    sub.save(cli.get("out"));
    std::printf("schedule dictionary -> %s (%zu stimuli, execute in file order)\n",
                cli.get("out").c_str(), sub.num_stimuli());
  }
  return schedule.complete() ? 0 : 2;
}

int cmd_replay(int argc, char** argv) {
  util::CliParser cli({{"dict", "schedule.snfd"},
                       {"benchmark", "nmnist"},
                       {"train-budget", "1.0"},
                       {"fault-sample", "2000"},
                       {"threads", "0"},
                       {"lane-width", "8"},
                       {"threshold", "0"},
                       {"detect-only", "0"},
                       {"frontier", "0"},
                       {"frontier-threshold", "0.5"},
                       {"golden-cache-budget", "0"},
                       {"json", ""},
                       {"trace-out", ""},
                       {"metrics-out", ""}},
                      "Execute a minimized schedule (minimize --out) in file order against\n"
                      "the live model, dropping every fault an earlier stimulus already\n"
                      "detected — the minimum-time in-field test loop. --frontier 1 runs\n"
                      "each step through the divergence-frontier engine; results and\n"
                      "coverage decisions are bit-identical either way.");
  if (!cli.parse(argc, argv)) return 0;
  obs::configure(cli.get("trace-out"), cli.get("metrics-out"));

  const auto id = zoo::parse_benchmark(cli.get("benchmark"));
  zoo::ZooOptions zoo_opts;
  zoo_opts.train_budget = cli.get_double("train-budget");
  auto bundle = zoo::load_or_train(id, zoo_opts);
  auto& net = bundle.network;

  // The fault universe must be reconstructed exactly as `build` sampled it;
  // replay_schedule verifies the fingerprints and refuses a mismatch.
  auto universe = fault::enumerate_faults(net);
  util::Rng sample_rng(99);
  const size_t sample_size = cli.get_size("fault-sample");
  auto faults = sample_size != 0 && universe.size() > sample_size
                    ? fault::sample_faults(universe, sample_size, sample_rng)
                    : universe;

  const coverage::FaultDictionary schedule = load_or_die(cli.get("dict"));
  coverage::ScheduleReplayConfig config;
  config.engine.num_threads = cli.get_size("threads");
  config.engine.lane_width = cli.get_size("lane-width");
  config.engine.detection_threshold = cli.get_double("threshold");
  config.engine.detect_only = cli.get_bool("detect-only");
  config.engine.frontier = cli.get_bool("frontier");
  config.engine.frontier_threshold = cli.get_double("frontier-threshold");
  config.engine.golden_cache_budget_bytes = cli.get_size("golden-cache-budget");

  const auto replay = coverage::replay_schedule(net, schedule, faults, config);

  util::TextTable table({"#", "stimulus", "frames", "simulated", "dropped", "new", "coverage",
                         "cum. frames"});
  for (const auto& step : replay.steps) {
    table.add_row({std::to_string(step.stimulus), schedule.stimulus(step.stimulus).name,
                   std::to_string(step.frames), std::to_string(step.faults_simulated),
                   std::to_string(step.faults_dropped), std::to_string(step.newly_detected),
                   util::fmt_pct(faults.empty() ? 0.0
                                                : static_cast<double>(step.cumulative_detected) /
                                                      static_cast<double>(faults.size())),
                   std::to_string(step.cumulative_frames)});
  }
  std::printf("%s\n", table.render().c_str());
  size_t simulated = 0, dropped = 0;
  for (const auto& step : replay.steps) {
    simulated += step.faults_simulated;
    dropped += step.faults_dropped;
  }
  std::printf("replayed %zu stimuli (%llu frames): %zu/%zu faults detected;"
              " %zu fault simulations run, %zu dropped as already-detected\n",
              replay.steps.size(), static_cast<unsigned long long>(replay.total_frames),
              replay.total_detected, faults.size(), simulated, dropped);

  if (!cli.get("json").empty()) {
    std::ofstream out(cli.get("json"));
    if (!out) {
      std::fprintf(stderr, "warning: cannot write JSON to %s\n", cli.get("json").c_str());
    } else {
      out << "{\"num_faults\":" << faults.size() << ",\"total_detected\":" << replay.total_detected
          << ",\"total_frames\":" << replay.total_frames << ",\"simulated\":" << simulated
          << ",\"dropped\":" << dropped << ",\"frontier\":"
          << (config.engine.frontier ? "true" : "false") << ",\"steps\":[";
      for (size_t i = 0; i < replay.steps.size(); ++i) {
        const auto& step = replay.steps[i];
        if (i) out << ",";
        out << "{\"stimulus\":\"" << util::json_escape(schedule.stimulus(step.stimulus).name)
            << "\",\"frames\":" << step.frames << ",\"simulated\":" << step.faults_simulated
            << ",\"dropped\":" << step.faults_dropped << ",\"new\":" << step.newly_detected
            << ",\"cumulative_detected\":" << step.cumulative_detected
            << ",\"cumulative_frames\":" << step.cumulative_frames << "}";
      }
      out << "]}\n";
      std::printf("JSON: %s\n", cli.get("json").c_str());
    }
  }
  return 0;
}

int cmd_report(int argc, char** argv) {
  util::CliParser cli({{"dict", "coverage.snfd"}, {"json", ""}},
                      "Dictionary summary: identity, stimuli, matrix completeness.");
  if (!cli.parse(argc, argv)) return 0;
  const coverage::FaultDictionary dict = load_or_die(cli.get("dict"));

  std::printf("dictionary %s\n", cli.get("dict").c_str());
  std::printf("  model fingerprint     %016llx\n",
              static_cast<unsigned long long>(dict.model_fingerprint));
  std::printf("  universe fingerprint  %016llx (%llu faults)\n",
              static_cast<unsigned long long>(dict.universe_fingerprint),
              static_cast<unsigned long long>(dict.num_faults));
  std::printf("  detection threshold   %.17g%s\n", dict.detection_threshold,
              dict.detect_only ? " (detect-only)" : "");
  std::printf("  schedule ordered      %s\n", dict.schedule_ordered ? "yes" : "no");
  const size_t total_pairs = dict.num_stimuli() * static_cast<size_t>(dict.num_faults);
  std::printf("  matrix                %zu stimuli x %llu faults, %zu/%zu pairs recorded\n",
              dict.num_stimuli(), static_cast<unsigned long long>(dict.num_faults),
              dict.num_records(), total_pairs);
  std::printf("  detectable            %zu/%llu\n", dict.detectable_count(),
              static_cast<unsigned long long>(dict.num_faults));

  if (!cli.get("json").empty()) {
    std::ofstream out(cli.get("json"));
    if (!out) {
      std::fprintf(stderr, "warning: cannot write JSON to %s\n", cli.get("json").c_str());
    } else {
      out << "{\"num_faults\":" << dict.num_faults << ",\"num_stimuli\":" << dict.num_stimuli()
          << ",\"num_records\":" << dict.num_records()
          << ",\"detectable\":" << dict.detectable_count() << ",\"schedule_ordered\":"
          << (dict.schedule_ordered ? "true" : "false") << "}\n";
      std::printf("JSON: %s\n", cli.get("json").c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // Re-point argv so each subcommand's CliParser sees `coverage_tool-<cmd>`
  // as the program name and only its own flags.
  std::vector<char*> rest;
  static std::string prog;
  prog = std::string(argv[0]) + " " + cmd;
  rest.push_back(prog.data());
  for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
  const int sub_argc = static_cast<int>(rest.size());
  char** sub_argv = rest.data();

  try {
    if (cmd == "build") return cmd_build(sub_argc, sub_argv);
    if (cmd == "orchestrate") return cmd_orchestrate(sub_argc, sub_argv);
    if (cmd == "run-shard") return cmd_run_shard(sub_argc, sub_argv);
    if (cmd == "status") return cmd_status(sub_argc, sub_argv);
    if (cmd == "merge") return cmd_merge(sub_argc, sub_argv);
    if (cmd == "query") return cmd_query(sub_argc, sub_argv);
    if (cmd == "minimize") return cmd_minimize(sub_argc, sub_argv);
    if (cmd == "replay") return cmd_replay(sub_argc, sub_argv);
    if (cmd == "report") return cmd_report(sub_argc, sub_argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
  return usage();
}
