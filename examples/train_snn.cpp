// Train (or load from cache) one of the three benchmark SNNs and print its
// Table I-style characteristics.
//
// Run:  ./build/examples/train_snn --benchmark nmnist|gesture|shd
//       [--retrain true] [--budget 1.0]
#include <cstdio>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/timer.hpp"
#include "zoo/model_zoo.hpp"

using namespace snntest;

int main(int argc, char** argv) {
  util::CliParser cli(
      {{"benchmark", "shd"}, {"retrain", "false"}, {"budget", "1.0"}},
      "Train a benchmark SNN on its synthetic event dataset and report its characteristics.");
  zoo::ZooOptions options;
  try {
    if (!cli.parse(argc, argv)) return 0;
    options.allow_cache = !cli.get_bool("retrain");
    options.train_budget = cli.get_double("budget");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const auto id = zoo::parse_benchmark(cli.get("benchmark"));

  auto bundle = zoo::load_or_train(id, options);
  auto& net = bundle.network;

  std::printf("\n== %s ==\n", zoo::benchmark_name(id));
  std::printf("%s\n", bundle.from_cache ? "(loaded from cache)" : "(freshly trained)");
  util::TextTable table({"characteristic", "value"});
  table.add_row({"prediction accuracy", util::fmt_pct(bundle.test_accuracy)});
  table.add_row({"# output classes", std::to_string(net.output_size())});
  table.add_row({"# neurons", util::fmt_count(net.total_neurons())});
  table.add_row({"# weights (fault sites)", util::fmt_count(net.total_weights())});
  table.add_row({"# connections", util::fmt_count(net.total_connections())});
  table.add_row({"input width", std::to_string(net.input_size())});
  table.add_row({"timesteps / sample", std::to_string(bundle.steps_per_sample)});
  table.add_row({"train set", std::to_string(bundle.train->size())});
  table.add_row({"test set", std::to_string(bundle.test->size())});
  if (!bundle.from_cache) {
    table.add_row({"training time", util::format_duration(bundle.train_seconds)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("layers:\n");
  for (size_t l = 0; l < net.num_layers(); ++l) {
    std::printf("  %zu: %s (%zu neurons, %zu weights)\n", l + 1, net.layer(l).name().c_str(),
                net.layer(l).num_neurons(), net.layer(l).num_weights());
  }
  return 0;
}
