// The paper's complete flow on one benchmark: train/load the SNN, generate
// the optimized test stimulus (Sec. IV), run the verification fault
// simulation (Eq. (3)), classify faults critical/benign (Sec. III) and
// print a Table III-style metric block. The stimulus is saved to disk for
// reuse by examples/infield_test.
//
// Run:  ./build/examples/testgen_pipeline --benchmark shd
//       [--steps 300] [--restarts 1] [--threads 1] [--kernel-mode auto]
//       [--fault-sample 4000] [--out stimulus.bin] [--iters 0]
//       [--train-budget 1.0] [--trace-out trace.json] [--metrics-out m.json]
#include <cstdio>

#include "core/test_generator.hpp"
#include "fault/campaign.hpp"
#include "fault/classifier.hpp"
#include "fault/coverage.hpp"
#include "obs/report.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/timer.hpp"
#include "zoo/model_zoo.hpp"

using namespace snntest;

namespace {

/// Everything after flag parsing; runs inside main's try so flag validation
/// errors (e.g. --steps=abc) exit cleanly instead of aborting.
int run(const util::CliParser& cli) {
  obs::configure(cli.get("trace-out"), cli.get("metrics-out"));
  obs::set_report_field("benchmark", cli.get("benchmark"));
  obs::set_report_field("kernel_mode", cli.get("kernel-mode"));

  const auto id = zoo::parse_benchmark(cli.get("benchmark"));
  zoo::ZooOptions zoo_opts;
  zoo_opts.train_budget = cli.get_double("train-budget");
  auto bundle = zoo::load_or_train(id, zoo_opts);
  auto& net = bundle.network;
  std::printf("\nmodel: %s — %zu neurons, %zu weights, accuracy %s\n", net.name().c_str(),
              net.total_neurons(), net.total_weights(),
              util::fmt_pct(bundle.test_accuracy).c_str());

  // --- fault universe (statistically sampled if large, DESIGN.md §2.4) ---
  auto universe = fault::enumerate_faults(net);
  util::Rng sample_rng(99);
  const size_t sample_size = cli.get_size("fault-sample");
  auto faults = sample_size != 0 && universe.size() > sample_size
                    ? fault::sample_faults(universe, sample_size, sample_rng)
                    : universe;
  std::printf("fault universe: %zu faults, simulating %zu\n", universe.size(), faults.size());

  // --- test generation ---
  core::TestGenConfig cfg;
  cfg.steps_stage1 = cli.get_size("steps");
  cfg.restarts = cli.get_size("restarts");
  cfg.num_threads = cli.get_size("threads");
  if (cli.get_size("iters") > 0) cfg.max_iterations = cli.get_size("iters");
  cfg.kernel_mode = snn::parse_kernel_mode(cli.get("kernel-mode"));
  cfg.verbose = true;
  core::TestGenerator generator(net, cfg);
  auto report = generator.generate();
  std::printf("\ngenerated %zu chunks in %s; activated %s of neurons; T_test = %zu steps "
              "(%.2f samples)\n",
              report.stimulus.num_chunks(), util::format_duration(report.runtime_seconds).c_str(),
              util::fmt_pct(report.activated_fraction()).c_str(), report.stimulus.total_steps(),
              report.stimulus.duration_in_samples(bundle.steps_per_sample));

  // --- verification campaign + criticality labels ---
  const auto stimulus = report.stimulus.assemble();
  const auto detection = fault::run_detection_campaign(net, stimulus, faults);
  fault::ClassifierConfig cc;
  cc.max_samples = cli.get_size("classify-samples");
  const auto classes = fault::classify_faults(net, faults, *bundle.test, cc);
  const auto coverage = fault::build_coverage_report(faults, detection.results, classes.labels);

  std::printf("\nfault simulation: %s; classification: %s\n",
              util::format_duration(detection.elapsed_seconds).c_str(),
              util::format_duration(classes.elapsed_seconds).c_str());
  std::printf("%s\n", coverage.to_string().c_str());

  // --- persist the compact stimulus ---
  std::string out = cli.get("out");
  if (out.empty()) out = std::string("stimulus_") + zoo::benchmark_name(id) + ".bin";
  report.stimulus.save(out);
  std::printf("stimulus saved to %s (density %s) — reuse with examples/infield_test\n",
              out.c_str(), util::fmt_pct(report.stimulus.spike_density()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli({{"benchmark", "shd"},
                       {"steps", "300"},
                       {"restarts", "1"},
                       {"threads", "1"},
                       {"kernel-mode", "auto"},
                       {"fault-sample", "4000"},
                       {"classify-samples", "48"},
                       {"iters", "0"},
                       {"train-budget", "1.0"},
                       {"out", ""},
                       {"trace-out", ""},
                       {"metrics-out", ""}},
                      "Full test-generation pipeline on a benchmark SNN.");
  try {
    if (!cli.parse(argc, argv)) return 0;
    return run(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
