// Quickstart: the whole pipeline on a small SNN in under a minute.
//
//  1. build + train a spiking network on a synthetic event dataset,
//  2. enumerate the hardware fault universe,
//  3. generate a compact test stimulus with the paper's algorithm,
//  4. fault-simulate the stimulus and report fault coverage.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "core/test_generator.hpp"
#include "data/synthetic_shd.hpp"
#include "fault/campaign.hpp"
#include "fault/coverage.hpp"
#include "snn/dense_layer.hpp"
#include "train/trainer.hpp"
#include "util/csv.hpp"
#include "util/timer.hpp"

using namespace snntest;

int main() {
  std::printf("== snntest quickstart ==\n\n");

  // --- 1. a small 3-layer fully connected SNN on spiking audio data ---
  data::SyntheticShdConfig data_cfg;
  data_cfg.count = 400;
  data_cfg.channels = 32;
  data_cfg.num_steps = 20;
  auto dataset = std::make_shared<data::SyntheticShd>(data_cfg);
  auto splits = data::split(dataset, 300, 100);

  snn::LifParams lif;
  lif.threshold = 1.0f;
  lif.leak = 0.9f;
  lif.refractory = 1;
  util::Rng rng(1);
  snn::Network net("quickstart-snn");
  auto l1 = std::make_unique<snn::DenseLayer>(32, 48, lif);
  l1->init_weights(rng, 1.2f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(48, 20, lif);
  l2->init_weights(rng, 1.2f);
  net.add_layer(std::move(l2));

  std::printf("network: %zu neurons, %zu synapses\n", net.total_neurons(), net.total_weights());

  train::TrainerConfig tc;
  tc.epochs = 18;
  tc.lr = 4e-3;
  tc.lr_final = 1e-3;
  tc.verbose = false;
  train::Trainer trainer(net, tc);
  const auto eval = trainer.fit(*splits.train, *splits.test);
  std::printf("trained: %.1f%% top-1 accuracy on held-out data\n\n", eval.accuracy * 100.0);

  // --- 2. the fault universe (Sec. III): dead/saturated neurons,
  //         dead/saturated synapses ---
  auto faults = fault::enumerate_faults(net);
  std::printf("fault universe: %zu faults (%zu neuron, %zu synapse)\n", faults.size(),
              fault::count_neuron_faults(faults), fault::count_synapse_faults(faults));

  // --- 3. optimized test generation (Sec. IV) ---
  core::TestGenConfig cfg;
  cfg.steps_stage1 = 150;
  cfg.max_iterations = 8;
  cfg.t_limit_seconds = 60.0;
  cfg.verbose = false;
  util::Timer gen_timer;
  core::TestGenerator generator(net, cfg);
  auto report = generator.generate();
  std::printf("test generated in %s: %zu chunks, %zu timesteps total (%.2f sample-equivalents)\n",
              util::format_duration(report.runtime_seconds).c_str(),
              report.stimulus.num_chunks(), report.stimulus.total_steps(),
              report.stimulus.duration_in_samples(data_cfg.num_steps));
  std::printf("activated neurons: %s\n\n", util::fmt_pct(report.activated_fraction()).c_str());

  // --- 4. verify with one fault-simulation campaign (Eq. (3)/(4)) ---
  const auto stimulus = report.stimulus.assemble();
  const auto outcome = fault::run_detection_campaign(net, stimulus, faults);
  std::printf("fault coverage: %s (%zu / %zu detected) in %s\n",
              util::fmt_pct(fault::fault_coverage(outcome.results)).c_str(),
              outcome.detected_count(), faults.size(),
              util::format_duration(outcome.elapsed_seconds).c_str());
  std::printf("\nDone. Next: examples/testgen_pipeline reproduces the paper's full flow.\n");
  return 0;
}
