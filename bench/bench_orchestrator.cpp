// Sharded-campaign orchestration bench: merge identity, crash recovery and
// scaling of the multi-process campaign runner (DESIGN.md §15).
//
// Three phases, each gated on an invariant the orchestrator promises:
//
//  1. reference — a single-process incremental campaign per stimulus; its
//     serialized dictionary bytes are the identity baseline.
//  2. sharded runs — the same campaign fanned out across {1, 2, 4} worker
//     processes. Every merged dictionary must serialize to bytes identical
//     to the reference (the merge-identity contract).
//  3. kill-and-recover drill — every shard's first attempt is killed by
//     SIGKILL mid-campaign (--chaos-crash-after). The retries must finish
//     the campaign, reuse at least one pair from the partial snapshots
//     (crash recovery actually resumed, not restarted), and still match the
//     reference byte-for-byte.
//
// The bench re-execs itself as the shard worker (argv[1] == "run-shard"),
// so it is self-contained. Exits nonzero if any invariant fails; `--json`
// writes the machine-readable verdicts CI asserts on.
#include "bench_common.hpp"

#include <optional>

#include "campaign/orchestrator.hpp"
#include "campaign/shard_worker.hpp"
#include "coverage/incremental.hpp"
#include "util/subprocess.hpp"
#include "util/timer.hpp"

using namespace snntest;

namespace {

int worker_main(int argc, char** argv) {
  util::CliParser cli({{"job", ""},
                       {"work-dir", "."},
                       {"shard", "0"},
                       {"num-shards", "1"},
                       {"flush-every", "16"},
                       {"chaos-crash-after", "0"},
                       {"chaos-hang-after", "0"}},
                      "Shard worker mode (internal: spawned by the bench itself).");
  if (!cli.parse(argc, argv)) return 0;
  campaign::ShardWorkerOptions opts;
  opts.job_path = cli.get("job");
  opts.work_dir = cli.get("work-dir");
  opts.shard_index = cli.get_size("shard");
  opts.num_shards = cli.get_size("num-shards");
  opts.flush_every = cli.get_size("flush-every");
  opts.crash_after = cli.get_size("chaos-crash-after");
  opts.hang_after = cli.get_size("chaos-hang-after");
  return campaign::run_shard_worker(opts);
}

}  // namespace

int main(int argc, char** argv) {
  // Self-exec dispatch: `bench_orchestrator run-shard --job ...` is a worker.
  if (argc > 1 && std::string(argv[1]) == "run-shard") {
    static std::string prog = std::string(argv[0]) + " run-shard";
    std::vector<char*> rest{prog.data()};
    for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
    return worker_main(static_cast<int>(rest.size()), rest.data());
  }

  util::CliParser cli({{"benchmark", "nmnist"},
                       {"stimuli", "2"},
                       {"fault-sample", "400"},
                       {"threads", "0"},
                       {"lane-width", "8"},
                       {"crash-after", "5"},
                       {"json", ""},
                       {"trace-out", ""},
                       {"metrics-out", ""}},
                      "Sharded orchestration: merge identity, crash recovery, scaling.");
  size_t num_stimuli = 0;
  size_t fault_sample = 0;
  size_t crash_after = 0;
  campaign::EngineConfig engine;
  try {
    if (!cli.parse(argc, argv)) return 0;
    num_stimuli = cli.get_size("stimuli");
    fault_sample = cli.get_size("fault-sample");
    crash_after = cli.get_size("crash-after");
    engine.num_threads = cli.get_size("threads");
    engine.lane_width = cli.get_size("lane-width");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  bench::wire_observability(cli);
  bench::print_header("Sharded multi-process campaign orchestration",
                      "factory-scale campaign fan-out with crash recovery, DESIGN.md §15");

  const std::string exe = util::current_executable_path();
  if (exe.empty()) {
    std::fprintf(stderr, "error: cannot resolve own executable path\n");
    return 1;
  }

  const auto id = zoo::parse_benchmark(cli.get("benchmark"));
  auto bundle = bench::get_bundle(id);
  auto& net = bundle.network;
  auto faults = bench::sampled_faults(net, fault_sample);
  std::vector<tensor::Tensor> stimuli;
  for (size_t i = 0; i < num_stimuli; ++i) stimuli.push_back(bundle.test->get(i).input);
  std::printf("model %s: %zu faults, %zu stimuli\n\n", net.name().c_str(), faults.size(),
              stimuli.size());

  // --- phase 1: single-process reference ----------------------------------
  coverage::FaultDictionary reference = coverage::make_dictionary(net, faults);
  util::Timer ref_timer;
  for (size_t i = 0; i < stimuli.size(); ++i) {
    coverage::IncrementalConfig config;
    config.engine = engine;
    config.stimulus_name = "sample" + std::to_string(i);
    coverage::run_incremental_campaign(net, stimuli[i], faults, reference, config);
  }
  const double ref_seconds = ref_timer.seconds();
  const std::string ref_bytes = reference.serialize();
  std::printf("reference: %zu records in %.2fs (%zu dictionary bytes)\n\n",
              reference.num_records(), ref_seconds, ref_bytes.size());

  const std::string work_root = bench::out_dir() + "/BENCH_orchestrator_work";
  const auto run_all_stimuli = [&](campaign::OrchestratorConfig ocfg, const std::string& tag,
                                   size_t* total_attempts, uint64_t* pairs_reused)
      -> std::optional<coverage::FaultDictionary> {
    coverage::FaultDictionary merged = coverage::make_dictionary(net, faults);
    for (size_t i = 0; i < stimuli.size(); ++i) {
      campaign::ShardJob job;
      job.net = net;
      job.stimulus = stimuli[i];
      job.faults = faults;
      job.engine = engine;
      job.stimulus_name = "sample" + std::to_string(i);
      ocfg.work_dir = work_root + "/" + tag + "/sample" + std::to_string(i);
      const auto run = campaign::run_sharded_campaign(job, ocfg);
      if (!run.completed) return std::nullopt;
      if (total_attempts) *total_attempts += run.total_attempts();
      if (pairs_reused) {
        for (const auto& s : run.shards) *pairs_reused += s.stats.pairs_reused;
      }
      merged.merge(run.merged);
    }
    return merged;
  };

  // --- phase 2: sharded runs, merge identity ------------------------------
  util::TextTable table({"shards", "attempts", "elapsed", "vs. reference"});
  bool identity_ok = true;
  bool all_completed = true;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    campaign::OrchestratorConfig ocfg;
    ocfg.num_shards = shards;
    ocfg.worker_command = [&exe](const campaign::ShardLaunch& l) {
      return campaign::default_worker_command(l, exe);
    };
    size_t attempts = 0;
    util::Timer timer;
    const auto merged = run_all_stimuli(ocfg, "shards" + std::to_string(shards), &attempts,
                                        nullptr);
    const double seconds = timer.seconds();
    const bool identical = merged && merged->serialize() == ref_bytes;
    all_completed &= merged.has_value();
    identity_ok &= identical;
    table.add_row({std::to_string(shards), std::to_string(attempts),
                   util::fmt_double(seconds, 2) + "s",
                   identical ? "bit-identical" : "DIVERGED"});
  }
  std::printf("%s\n", table.render().c_str());

  // --- phase 3: kill-and-recover drill ------------------------------------
  campaign::OrchestratorConfig chaos_cfg;
  chaos_cfg.num_shards = 2;
  chaos_cfg.flush_every = 2;  // tight flush so a mid-shard kill leaves a snapshot
  chaos_cfg.worker_command = [&exe, crash_after](const campaign::ShardLaunch& l) {
    auto cmd = campaign::default_worker_command(l, exe);
    if (l.attempt == 0 && crash_after > 0) {
      cmd.push_back("--chaos-crash-after");
      cmd.push_back(std::to_string(crash_after));
    }
    return cmd;
  };
  size_t chaos_attempts = 0;
  uint64_t chaos_reused = 0;
  util::Timer chaos_timer;
  const auto chaos_merged = run_all_stimuli(chaos_cfg, "chaos", &chaos_attempts, &chaos_reused);
  const double chaos_seconds = chaos_timer.seconds();
  const bool chaos_completed = chaos_merged.has_value();
  const bool chaos_identical = chaos_merged && chaos_merged->serialize() == ref_bytes;
  const bool chaos_resumed = chaos_reused > 0;
  std::printf("kill-and-recover: every first attempt SIGKILLed after %zu records; %zu total\n"
              "attempts, %llu pairs resumed from partial snapshots, completed=%s,\n"
              "merged %s vs. reference, %.2fs\n",
              crash_after, chaos_attempts, static_cast<unsigned long long>(chaos_reused),
              chaos_completed ? "yes" : "NO", chaos_identical ? "bit-identical" : "DIVERGED",
              chaos_seconds);

  const bool ok = all_completed && identity_ok && chaos_completed && chaos_identical &&
                  chaos_resumed;

  if (!cli.get("json").empty()) {
    bench::JsonObject report;
    report.field("benchmark", cli.get("benchmark"))
        .field("num_faults", faults.size())
        .field("num_stimuli", stimuli.size())
        .field("reference_seconds", ref_seconds)
        .field("all_completed", all_completed)
        .field("identity_ok", identity_ok)
        .field("chaos_attempts", chaos_attempts)
        .field("chaos_pairs_reused", static_cast<size_t>(chaos_reused))
        .field("chaos_completed", chaos_completed)
        .field("chaos_identical", chaos_identical)
        .field("chaos_resumed", chaos_resumed)
        .field("ok", ok);
    bench::write_json_report(cli.get("json"), report);
  }

  if (!ok) {
    std::fprintf(stderr, "bench_orchestrator: INVARIANT FAILED (see table above)\n");
    return 1;
  }
  std::printf("\nall invariants hold: merged shard dictionaries are byte-identical to the\n"
              "single-process reference, and SIGKILLed workers resume from their snapshots.\n");
  return 0;
}
