// Sparse (event-driven) forward kernels vs. the dense baseline, swept over
// input activity.
//
// Spike trains are mostly zeros — the paper's optimized test stimuli land
// around 5-15% activity — so the synaptic matvec/conv can skip inactive
// columns outright. The sparse kernels (tensor/ops.hpp gather matvec,
// ConvLayer scatter) are bit-identical to the dense path by construction
// (same ordered double accumulation; skipped terms are exact ±0.0), which
// this bench re-verifies at every density before trusting a speedup number.
// Two topologies are swept: a dense MLP stack and a conv+dense stack, at
// activities from 1% to 50%. `--json <path>` writes a machine-readable
// report next to the CSV.
#include "bench_common.hpp"

#include <algorithm>

#include "snn/conv_layer.hpp"
#include "snn/dense_layer.hpp"
#include "snn/network.hpp"
#include "snn/spike_train.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace snntest;

namespace {

snn::Network make_dense_net(uint64_t seed = 31) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("sparse-bench-dense");
  const size_t widths[] = {256, 512, 384, 128, 10};
  for (size_t l = 0; l + 1 < std::size(widths); ++l) {
    auto layer = std::make_unique<snn::DenseLayer>(widths[l], widths[l + 1], lif);
    layer->init_weights(rng, 1.3f);
    net.add_layer(std::move(layer));
  }
  return net;
}

snn::Network make_conv_net(uint64_t seed = 32) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("sparse-bench-conv");
  snn::Conv2dSpec c1;
  c1.in_channels = 2;
  c1.in_height = 16;
  c1.in_width = 16;
  c1.out_channels = 12;
  c1.kernel = 3;
  c1.stride = 1;
  c1.padding = 1;
  auto conv1 = std::make_unique<snn::ConvLayer>(c1, lif);
  conv1->init_weights(rng, 1.3f);
  net.add_layer(std::move(conv1));
  snn::Conv2dSpec c2;
  c2.in_channels = 12;
  c2.in_height = 16;
  c2.in_width = 16;
  c2.out_channels = 16;
  c2.kernel = 3;
  c2.stride = 2;
  c2.padding = 1;
  auto conv2 = std::make_unique<snn::ConvLayer>(c2, lif);
  conv2->init_weights(rng, 1.3f);
  net.add_layer(std::move(conv2));
  auto fc = std::make_unique<snn::DenseLayer>(c2.output_size(), 10, lif);
  fc->init_weights(rng, 1.3f);
  net.add_layer(std::move(fc));
  return net;
}

struct SweepPoint {
  double density = 0.0;
  double dense_seconds = 0.0;
  double sparse_seconds = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

/// Median-of-repeats wall-clock of `net.forward(stimulus)` under `mode`.
double time_forward(const snn::Network& net, const tensor::Tensor& stimulus, snn::KernelMode mode,
                    size_t repeats) {
  snn::Network worker(net);
  worker.set_kernel_mode(mode);
  worker.forward(stimulus);  // warm-up: allocates scratch + touches weights
  double best = 1e300;
  for (size_t r = 0; r < repeats; ++r) {
    util::Timer timer;
    worker.forward(stimulus);
    best = std::min(best, timer.seconds());
  }
  return best;
}

bool outputs_identical(const snn::Network& net, const tensor::Tensor& stimulus) {
  snn::Network dense_net(net), sparse_net(net);
  dense_net.set_kernel_mode(snn::KernelMode::kDense);
  sparse_net.set_kernel_mode(snn::KernelMode::kSparse);
  const auto a = dense_net.forward(stimulus);
  const auto b = sparse_net.forward(stimulus);
  for (size_t l = 0; l < a.num_layers(); ++l) {
    const auto& x = a.layer_outputs[l];
    const auto& y = b.layer_outputs[l];
    if (x.shape() != y.shape()) return false;
    for (size_t i = 0; i < x.numel(); ++i) {
      if (x[i] != y[i]) return false;  // bit-level float equality
    }
  }
  return true;
}

std::vector<SweepPoint> sweep(const snn::Network& net, size_t T, size_t repeats,
                              const std::vector<double>& densities) {
  std::vector<SweepPoint> points;
  for (const double density : densities) {
    util::Rng rng(static_cast<uint64_t>(density * 1e6) + 77);
    const auto stimulus = snn::random_spike_train(T, net.input_size(), density, rng);
    SweepPoint p;
    p.density = density;
    p.identical = outputs_identical(net, stimulus);
    p.dense_seconds = time_forward(net, stimulus, snn::KernelMode::kDense, repeats);
    p.sparse_seconds = time_forward(net, stimulus, snn::KernelMode::kSparse, repeats);
    p.speedup = p.sparse_seconds > 0.0 ? p.dense_seconds / p.sparse_seconds : 0.0;
    points.push_back(p);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli({{"json", ""},
                       {"repeats", "9"},
                       {"timesteps", "64"},
                       {"trace-out", ""},
                       {"metrics-out", ""}},
                      "Sparse vs dense forward kernels swept over input activity.");
  std::string json_path;
  size_t repeats = 1;
  size_t T = 1;
  try {
    if (!cli.parse(argc, argv)) return 0;
    bench::wire_observability(cli);
    json_path = cli.get("json");
    repeats = cli.get_size("repeats");
    T = cli.get_size("timesteps");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  bench::print_header("Event-driven sparse forward kernels vs dense baseline",
                      "the spike-sparsity exploited by the T_FS cost model, Sec. IV-B");

  const std::vector<double> densities = {0.01, 0.02, 0.05, 0.10, 0.20, 0.50};
  const struct {
    const char* name;
    snn::Network net;
  } topologies[] = {{"dense-mlp", make_dense_net()}, {"conv-stack", make_conv_net()}};

  util::TextTable table({"topology", "activity", "dense", "sparse", "speedup", "identical"});
  util::CsvWriter csv(bench::out_dir() + "/sparse_forward.csv");
  csv.write_row({"topology", "density", "dense_seconds", "sparse_seconds", "speedup", "identical"});

  bool all_identical = true;
  std::vector<bench::JsonObject> json_rows;
  for (const auto& topo : topologies) {
    const auto points = sweep(topo.net, T, repeats, densities);
    for (const auto& p : points) {
      all_identical &= p.identical;
      table.add_row({topo.name, util::fmt_pct(p.density), util::format_duration(p.dense_seconds),
                     util::format_duration(p.sparse_seconds),
                     util::fmt_double(p.speedup, 2) + "x", p.identical ? "yes" : "NO"});
      csv.write_row({topo.name, util::CsvWriter::field(p.density),
                     util::CsvWriter::field(p.dense_seconds),
                     util::CsvWriter::field(p.sparse_seconds), util::CsvWriter::field(p.speedup),
                     p.identical ? "1" : "0"});
      json_rows.push_back(bench::JsonObject()
                              .field("topology", topo.name)
                              .field("density", p.density)
                              .field("dense_seconds", p.dense_seconds)
                              .field("sparse_seconds", p.sparse_seconds)
                              .field("speedup", p.speedup)
                              .field("identical", p.identical));
    }
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("sparse = KernelMode::kSparse (always gather/scatter); kAuto picks per frame at\n"
              "25%% activity. identical = every layer's spike train matches the dense path\n"
              "bit-for-bit. Timings are best-of-%zu single-thread forwards, T=%zu steps.\n",
              repeats, T);
  std::printf("outputs identical across all points: %s\n", all_identical ? "yes" : "NO");
  std::printf("CSV: %s/sparse_forward.csv\n", bench::out_dir().c_str());

  if (!json_path.empty()) {
    bench::JsonObject report;
    report.field("benchmark", "sparse_forward")
        .object("config", bench::JsonObject()
                              .field("timesteps", T)
                              .field("repeats", repeats)
                              .field("threads", size_t{1}))
        .array("results", json_rows)
        .field("all_identical", all_identical);
    bench::write_json_report(json_path, report);
  }
  return all_identical ? 0 : 1;
}
