// Fig. 8 — neuron activity under the optimized test input vs a random
// dataset sample.
//
// The paper shows a per-layer activity map: 82.81% of neurons activate
// under the optimized IBM-gesture input vs 29% under a random dataset
// sample. We reproduce the per-layer activated fractions for all three
// benchmarks plus a coarse ASCII activity map of the final dense layers.
#include "bench_common.hpp"

#include "snn/spike_train.hpp"

using namespace snntest;

namespace {

std::vector<double> per_layer_activation(snn::Network& net, const tensor::Tensor& input) {
  const auto fwd = net.forward(input);
  std::vector<double> fractions;
  for (const auto& train : fwd.layer_outputs) {
    fractions.push_back(snn::activation_fraction(train, 1));
  }
  return fractions;
}

double overall(const std::vector<double>& fractions, snn::Network& net) {
  double activated = 0.0, total = 0.0;
  for (size_t l = 0; l < fractions.size(); ++l) {
    const double n = static_cast<double>(net.layer(l).num_neurons());
    activated += fractions[l] * n;
    total += n;
  }
  return total == 0 ? 0.0 : activated / total;
}

}  // namespace

int main() {
  bench::print_header("Neuron activity: optimized test input vs dataset sample", "Fig. 8");

  util::CsvWriter csv(bench::out_dir() + "/fig8_activation.csv");
  csv.write_row({"benchmark", "layer", "optimized", "dataset_sample"});

  for (auto id : bench::kAllBenchmarks) {
    auto bundle = bench::get_bundle(id);
    auto& net = bundle.network;
    auto stimulus = bench::get_stimulus(id, net);
    const auto optimized_input = stimulus.report.stimulus.assemble();
    const auto sample_input = bundle.test->get(3).input;  // "random" dataset sample

    const auto opt = per_layer_activation(net, optimized_input);
    const auto smp = per_layer_activation(net, sample_input);

    std::printf("%s:\n", zoo::benchmark_name(id));
    util::TextTable table({"layer", "optimized input", "dataset sample"});
    for (size_t l = 0; l < opt.size(); ++l) {
      table.add_row({net.layer(l).name(), util::fmt_pct(opt[l]), util::fmt_pct(smp[l])});
      csv.write_row({zoo::benchmark_name(id), net.layer(l).name(),
                     util::CsvWriter::field(opt[l]), util::CsvWriter::field(smp[l])});
    }
    table.add_row({"OVERALL", util::fmt_pct(overall(opt, net)), util::fmt_pct(overall(smp, net))});
    csv.write_row({zoo::benchmark_name(id), "overall", util::CsvWriter::field(overall(opt, net)),
                   util::CsvWriter::field(overall(smp, net))});
    std::printf("%s\n", table.render().c_str());

    // activity map of the first dense layer after the feature extractor
    const auto fwd_opt = net.forward(optimized_input);
    const auto fwd_smp = net.forward(sample_input);
    const size_t l = net.num_layers() >= 2 ? net.num_layers() - 2 : 0;
    auto draw = [&](const snn::ForwardResult& fwd) {
      const auto counts = snn::spike_counts(fwd.layer_outputs[l]);
      std::string map;
      for (size_t i = 0; i < counts.size(); ++i) {
        map += counts[i] > 0 ? 'X' : '.';
        if ((i + 1) % 32 == 0) map += '\n';
      }
      if (!map.empty() && map.back() != '\n') map += '\n';
      return map;
    };
    std::printf("layer %s activity ('X' = activated):\noptimized:\n%ssample:\n%s\n",
                net.layer(l).name().c_str(), draw(fwd_opt).c_str(), draw(fwd_smp).c_str());
  }

  std::printf("shape checks vs paper: the optimized input activates a far higher fraction\n"
              "of neurons than a dataset sample in every layer (paper: 82.81%% vs 29%% on\n"
              "IBM-gesture). CSV: %s/fig8_activation.csv\n",
              bench::out_dir().c_str());
  return 0;
}
