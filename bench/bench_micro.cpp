// Micro-benchmarks (google-benchmark): engine throughput numbers behind the
// table benches — forward inference, BPTT backward, fault injection
// overhead, Gumbel/STE sampling, and loss evaluation.
#include <benchmark/benchmark.h>

#include "core/gumbel.hpp"
#include "core/losses.hpp"
#include "fault/injector.hpp"
#include "snn/dense_layer.hpp"
#include "snn/spike_train.hpp"
#include "zoo/model_zoo.hpp"

using namespace snntest;

namespace {

snn::Network small_net(size_t in, size_t hidden, size_t out, uint64_t seed) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("bench");
  auto l1 = std::make_unique<snn::DenseLayer>(in, hidden, lif);
  l1->init_weights(rng, 1.2f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(hidden, out, lif);
  l2->init_weights(rng, 1.2f);
  net.add_layer(std::move(l2));
  return net;
}

void BM_DenseForward(benchmark::State& state) {
  const size_t T = 25;
  auto net = small_net(64, static_cast<size_t>(state.range(0)), 20, 1);
  util::Rng rng(2);
  const auto input = snn::random_spike_train(T, 64, 0.1, rng);
  for (auto _ : state) {
    auto fwd = net.forward(input, false);
    benchmark::DoNotOptimize(fwd.layer_outputs.back().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(T));
}
BENCHMARK(BM_DenseForward)->Arg(64)->Arg(128)->Arg(256);

void BM_ForwardBackward(benchmark::State& state) {
  const size_t T = 25;
  auto net = small_net(64, static_cast<size_t>(state.range(0)), 20, 3);
  util::Rng rng(4);
  const auto input = snn::random_spike_train(T, 64, 0.1, rng);
  for (auto _ : state) {
    auto fwd = net.forward(input, true);
    std::vector<tensor::Tensor> grads(net.num_layers());
    grads.back() = tensor::Tensor(fwd.output().shape(), 0.1f);
    net.zero_grad();
    auto g = net.backward(grads);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_ForwardBackward)->Arg(64)->Arg(128);

void BM_FaultInjectRemove(benchmark::State& state) {
  auto net = small_net(64, 128, 20, 5);
  fault::FaultInjector injector(net);
  fault::FaultDescriptor fd;
  fd.kind = fault::FaultKind::kSynapseDead;
  fd.weight = {0, 0, 100};
  for (auto _ : state) {
    injector.inject(fd);
    injector.remove();
  }
}
BENCHMARK(BM_FaultInjectRemove);

void BM_FaultedInferenceOverhead(benchmark::State& state) {
  // One injected fault should not change inference cost (in-place mutation).
  const size_t T = 25;
  auto net = small_net(64, 128, 20, 6);
  util::Rng rng(7);
  const auto input = snn::random_spike_train(T, 64, 0.1, rng);
  fault::FaultInjector injector(net);
  fault::FaultDescriptor fd;
  fd.kind = fault::FaultKind::kNeuronDead;
  fd.neuron = {0, 10};
  injector.inject(fd);
  for (auto _ : state) {
    auto fwd = net.forward(input, false);
    benchmark::DoNotOptimize(fwd.layer_outputs.back().data());
  }
}
BENCHMARK(BM_FaultedInferenceOverhead);

void BM_GumbelForward(benchmark::State& state) {
  util::Rng rng(8);
  core::GumbelSoftmaxInput input(32, 256, rng);
  for (auto _ : state) {
    const auto& b = input.forward(0.5, true);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetItemsProcessed(state.iterations() * 32 * 256);
}
BENCHMARK(BM_GumbelForward);

void BM_LossEvaluation(benchmark::State& state) {
  auto net = small_net(64, 128, 20, 9);
  util::Rng rng(10);
  const auto input = snn::random_spike_train(25, 64, 0.1, rng);
  auto fwd = net.forward(input, false);
  core::CompositeLoss loss;
  loss.add(std::make_shared<core::OutputActivationLoss>());
  loss.add(std::make_shared<core::NeuronActivationLoss>());
  loss.add(std::make_shared<core::TemporalDiversityLoss>(2));
  loss.add(std::make_shared<core::SynapseUniformityLoss>(net));
  for (auto _ : state) {
    auto grads = core::make_grad_accumulators(fwd);
    const double v = loss.compute(fwd, grads);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_LossEvaluation);

}  // namespace

BENCHMARK_MAIN();
