// Fig. 7 — snapshots of the optimized test stimulus.
//
// The paper shows spatial snapshots of the optimized stimulus at several
// timestamps (blue/red = polarity). We render the cached NMNIST stimulus
// (2 polarities x 16 x 16) at evenly spaced timestamps as ASCII frames
// ('+' = ON event, '-' = OFF event, '#' = both) and dump the full
// spike raster to CSV for plotting.
#include "bench_common.hpp"

using namespace snntest;

int main() {
  bench::print_header("Snapshots of the optimized test stimulus", "Fig. 7");

  auto bundle = bench::get_bundle(zoo::BenchmarkId::kNmnist);
  auto stimulus = bench::get_stimulus(zoo::BenchmarkId::kNmnist, bundle.network);
  const auto input = stimulus.report.stimulus.assemble();
  const size_t T = input.shape().dim(0);
  const size_t height = 16, width = 16;
  std::printf("stimulus: %zu timesteps, %zu channels (%s)\n\n", T, input.shape().dim(1),
              stimulus.from_cache ? "from cache" : "freshly generated");

  const size_t kSnapshots = 6;
  for (size_t s = 0; s < kSnapshots; ++s) {
    const size_t t = s * (T - 1) / (kSnapshots - 1);
    const float* frame = input.row(t);
    size_t on = 0, off = 0;
    std::string canvas;
    for (size_t y = 0; y < height; ++y) {
      for (size_t x = 0; x < width; ++x) {
        const bool p0 = frame[y * width + x] > 0.5f;                   // ON polarity
        const bool p1 = frame[height * width + y * width + x] > 0.5f;  // OFF polarity
        on += p0;
        off += p1;
        canvas += p0 && p1 ? '#' : (p0 ? '+' : (p1 ? '-' : '.'));
      }
      canvas += '\n';
    }
    std::printf("t = %zu (%zu ON / %zu OFF events):\n%s\n", t, on, off, canvas.c_str());
  }

  // full raster to CSV: t, channel, value for nonzero entries
  util::CsvWriter csv(bench::out_dir() + "/fig7_raster.csv");
  csv.write_row({"t", "channel", "polarity"});
  const size_t pixels = height * width;
  for (size_t t = 0; t < T; ++t) {
    const float* frame = input.row(t);
    for (size_t c = 0; c < input.shape().dim(1); ++c) {
      if (frame[c] > 0.5f) {
        csv.write_row({util::CsvWriter::field(t), util::CsvWriter::field(c % pixels),
                       util::CsvWriter::field(c / pixels)});
      }
    }
  }
  std::printf("shape checks vs paper: the optimized stimulus is spatio-temporally rich and\n"
              "unstructured compared to a dataset digit — activity is spread over the whole\n"
              "retina rather than along glyph edges. Raster CSV: %s/fig7_raster.csv\n",
              bench::out_dir().c_str());
  return 0;
}
