// Ablation A (ours, motivated by DESIGN.md §5): contribution of each
// stage-1 loss function.
//
// The paper motivates L1-L4 individually (Sec. IV-C1) but does not ablate
// them. We run the generator on the SHD benchmark with each loss removed
// (leave-one-out) plus an L2-only configuration, and compare neuron
// activation and fault coverage on a fixed sampled fault list. Expected:
// dropping L2 collapses activation; dropping L1/L3/L4 degrades specific
// coverage components.
#include "bench_common.hpp"

#include "fault/campaign.hpp"
#include "fault/coverage.hpp"
#include "util/timer.hpp"

using namespace snntest;

namespace {

struct AblationRow {
  std::string name;
  double activated = 0.0;
  double coverage = 0.0;
  double neuron_coverage = 0.0;
  double synapse_coverage = 0.0;
  double duration_samples = 0.0;
  double gen_seconds = 0.0;
};

}  // namespace

int main() {
  bench::print_header("Ablation: stage-1 loss functions (SHD)", "design-choice ablation");

  auto bundle = bench::get_bundle(zoo::BenchmarkId::kShd);
  auto& net = bundle.network;
  auto faults = bench::sampled_faults(net, 1200);

  struct Config {
    std::string name;
    bool l1, l2, l3, l4;
  };
  const std::vector<Config> configs = {
      {"all losses (L1+L2+L3+L4)", true, true, true, true},
      {"without L1 (output activation)", false, true, true, true},
      {"without L2 (neuron activation)", true, false, true, true},
      {"without L3 (temporal diversity)", true, true, false, true},
      {"without L4 (synapse uniformity)", true, true, true, false},
      {"L2 only", false, true, false, false},
  };

  std::vector<AblationRow> rows;
  for (const auto& config : configs) {
    std::printf("running: %s...\n", config.name.c_str());
    auto cfg = bench::testgen_config(zoo::BenchmarkId::kShd);
    cfg.use_l1 = config.l1;
    cfg.use_l2 = config.l2;
    cfg.use_l3 = config.l3;
    cfg.use_l4 = config.l4;
    core::TestGenerator generator(net, cfg);
    util::Timer timer;
    auto report = generator.generate();
    AblationRow row;
    row.name = config.name;
    row.gen_seconds = timer.seconds();
    row.activated = report.activated_fraction();
    row.duration_samples = report.stimulus.duration_in_samples(bundle.steps_per_sample);
    const auto outcome =
        fault::run_detection_campaign(net, report.stimulus.assemble(), faults);
    row.coverage = fault::fault_coverage(outcome.results);
    size_t nd = 0, nt = 0, sd = 0, st = 0;
    for (size_t j = 0; j < faults.size(); ++j) {
      if (faults[j].targets_neuron()) {
        ++nt;
        nd += outcome.results[j].detected;
      } else {
        ++st;
        sd += outcome.results[j].detected;
      }
    }
    row.neuron_coverage = nt ? static_cast<double>(nd) / nt : 1.0;
    row.synapse_coverage = st ? static_cast<double>(sd) / st : 1.0;
    rows.push_back(row);
  }

  util::TextTable table({"configuration", "activated", "FC all", "FC neuron", "FC synapse",
                         "dur (samples)", "gen time"});
  util::CsvWriter csv(bench::out_dir() + "/ablation_losses.csv");
  csv.write_row({"config", "activated", "fc", "fc_neuron", "fc_synapse", "duration_samples",
                 "gen_seconds"});
  for (auto& r : rows) {
    table.add_row({r.name, util::fmt_pct(r.activated), util::fmt_pct(r.coverage),
                   util::fmt_pct(r.neuron_coverage), util::fmt_pct(r.synapse_coverage),
                   util::fmt_double(r.duration_samples, 2),
                   util::format_duration(r.gen_seconds)});
    csv.write_row({r.name, util::CsvWriter::field(r.activated),
                   util::CsvWriter::field(r.coverage), util::CsvWriter::field(r.neuron_coverage),
                   util::CsvWriter::field(r.synapse_coverage),
                   util::CsvWriter::field(r.duration_samples),
                   util::CsvWriter::field(r.gen_seconds)});
  }
  std::printf("\n%s\nCSV: %s/ablation_losses.csv\n", table.render().c_str(),
              bench::out_dir().c_str());
  return 0;
}
