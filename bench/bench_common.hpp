// Shared plumbing for the reproduction benches.
//
// Centralizes: benchmark-bundle loading (quiet), deterministic fault
// sampling, test-stimulus caching (generate once, reuse across the figure
// benches), per-benchmark scaled test-generation configs, and CSV output
// paths. Scaling decisions (fault-sample sizes, classification subsets) are
// documented in DESIGN.md §2.4 and printed next to every number they
// affect.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/test_generator.hpp"
#include "fault/registry.hpp"
#include "obs/report.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "zoo/model_zoo.hpp"

namespace snntest::bench {

inline const std::vector<zoo::BenchmarkId> kAllBenchmarks = {
    zoo::BenchmarkId::kNmnist, zoo::BenchmarkId::kGesture, zoo::BenchmarkId::kShd};

/// Output directory for CSVs ("bench_out", honoring $SNNTEST_BENCH_OUT).
inline std::string out_dir() {
  std::string dir = "bench_out";
  if (const char* env = std::getenv("SNNTEST_BENCH_OUT")) dir = env;
  std::filesystem::create_directories(dir);
  return dir;
}

inline zoo::BenchmarkBundle get_bundle(zoo::BenchmarkId id) {
  zoo::ZooOptions options;
  options.verbose = true;
  return zoo::load_or_train(id, options);
}

/// Per-benchmark test-generation config scaled for single-core runtimes.
/// The paper's values (Sec. V-C) are steps=2000, t_limit=3h on an A100.
inline core::TestGenConfig testgen_config(zoo::BenchmarkId id) {
  core::TestGenConfig cfg;
  cfg.verbose = false;
  cfg.t_limit_seconds = 240.0;
  switch (id) {
    // The td_min overrides compensate for the ~10x shorter time windows of
    // the CPU-scaled models: the paper's TD_min = T_in/10 on 300-1450-step
    // windows implies dozens of spikes per neuron, which is what drives its
    // high critical-synapse coverage; at T ~ 20-30 steps the same relative
    // rule yields TD_min = 1 and far too little spike pressure.
    case zoo::BenchmarkId::kNmnist:
      cfg.steps_stage1 = 320;
      cfg.max_iterations = 12;
      cfg.t_in_min = 24;
      cfg.td_min_override = 8;
      cfg.input_init_bias = 0.0;
      break;
    case zoo::BenchmarkId::kGesture:
      cfg.steps_stage1 = 120;
      cfg.max_iterations = 6;
      cfg.eval_every = 8;
      break;
    case zoo::BenchmarkId::kShd:
      cfg.steps_stage1 = 320;
      cfg.max_iterations = 16;
      cfg.td_min_override = 7;
      cfg.input_init_bias = 0.0;
      break;
  }
  return cfg;
}

/// Deterministically sampled fault list (statistical fault sampling).
inline std::vector<fault::FaultDescriptor> sampled_faults(snn::Network& net, size_t max_faults,
                                                          uint64_t seed = 99) {
  auto universe = fault::enumerate_faults(net);
  if (max_faults == 0 || universe.size() <= max_faults) return universe;
  util::Rng rng(seed);
  return fault::sample_faults(universe, max_faults, rng);
}

/// Generate the optimized stimulus for a benchmark, cached on disk so the
/// figure benches reuse the table-3 stimulus instead of regenerating.
/// The cache sits next to the model cache and is invalidated with it.
struct StimulusResult {
  core::TestGenReport report;
  bool from_cache = false;
};

inline std::string stimulus_cache_path(zoo::BenchmarkId id) {
  std::string dir = "snntest_cache";
  if (const char* env = std::getenv("SNNTEST_CACHE_DIR")) dir = env;
  std::filesystem::create_directories(dir);
  return dir + "/stimulus_" + zoo::benchmark_name(id) + ".bin";
}

inline StimulusResult get_stimulus(zoo::BenchmarkId id, snn::Network& net) {
  StimulusResult result;
  const std::string path = stimulus_cache_path(id);
  if (std::filesystem::exists(path)) {
    try {
      result.report.stimulus = core::TestStimulus::load(path);
      result.from_cache = true;
      return result;
    } catch (const std::exception& e) {
      SNNTEST_LOG_WARN("stimulus cache %s unreadable (%s); regenerating", path.c_str(), e.what());
    }
  }
  core::TestGenerator generator(net, testgen_config(id));
  result.report = generator.generate();
  result.report.stimulus.save(path);
  return result;
}

/// Enable telemetry + install the exit writer when --trace-out /
/// --metrics-out / $SNNTEST_TRACE ask for it (obs::configure semantics).
/// Callers add {"trace-out", ""} and {"metrics-out", ""} to their CLI spec.
inline void wire_observability(const util::CliParser& cli) {
  obs::configure(cli.get("trace-out"), cli.get("metrics-out"));
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s)\n", title, paper_ref);
  std::printf("================================================================\n\n");
}

/// Minimal JSON object builder for the machine-readable `--json` bench
/// reports. Field order is insertion order; string values are fully escaped
/// via util::json_escape (quotes, backslashes, control characters — model
/// and path names are caller-controlled). Doubles round-trip via %.17g.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, const std::string& value) {
    std::string quoted;
    quoted.reserve(value.size() + 2);
    quoted += '"';
    quoted += util::json_escape(value);
    quoted += '"';
    return raw(key, std::move(quoted));
  }
  JsonObject& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonObject& field(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return raw(key, buf);
  }
  JsonObject& field(const std::string& key, size_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& field(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  JsonObject& object(const std::string& key, const JsonObject& value) {
    return raw(key, value.str());
  }
  JsonObject& array(const std::string& key, const std::vector<JsonObject>& rows) {
    std::string out = "[";
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i) out += ",";
      out += rows[i].str();
    }
    return raw(key, out + "]");
  }
  std::string str() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ",";
      out += "\"" + fields_[i].first + "\":" + fields_[i].second;
    }
    return out + "}";
  }

 private:
  JsonObject& raw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Write a `--json` bench report; an unwritable path warns instead of
/// failing the bench (the human-readable tables already printed).
inline void write_json_report(const std::string& path, const JsonObject& report) {
  std::ofstream out(path);
  if (!out) {
    SNNTEST_LOG_WARN("cannot write JSON report to %s", path.c_str());
    return;
  }
  out << report.str() << "\n";
  std::printf("JSON: %s\n", path.c_str());
}

}  // namespace snntest::bench
