// Table I — benchmark SNN characteristics.
//
// Paper values for calibration (A100-trained on the real datasets):
//   accuracy 98.19 / 86.36 / 76.59 %, neurons 1790 / 25099 / 404,
//   synapses 61.9k / 1.06M / 124.9k.
// Ours are the scaled synthetic-data analogues (DESIGN.md §4); the row
// *shape* to check is the ordering (gesture largest, SHD synapse-heavy for
// its size) and usable accuracy on every benchmark.
#include "bench_common.hpp"

using namespace snntest;

int main() {
  bench::print_header("Benchmark SNN characteristics", "Table I");

  util::TextTable table(
      {"", "NMNIST (synthetic)", "IBM-gesture (synthetic)", "SHD (synthetic)"});
  util::CsvWriter csv(bench::out_dir() + "/table1.csv");
  csv.write_row({"metric", "nmnist", "gesture", "shd"});

  std::vector<zoo::BenchmarkBundle> bundles;
  for (auto id : bench::kAllBenchmarks) bundles.push_back(bench::get_bundle(id));

  auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells = {name};
    std::vector<std::string> csv_row = {name};
    for (auto& b : bundles) {
      cells.push_back(getter(b));
      csv_row.push_back(cells.back());
    }
    table.add_row(cells);
    csv.write_row(csv_row);
  };

  row("Prediction accuracy",
      [](zoo::BenchmarkBundle& b) { return util::fmt_pct(b.test_accuracy); });
  row("# Output classes",
      [](zoo::BenchmarkBundle& b) { return std::to_string(b.network.output_size()); });
  row("# Neurons",
      [](zoo::BenchmarkBundle& b) { return util::fmt_count(b.network.total_neurons()); });
  row("# Synapses (weight sites)",
      [](zoo::BenchmarkBundle& b) { return util::fmt_count(b.network.total_weights()); });
  row("# Synapses (connections)",
      [](zoo::BenchmarkBundle& b) { return util::fmt_count(b.network.total_connections()); });
  row("Input spatial dimension",
      [](zoo::BenchmarkBundle& b) { return std::to_string(b.network.input_size()); });
  row("Input temporal dimension (steps)",
      [](zoo::BenchmarkBundle& b) { return std::to_string(b.steps_per_sample); });
  row("Size training set",
      [](zoo::BenchmarkBundle& b) { return std::to_string(b.train->size()); });
  row("Size testing set",
      [](zoo::BenchmarkBundle& b) { return std::to_string(b.test->size()); });

  std::printf("%s\n", table.render().c_str());
  std::printf("shape checks vs paper: gesture has the most neurons/synapses; SHD has the\n"
              "fewest neurons but synapse-heavy connectivity; all models reach usable\n"
              "accuracy. CSV: %s/table1.csv\n",
              bench::out_dir().c_str());
  return 0;
}
