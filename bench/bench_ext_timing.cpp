// Extension bench: parametric timing-variation faults and the role of L3.
//
// Sec. III lists neuron timing variations (threshold / leak / refractory
// perturbations) as a fault class, and Sec. IV-C1 introduces L3 (temporal
// diversity) specifically to expose them; the paper's Table II universe,
// however, only contains the extreme faults. This bench enumerates the
// *parametric* universe (threshold ±25%, leak ±20%, refractory +2) and the
// int8 bit-flip synapse faults, and measures their detection by stimuli
// generated with and without L3 — quantifying the paper's design rationale
// on the fault class it was built for.
#include "bench_common.hpp"

#include "fault/campaign.hpp"
#include "fault/coverage.hpp"
#include "util/timer.hpp"

using namespace snntest;

namespace {

struct Row {
  std::string config;
  double fc_threshold = 0.0;
  double fc_leak = 0.0;
  double fc_refractory = 0.0;
  double fc_bitflip = 0.0;
  double fc_all = 0.0;
};

}  // namespace

int main() {
  bench::print_header("Extension: parametric timing faults vs loss L3",
                      "Sec. III fault classes + Sec. IV-C1 rationale");

  auto bundle = bench::get_bundle(zoo::BenchmarkId::kShd);
  auto& net = bundle.network;

  // Parametric-only universe.
  fault::FaultUniverseConfig universe_cfg;
  universe_cfg.neuron_dead = false;
  universe_cfg.neuron_saturated = false;
  universe_cfg.synapse_dead = false;
  universe_cfg.synapse_saturated_positive = false;
  universe_cfg.synapse_saturated_negative = false;
  universe_cfg.neuron_threshold_variation = true;
  universe_cfg.neuron_leak_variation = true;
  universe_cfg.neuron_refractory_variation = true;
  universe_cfg.synapse_bitflip = true;
  universe_cfg.bitflip_bits = {6};
  auto universe = fault::enumerate_faults(net, universe_cfg);
  util::Rng rng(123);
  auto faults = universe.size() > 1600 ? fault::sample_faults(universe, 1600, rng) : universe;
  std::printf("parametric fault universe: %zu (simulating %zu)\n\n", universe.size(),
              faults.size());

  std::vector<Row> rows;
  for (const bool use_l3 : {true, false}) {
    std::printf("generating %s L3...\n", use_l3 ? "WITH" : "WITHOUT");
    auto cfg = bench::testgen_config(zoo::BenchmarkId::kShd);
    cfg.use_l3 = use_l3;
    core::TestGenerator generator(net, cfg);
    auto report = generator.generate();
    const auto outcome =
        fault::run_detection_campaign(net, report.stimulus.assemble(), faults);

    Row row;
    row.config = use_l3 ? "with L3 (temporal diversity)" : "without L3";
    size_t det[5] = {0}, tot[5] = {0};
    for (size_t j = 0; j < faults.size(); ++j) {
      int bucket = -1;
      switch (faults[j].kind) {
        case fault::FaultKind::kNeuronThresholdVariation: bucket = 0; break;
        case fault::FaultKind::kNeuronLeakVariation: bucket = 1; break;
        case fault::FaultKind::kNeuronRefractoryVariation: bucket = 2; break;
        case fault::FaultKind::kSynapseBitFlip: bucket = 3; break;
        default: break;
      }
      if (bucket >= 0) {
        ++tot[bucket];
        det[bucket] += outcome.results[j].detected;
      }
      ++tot[4];
      det[4] += outcome.results[j].detected;
    }
    auto frac = [&](int b) { return tot[b] ? static_cast<double>(det[b]) / tot[b] : 1.0; };
    row.fc_threshold = frac(0);
    row.fc_leak = frac(1);
    row.fc_refractory = frac(2);
    row.fc_bitflip = frac(3);
    row.fc_all = frac(4);
    rows.push_back(row);
  }

  util::TextTable table({"configuration", "FC threshold-var", "FC leak-var",
                         "FC refractory-var", "FC bitflip", "FC all parametric"});
  util::CsvWriter csv(bench::out_dir() + "/ext_timing.csv");
  csv.write_row({"config", "fc_threshold", "fc_leak", "fc_refractory", "fc_bitflip", "fc_all"});
  for (auto& r : rows) {
    table.add_row({r.config, util::fmt_pct(r.fc_threshold), util::fmt_pct(r.fc_leak),
                   util::fmt_pct(r.fc_refractory), util::fmt_pct(r.fc_bitflip),
                   util::fmt_pct(r.fc_all)});
    csv.write_row({r.config, util::CsvWriter::field(r.fc_threshold),
                   util::CsvWriter::field(r.fc_leak), util::CsvWriter::field(r.fc_refractory),
                   util::CsvWriter::field(r.fc_bitflip), util::CsvWriter::field(r.fc_all)});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("reading: parametric faults are much harder than the extreme ones — overall\n"
              "FC sits far below the ~100%% critical coverage of Table III, exactly why the\n"
              "paper singles this class out for dedicated losses. L3's per-bucket effect is\n"
              "noisy at CPU scale (both stimuli already near-toggle every neuron); the\n"
              "bucket-level spread in the CSV is the quantity to track when scaling up.\n"
              "CSV: %s/ext_timing.csv\n",
              bench::out_dir().c_str());
  return 0;
}
