// Differential campaign engine vs. naive re-simulate-everything, bucketed
// by fault depth.
//
// The engine's two structural shortcuts — golden-prefix reuse and
// convergence pruning (campaign/engine.hpp) — pay off more the deeper the
// faulty layer sits: a fault in the last layer of an L-layer network skips
// L-1 of its L layer forwards outright. This bench quantifies that per
// layer-depth bucket on a 4-layer network: wall-clock for the naive path
// (all shortcuts disabled, same scheduler) vs. the differential path, the
// fraction of layer forwards avoided, and a result-equality check so the
// speedup is never bought with wrong answers. The detect-only mode is
// reported on the mixed bucket as an extra row.
//
// A second section sweeps EngineConfig::lane_width over a dense same-layer
// synapse-fault population — the best case for fault-batched lanes, where
// every batch fills all its lanes — once per available SIMD backend
// (tensor/simd.hpp), and reports wall-clock speedup vs. the scalar-kernel
// width-1 engine plus mean lane occupancy, again gated on bit-identical
// results.
//
// A third section sweeps divergence-frontier simulation
// (EngineConfig::frontier, DESIGN.md §17) on/off per fault-depth bucket and
// lane width: the frontier engine recomputes only the fault-effect cone per
// frame, so its win scales with how little of the network a fault actually
// disturbs. Each cell reports wall-clock speedup vs. the same configuration
// with frontier off, the fraction of neuron updates actually recomputed,
// and an inline bit-identity check.
#include <algorithm>
#include <thread>

#include "bench_common.hpp"

#include "campaign/engine.hpp"
#include "obs/metrics.hpp"
#include "snn/dense_layer.hpp"
#include "snn/spike_train.hpp"
#include "tensor/simd.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace snntest;

namespace {

snn::Network make_deep_net(uint64_t seed = 123) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("campaign-bench");
  const size_t widths[] = {64, 128, 96, 48, 10};
  for (size_t l = 0; l + 1 < std::size(widths); ++l) {
    auto layer = std::make_unique<snn::DenseLayer>(widths[l], widths[l + 1], lif);
    layer->init_weights(rng, 1.3f);
    net.add_layer(std::move(layer));
  }
  return net;
}

std::vector<fault::FaultDescriptor> bucket_faults(const std::vector<fault::FaultDescriptor>& universe,
                                                  size_t layer, size_t max_count,
                                                  uint64_t seed) {
  std::vector<fault::FaultDescriptor> in_layer;
  for (const auto& f : universe) {
    if (campaign::fault_layer(f) == layer) in_layer.push_back(f);
  }
  util::Rng rng(seed);
  return fault::sample_faults(in_layer, max_count, rng);
}

bool results_identical(const std::vector<fault::DetectionResult>& a,
                       const std::vector<fault::DetectionResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t j = 0; j < a.size(); ++j) {
    if (a[j].detected != b[j].detected || a[j].output_l1 != b[j].output_l1 ||
        a[j].class_count_diff != b[j].class_count_diff) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli({{"json", ""}, {"trace-out", ""}, {"metrics-out", ""}},
                      "Differential campaign engine vs naive fault simulation.");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  bench::wire_observability(cli);
  const std::string json_path = cli.get("json");

  bench::print_header("Differential campaign engine vs naive fault simulation",
                      "the T_FS cost model of Sec. IV-B / Table III");

  auto net = make_deep_net();
  util::Rng stim_rng(7);
  const auto stimulus = snn::random_spike_train(48, net.input_size(), 0.4, stim_rng);
  auto universe = fault::enumerate_faults(net);
  constexpr size_t kPerBucket = 400;

  std::printf("network: %zu layers, %zu neurons, %zu weights (%zu-fault universe)\n",
              net.num_layers(), net.total_neurons(), net.total_weights(), universe.size());
  std::printf("stimulus: [%zu x %zu], bucket size: %zu faults\n\n", size_t{48}, net.input_size(),
              kPerBucket);

  campaign::EngineConfig naive_cfg;
  naive_cfg.prefix_reuse = false;
  naive_cfg.convergence_pruning = false;

  util::TextTable table(
      {"fault bucket", "faults", "naive", "differential", "speedup", "fwd saved", "identical"});
  util::CsvWriter csv(bench::out_dir() + "/campaign_engine.csv");
  csv.write_row({"bucket", "faults", "naive_seconds", "differential_seconds", "speedup",
                 "forward_savings", "identical"});

  std::vector<bench::JsonObject> json_rows;
  auto run_bucket = [&](const std::string& name, const std::vector<fault::FaultDescriptor>& faults) {
    const auto naive = campaign::run_campaign(net, stimulus, faults, naive_cfg);
    const auto diff = campaign::run_campaign(net, stimulus, faults, {});
    const bool identical = results_identical(naive.results, diff.results);
    const double speedup = diff.stats.elapsed_seconds > 0.0
                               ? naive.stats.elapsed_seconds / diff.stats.elapsed_seconds
                               : 0.0;
    table.add_row({name, std::to_string(faults.size()),
                   util::format_duration(naive.stats.elapsed_seconds),
                   util::format_duration(diff.stats.elapsed_seconds),
                   util::fmt_double(speedup, 2) + "x", util::fmt_pct(diff.stats.forward_savings()),
                   identical ? "yes" : "NO"});
    csv.write_row({name, util::CsvWriter::field(faults.size()),
                   util::CsvWriter::field(naive.stats.elapsed_seconds),
                   util::CsvWriter::field(diff.stats.elapsed_seconds),
                   util::CsvWriter::field(speedup),
                   util::CsvWriter::field(diff.stats.forward_savings()),
                   identical ? "1" : "0"});
    json_rows.push_back(bench::JsonObject()
                            .field("bucket", name)
                            .field("faults", faults.size())
                            .field("naive_seconds", naive.stats.elapsed_seconds)
                            .field("differential_seconds", diff.stats.elapsed_seconds)
                            .field("speedup", speedup)
                            .field("forward_savings", diff.stats.forward_savings())
                            .field("identical", identical));
    return identical;
  };

  bool all_identical = true;
  for (size_t l = 0; l < net.num_layers(); ++l) {
    const auto faults = bucket_faults(universe, l, kPerBucket, 1000 + l);
    all_identical &= run_bucket("layer " + std::to_string(l), faults);
  }
  util::Rng mix_rng(55);
  const auto mixed = fault::sample_faults(universe, kPerBucket, mix_rng);
  all_identical &= run_bucket("mixed", mixed);

  // Detect-only early exit on the mixed bucket (detection bits only).
  campaign::EngineConfig detect_cfg;
  detect_cfg.detect_only = true;
  const auto full = campaign::run_campaign(net, stimulus, mixed, {});
  const auto fast = campaign::run_campaign(net, stimulus, mixed, detect_cfg);
  bool detection_agrees = true;
  for (size_t j = 0; j < mixed.size(); ++j) {
    detection_agrees &= full.results[j].detected == fast.results[j].detected;
  }
  table.add_row({"mixed (detect-only)", std::to_string(mixed.size()),
                 util::format_duration(full.stats.elapsed_seconds),
                 util::format_duration(fast.stats.elapsed_seconds),
                 util::fmt_double(fast.stats.elapsed_seconds > 0.0
                                      ? full.stats.elapsed_seconds / fast.stats.elapsed_seconds
                                      : 0.0,
                                  2) +
                     "x",
                 util::fmt_pct(fast.stats.forward_savings()),
                 detection_agrees ? "yes*" : "NO"});

  std::printf("%s\n", table.render().c_str());
  std::printf("* detect-only compares detection bits only (L1 is a lower bound by design).\n");
  std::printf("naive = same engine and scheduler with prefix reuse + pruning disabled, so the\n"
              "speedup isolates the differential algorithm, not threading differences.\n");
  std::printf("results identical across all buckets: %s\n", all_identical ? "yes" : "NO");

  // Lane-width sweep: a dense synapse-fault population confined to layer 1
  // packs every batch full, so the sweep isolates the per-lane cost of the
  // shared forward (weight streaming amortized, serial double-add chains
  // broken across lanes) against the scalar one-fault-per-pass engine.
  // Swept per SIMD backend (tensor/simd.hpp): the reference is the scalar
  // kernels at width 1, and every (backend, width) cell must reproduce it
  // bit for bit.
  namespace simd = tensor::simd;
  const simd::Backend default_backend = simd::active_backend();
  const auto backends = simd::available_backends();
  const auto lane_pop = bucket_faults(universe, 1, kPerBucket, 2024);
  std::printf("\nlane-width sweep: %zu same-layer synapse faults, %u hardware threads, "
              "default backend %s\n",
              lane_pop.size(), std::thread::hardware_concurrency(),
              simd::backend_name(default_backend));
  util::TextTable lane_table(
      {"backend", "lane width", "seconds", "speedup vs scalar", "lane occupancy", "identical"});
  std::vector<bench::JsonObject> lane_rows;
  double scalar_seconds = 0.0;
  std::vector<fault::DetectionResult> scalar_results;
  for (const simd::Backend backend : backends) {
    simd::force_backend(backend);
    const char* backend_str = simd::backend_name(backend);
    for (const size_t width : {size_t{1}, size_t{2}, size_t{4}, size_t{8}, size_t{16}}) {
      campaign::EngineConfig cfg;
      cfg.lane_width = width;
      const auto run = campaign::run_campaign(net, stimulus, lane_pop, cfg);
      if (backend == simd::Backend::kScalar && width == 1) {
        scalar_seconds = run.stats.elapsed_seconds;
        scalar_results = run.results;
      }
      const bool identical = results_identical(run.results, scalar_results);
      all_identical &= identical;
      const double speedup =
          run.stats.elapsed_seconds > 0.0 ? scalar_seconds / run.stats.elapsed_seconds : 0.0;
      const double occupancy =
          run.stats.lane_batches > 0
              ? static_cast<double>(run.stats.lane_batched_faults) /
                    static_cast<double>(run.stats.lane_batches * width)
              : 0.0;
      lane_table.add_row({backend_str, std::to_string(width),
                          util::format_duration(run.stats.elapsed_seconds),
                          util::fmt_double(speedup, 2) + "x", util::fmt_double(occupancy, 3),
                          identical ? "yes" : "NO"});
      csv.write_row({std::string(backend_str) + "_lane_width_" + std::to_string(width),
                     util::CsvWriter::field(lane_pop.size()),
                     util::CsvWriter::field(scalar_seconds),
                     util::CsvWriter::field(run.stats.elapsed_seconds),
                     util::CsvWriter::field(speedup), util::CsvWriter::field(occupancy),
                     identical ? "1" : "0"});
      lane_rows.push_back(bench::JsonObject()
                              .field("backend", backend_str)
                              .field("lane_width", width)
                              .field("seconds", run.stats.elapsed_seconds)
                              .field("speedup_vs_scalar", speedup)
                              .field("lane_batches", run.stats.lane_batches)
                              .field("lane_occupancy", occupancy)
                              .field("lanes_retired_early", run.stats.lanes_retired_early)
                              .field("identical", identical));
    }
  }
  simd::force_backend(default_backend);
  std::printf("%s\n", lane_table.render().c_str());
  std::printf("results identical across all backends and lane widths: %s\n",
              all_identical ? "yes" : "NO");

  // Frontier sweep: frontier on vs off per fault-depth bucket × lane width.
  // The baseline of each cell is the identical configuration with frontier
  // disabled, so the speedup isolates the cone-tracking algorithm from lane
  // batching and threading.
  std::printf("\nfrontier sweep: divergence-frontier vs dense/lane kernels per bucket\n");
  util::TextTable frontier_table({"fault bucket", "lane width", "dense", "frontier", "speedup",
                                  "recomputed", "fallback frames", "identical"});
  std::vector<bench::JsonObject> frontier_rows;
  double frontier_best = 0.0, frontier_worst = 0.0;
  auto run_frontier_cell = [&](const std::string& name,
                               const std::vector<fault::FaultDescriptor>& faults, size_t width) {
    // Best-of-N per side, N sized so each side accumulates ~700 ms of
    // measurement: the small buckets finish in single-digit milliseconds,
    // where one host-contention hiccup swings a single run by 10%, so they
    // need far more repetitions than the half-second buckets to make the
    // minimum a stable contention-free estimate. Reps interleave the two
    // sides so slow drift (thermal, host load) cannot bias one of them.
    campaign::EngineConfig dense_cfg;
    dense_cfg.lane_width = width;
    campaign::EngineConfig frontier_cfg = dense_cfg;
    frontier_cfg.frontier = true;
    auto dense = campaign::run_campaign(net, stimulus, faults, dense_cfg);
    auto frontier = campaign::run_campaign(net, stimulus, faults, frontier_cfg);
    const int reps = static_cast<int>(
        std::clamp(0.7 / std::max(dense.stats.elapsed_seconds, 1e-4), 5.0, 31.0));
    for (int rep = 1; rep < reps; ++rep) {
      auto d = campaign::run_campaign(net, stimulus, faults, dense_cfg);
      if (d.stats.elapsed_seconds < dense.stats.elapsed_seconds) dense = std::move(d);
      auto f = campaign::run_campaign(net, stimulus, faults, frontier_cfg);
      if (f.stats.elapsed_seconds < frontier.stats.elapsed_seconds) frontier = std::move(f);
    }
    const bool identical =
        frontier.stats.frontier_active && results_identical(dense.results, frontier.results);
    all_identical &= identical;
    const double speedup = frontier.stats.elapsed_seconds > 0.0
                               ? dense.stats.elapsed_seconds / frontier.stats.elapsed_seconds
                               : 0.0;
    // The fraction of per-neuron updates the frontier actually recomputed
    // (the rest were copied from the golden trace).
    const double recomputed =
        frontier.stats.frontier_neuron_updates_dense > 0
            ? static_cast<double>(frontier.stats.frontier_neuron_updates) /
                  static_cast<double>(frontier.stats.frontier_neuron_updates_dense)
            : 0.0;
    if (frontier_best == 0.0 || speedup > frontier_best) frontier_best = speedup;
    if (frontier_worst == 0.0 || speedup < frontier_worst) frontier_worst = speedup;
    frontier_table.add_row({name, std::to_string(width),
                            util::format_duration(dense.stats.elapsed_seconds),
                            util::format_duration(frontier.stats.elapsed_seconds),
                            util::fmt_double(speedup, 2) + "x", util::fmt_pct(recomputed),
                            std::to_string(frontier.stats.frontier_fallback_frames),
                            identical ? "yes" : "NO"});
    csv.write_row({name + "_frontier_lane_width_" + std::to_string(width),
                   util::CsvWriter::field(faults.size()),
                   util::CsvWriter::field(dense.stats.elapsed_seconds),
                   util::CsvWriter::field(frontier.stats.elapsed_seconds),
                   util::CsvWriter::field(speedup), util::CsvWriter::field(recomputed),
                   identical ? "1" : "0"});
    frontier_rows.push_back(
        bench::JsonObject()
            .field("bucket", name)
            .field("lane_width", width)
            .field("dense_seconds", dense.stats.elapsed_seconds)
            .field("frontier_seconds", frontier.stats.elapsed_seconds)
            .field("speedup", speedup)
            .field("recompute_fraction", recomputed)
            .field("frontier_faults", frontier.stats.frontier_faults)
            .field("faults_simulated", frontier.stats.faults_simulated)
            .field("lane_batches", frontier.stats.lane_batches)
            .field("frontier_fallback_frames", frontier.stats.frontier_fallback_frames)
            .field("golden_cache_bytes", frontier.stats.golden_cache_bytes)
            .field("identical", identical));
  };
  // Larger buckets than the differential sweep: a production campaign runs
  // thousands of faults per stimulus, so the per-stimulus fixed costs the
  // frontier adds (golden state-trace recording, one probe batch per fault
  // layer) must be measured amortized the way they are in the field.
  constexpr size_t kFrontierPerBucket = 1000;
  for (size_t l = 0; l < net.num_layers(); ++l) {
    const auto faults = bucket_faults(universe, l, kFrontierPerBucket, 1000 + l);
    for (const size_t width : {size_t{1}, size_t{8}}) {
      run_frontier_cell("layer " + std::to_string(l), faults, width);
    }
  }
  util::Rng frontier_mix_rng(3000);
  const auto frontier_mixed = fault::sample_faults(universe, kFrontierPerBucket, frontier_mix_rng);
  for (const size_t width : {size_t{1}, size_t{8}}) {
    run_frontier_cell("mixed", frontier_mixed, width);
  }
  std::printf("%s\n", frontier_table.render().c_str());
  std::printf("frontier speedup range: %.2fx (worst) to %.2fx (best); identical everywhere: %s\n",
              frontier_worst, frontier_best, all_identical ? "yes" : "NO");
  std::printf("CSV: %s/campaign_engine.csv\n", bench::out_dir().c_str());

  // Per-fault sim-time percentiles from the obs histogram (interpolated from
  // bucket counts, obs::histogram_percentile): one telemetry-on run of the
  // mixed bucket, AFTER all timing rows so the instrumented pass cannot
  // perturb them. Telemetry never feeds back into results (§11).
  const bool telemetry_was_on = obs::telemetry_enabled();
  obs::set_telemetry_enabled(true);
  campaign::run_campaign(net, stimulus, mixed, {});
  obs::set_telemetry_enabled(telemetry_was_on);
  const auto metrics = obs::Registry::instance().snapshot();
  double sim_p50 = 0.0, sim_p95 = 0.0, sim_p99 = 0.0;
  uint64_t sim_count = 0;
  if (const auto it = metrics.histograms.find("campaign/fault_sim_seconds");
      it != metrics.histograms.end() && it->second.count > 0) {
    sim_p50 = it->second.percentile(0.50);
    sim_p95 = it->second.percentile(0.95);
    sim_p99 = it->second.percentile(0.99);
    sim_count = it->second.count;
  }
  std::printf("per-fault sim time (instrumented mixed-bucket run, %llu faults): "
              "p50 %.3gs, p95 %.3gs, p99 %.3gs\n",
              static_cast<unsigned long long>(sim_count), sim_p50, sim_p95, sim_p99);

  if (!json_path.empty()) {
    bench::JsonObject report;
    report.field("benchmark", "campaign_engine")
        .object("fault_sim_seconds_percentiles",
                bench::JsonObject()
                    .field("count", static_cast<size_t>(sim_count))
                    .field("p50", sim_p50)
                    .field("p95", sim_p95)
                    .field("p99", sim_p99))
        .object("config", bench::JsonObject()
                              .field("layers", net.num_layers())
                              .field("timesteps", size_t{48})
                              .field("faults_per_bucket", kPerBucket)
                              .field("universe_size", universe.size())
                              .field("simd_backend_default",
                                     std::string(simd::backend_name(default_backend)))
                              .field("hardware_threads",
                                     size_t{std::thread::hardware_concurrency()}))
        .array("results", json_rows)
        .array("lane_sweep", lane_rows)
        .array("frontier_sweep", frontier_rows)
        .field("frontier_best_speedup", frontier_best)
        .field("frontier_worst_speedup", frontier_worst)
        .field("all_identical", all_identical);
    bench::write_json_report(json_path, report);
  }
  return all_identical ? 0 : 1;
}
