// Multi-restart test generation: parallel restarts + sparse kernels vs the
// single-thread dense baseline.
//
// Both cells run the SAME TestGenConfig seed and restart count, so by the
// determinism contract (DESIGN.md §10) they must produce byte-identical
// stimuli — threads only change who computes each restart, and the kernel
// mode only changes which arithmetic is skipped as exact ±0.0. The bench
// re-verifies that identity before reporting a speedup, and exits nonzero
// if it ever breaks. `--json <path>` writes a machine-readable report.
#include "bench_common.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "core/test_generator.hpp"
#include "snn/dense_layer.hpp"
#include "snn/network.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace snntest;

namespace {

snn::Network make_mlp(uint64_t seed = 91) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("testgen-bench-mlp");
  const size_t widths[] = {128, 256, 192, 10};
  for (size_t l = 0; l + 1 < std::size(widths); ++l) {
    auto layer = std::make_unique<snn::DenseLayer>(widths[l], widths[l + 1], lif);
    layer->init_weights(rng, 1.3f);
    net.add_layer(std::move(layer));
  }
  return net;
}

core::TestGenConfig base_config(size_t restarts) {
  core::TestGenConfig cfg;
  cfg.seed = 0xBE9Cull;
  cfg.restarts = restarts;
  cfg.steps_stage1 = 80;
  cfg.t_in_min = 8;  // fixed duration: the auto-search is identical serial
                     // work in both cells and would only dilute the ratio
  cfg.max_iterations = 4;
  cfg.input_init_bias = -1.5;  // start near the paper's 5-15% activity regime
  cfg.t_limit_seconds = 1e9;   // never let the wall clock cut a cell short
  return cfg;
}

struct CellResult {
  double seconds = 0.0;
  tensor::Tensor stimulus;
  double activated_fraction = 0.0;
};

CellResult run_cell(const snn::Network& net, size_t restarts, size_t threads,
                    snn::KernelMode mode) {
  snn::Network worker(net);
  core::TestGenConfig cfg = base_config(restarts);
  cfg.num_threads = threads;
  cfg.kernel_mode = mode;
  core::TestGenerator gen(worker, cfg);
  util::Timer timer;
  auto report = gen.generate();
  CellResult out;
  out.seconds = timer.seconds();
  out.stimulus = report.stimulus.assemble();
  out.activated_fraction = report.activated_fraction();
  return out;
}

bool stimuli_identical(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return a.numel() == 0 ||
         std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli({{"json", ""},
                       {"threads", "4"},
                       {"restarts", "4"},
                       {"trace-out", ""},
                       {"metrics-out", ""}},
                      "Multi-restart test generation: parallel+sparse vs 1-thread dense.");
  std::string json_path;
  size_t threads = 1;
  size_t restarts = 1;
  try {
    if (!cli.parse(argc, argv)) return 0;
    bench::wire_observability(cli);
    json_path = cli.get("json");
    threads = std::max<size_t>(1, cli.get_size("threads"));
    restarts = std::max<size_t>(1, cli.get_size("restarts"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  bench::print_header("Multi-restart test generation: parallel restarts + sparse kernels",
                      "stage optimization of Sec. IV-C under the DESIGN.md §10 contract");

  const snn::Network net = make_mlp();
  const CellResult baseline = run_cell(net, restarts, 1, snn::KernelMode::kDense);
  const CellResult optimized = run_cell(net, restarts, threads, snn::KernelMode::kAuto);
  const bool identical = stimuli_identical(baseline.stimulus, optimized.stimulus);
  const double speedup =
      optimized.seconds > 0.0 ? baseline.seconds / optimized.seconds : 0.0;

  util::TextTable table({"cell", "threads", "kernels", "wall", "coverage"});
  table.add_row({"baseline", "1", "dense", util::format_duration(baseline.seconds),
                 util::fmt_pct(baseline.activated_fraction)});
  table.add_row({"optimized", std::to_string(threads), "auto",
                 util::format_duration(optimized.seconds),
                 util::fmt_pct(optimized.activated_fraction)});
  std::printf("%s\n", table.render().c_str());
  std::printf("restarts per iteration: %zu; MLP 128-256-192-10; same seed in both cells.\n",
              restarts);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("speedup: %.2fx; stimuli byte-identical: %s\n", speedup,
              identical ? "yes" : "NO");
  if (hw != 0 && hw < threads) {
    std::printf("note: only %u hardware thread(s) available — the restart fan-out cannot\n"
                "scale here, so the speedup above is the sparse-kernel share alone.\n",
                hw);
  }

  util::CsvWriter csv(bench::out_dir() + "/testgen_restarts.csv");
  csv.write_row({"restarts", "threads", "baseline_seconds", "optimized_seconds", "speedup",
                 "identical"});
  csv.write_row({util::CsvWriter::field(restarts), util::CsvWriter::field(threads),
                 util::CsvWriter::field(baseline.seconds),
                 util::CsvWriter::field(optimized.seconds), util::CsvWriter::field(speedup),
                 identical ? "1" : "0"});

  if (!json_path.empty()) {
    bench::JsonObject report;
    report.field("benchmark", "testgen_restarts")
        .object("config", bench::JsonObject()
                              .field("restarts", restarts)
                              .field("threads", threads)
                              .field("hardware_threads", static_cast<size_t>(hw))
                              .field("topology", "mlp-128-256-192-10"))
        .field("baseline_seconds", baseline.seconds)
        .field("optimized_seconds", optimized.seconds)
        .field("speedup", speedup)
        .field("identical", identical);
    bench::write_json_report(json_path, report);
  }
  return identical ? 0 : 1;
}
