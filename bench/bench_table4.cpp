// Table IV — comparison with previous works on the NMNIST benchmark.
//
// Reimplements the three baseline families the paper compares against:
//   [18] greedy dataset compaction, [20] random inputs, [17] adversarial
// examples — all greedy + fault-simulation-in-the-loop — and contrasts them
// with the proposed optimization on: test generation cost (number of fault
// simulations / wall-clock), test duration in samples, and coverage of the
// *critical* faults (the paper's primary target; benign coverage is a
// bonus, Sec. III). Shape to match: the proposed test is several times
// shorter for comparable critical coverage, and its generation cost does
// not scale with the fault list.
#include "bench_common.hpp"

#include "baseline/adversarial_testgen.hpp"
#include "baseline/greedy_dataset.hpp"
#include "baseline/random_testgen.hpp"
#include "fault/campaign.hpp"
#include "fault/classifier.hpp"
#include "fault/coverage.hpp"
#include "util/timer.hpp"

using namespace snntest;

namespace {

struct Table4Row {
  std::string method;
  std::string stimulus_type;
  double gen_seconds = 0.0;
  size_t fault_sims = 0;
  double duration_samples = 0.0;
  double fc_critical = 0.0;
  double fc_overall = 0.0;
};

void score(Table4Row& row, const std::vector<fault::FaultDescriptor>& faults,
           const std::vector<fault::DetectionResult>& results,
           const std::vector<fault::FaultClassification>& labels) {
  size_t cd = 0, ct = 0, ad = 0;
  for (size_t j = 0; j < faults.size(); ++j) {
    if (labels[j].critical) {
      ++ct;
      cd += results[j].detected;
    }
    ad += results[j].detected;
  }
  row.fc_critical = ct ? static_cast<double>(cd) / ct : 1.0;
  row.fc_overall = faults.empty() ? 1.0 : static_cast<double>(ad) / faults.size();
}

}  // namespace

int main() {
  bench::print_header("Comparison with previous works (NMNIST)", "Table IV");

  auto bundle = bench::get_bundle(zoo::BenchmarkId::kNmnist);
  auto& net = bundle.network;
  const size_t kFaultSample = 600;
  auto faults = bench::sampled_faults(net, kFaultSample);
  std::printf("shared fault list: %zu sampled faults (universe %zu)\n", faults.size(),
              fault::enumerate_faults(net).size());

  // Criticality labels shared by all methods (Sec. III criterion).
  fault::ClassifierConfig cc;
  cc.max_samples = 32;
  const auto classes = fault::classify_faults(net, faults, *bundle.test, cc);
  std::printf("critical faults in the sample: %zu / %zu\n\n", classes.critical_count(),
              faults.size());

  std::vector<Table4Row> rows;

  // --- proposed method ---
  {
    std::printf("[1/4] proposed optimized test generation...\n");
    core::TestGenerator generator(net, bench::testgen_config(zoo::BenchmarkId::kNmnist));
    util::Timer timer;
    auto report = generator.generate();
    Table4Row row;
    row.method = "This work (optimized)";
    row.stimulus_type = "Optimized";
    row.gen_seconds = timer.seconds();
    row.fault_sims = 0;  // fault simulation is circumvented during generation
    row.duration_samples = report.stimulus.duration_in_samples(bundle.steps_per_sample);
    const auto outcome =
        fault::run_detection_campaign(net, report.stimulus.assemble(), faults);
    score(row, faults, outcome.results, classes.labels);
    rows.push_back(row);
  }

  const baseline::GreedyConfig greedy_common;
  auto run_baseline = [&](const baseline::BaselineResult& result, const char* type) {
    Table4Row row;
    row.method = result.method;
    row.stimulus_type = type;
    row.gen_seconds = result.generation_seconds;
    row.fault_sims = result.fault_sims;
    row.duration_samples = result.duration_in_samples(bundle.steps_per_sample);
    const auto outcome = fault::run_detection_campaign(net, result.assemble(), faults);
    score(row, faults, outcome.results, classes.labels);
    rows.push_back(row);
  };

  {
    std::printf("[2/4] greedy dataset compaction [18]...\n");
    baseline::GreedyDatasetConfig cfg;
    cfg.candidate_count = 40;
    cfg.greedy = greedy_common;
    run_baseline(baseline::greedy_dataset_testgen(net, faults, *bundle.test, cfg), "Dataset");
  }
  {
    std::printf("[3/4] random test inputs [20]...\n");
    baseline::RandomTestgenConfig cfg;
    cfg.candidate_count = 40;
    cfg.greedy = greedy_common;
    run_baseline(baseline::random_testgen(net, faults, *bundle.test, cfg), "Random");
  }
  {
    std::printf("[4/4] adversarial test patterns [17]...\n");
    baseline::AdversarialConfig cfg;
    cfg.candidate_count = 24;
    cfg.ascent_steps = 30;
    cfg.greedy = greedy_common;
    run_baseline(baseline::adversarial_testgen(net, faults, *bundle.test, cfg), "Adversarial");
  }

  util::TextTable table({"Method", "Stimulus", "Gen. time", "Fault sims during gen.",
                         "Test duration (samples)", "FC critical", "FC all"});
  util::CsvWriter csv(bench::out_dir() + "/table4.csv");
  csv.write_row({"method", "stimulus", "gen_seconds", "fault_sims", "duration_samples",
                 "fc_critical", "fc_overall"});
  for (auto& r : rows) {
    table.add_row({r.method, r.stimulus_type, util::format_duration(r.gen_seconds),
                   util::fmt_count(r.fault_sims), util::fmt_double(r.duration_samples, 2),
                   util::fmt_pct(r.fc_critical), util::fmt_pct(r.fc_overall)});
    csv.write_row({r.method, r.stimulus_type, util::CsvWriter::field(r.gen_seconds),
                   util::CsvWriter::field(r.fault_sims),
                   util::CsvWriter::field(r.duration_samples),
                   util::CsvWriter::field(r.fc_critical),
                   util::CsvWriter::field(r.fc_overall)});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf(
      "shape checks vs paper: the optimized test is several times shorter than every\n"
      "baseline at comparable critical-fault coverage; baselines burn candidate x\n"
      "fault simulations during generation (the cost that explodes with model size)\n"
      "while the proposed method performs none. CSV: %s/table4.csv\n",
      bench::out_dir().c_str());
  return 0;
}
