// Table III — test generation efficiency metrics (the headline result).
//
// For every benchmark: run the proposed algorithm, then verify with one
// fault-simulation campaign (Eq. (3)) and the criticality labels.
// Paper rows to match in *shape*: generation runtime bounded and scaling
// mildly with model size; test duration of a few sample-equivalents;
// high neuron-activation percentage; near-perfect critical-fault coverage
// with visibly lower benign coverage; small worst-case accuracy drop for
// test escapes.
#include "bench_common.hpp"

#include "fault/campaign.hpp"
#include "fault/classifier.hpp"
#include "fault/coverage.hpp"
#include "util/timer.hpp"

using namespace snntest;

namespace {

struct Table3Row {
  double gen_seconds = 0.0;
  double duration_samples = 0.0;
  double duration_time_samples = 0.0;
  size_t duration_steps = 0;
  size_t chunks = 0;
  double activated = 0.0;
  fault::CoverageReport coverage;
  size_t faults_simulated = 0;
  size_t universe_size = 0;
};

Table3Row run_benchmark(zoo::BenchmarkId id, size_t max_faults, size_t classify_samples) {
  auto bundle = bench::get_bundle(id);
  auto& net = bundle.network;

  // --- generation (timed fresh, then cached for the figure benches) ---
  core::TestGenerator generator(net, bench::testgen_config(id));
  util::Timer timer;
  auto report = generator.generate();
  Table3Row row;
  row.gen_seconds = timer.seconds();
  report.stimulus.save(bench::stimulus_cache_path(id));

  row.duration_samples = report.stimulus.duration_in_samples(bundle.steps_per_sample);
  row.duration_time_samples = report.stimulus.total_duration_in_samples(bundle.steps_per_sample);
  row.duration_steps = report.stimulus.total_steps();
  row.chunks = report.stimulus.num_chunks();
  row.activated = report.activated_fraction();

  // --- verification campaign on a sampled fault list ---
  auto universe = fault::enumerate_faults(net);
  row.universe_size = universe.size();
  auto faults = bench::sampled_faults(net, max_faults);
  row.faults_simulated = faults.size();
  const auto stimulus = report.stimulus.assemble();
  const auto detection = fault::run_detection_campaign(net, stimulus, faults);
  fault::ClassifierConfig cc;
  cc.max_samples = classify_samples;
  const auto classes = fault::classify_faults(net, faults, *bundle.test, cc);
  row.coverage = fault::build_coverage_report(faults, detection.results, classes.labels);
  return row;
}

}  // namespace

int main() {
  bench::print_header("Test generation efficiency metrics", "Table III");

  const size_t kFaults[3] = {700, 500, 900};
  const size_t kSamples[3] = {24, 24, 24};

  std::vector<Table3Row> rows;
  for (size_t i = 0; i < bench::kAllBenchmarks.size(); ++i) {
    std::printf("running proposed algorithm on %s...\n",
                zoo::benchmark_name(bench::kAllBenchmarks[i]));
    rows.push_back(run_benchmark(bench::kAllBenchmarks[i], kFaults[i], kSamples[i]));
  }

  util::TextTable table({"Metric", "NMNIST", "IBM-gesture", "SHD"});
  util::CsvWriter csv(bench::out_dir() + "/table3.csv");
  csv.write_row({"metric", "nmnist", "gesture", "shd"});
  auto emit = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells = {name};
    std::vector<std::string> csv_row = {name};
    for (auto& r : rows) {
      cells.push_back(getter(r));
      csv_row.push_back(cells.back());
    }
    table.add_row(cells);
    csv.write_row(csv_row);
  };

  emit("Test generation runtime",
       [](Table3Row& r) { return util::format_duration(r.gen_seconds); });
  emit("Test duration (samples)",
       [](Table3Row& r) { return util::fmt_double(r.duration_samples, 2); });
  emit("Test duration (time, sample units incl. sleeps)",
       [](Table3Row& r) { return util::fmt_double(r.duration_time_samples, 2); });
  emit("Test duration (timesteps)",
       [](Table3Row& r) { return util::fmt_count(r.duration_steps); });
  emit("# optimized input chunks", [](Table3Row& r) { return util::fmt_count(r.chunks); });
  emit("Activated neurons", [](Table3Row& r) { return util::fmt_pct(r.activated); });
  auto pct_or_na = [](const fault::CoverageCell& cell) {
    return cell.total == 0 ? std::string("n/a (0 sampled)")
                           : util::fmt_pct(cell.coverage()) + " (" +
                                 std::to_string(cell.detected) + "/" +
                                 std::to_string(cell.total) + ")";
  };
  emit("FC critical neuron faults",
       [&](Table3Row& r) { return pct_or_na(r.coverage.critical_neuron); });
  emit("FC critical synapse faults",
       [&](Table3Row& r) { return pct_or_na(r.coverage.critical_synapse); });
  emit("FC benign neuron faults",
       [&](Table3Row& r) { return pct_or_na(r.coverage.benign_neuron); });
  emit("FC benign synapse faults",
       [&](Table3Row& r) { return pct_or_na(r.coverage.benign_synapse); });
  emit("Max accuracy drop, undetected critical neuron faults", [](Table3Row& r) {
    return util::fmt_pct(r.coverage.max_escape_accuracy_drop_neuron);
  });
  emit("Max accuracy drop, undetected critical synapse faults", [](Table3Row& r) {
    return util::fmt_pct(r.coverage.max_escape_accuracy_drop_synapse);
  });
  emit("Faults simulated (sampled / universe)", [](Table3Row& r) {
    return util::fmt_count(r.faults_simulated) + " / " + util::fmt_count(r.universe_size);
  });

  std::printf("\n%s\n", table.render().c_str());
  std::printf("shape checks vs paper: near-perfect critical coverage with benign coverage\n"
              "well below it; test duration of only a few sample-equivalents; generation\n"
              "runtime grows mildly with model size and is independent of the fault-model\n"
              "size (contrast the extrapolated labelling times in bench_table2).\n"
              "CSV: %s/table3.csv\n",
              bench::out_dir().c_str());
  return 0;
}
