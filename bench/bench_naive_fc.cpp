// The Sec. IV-B complexity argument, quantified.
//
// The straightforward formulation (Eq. (5): maximize FC directly) costs
// O(M * T_FS) because every candidate needs a fault-simulation campaign;
// the paper's reformulation costs O(M + T_FS). We run both on the same
// small network and fault list and report: per-iteration cost, total fault
// simulations, wall-clock, and the coverage each attains — then extrapolate
// the naive cost to the benchmark-sized universes of Table II, reproducing
// the "several days" infeasibility claim.
#include "bench_common.hpp"

#include "core/naive_fc_optimizer.hpp"
#include "fault/campaign.hpp"
#include "fault/coverage.hpp"
#include "snn/dense_layer.hpp"
#include "util/timer.hpp"

using namespace snntest;

int main() {
  bench::print_header("Naive FC-in-the-loop optimization vs proposed reformulation",
                      "Sec. IV-B complexity argument");

  // Small network so the naive method is even runnable.
  util::Rng rng(77);
  snn::LifParams lif;
  snn::Network net("naive-vs-proposed");
  auto l1 = std::make_unique<snn::DenseLayer>(24, 32, lif);
  l1->init_weights(rng, 1.2f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(32, 8, lif);
  l2->init_weights(rng, 1.2f);
  net.add_layer(std::move(l2));
  auto faults = fault::enumerate_faults(net);
  std::printf("network: %zu neurons, %zu weights -> %zu faults\n\n", net.total_neurons(),
              net.total_weights(), faults.size());

  // --- naive: FC as the fitness (Eq. (5)) ---
  core::NaiveFcConfig naive_cfg;
  naive_cfg.iterations = 60;
  naive_cfg.num_steps = 16;
  std::printf("running naive FC hill-climb (%zu iterations = %zu campaigns)...\n",
              naive_cfg.iterations, naive_cfg.iterations);
  const auto naive = core::naive_fc_optimize(net, faults, naive_cfg);

  // --- proposed: loss-function reformulation (Eq. (6)) ---
  core::TestGenConfig cfg;
  cfg.steps_stage1 = 200;
  cfg.max_iterations = 6;
  cfg.verbose = false;
  util::Timer timer;
  core::TestGenerator generator(net, cfg);
  auto report = generator.generate();
  const double proposed_gen_seconds = timer.seconds();
  const auto verify = fault::run_detection_campaign(net, report.stimulus.assemble(), faults);
  const double proposed_fc = fault::fault_coverage(verify.results);

  util::TextTable table({"method", "iterations", "fault sims", "gen time", "final FC"});
  util::CsvWriter csv(bench::out_dir() + "/naive_fc.csv");
  csv.write_row({"method", "iterations", "fault_sims", "gen_seconds", "fc"});
  table.add_row({"naive FC-in-the-loop (Eq. 5)", std::to_string(naive_cfg.iterations),
                 util::fmt_count(naive.fault_simulations),
                 util::format_duration(naive.seconds), util::fmt_pct(naive.best_coverage)});
  csv.write_row({"naive", util::CsvWriter::field(naive_cfg.iterations),
                 util::CsvWriter::field(naive.fault_simulations),
                 util::CsvWriter::field(naive.seconds),
                 util::CsvWriter::field(naive.best_coverage)});
  const size_t proposed_steps =
      cfg.steps_stage1 * report.stimulus.num_chunks() * 3 / 2;  // stage1 + stage2
  table.add_row({"proposed (Eq. 6, losses L1-L5)", std::to_string(proposed_steps),
                 "0 (+1 final verify)", util::format_duration(proposed_gen_seconds),
                 util::fmt_pct(proposed_fc)});
  csv.write_row({"proposed", util::CsvWriter::field(proposed_steps), "0",
                 util::CsvWriter::field(proposed_gen_seconds),
                 util::CsvWriter::field(proposed_fc)});
  std::printf("\n%s\n", table.render().c_str());

  // --- extrapolation to benchmark scale (Table II's infeasibility row) ---
  const double per_sim_seconds =
      naive.fault_simulations ? naive.seconds / static_cast<double>(naive.fault_simulations)
                              : 0.0;
  std::printf("naive per-fault-simulation cost here: %.3f ms\n", per_sim_seconds * 1e3);
  std::printf("extrapolated naive cost for 2000 iterations on the gesture universe\n"
              "(349,886 faults, ~40x slower inference): %s — the paper's 'days' regime.\n",
              util::format_duration(per_sim_seconds * 40.0 * 349886.0 * 2000.0).c_str());
  std::printf("proposed cost on the same universe stays O(M + T_FS): generation is\n"
              "independent of the fault count (Table III measures it directly).\n"
              "CSV: %s/naive_fc.csv\n",
              bench::out_dir().c_str());
  return 0;
}
