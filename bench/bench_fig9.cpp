// Fig. 9 — per-class output spike-count difference distribution for
// detected faults.
//
// For every detected fault the campaign records, per output class, the
// signed spike-count difference w.r.t. the fault-free response. The paper
// shows that while a difference of one suffices for detection, the
// optimized test drives most faults to large output corruption (heavy
// distribution tails). We print the aggregate histogram and per-class
// summary statistics, and dump the raw per-fault differences to CSV.
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "fault/campaign.hpp"

using namespace snntest;

int main() {
  bench::print_header("Per-class spike-count difference of detected faults", "Fig. 9");

  auto bundle = bench::get_bundle(zoo::BenchmarkId::kNmnist);
  auto& net = bundle.network;
  auto stimulus = bench::get_stimulus(zoo::BenchmarkId::kNmnist, net);
  auto faults = bench::sampled_faults(net, 600);

  std::printf("simulating %zu sampled faults against the optimized stimulus...\n\n",
              faults.size());
  const auto outcome =
      fault::run_detection_campaign(net, stimulus.report.stimulus.assemble(), faults);

  // Histogram of |count difference| over (detected fault, class) pairs with
  // logarithmic-ish bins mirroring the paper's broken x-axis.
  const std::vector<std::pair<long, long>> bins = {
      {1, 1}, {2, 3}, {4, 7}, {8, 15}, {16, 31}, {32, 63}, {64, 127}, {128, 1 << 20}};
  std::vector<size_t> histogram(bins.size(), 0);
  size_t detected = 0;
  double max_abs = 0.0;
  std::vector<double> per_class_mean(net.output_size(), 0.0);
  std::vector<size_t> per_class_nonzero(net.output_size(), 0);

  util::CsvWriter csv(bench::out_dir() + "/fig9_diffs.csv");
  csv.write_row({"fault", "class", "count_diff"});
  for (size_t j = 0; j < faults.size(); ++j) {
    const auto& r = outcome.results[j];
    if (!r.detected) continue;
    ++detected;
    for (size_t c = 0; c < r.class_count_diff.size(); ++c) {
      const long d = r.class_count_diff[c];
      if (d != 0) {
        csv.write_row({faults[j].to_string(), util::CsvWriter::field(c),
                       util::CsvWriter::field(static_cast<int>(d))});
        per_class_mean[c] += std::fabs(static_cast<double>(d));
        per_class_nonzero[c] += 1;
        max_abs = std::max(max_abs, std::fabs(static_cast<double>(d)));
        for (size_t b = 0; b < bins.size(); ++b) {
          if (std::labs(d) >= bins[b].first && std::labs(d) <= bins[b].second) {
            ++histogram[b];
            break;
          }
        }
      }
    }
  }

  std::printf("detected faults: %zu / %zu\n\n", detected, faults.size());
  util::TextTable hist_table({"|count diff| bin", "pairs", "bar"});
  size_t total_pairs = 0;
  for (size_t b = 0; b < bins.size(); ++b) total_pairs += histogram[b];
  for (size_t b = 0; b < bins.size(); ++b) {
    const std::string label = bins[b].second > 1000
                                  ? ">= " + std::to_string(bins[b].first)
                                  : std::to_string(bins[b].first) + "-" +
                                        std::to_string(bins[b].second);
    const size_t bar_len = total_pairs == 0 ? 0 : histogram[b] * 50 / std::max<size_t>(1, total_pairs);
    hist_table.add_row({label, util::fmt_count(histogram[b]), std::string(bar_len, '#')});
  }
  std::printf("%s\n", hist_table.render().c_str());

  util::TextTable class_table({"class", "mean |diff| (when hit)", "faults hitting it"});
  for (size_t c = 0; c < per_class_mean.size(); ++c) {
    const double mean =
        per_class_nonzero[c] == 0 ? 0.0 : per_class_mean[c] / per_class_nonzero[c];
    class_table.add_row({std::to_string(c), util::fmt_double(mean, 1),
                         util::fmt_count(per_class_nonzero[c])});
  }
  std::printf("%s\n", class_table.render().c_str());
  std::printf("max |count diff| observed: %.0f\n\n", max_abs);
  std::printf("shape checks vs paper: detection only needs |diff| >= 1, but the optimized\n"
              "test spreads fault effects widely — the distribution has long tails with\n"
              "corruptions of tens-to-hundreds of output spikes. CSV: %s/fig9_diffs.csv\n",
              bench::out_dir().c_str());
  return 0;
}
