// Table II — fault simulation results: critical vs benign fault counts per
// benchmark and the cost of the full labelling campaign.
//
// Paper values (full universe, full dataset, A100): e.g. NMNIST 2922
// critical + 658 benign neuron faults, 96.2k + 89.5k synapse faults,
// ~5 days. We label a statistical sample of the universe against a dataset
// subset and report (a) sampled counts, (b) the extrapolated full-universe
// split, and (c) measured + extrapolated campaign time — reproducing the
// paper's point that exhaustive labelling is prohibitively slow while the
// *fractions* are stable under sampling.
#include "bench_common.hpp"

#include "fault/classifier.hpp"
#include "util/timer.hpp"

using namespace snntest;

namespace {

struct Table2Row {
  size_t sampled_neuron_critical = 0, sampled_neuron_benign = 0;
  size_t sampled_synapse_critical = 0, sampled_synapse_benign = 0;
  size_t universe_neuron = 0, universe_synapse = 0;
  size_t sampled = 0;
  double seconds = 0.0;
  double extrapolated_seconds = 0.0;
};

Table2Row run_benchmark(zoo::BenchmarkId id, size_t max_faults, size_t classify_samples) {
  auto bundle = bench::get_bundle(id);
  auto& net = bundle.network;
  auto universe = fault::enumerate_faults(net);
  auto faults = bench::sampled_faults(net, max_faults);

  fault::ClassifierConfig cc;
  cc.max_samples = classify_samples;
  const auto outcome = fault::classify_faults(net, faults, *bundle.test, cc);

  Table2Row row;
  row.sampled = faults.size();
  for (size_t j = 0; j < faults.size(); ++j) {
    const bool neuron = faults[j].targets_neuron();
    const bool critical = outcome.labels[j].critical;
    if (neuron) {
      (critical ? row.sampled_neuron_critical : row.sampled_neuron_benign)++;
    } else {
      (critical ? row.sampled_synapse_critical : row.sampled_synapse_benign)++;
    }
  }
  row.universe_neuron = fault::count_neuron_faults(universe);
  row.universe_synapse = fault::count_synapse_faults(universe);
  row.seconds = outcome.elapsed_seconds;
  row.extrapolated_seconds = faults.empty()
                                 ? 0.0
                                 : outcome.elapsed_seconds *
                                       static_cast<double>(universe.size()) /
                                       static_cast<double>(faults.size());
  return row;
}

std::string extrapolate(size_t sampled_part, size_t sampled_total, size_t universe_total) {
  if (sampled_total == 0) return "0";
  const double fraction =
      static_cast<double>(sampled_part) / static_cast<double>(sampled_total);
  return util::fmt_count(static_cast<size_t>(fraction * static_cast<double>(universe_total)));
}

}  // namespace

int main() {
  bench::print_header("Fault simulation results (critical/benign labelling)", "Table II");

  // Sampling budgets per benchmark (single core): faults x dataset samples.
  const size_t kFaults[3] = {800, 500, 800};
  const size_t kSamples[3] = {24, 24, 24};

  std::vector<Table2Row> rows;
  for (size_t i = 0; i < bench::kAllBenchmarks.size(); ++i) {
    std::printf("labelling %s (%zu sampled faults x %zu samples)...\n",
                zoo::benchmark_name(bench::kAllBenchmarks[i]), kFaults[i], kSamples[i]);
    rows.push_back(run_benchmark(bench::kAllBenchmarks[i], kFaults[i], kSamples[i]));
  }

  util::TextTable table({"", "NMNIST", "IBM-gesture", "SHD"});
  util::CsvWriter csv(bench::out_dir() + "/table2.csv");
  csv.write_row({"metric", "nmnist", "gesture", "shd"});
  auto emit = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells = {name};
    std::vector<std::string> csv_row = {name};
    for (auto& r : rows) {
      cells.push_back(getter(r));
      csv_row.push_back(cells.back());
    }
    table.add_row(cells);
    csv.write_row(csv_row);
  };

  emit("# Critical neuron faults (extrapolated)", [](Table2Row& r) {
    const size_t neuron_sampled = r.sampled_neuron_critical + r.sampled_neuron_benign;
    return extrapolate(r.sampled_neuron_critical, neuron_sampled, r.universe_neuron);
  });
  emit("# Benign neuron faults (extrapolated)", [](Table2Row& r) {
    const size_t neuron_sampled = r.sampled_neuron_critical + r.sampled_neuron_benign;
    return extrapolate(r.sampled_neuron_benign, neuron_sampled, r.universe_neuron);
  });
  emit("# Critical synapse faults (extrapolated)", [](Table2Row& r) {
    const size_t syn_sampled = r.sampled_synapse_critical + r.sampled_synapse_benign;
    return extrapolate(r.sampled_synapse_critical, syn_sampled, r.universe_synapse);
  });
  emit("# Benign synapse faults (extrapolated)", [](Table2Row& r) {
    const size_t syn_sampled = r.sampled_synapse_critical + r.sampled_synapse_benign;
    return extrapolate(r.sampled_synapse_benign, syn_sampled, r.universe_synapse);
  });
  emit("Sampled faults labelled", [](Table2Row& r) { return util::fmt_count(r.sampled); });
  emit("Universe size", [](Table2Row& r) {
    return util::fmt_count(r.universe_neuron + r.universe_synapse);
  });
  emit("Labelling time (sampled)",
       [](Table2Row& r) { return util::format_duration(r.seconds); });
  emit("Labelling time (extrapolated full universe, full criterion)",
       [](Table2Row& r) { return util::format_duration(r.extrapolated_seconds); });

  std::printf("\n%s\n", table.render().c_str());
  std::printf("shape checks vs paper: a large benign population exists alongside the\n"
              "critical one; extrapolated exhaustive labelling is orders of magnitude\n"
              "slower than the proposed generation (compare bench_table3), which is the\n"
              "motivation for circumventing fault simulation. CSV: %s/table2.csv\n",
              bench::out_dir().c_str());
  return 0;
}
