// Coverage-database bench: dictionary build cost, warm-rerun identity, and
// minimum-time schedule quality on a trained benchmark model.
//
// Three phases, each gated on an invariant the subsystem promises:
//
//  1. cold build — run an incremental campaign per stimulus into a fresh
//     dictionary, save it, reload it (a full disk round trip through the
//     CRC-framed format).
//  2. warm re-run — repeat every campaign against the reloaded dictionary.
//     Every fault×stimulus pair must be served from the dictionary
//     (pairs_reused == total pairs, zero simulations) and every
//     DetectionResult must be bit-identical to the cold run.
//  3. minimize — the lazy-greedy schedule must reach 100% of detectable
//     coverage in strictly less total frames than replaying all stimuli.
//
// The bench exits nonzero if any invariant fails, and `--json` writes the
// machine-readable verdicts CI asserts on.
#include "bench_common.hpp"

#include "coverage/incremental.hpp"
#include "coverage/minimize.hpp"
#include "util/timer.hpp"

using namespace snntest;

int main(int argc, char** argv) {
  util::CliParser cli({{"benchmark", "nmnist"},
                       {"stimuli", "8"},
                       {"fault-sample", "600"},
                       {"threads", "0"},
                       {"lane-width", "8"},
                       {"train-budget", "1.0"},
                       {"json", ""},
                       {"trace-out", ""},
                       {"metrics-out", ""}},
                      "Coverage dictionary: build, warm-rerun identity, minimized schedule.");
  size_t num_stimuli = 0;
  size_t fault_sample = 0;
  campaign::EngineConfig engine;
  double train_budget = 1.0;
  try {
    if (!cli.parse(argc, argv)) return 0;
    train_budget = cli.get_double("train-budget");
    num_stimuli = cli.get_size("stimuli");
    fault_sample = cli.get_size("fault-sample");
    engine.num_threads = cli.get_size("threads");
    engine.lane_width = cli.get_size("lane-width");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  bench::wire_observability(cli);
  bench::print_header("Coverage database: fault dictionary + minimum-time schedule",
                      "the paper's minimum-time objective over a persistent detection matrix");

  const auto id = zoo::parse_benchmark(cli.get("benchmark"));
  zoo::ZooOptions zoo_opts;
  zoo_opts.train_budget = train_budget;
  auto bundle = zoo::load_or_train(id, zoo_opts);
  auto& net = bundle.network;

  auto faults = bench::sampled_faults(net, fault_sample);
  std::printf("model %s: %zu faults sampled, %zu dataset stimuli\n\n", net.name().c_str(),
              faults.size(), num_stimuli);

  std::vector<tensor::Tensor> stimuli;
  for (size_t i = 0; i < num_stimuli; ++i) stimuli.push_back(bundle.test->get(i).input);

  // --- phase 1: cold build ------------------------------------------------
  coverage::FaultDictionary dict = coverage::make_dictionary(net, faults);
  std::vector<std::vector<fault::DetectionResult>> cold_results;
  util::Timer cold_timer;
  for (size_t i = 0; i < stimuli.size(); ++i) {
    coverage::IncrementalConfig config;
    config.engine = engine;
    config.stimulus_name = "sample" + std::to_string(i);
    auto out = coverage::run_incremental_campaign(net, stimuli[i], faults, dict, config);
    cold_results.push_back(std::move(out.campaign.results));
  }
  const double cold_seconds = cold_timer.seconds();

  const std::string dict_path = bench::out_dir() + "/BENCH_coverage_dict.snfd";
  dict.save(dict_path);
  coverage::FaultDictionary::LoadStats load_stats;
  auto reloaded = coverage::FaultDictionary::load(dict_path, &load_stats);
  const bool roundtrip_ok = reloaded.has_value() && load_stats.records_skipped == 0 &&
                            reloaded->num_records() == dict.num_records();
  std::printf("cold build: %zu pairs in %.2fs -> %s (%zu records, round trip %s)\n",
              dict.num_records(), cold_seconds, dict_path.c_str(),
              reloaded ? reloaded->num_records() : 0, roundtrip_ok ? "ok" : "FAILED");
  if (!roundtrip_ok) return 1;

  // --- phase 2: warm re-run against the reloaded dictionary ---------------
  const size_t total_pairs = stimuli.size() * faults.size();
  size_t pairs_reused = 0, warm_simulated = 0;
  bool warm_identical = true;
  util::Timer warm_timer;
  for (size_t i = 0; i < stimuli.size(); ++i) {
    coverage::IncrementalConfig config;
    config.engine = engine;
    config.stimulus_name = "sample" + std::to_string(i);
    const auto out =
        coverage::run_incremental_campaign(net, stimuli[i], faults, *reloaded, config);
    pairs_reused += out.coverage.pairs_reused;
    warm_simulated += out.campaign.stats.faults_simulated;
    for (size_t j = 0; j < faults.size(); ++j) {
      warm_identical &= coverage::results_identical(cold_results[i][j], out.campaign.results[j]);
    }
  }
  const double warm_seconds = warm_timer.seconds();
  const bool warm_zero_sim = pairs_reused == total_pairs && warm_simulated == 0;
  std::printf("warm re-run: %zu/%zu pairs reused, %zu simulated, results %s, %.2fs"
              " (%.1fx faster than cold)\n",
              pairs_reused, total_pairs, warm_simulated,
              warm_identical ? "bit-identical" : "DIVERGED", warm_seconds,
              warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0);

  // --- phase 3: minimum-time schedule -------------------------------------
  const auto schedule = coverage::minimize_schedule(dict);
  const bool strictly_less = schedule.scheduled_frames < schedule.all_stimuli_frames;
  util::TextTable table({"#", "stimulus", "new faults", "coverage", "cum. frames"});
  for (size_t i = 0; i < schedule.steps.size(); ++i) {
    const auto& step = schedule.steps[i];
    table.add_row({std::to_string(i), dict.stimulus(step.stimulus).name,
                   std::to_string(step.new_faults),
                   util::fmt_pct(schedule.detectable_faults == 0
                                     ? 1.0
                                     : static_cast<double>(step.cumulative_detected) /
                                           static_cast<double>(schedule.detectable_faults)),
                   std::to_string(step.cumulative_frames)});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("schedule: %zu/%zu stimuli, %llu/%llu frames, coverage %s of detectable (%zu/%zu"
              " faults), complete=%s, strictly shorter=%s\n",
              schedule.steps.size(), dict.num_stimuli(),
              static_cast<unsigned long long>(schedule.scheduled_frames),
              static_cast<unsigned long long>(schedule.all_stimuli_frames),
              util::fmt_pct(schedule.coverage_of_detectable()).c_str(), schedule.covered_faults,
              schedule.detectable_faults, schedule.complete() ? "yes" : "NO",
              strictly_less ? "yes" : "NO");

  const bool ok = roundtrip_ok && warm_identical && warm_zero_sim && schedule.complete() &&
                  strictly_less;

  if (!cli.get("json").empty()) {
    bench::JsonObject report;
    report.field("benchmark", cli.get("benchmark"))
        .field("num_faults", faults.size())
        .field("num_stimuli", stimuli.size())
        .field("total_pairs", total_pairs)
        .field("cold_seconds", cold_seconds)
        .field("warm_seconds", warm_seconds)
        .field("pairs_reused", pairs_reused)
        .field("warm_simulated", warm_simulated)
        .field("warm_zero_simulations", warm_zero_sim)
        .field("warm_identical", warm_identical)
        .field("roundtrip_ok", roundtrip_ok)
        .field("detectable_faults", schedule.detectable_faults)
        .field("covered_faults", schedule.covered_faults)
        .field("scheduled_frames", static_cast<size_t>(schedule.scheduled_frames))
        .field("all_stimuli_frames", static_cast<size_t>(schedule.all_stimuli_frames))
        .field("schedule_complete", schedule.complete())
        .field("strictly_less_time", strictly_less)
        .field("ok", ok);
    bench::write_json_report(cli.get("json"), report);
  }

  if (!ok) {
    std::fprintf(stderr, "bench_coverage: INVARIANT FAILED (see table above)\n");
    return 1;
  }
  std::printf("\nall invariants hold: warm re-run is lookup-only and bit-identical; the\n"
              "minimized schedule reaches full detectable coverage in less test time.\n");
  return 0;
}
