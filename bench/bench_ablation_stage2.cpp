// Ablation B (ours): effect of stage 2 (spike sparsification under constant
// O^L, Sec. IV-C2).
//
// Stage 2 exists to keep fault effects from drowning in refractory periods
// on their way to the output. We compare with/without stage 2 on SHD:
// hidden spike counts of the stimulus response, fault coverage, and the
// mean output corruption magnitude of detected faults (propagation
// strength).
#include "bench_common.hpp"

#include "fault/campaign.hpp"
#include "fault/coverage.hpp"
#include "snn/spike_train.hpp"
#include "util/timer.hpp"

using namespace snntest;

namespace {

struct StageRow {
  std::string name;
  double activated = 0.0;
  size_t hidden_spikes = 0;
  double coverage = 0.0;
  double mean_corruption = 0.0;
  double gen_seconds = 0.0;
};

}  // namespace

int main() {
  bench::print_header("Ablation: stage 2 (fault-effect propagation)", "Sec. IV-C2 design choice");

  auto bundle = bench::get_bundle(zoo::BenchmarkId::kShd);
  auto& net = bundle.network;
  auto faults = bench::sampled_faults(net, 1200);

  std::vector<StageRow> rows;
  for (const bool with_stage2 : {true, false}) {
    std::printf("running %s stage 2...\n", with_stage2 ? "WITH" : "WITHOUT");
    auto cfg = bench::testgen_config(zoo::BenchmarkId::kShd);
    cfg.enable_stage2 = with_stage2;
    core::TestGenerator generator(net, cfg);
    util::Timer timer;
    auto report = generator.generate();
    StageRow row;
    row.name = with_stage2 ? "stage 1 + stage 2" : "stage 1 only";
    row.gen_seconds = timer.seconds();
    row.activated = report.activated_fraction();
    const auto stimulus = report.stimulus.assemble();
    // hidden spiking activity of the fault-free response
    const auto fwd = net.forward(stimulus);
    for (size_t l = 0; l + 1 < fwd.layer_outputs.size(); ++l) {
      row.hidden_spikes += fwd.layer_outputs[l].count_nonzero();
    }
    const auto outcome = fault::run_detection_campaign(net, stimulus, faults);
    row.coverage = fault::fault_coverage(outcome.results);
    double corruption = 0.0;
    size_t detected = 0;
    for (const auto& r : outcome.results) {
      if (r.detected) {
        corruption += r.output_l1;
        ++detected;
      }
    }
    row.mean_corruption = detected ? corruption / detected : 0.0;
    rows.push_back(row);
  }

  util::TextTable table({"configuration", "activated", "hidden spikes", "FC",
                         "mean |output corruption|", "gen time"});
  util::CsvWriter csv(bench::out_dir() + "/ablation_stage2.csv");
  csv.write_row({"config", "activated", "hidden_spikes", "fc", "mean_corruption", "gen_seconds"});
  for (auto& r : rows) {
    table.add_row({r.name, util::fmt_pct(r.activated), util::fmt_count(r.hidden_spikes),
                   util::fmt_pct(r.coverage), util::fmt_double(r.mean_corruption, 1),
                   util::format_duration(r.gen_seconds)});
    csv.write_row({r.name, util::CsvWriter::field(r.activated),
                   util::CsvWriter::field(r.hidden_spikes), util::CsvWriter::field(r.coverage),
                   util::CsvWriter::field(r.mean_corruption),
                   util::CsvWriter::field(r.gen_seconds)});
  }
  std::printf("\n%s\n", table.render().c_str());
  std::printf("expected shape: stage 2 reduces hidden spike counts (its Sec. IV-C2 job)\n"
              "without losing neuron activation. Note the compactness/coverage trade-off\n"
              "visible at CPU scale: fewer spikes also means fewer benign margin flips, so\n"
              "overall FC can dip slightly while the critical coverage (bench_table3, which\n"
              "runs WITH stage 2) stays near-perfect.\n"
              "CSV: %s/ablation_stage2.csv\n",
              bench::out_dir().c_str());
  return 0;
}
