#include "coverage/incremental.hpp"

#include "campaign/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace snntest::coverage {

uint64_t stimulus_fingerprint(const tensor::Tensor& stimulus) {
  return campaign::hash_stimulus(stimulus, util::kFnvOffsetBasis);
}

FaultDictionary make_dictionary(const snn::Network& net,
                                const std::vector<fault::FaultDescriptor>& faults,
                                double detection_threshold, bool detect_only) {
  FaultDictionary dict;
  dict.model_fingerprint = campaign::model_fingerprint(net);
  dict.universe_fingerprint = campaign::hash_fault_list(faults, util::kFnvOffsetBasis);
  dict.num_faults = faults.size();
  dict.detection_threshold = detection_threshold;
  dict.detect_only = detect_only;
  return dict;
}

bool dictionary_matches(const FaultDictionary& dict, const snn::Network& net,
                        const std::vector<fault::FaultDescriptor>& faults,
                        double detection_threshold, bool detect_only) {
  const FaultDictionary expected =
      make_dictionary(net, faults, detection_threshold, detect_only);
  return dict.compatible_with(expected);
}

IncrementalResult run_incremental_campaign(const snn::Network& net,
                                           const tensor::Tensor& stimulus,
                                           const std::vector<fault::FaultDescriptor>& faults,
                                           FaultDictionary& dict,
                                           const IncrementalConfig& config) {
  OBS_SPAN("coverage/incremental_campaign");
  IncrementalResult out;
  campaign::EngineConfig engine = config.engine;

  if (!dictionary_matches(dict, net, faults, engine.detection_threshold, engine.detect_only)) {
    SNNTEST_LOG_WARN(
        "run_incremental_campaign: dictionary does not match the campaign inputs "
        "(model retrained? different fault universe or detection settings?); running cold "
        "and leaving the dictionary untouched");
    out.coverage.dictionary_rejected = true;
    obs::Registry::instance().counter("coverage/dictionaries_rejected").add(1);
    out.campaign = campaign::run_campaign(net, stimulus, faults, engine);
    return out;
  }

  StimulusEntry entry;
  entry.fingerprint = stimulus_fingerprint(stimulus);
  entry.duration_frames = stimulus.shape().dim(0);
  const size_t s = [&] {
    if (auto existing = dict.find_stimulus(entry.fingerprint)) return *existing;
    entry.name = config.stimulus_name.empty()
                     ? "stimulus" + std::to_string(dict.num_stimuli())
                     : config.stimulus_name;
    if (config.store_stimulus_data) entry.data = stimulus;
    return dict.add_stimulus(std::move(entry));
  }();
  out.coverage.stimulus_index = s;

  engine.result_cache = [&dict, s](size_t fault_index, fault::DetectionResult& result) {
    const fault::DetectionResult* known = dict.lookup(s, fault_index);
    if (known == nullptr) return false;
    result = *known;
    return true;
  };

  out.campaign = campaign::run_campaign(net, stimulus, faults, engine);
  out.coverage.pairs_reused = out.campaign.stats.pairs_reused;

  // Record only completed campaigns: a cancelled run leaves
  // default-constructed placeholders that must never enter the dictionary.
  if (config.record && out.campaign.completed) {
    for (size_t j = 0; j < faults.size(); ++j) {
      if (dict.has(s, j)) continue;
      dict.record(s, j, out.campaign.results[j]);
      ++out.coverage.pairs_recorded;
    }
  }

  obs::Registry& reg = obs::Registry::instance();
  reg.counter("coverage/pairs_reused").add(out.coverage.pairs_reused);
  reg.counter("coverage/pairs_recorded").add(out.coverage.pairs_recorded);
  return out;
}

}  // namespace snntest::coverage
