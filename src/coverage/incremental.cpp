#include "coverage/incremental.hpp"

#include <stdexcept>

#include "campaign/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace snntest::coverage {

uint64_t stimulus_fingerprint(const tensor::Tensor& stimulus) {
  return campaign::hash_stimulus(stimulus, util::kFnvOffsetBasis);
}

FaultDictionary make_dictionary(const snn::Network& net,
                                const std::vector<fault::FaultDescriptor>& faults,
                                double detection_threshold, bool detect_only) {
  FaultDictionary dict;
  dict.model_fingerprint = campaign::model_fingerprint(net);
  dict.universe_fingerprint = campaign::hash_fault_list(faults, util::kFnvOffsetBasis);
  dict.num_faults = faults.size();
  dict.detection_threshold = detection_threshold;
  dict.detect_only = detect_only;
  return dict;
}

bool dictionary_matches(const FaultDictionary& dict, const snn::Network& net,
                        const std::vector<fault::FaultDescriptor>& faults,
                        double detection_threshold, bool detect_only) {
  const FaultDictionary expected =
      make_dictionary(net, faults, detection_threshold, detect_only);
  return dict.compatible_with(expected);
}

IncrementalResult run_incremental_campaign(const snn::Network& net,
                                           const tensor::Tensor& stimulus,
                                           const std::vector<fault::FaultDescriptor>& faults,
                                           FaultDictionary& dict,
                                           const IncrementalConfig& config) {
  OBS_SPAN("coverage/incremental_campaign");
  IncrementalResult out;
  campaign::EngineConfig engine = config.engine;

  const std::vector<char>* drop = config.drop_faults;
  // Local record of which pairs were served as drop placeholders this run:
  // they carry no simulation outcome and must never enter the dictionary.
  std::vector<char> dropped(drop == nullptr ? 0 : faults.size(), 0);
  auto try_drop = [drop, &dropped](size_t fault_index, fault::DetectionResult& result) {
    if (drop == nullptr || fault_index >= drop->size() || !(*drop)[fault_index]) return false;
    dropped[fault_index] = 1;
    result = fault::DetectionResult{};
    return true;
  };
  auto count_dropped = [&dropped] {
    size_t n = 0;
    for (char d : dropped) n += d != 0;
    return n;
  };

  if (!dictionary_matches(dict, net, faults, engine.detection_threshold, engine.detect_only)) {
    SNNTEST_LOG_WARN(
        "run_incremental_campaign: dictionary does not match the campaign inputs "
        "(model retrained? different fault universe or detection settings?); running cold "
        "and leaving the dictionary untouched");
    out.coverage.dictionary_rejected = true;
    obs::Registry::instance().counter("coverage/dictionaries_rejected").add(1);
    if (drop != nullptr) engine.result_cache = try_drop;
    out.campaign = campaign::run_campaign(net, stimulus, faults, engine);
    out.coverage.pairs_reused = out.campaign.stats.pairs_reused;
    out.coverage.pairs_dropped = count_dropped();
    return out;
  }

  StimulusEntry entry;
  entry.fingerprint = stimulus_fingerprint(stimulus);
  entry.duration_frames = stimulus.shape().dim(0);
  const size_t s = [&] {
    if (auto existing = dict.find_stimulus(entry.fingerprint)) return *existing;
    entry.name = config.stimulus_name.empty()
                     ? "stimulus" + std::to_string(dict.num_stimuli())
                     : config.stimulus_name;
    if (config.store_stimulus_data) entry.data = stimulus;
    return dict.add_stimulus(std::move(entry));
  }();
  out.coverage.stimulus_index = s;

  engine.result_cache = [&dict, s, &try_drop](size_t fault_index,
                                              fault::DetectionResult& result) {
    // A stored result wins over dropping: real data beats a placeholder.
    const fault::DetectionResult* known = dict.lookup(s, fault_index);
    if (known != nullptr) {
      result = *known;
      return true;
    }
    return try_drop(fault_index, result);
  };

  out.campaign = campaign::run_campaign(net, stimulus, faults, engine);
  out.coverage.pairs_reused = out.campaign.stats.pairs_reused;
  out.coverage.pairs_dropped = count_dropped();

  // Record only completed campaigns: a cancelled run leaves
  // default-constructed placeholders that must never enter the dictionary.
  // Dropped pairs are placeholders too, completed or not.
  if (config.record && out.campaign.completed) {
    for (size_t j = 0; j < faults.size(); ++j) {
      if (dict.has(s, j)) continue;
      if (j < dropped.size() && dropped[j]) continue;
      dict.record(s, j, out.campaign.results[j]);
      ++out.coverage.pairs_recorded;
    }
  }

  obs::Registry& reg = obs::Registry::instance();
  reg.counter("coverage/pairs_reused").add(out.coverage.pairs_reused);
  reg.counter("coverage/pairs_recorded").add(out.coverage.pairs_recorded);
  reg.counter("coverage/pairs_dropped").add(out.coverage.pairs_dropped);
  return out;
}

ScheduleReplayResult replay_schedule(const snn::Network& net, const FaultDictionary& schedule,
                                     const std::vector<fault::FaultDescriptor>& faults,
                                     const ScheduleReplayConfig& config) {
  OBS_SPAN("coverage/replay_schedule");
  if (!dictionary_matches(schedule, net, faults, config.engine.detection_threshold,
                          config.engine.detect_only)) {
    throw std::invalid_argument(
        "replay_schedule: schedule dictionary does not match (network, faults, detection "
        "settings)");
  }
  ScheduleReplayResult out;
  out.detected.assign(faults.size(), 0);
  out.steps.reserve(schedule.num_stimuli());

  for (size_t s = 0; s < schedule.num_stimuli(); ++s) {
    const StimulusEntry& entry = schedule.stimulus(s);
    if (!entry.has_data()) {
      throw std::invalid_argument("replay_schedule: stimulus '" + entry.name +
                                  "' has no embedded spike train (rebuild the schedule with "
                                  "store_stimulus_data)");
    }
    // A fresh, matching dictionary per step: nothing to reuse, nothing
    // recorded — every result-cache hit is a drop_faults skip, so the
    // engine's pairs_reused is exactly the dropped-fault count.
    FaultDictionary scratch = make_dictionary(net, faults, config.engine.detection_threshold,
                                              config.engine.detect_only);
    IncrementalConfig ic;
    ic.engine = config.engine;
    ic.stimulus_name = entry.name;
    ic.store_stimulus_data = false;
    ic.record = false;
    ic.drop_faults = &out.detected;
    const IncrementalResult step_run =
        run_incremental_campaign(net, entry.data, faults, scratch, ic);

    ScheduleReplayStep step;
    step.stimulus = s;
    step.faults_dropped = step_run.coverage.pairs_dropped;
    step.faults_simulated = faults.size() - step.faults_dropped;
    step.frames = entry.duration_frames;
    for (size_t j = 0; j < faults.size(); ++j) {
      if (out.detected[j] || !step_run.campaign.results[j].detected) continue;
      out.detected[j] = 1;
      ++step.newly_detected;
      ++out.total_detected;
    }
    step.cumulative_detected = out.total_detected;
    out.total_frames += step.frames;
    step.cumulative_frames = out.total_frames;
    out.steps.push_back(step);
  }
  return out;
}

}  // namespace snntest::coverage
