// Incremental campaigns: the differential engine backed by a persistent
// fault dictionary.
//
// run_incremental_campaign wraps campaign::run_campaign with the coverage
// dictionary wired into EngineConfig::result_cache: every fault×stimulus
// pair the dictionary already holds is served as a lookup instead of a
// simulation (EngineStats::pairs_reused), and every pair simulated fresh is
// recorded back. A warm re-run of an identical campaign therefore performs
// zero fault simulations and reproduces each DetectionResult bit-identically
// — the dictionary stores the exact structs the engine emitted.
//
// Identity checks mirror the checkpoint-fingerprint convention: the
// dictionary is keyed by model (topology + trained parameters), fault
// universe and detection settings. A mismatched dictionary — retrained
// model, different fault list, different threshold — is rejected softly:
// the campaign runs cold, nothing is recorded, and the rejection is
// surfaced in IncrementalStats::dictionary_rejected plus a warning, so a
// stale dictionary can never corrupt fresh results.
#pragma once

#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "coverage/fault_dictionary.hpp"

namespace snntest::coverage {

struct IncrementalConfig {
  /// Base engine configuration (threads, lane width, pruning, kernel mode,
  /// detection threshold, detect_only, ...). result_cache must be empty —
  /// the incremental wrapper owns that hook.
  campaign::EngineConfig engine;
  /// Label for a newly registered stimulus (default "stimulus<N>").
  std::string stimulus_name;
  /// Embed the stimulus spike train in the dictionary so minimized
  /// schedules are replayable from the file alone.
  bool store_stimulus_data = true;
  /// Record freshly simulated pairs back into the dictionary.
  bool record = true;
  /// Optional per-fault drop mask (length = fault count; borrowed, must
  /// outlive the call). Faults with a non-zero entry are skipped without
  /// simulation — the schedule-replay shortcut for faults an earlier
  /// stimulus already detected. A dropped pair gets a default-constructed
  /// placeholder result, counts toward EngineStats::pairs_reused (it is
  /// served through the same result-cache hook as a dictionary hit) and is
  /// never recorded into the dictionary. A stored dictionary result wins
  /// over dropping (real data beats a placeholder).
  const std::vector<char>* drop_faults = nullptr;
};

struct IncrementalStats {
  /// The stimulus' index in the dictionary (existing or newly added);
  /// meaningless when dictionary_rejected.
  size_t stimulus_index = 0;
  size_t pairs_reused = 0;
  size_t pairs_recorded = 0;
  /// Pairs skipped via IncrementalConfig::drop_faults (subset of
  /// pairs_reused; their results are placeholders).
  size_t pairs_dropped = 0;
  /// The dictionary did not match (model/universe/settings); the campaign
  /// ran cold and the dictionary was left untouched.
  bool dictionary_rejected = false;
};

struct IncrementalResult {
  campaign::CampaignResult campaign;
  IncrementalStats coverage;
};

/// The dictionary-identity fingerprint of one stimulus (hash_stimulus from
/// the canonical FNV offset basis).
uint64_t stimulus_fingerprint(const tensor::Tensor& stimulus);

/// An empty dictionary bound to (net, faults, detection settings).
FaultDictionary make_dictionary(const snn::Network& net,
                                const std::vector<fault::FaultDescriptor>& faults,
                                double detection_threshold = 0.0, bool detect_only = false);

/// Does `dict` describe exactly this (model, fault list, settings)?
bool dictionary_matches(const FaultDictionary& dict, const snn::Network& net,
                        const std::vector<fault::FaultDescriptor>& faults,
                        double detection_threshold, bool detect_only);

/// Run the campaign, serving known pairs from `dict` and recording new ones
/// into it. Results are positionally parallel to `faults` and bit-identical
/// to a cold campaign::run_campaign with the same EngineConfig. Recording
/// is skipped for cancelled (partial) campaigns — default-constructed
/// placeholder results must never enter the dictionary.
IncrementalResult run_incremental_campaign(const snn::Network& net,
                                           const tensor::Tensor& stimulus,
                                           const std::vector<fault::FaultDescriptor>& faults,
                                           FaultDictionary& dict,
                                           const IncrementalConfig& config = {});

// --- minimized-schedule replay ---------------------------------------------

struct ScheduleReplayConfig {
  /// Engine configuration for each step's campaign (threads, lane width,
  /// frontier, detection settings, ...). result_cache must be empty.
  campaign::EngineConfig engine;
};

/// One replayed stimulus of the schedule, in execution order.
struct ScheduleReplayStep {
  size_t stimulus = 0;  ///< index into the schedule dictionary's table
  /// Faults actually simulated vs. dropped because an earlier step already
  /// detected them (the minimum-time shortcut: a fault needs one detection,
  /// not one per stimulus).
  size_t faults_simulated = 0;
  size_t faults_dropped = 0;
  size_t newly_detected = 0;
  size_t cumulative_detected = 0;
  uint64_t frames = 0;
  uint64_t cumulative_frames = 0;
};

struct ScheduleReplayResult {
  std::vector<ScheduleReplayStep> steps;
  /// detected[f] != 0 iff some replayed stimulus detected fault f.
  std::vector<char> detected;
  size_t total_detected = 0;
  uint64_t total_frames = 0;
};

/// Execute a minimized schedule (schedule_as_dictionary output, or any
/// dictionary with embedded stimulus data) against a live network: replay
/// the stimuli in file order, and at each step skip — via
/// IncrementalConfig::drop_faults — every fault an earlier step already
/// detected. This is the in-field test-execution loop: total simulated work
/// shrinks monotonically as coverage accumulates. Throws
/// std::invalid_argument when `schedule` does not match (net, faults,
/// detection settings) or a scheduled stimulus has no embedded data.
ScheduleReplayResult replay_schedule(const snn::Network& net, const FaultDictionary& schedule,
                                     const std::vector<fault::FaultDescriptor>& faults,
                                     const ScheduleReplayConfig& config = {});

}  // namespace snntest::coverage
