// Incremental campaigns: the differential engine backed by a persistent
// fault dictionary.
//
// run_incremental_campaign wraps campaign::run_campaign with the coverage
// dictionary wired into EngineConfig::result_cache: every fault×stimulus
// pair the dictionary already holds is served as a lookup instead of a
// simulation (EngineStats::pairs_reused), and every pair simulated fresh is
// recorded back. A warm re-run of an identical campaign therefore performs
// zero fault simulations and reproduces each DetectionResult bit-identically
// — the dictionary stores the exact structs the engine emitted.
//
// Identity checks mirror the checkpoint-fingerprint convention: the
// dictionary is keyed by model (topology + trained parameters), fault
// universe and detection settings. A mismatched dictionary — retrained
// model, different fault list, different threshold — is rejected softly:
// the campaign runs cold, nothing is recorded, and the rejection is
// surfaced in IncrementalStats::dictionary_rejected plus a warning, so a
// stale dictionary can never corrupt fresh results.
#pragma once

#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "coverage/fault_dictionary.hpp"

namespace snntest::coverage {

struct IncrementalConfig {
  /// Base engine configuration (threads, lane width, pruning, kernel mode,
  /// detection threshold, detect_only, ...). result_cache must be empty —
  /// the incremental wrapper owns that hook.
  campaign::EngineConfig engine;
  /// Label for a newly registered stimulus (default "stimulus<N>").
  std::string stimulus_name;
  /// Embed the stimulus spike train in the dictionary so minimized
  /// schedules are replayable from the file alone.
  bool store_stimulus_data = true;
  /// Record freshly simulated pairs back into the dictionary.
  bool record = true;
};

struct IncrementalStats {
  /// The stimulus' index in the dictionary (existing or newly added);
  /// meaningless when dictionary_rejected.
  size_t stimulus_index = 0;
  size_t pairs_reused = 0;
  size_t pairs_recorded = 0;
  /// The dictionary did not match (model/universe/settings); the campaign
  /// ran cold and the dictionary was left untouched.
  bool dictionary_rejected = false;
};

struct IncrementalResult {
  campaign::CampaignResult campaign;
  IncrementalStats coverage;
};

/// The dictionary-identity fingerprint of one stimulus (hash_stimulus from
/// the canonical FNV offset basis).
uint64_t stimulus_fingerprint(const tensor::Tensor& stimulus);

/// An empty dictionary bound to (net, faults, detection settings).
FaultDictionary make_dictionary(const snn::Network& net,
                                const std::vector<fault::FaultDescriptor>& faults,
                                double detection_threshold = 0.0, bool detect_only = false);

/// Does `dict` describe exactly this (model, fault list, settings)?
bool dictionary_matches(const FaultDictionary& dict, const snn::Network& net,
                        const std::vector<fault::FaultDescriptor>& faults,
                        double detection_threshold, bool detect_only);

/// Run the campaign, serving known pairs from `dict` and recording new ones
/// into it. Results are positionally parallel to `faults` and bit-identical
/// to a cold campaign::run_campaign with the same EngineConfig. Recording
/// is skipped for cancelled (partial) campaigns — default-constructed
/// placeholder results must never enter the dictionary.
IncrementalResult run_incremental_campaign(const snn::Network& net,
                                           const tensor::Tensor& stimulus,
                                           const std::vector<fault::FaultDescriptor>& faults,
                                           FaultDictionary& dict,
                                           const IncrementalConfig& config = {});

}  // namespace snntest::coverage
