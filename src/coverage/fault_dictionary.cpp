#include "coverage/fault_dictionary.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/serialize.hpp"
#include "util/subprocess.hpp"

namespace snntest::coverage {
namespace {

/// Upper bounds that make a corrupted length field fail fast instead of
/// driving a gigabyte allocation: no real stimulus table or record comes
/// anywhere near these.
constexpr uint64_t kMaxBlockBytes = 1ull << 30;
constexpr uint32_t kMaxRecordBytes = 1u << 24;

/// A length-prefixed, CRC-guarded byte block: the header and the stimulus
/// table both use this framing so a corrupted byte anywhere in them is
/// detected before any field is trusted.
void write_block(std::ostream& os, const std::string& blob) {
  util::write_u64(os, blob.size());
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  util::write_u32(os, util::crc32(blob.data(), blob.size()));
}

/// Returns false on truncation, an insane length, or a CRC mismatch.
bool read_block(std::istream& is, std::string* blob) {
  uint64_t bytes = 0;
  try {
    bytes = util::read_u64(is);
  } catch (const std::exception&) {
    return false;
  }
  if (bytes > kMaxBlockBytes) return false;
  blob->resize(bytes);
  is.read(blob->data(), static_cast<std::streamsize>(bytes));
  if (!is) return false;
  uint32_t crc = 0;
  try {
    crc = util::read_u32(is);
  } catch (const std::exception&) {
    return false;
  }
  return crc == util::crc32(blob->data(), blob->size());
}

/// Bit-pack a binary spike train (8 timestep-channel cells per byte,
/// LSB-first). Spike values are exact 0.0f / 1.0f, so != 0.0f is the spike
/// predicate and the round trip is lossless.
std::vector<uint8_t> pack_train(const tensor::Tensor& data) {
  const size_t n = data.numel();
  std::vector<uint8_t> packed((n + 7) / 8, 0);
  const float* p = data.data();
  for (size_t i = 0; i < n; ++i) {
    if (p[i] != 0.0f) packed[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
  }
  return packed;
}

tensor::Tensor unpack_train(const std::vector<uint8_t>& packed, size_t T, size_t C) {
  tensor::Tensor data;
  data.resize_zero(tensor::Shape{T, C});
  float* p = data.data();
  const size_t n = T * C;
  for (size_t i = 0; i < n; ++i) {
    if (packed[i >> 3] & (1u << (i & 7))) p[i] = 1.0f;
  }
  return data;
}

std::string serialize_record(size_t stim, size_t fault, const fault::DetectionResult& r) {
  std::ostringstream os;
  util::write_u32(os, static_cast<uint32_t>(stim));
  util::write_u64(os, fault);
  util::write_u32(os, r.detected ? 1u : 0u);
  util::write_u64(os, static_cast<uint64_t>(r.first_detection_frame));
  util::write_f64(os, r.output_l1);
  util::write_u32(os, static_cast<uint32_t>(r.class_count_diff.size()));
  for (long d : r.class_count_diff) {
    util::write_u64(os, static_cast<uint64_t>(static_cast<int64_t>(d)));
  }
  return os.str();
}

/// Throws (via the util::read_* primitives) on a short or malformed payload.
void parse_record(const std::string& payload, size_t* stim, size_t* fault,
                  fault::DetectionResult* r) {
  std::istringstream is(payload);
  *stim = util::read_u32(is);
  *fault = util::read_u64(is);
  r->detected = util::read_u32(is) != 0;
  r->first_detection_frame = static_cast<int64_t>(util::read_u64(is));
  r->output_l1 = util::read_f64(is);
  const uint32_t classes = util::read_u32(is);
  if (classes > kMaxRecordBytes / sizeof(uint64_t)) {
    throw std::runtime_error("fault_dictionary: implausible class count");
  }
  r->class_count_diff.resize(classes);
  for (uint32_t c = 0; c < classes; ++c) {
    r->class_count_diff[c] = static_cast<long>(static_cast<int64_t>(util::read_u64(is)));
  }
}

}  // namespace

bool results_identical(const fault::DetectionResult& a, const fault::DetectionResult& b) {
  uint64_t la = 0, lb = 0;
  std::memcpy(&la, &a.output_l1, sizeof(la));
  std::memcpy(&lb, &b.output_l1, sizeof(lb));
  return a.detected == b.detected && la == lb &&
         a.first_detection_frame == b.first_detection_frame &&
         a.class_count_diff == b.class_count_diff;
}

bool FaultDictionary::compatible_with(const FaultDictionary& other) const {
  uint64_t ta = 0, tb = 0;
  std::memcpy(&ta, &detection_threshold, sizeof(ta));
  std::memcpy(&tb, &other.detection_threshold, sizeof(tb));
  return model_fingerprint == other.model_fingerprint &&
         universe_fingerprint == other.universe_fingerprint && num_faults == other.num_faults &&
         ta == tb && detect_only == other.detect_only;
}

size_t FaultDictionary::add_stimulus(StimulusEntry entry) {
  if (auto existing = find_stimulus(entry.fingerprint)) return *existing;
  stimuli_.push_back(std::move(entry));
  have_.emplace_back();
  results_.emplace_back();
  return stimuli_.size() - 1;
}

std::optional<size_t> FaultDictionary::find_stimulus(uint64_t fingerprint) const {
  for (size_t s = 0; s < stimuli_.size(); ++s) {
    if (stimuli_[s].fingerprint == fingerprint) return s;
  }
  return std::nullopt;
}

bool FaultDictionary::has(size_t stim, size_t fault) const {
  return stim < have_.size() && fault < have_[stim].size() && have_[stim][fault] != 0;
}

const fault::DetectionResult* FaultDictionary::lookup(size_t stim, size_t fault) const {
  return has(stim, fault) ? &results_[stim][fault] : nullptr;
}

void FaultDictionary::record(size_t stim, size_t fault, fault::DetectionResult result) {
  if (stim >= stimuli_.size()) {
    throw std::out_of_range("FaultDictionary::record: stimulus index out of range");
  }
  if (fault >= num_faults) {
    throw std::out_of_range("FaultDictionary::record: fault index out of range");
  }
  if (have_[stim].empty()) {
    have_[stim].assign(num_faults, 0);
    results_[stim].resize(num_faults);
  }
  if (!have_[stim][fault]) ++num_records_;
  have_[stim][fault] = 1;
  results_[stim][fault] = std::move(result);
}

size_t FaultDictionary::records_for(size_t stim) const {
  if (stim >= have_.size()) return 0;
  size_t n = 0;
  for (char h : have_[stim]) n += h != 0;
  return n;
}

std::vector<size_t> FaultDictionary::detected_faults(size_t stim) const {
  std::vector<size_t> out;
  if (stim >= have_.size()) return out;
  for (size_t f = 0; f < have_[stim].size(); ++f) {
    if (have_[stim][f] && results_[stim][f].detected) out.push_back(f);
  }
  return out;
}

std::vector<char> FaultDictionary::detectable_mask() const {
  std::vector<char> mask(num_faults, 0);
  for (size_t s = 0; s < have_.size(); ++s) {
    for (size_t f = 0; f < have_[s].size(); ++f) {
      if (have_[s][f] && results_[s][f].detected) mask[f] = 1;
    }
  }
  return mask;
}

size_t FaultDictionary::detectable_count() const {
  size_t n = 0;
  for (char m : detectable_mask()) n += m != 0;
  return n;
}

std::string FaultDictionary::serialize() const {
  std::ostringstream os;
  write_to(os);
  return os.str();
}

void FaultDictionary::save(const std::string& path) const {
  OBS_SPAN("coverage/dict_save");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("FaultDictionary::save: cannot open " + path);
  write_to(out);
  out.flush();
  if (!out) throw std::runtime_error("FaultDictionary::save: write failed for " + path);
}

void FaultDictionary::save_atomic(const std::string& path) const {
  OBS_SPAN("coverage/dict_save_atomic");
  util::atomic_write_file(path, serialize());
}

void FaultDictionary::write_to(std::ostream& out) const {
  util::write_magic(out, kDictionaryMagic, kDictionaryVersion);

  {
    std::ostringstream hs;
    util::write_u64(hs, model_fingerprint);
    util::write_u64(hs, universe_fingerprint);
    util::write_u64(hs, num_faults);
    util::write_f64(hs, detection_threshold);
    util::write_u32(hs, detect_only ? 1u : 0u);
    util::write_u32(hs, schedule_ordered ? 1u : 0u);
    write_block(out, hs.str());
  }

  {
    std::ostringstream ss;
    util::write_u64(ss, stimuli_.size());
    for (const StimulusEntry& e : stimuli_) {
      util::write_string(ss, e.name);
      util::write_u64(ss, e.fingerprint);
      util::write_u64(ss, e.duration_frames);
      const size_t T = e.has_data() ? e.data.shape().dim(0) : 0;
      const size_t C = e.has_data() ? e.data.shape().dim(1) : 0;
      util::write_u64(ss, T);
      util::write_u64(ss, C);
      util::write_u8_vector(ss, e.has_data() ? pack_train(e.data) : std::vector<uint8_t>{});
    }
    write_block(out, ss.str());
  }

  util::write_u64(out, num_records_);
  for (size_t s = 0; s < have_.size(); ++s) {
    for (size_t f = 0; f < have_[s].size(); ++f) {
      if (!have_[s][f]) continue;
      const std::string payload = serialize_record(s, f, results_[s][f]);
      util::write_u32(out, static_cast<uint32_t>(payload.size()));
      out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
      util::write_u32(out, util::crc32(payload.data(), payload.size()));
    }
  }
}

std::optional<FaultDictionary> FaultDictionary::load(const std::string& path, LoadStats* stats) {
  OBS_SPAN("coverage/dict_load");
  LoadStats local;
  LoadStats& st = stats ? *stats : local;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  try {
    util::check_magic(in, kDictionaryMagic, kDictionaryVersion);
  } catch (const std::exception&) {
    return std::nullopt;
  }

  FaultDictionary dict;
  {
    std::string blob;
    if (!read_block(in, &blob)) return std::nullopt;
    try {
      std::istringstream hs(blob);
      dict.model_fingerprint = util::read_u64(hs);
      dict.universe_fingerprint = util::read_u64(hs);
      dict.num_faults = util::read_u64(hs);
      dict.detection_threshold = util::read_f64(hs);
      dict.detect_only = util::read_u32(hs) != 0;
      dict.schedule_ordered = util::read_u32(hs) != 0;
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }

  {
    std::string blob;
    if (!read_block(in, &blob)) return std::nullopt;
    try {
      std::istringstream ss(blob);
      const uint64_t num_stimuli = util::read_u64(ss);
      for (uint64_t s = 0; s < num_stimuli; ++s) {
        StimulusEntry e;
        e.name = util::read_string(ss);
        e.fingerprint = util::read_u64(ss);
        e.duration_frames = util::read_u64(ss);
        const uint64_t T = util::read_u64(ss);
        const uint64_t C = util::read_u64(ss);
        const std::vector<uint8_t> packed = util::read_u8_vector(ss);
        if (T * C > 0) {
          if (packed.size() != (T * C + 7) / 8) {
            throw std::runtime_error("fault_dictionary: stimulus bit-pack size mismatch");
          }
          e.data = unpack_train(packed, T, C);
        }
        dict.stimuli_.push_back(std::move(e));
        dict.have_.emplace_back();
        dict.results_.emplace_back();
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }

  uint64_t num_records = 0;
  try {
    num_records = util::read_u64(in);
  } catch (const std::exception&) {
    // Truncated immediately after the stimulus table: the record count is
    // gone, so nothing provably existed. The dictionary itself is usable.
    SNNTEST_LOG_WARN("fault dictionary %s: record section missing (truncated?)", path.c_str());
    return dict;
  }
  for (uint64_t i = 0; i < num_records; ++i) {
    uint32_t payload_bytes = 0;
    try {
      payload_bytes = util::read_u32(in);
    } catch (const std::exception&) {
      st.records_skipped += num_records - i;  // truncated tail
      break;
    }
    if (payload_bytes > kMaxRecordBytes) {
      // A corrupted length field loses the framing; everything after it is
      // unrecoverable.
      st.records_skipped += num_records - i;
      break;
    }
    std::string payload(payload_bytes, '\0');
    in.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
    uint32_t crc = 0;
    bool tail_ok = static_cast<bool>(in);
    if (tail_ok) {
      try {
        crc = util::read_u32(in);
      } catch (const std::exception&) {
        tail_ok = false;
      }
    }
    if (!tail_ok) {
      st.records_skipped += num_records - i;
      break;
    }
    if (crc != util::crc32(payload.data(), payload.size())) {
      ++st.records_skipped;
      continue;
    }
    size_t stim = 0, fault = 0;
    fault::DetectionResult r;
    try {
      parse_record(payload, &stim, &fault, &r);
    } catch (const std::exception&) {
      ++st.records_skipped;
      continue;
    }
    if (stim >= dict.stimuli_.size() || fault >= dict.num_faults) {
      ++st.records_skipped;
      continue;
    }
    dict.record(stim, fault, std::move(r));
    ++st.records_loaded;
  }
  if (st.records_skipped > 0) {
    SNNTEST_LOG_WARN("fault dictionary %s: %zu unusable record(s) skipped; those pairs will "
                     "re-simulate",
                     path.c_str(), st.records_skipped);
    obs::Registry::instance().counter("coverage/dict_records_skipped").add(st.records_skipped);
  }
  return dict;
}

FaultDictionary::MergeStats FaultDictionary::merge(const FaultDictionary& other) {
  OBS_SPAN("coverage/dict_merge");
  if (!compatible_with(other)) {
    throw std::invalid_argument(
        "FaultDictionary::merge: incompatible dictionaries (model, fault universe or "
        "detection settings differ)");
  }
  MergeStats stats;
  for (size_t os = 0; os < other.stimuli_.size(); ++os) {
    const size_t before = stimuli_.size();
    const size_t s = add_stimulus(other.stimuli_[os]);
    if (stimuli_.size() > before) ++stats.stimuli_added;
    if (os >= other.have_.size() || other.have_[os].empty()) continue;
    for (size_t f = 0; f < other.have_[os].size(); ++f) {
      if (!other.have_[os][f]) continue;
      const fault::DetectionResult& incoming = other.results_[os][f];
      if (const fault::DetectionResult* existing = lookup(s, f)) {
        if (results_identical(*existing, incoming)) {
          ++stats.duplicates_agreeing;
        } else {
          ++stats.conflicts_skipped;
        }
        continue;
      }
      record(s, f, incoming);
      ++stats.records_added;
    }
  }
  if (stats.conflicts_skipped > 0) {
    SNNTEST_LOG_WARN("FaultDictionary::merge: %zu conflicting record(s) skipped (kept existing)",
                     stats.conflicts_skipped);
  }
  return stats;
}

}  // namespace snntest::coverage
