#include "coverage/minimize.hpp"

#include <algorithm>
#include <queue>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace snntest::coverage {
namespace {

/// Newly-covered detected faults of stimulus `s` given the covered mask.
size_t marginal_gain(const std::vector<std::vector<size_t>>& detected, size_t s,
                     const std::vector<char>& covered) {
  size_t gain = 0;
  for (size_t f : detected[s]) gain += covered[f] == 0;
  return gain;
}

struct HeapEntry {
  size_t gain = 0;
  uint64_t cost = 1;
  size_t stimulus = 0;
};

/// Max-heap order on gain/cost via exact integer cross-multiplication
/// (gains and frame costs both fit comfortably in 64 bits; the product
/// uses 128-bit arithmetic so no real matrix can overflow it). Ties:
/// larger gain first (fewer scheduled tests for the same rate), then the
/// smaller stimulus index — fully deterministic.
struct WorseRatio {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    const auto lhs = static_cast<unsigned __int128>(a.gain) * b.cost;
    const auto rhs = static_cast<unsigned __int128>(b.gain) * a.cost;
    if (lhs != rhs) return lhs < rhs;
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.stimulus > b.stimulus;
  }
};

}  // namespace

TestSchedule minimize_schedule(const FaultDictionary& dict) {
  OBS_SPAN("coverage/minimize");
  TestSchedule schedule;
  schedule.num_faults = dict.num_faults;
  const size_t S = dict.num_stimuli();

  std::vector<std::vector<size_t>> detected(S);
  std::vector<uint64_t> cost(S, 1);
  for (size_t s = 0; s < S; ++s) {
    detected[s] = dict.detected_faults(s);
    // A zero-length stimulus still occupies at least one comparator frame.
    cost[s] = std::max<uint64_t>(dict.stimulus(s).duration_frames, 1);
    schedule.all_stimuli_frames += cost[s];
    schedule.pairs_recorded += dict.records_for(s);
  }
  schedule.detectable_faults = dict.detectable_count();

  std::vector<char> covered(dict.num_faults, 0);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, WorseRatio> heap;
  for (size_t s = 0; s < S; ++s) {
    if (!detected[s].empty()) heap.push({detected[s].size(), cost[s], s});
  }

  while (!heap.empty() && schedule.covered_faults < schedule.detectable_faults) {
    HeapEntry top = heap.top();
    heap.pop();
    const size_t fresh = marginal_gain(detected, top.stimulus, covered);
    if (fresh == 0) continue;  // fully shadowed by earlier picks — never useful again
    if (fresh != top.gain) {
      // Stale score: re-insert with the true gain. Gains only shrink, so
      // the entry sinks and is re-examined exactly when it matters.
      top.gain = fresh;
      heap.push(top);
      continue;
    }
    // The top entry's score is current => it maximizes gain/cost now.
    for (size_t f : detected[top.stimulus]) covered[f] = 1;
    schedule.covered_faults += fresh;
    schedule.scheduled_frames += top.cost;
    schedule.steps.push_back({top.stimulus, fresh, schedule.covered_faults, top.cost,
                              schedule.scheduled_frames});
  }

  obs::Registry& reg = obs::Registry::instance();
  reg.counter("coverage/minimize_runs").add(1);
  reg.gauge("coverage/schedule_stimuli").set(static_cast<double>(schedule.steps.size()));
  reg.gauge("coverage/schedule_frames").set(static_cast<double>(schedule.scheduled_frames));
  if (schedule.all_stimuli_frames > 0) {
    reg.gauge("coverage/schedule_time_fraction")
        .set(static_cast<double>(schedule.scheduled_frames) /
             static_cast<double>(schedule.all_stimuli_frames));
  }
  return schedule;
}

FaultDictionary schedule_as_dictionary(const FaultDictionary& dict,
                                       const TestSchedule& schedule) {
  FaultDictionary out;
  out.model_fingerprint = dict.model_fingerprint;
  out.universe_fingerprint = dict.universe_fingerprint;
  out.num_faults = dict.num_faults;
  out.detection_threshold = dict.detection_threshold;
  out.detect_only = dict.detect_only;
  out.schedule_ordered = true;
  for (const ScheduleStep& step : schedule.steps) {
    const size_t s = out.add_stimulus(dict.stimulus(step.stimulus));
    for (size_t f = 0; f < dict.num_faults; ++f) {
      if (const fault::DetectionResult* r = dict.lookup(step.stimulus, f)) {
        out.record(s, f, *r);
      }
    }
  }
  return out;
}

}  // namespace snntest::coverage
