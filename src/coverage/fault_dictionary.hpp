// Persistent fault dictionary: the detection matrix of a test campaign.
//
// A campaign answers "does stimulus s detect fault f?" one (s, f) pair at a
// time and historically threw the answers away. The dictionary keeps them:
// per fault × stimulus it stores detected/undetected, the first detection
// frame, the L1 divergence margin and the per-class count differences —
// exactly the DetectionResult the engine produced — keyed by fingerprints
// of the model (topology + parameters), the fault universe and each
// stimulus. That makes three things cheap that used to require
// re-simulation:
//
//  * incremental campaigns — re-running a campaign against a stimulus the
//    dictionary has seen becomes a lookup (coverage/incremental.hpp);
//  * cross-stimulus queries — which faults does stimulus s catch, which
//    stimuli catch fault f, which faults are detectable at all;
//  * minimum-time test-suite minimization — weighted set cover over the
//    matrix with per-stimulus frame costs (coverage/minimize.hpp), the
//    paper's minimum-time objective made executable.
//
// On-disk format (little-endian, DESIGN.md §13 has the byte layout):
//
//   magic 'SNFD' + format version                       (util::write_magic)
//   header block   (u64 byte length, blob, CRC-32 of the blob)
//   stimulus table (u64 byte length, blob, CRC-32 of the blob)
//   u64 record count, then per record: u32 payload length, payload, CRC-32
//
// Every record carries its own CRC so corruption is contained: a flipped
// byte invalidates one record (counted in LoadStats::records_skipped, the
// pair re-simulates), not the file. A truncated tail — the artifact of a
// kill mid-write — likewise drops only the unwritten records. A mangled
// header or stimulus table makes the file unusable and load() returns
// nullopt; callers fall back to a cold campaign. Fingerprint mismatches
// (model retrained, fault universe changed) are detected by the consumers
// via the header fields, mirroring the campaign-checkpoint convention.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "tensor/tensor.hpp"

namespace snntest::coverage {

inline constexpr uint32_t kDictionaryMagic = 0x44464E53;  // "SNFD"
inline constexpr uint32_t kDictionaryVersion = 1;

/// One test stimulus the dictionary has results for. The spike train itself
/// is embedded bit-packed (8 timestep-channel cells per byte) so a
/// dictionary — and the minimized schedule derived from it — is
/// self-contained: an in-field tester can replay the scheduled stimuli
/// straight from the file.
struct StimulusEntry {
  std::string name;              ///< human label ("chunk3", "sample17", a path)
  uint64_t fingerprint = 0;      ///< campaign::hash_stimulus over shape + data
  uint64_t duration_frames = 0;  ///< test-time cost in timesteps
  tensor::Tensor data;           ///< [T, C] binary train; empty when not embedded
  bool has_data() const { return data.numel() > 0; }
};

class FaultDictionary {
 public:
  // --- identity (the header fields; see campaign/fingerprint.hpp) ---------
  uint64_t model_fingerprint = 0;     ///< topology + trained parameters
  uint64_t universe_fingerprint = 0;  ///< ordered fault-descriptor list
  uint64_t num_faults = 0;            ///< length of that list
  double detection_threshold = 0.0;
  bool detect_only = false;  ///< results carry lower-bound L1s (engine detect_only)
  /// Set by the minimizer's schedule export: stimuli are stored in
  /// minimized-schedule order and should be executed in file order.
  bool schedule_ordered = false;

  /// Same model, universe, fault count and detection settings — results are
  /// interchangeable between the two dictionaries.
  bool compatible_with(const FaultDictionary& other) const;

  // --- stimuli -------------------------------------------------------------
  size_t num_stimuli() const { return stimuli_.size(); }
  const StimulusEntry& stimulus(size_t s) const { return stimuli_.at(s); }
  /// Register a stimulus (or return the existing index when one with the
  /// same fingerprint is already present — the entry's name/data win only
  /// on first insertion).
  size_t add_stimulus(StimulusEntry entry);
  std::optional<size_t> find_stimulus(uint64_t fingerprint) const;

  // --- detection matrix ----------------------------------------------------
  bool has(size_t stim, size_t fault) const;
  /// The stored result, or nullptr when the pair was never simulated.
  const fault::DetectionResult* lookup(size_t stim, size_t fault) const;
  /// Insert or overwrite one pair. `stim` must be a valid stimulus index
  /// and `fault` < num_faults (throws std::out_of_range otherwise).
  void record(size_t stim, size_t fault, fault::DetectionResult result);

  size_t num_records() const { return num_records_; }
  size_t records_for(size_t stim) const;
  /// Fault indices stimulus `stim` detects, ascending.
  std::vector<size_t> detected_faults(size_t stim) const;
  /// mask[f] != 0 iff any recorded stimulus detects fault f.
  std::vector<char> detectable_mask() const;
  size_t detectable_count() const;

  // --- persistence ---------------------------------------------------------
  struct LoadStats {
    size_t records_loaded = 0;
    /// Records dropped on load: CRC mismatch (corruption), unparsable or
    /// out-of-range payload, or a truncated tail. Mirrors the campaign
    /// checkpoint's skipped_lines convention — visible, soft, re-simulable.
    size_t records_skipped = 0;
  };

  /// Throws std::runtime_error when the file cannot be written.
  void save(const std::string& path) const;
  /// Crash-safe save: serialize to a sibling temp file, then rename(2) over
  /// `path`. A reader (or a worker restarted after a kill) sees either the
  /// previous complete dictionary or the new one, never a torn write. This
  /// is the commit step of the shard worker protocol (DESIGN.md §15).
  void save_atomic(const std::string& path) const;
  /// The exact bytes save() would write — lets callers byte-compare
  /// dictionaries (merge-identity tests) without touching the filesystem.
  std::string serialize() const;
  /// nullopt when the file is missing or its magic/header/stimulus table is
  /// unusable (the error cases that have no partial answer). Damaged
  /// records fail soft via `stats`.
  static std::optional<FaultDictionary> load(const std::string& path,
                                             LoadStats* stats = nullptr);

  struct MergeStats {
    size_t records_added = 0;
    /// Overlapping pairs whose stored results are identical (no-ops).
    size_t duplicates_agreeing = 0;
    /// Overlapping pairs whose results disagree: the existing record is
    /// kept and the incoming one is skipped — two honest dictionaries for
    /// the same fingerprints can only disagree through corruption, so the
    /// count is surfaced rather than silently picking a winner.
    size_t conflicts_skipped = 0;
    size_t stimuli_added = 0;
  };

  /// Fold `other`'s stimuli and records into this dictionary. Throws
  /// std::invalid_argument when the dictionaries are not compatible_with
  /// each other (results for different models/universes must never mix).
  MergeStats merge(const FaultDictionary& other);

 private:
  void write_to(std::ostream& out) const;

  std::vector<StimulusEntry> stimuli_;
  /// Dense per-stimulus rows, sized num_faults on first record.
  std::vector<std::vector<char>> have_;
  std::vector<std::vector<fault::DetectionResult>> results_;
  size_t num_records_ = 0;
};

/// Field-exact equality (detected, L1 bits, frame, class counts) — the
/// merge-conflict and warm-rerun-identity criterion.
bool results_identical(const fault::DetectionResult& a, const fault::DetectionResult& b);

}  // namespace snntest::coverage
