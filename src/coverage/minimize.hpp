// Minimum-time test-suite minimization (the paper's objective, executable).
//
// Given a fault dictionary's detection matrix and per-stimulus frame costs,
// pick an ordered subset of stimuli that covers every detectable fault in
// the least total test time. Exact weighted set cover is NP-hard; the
// lazy-greedy heuristic — repeatedly take the stimulus with the best
// (newly-covered faults / frame cost) ratio — carries the classical
// (1 - 1/e) approximation guarantee for coverage at a cost budget and is
// the standard test-compaction choice. "Lazy" means stale heap entries are
// re-scored only when they surface, so each round touches a handful of
// stimuli instead of all of them.
//
// Determinism (DESIGN.md §13): the ratio comparison is exact integer
// cross-multiplication (no floating-point division), ties prefer the
// larger gain (fewer scheduled tests), then the smaller stimulus index.
// The same dictionary always yields byte-identical schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "coverage/fault_dictionary.hpp"

namespace snntest::coverage {

/// One scheduled stimulus plus the cumulative coverage-vs-time point after
/// executing it — the schedule steps ARE the coverage curve.
struct ScheduleStep {
  size_t stimulus = 0;  ///< index into the dictionary's stimulus table
  size_t new_faults = 0;
  size_t cumulative_detected = 0;
  uint64_t frames = 0;  ///< this stimulus' cost
  uint64_t cumulative_frames = 0;
};

struct TestSchedule {
  std::vector<ScheduleStep> steps;
  /// Faults detected by at least one recorded stimulus (the achievable
  /// ceiling — undetectable faults can never be covered by any subset).
  size_t detectable_faults = 0;
  size_t covered_faults = 0;
  uint64_t scheduled_frames = 0;
  /// Cost of replaying every stimulus in the dictionary (the baseline the
  /// minimized schedule must beat).
  uint64_t all_stimuli_frames = 0;
  size_t num_faults = 0;      ///< fault-universe size
  size_t pairs_recorded = 0;  ///< matrix completeness (of num_faults * num_stimuli)

  /// Greedy set cover always reaches 100% of the detectable faults when the
  /// matrix is complete; false signals a matrix hole worth investigating.
  bool complete() const { return covered_faults == detectable_faults; }
  double coverage_of_detectable() const {
    return detectable_faults == 0
               ? 1.0
               : static_cast<double>(covered_faults) / static_cast<double>(detectable_faults);
  }
};

/// Lazy-greedy weighted set cover over the dictionary's detection matrix.
/// Stimuli contributing no new detected fault are never scheduled, so the
/// schedule stops exactly at full detectable coverage.
TestSchedule minimize_schedule(const FaultDictionary& dict);

/// Extract the schedule as a self-contained, schedule_ordered dictionary:
/// only the scheduled stimuli (in execution order) and their records. This
/// is what `coverage_tool minimize --out` writes and what
/// `infield_test --dict` replays.
FaultDictionary schedule_as_dictionary(const FaultDictionary& dict, const TestSchedule& schedule);

}  // namespace snntest::coverage
