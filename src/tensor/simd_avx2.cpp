// AVX2 lane kernels: 4-wide double accumulation and 8-wide float state
// update ACROSS lanes. Compiled with -mavx2 (no -mfma) isolated to this
// translation unit plus -ffp-contract=off, so every vector op below is the
// exact IEEE operation the scalar kernel performs:
//
//  * _mm256_cvtps_pd        == static_cast<double>(float)   (exact)
//  * _mm256_mul_pd / add_pd == the unfused double mul / add  (same rounding)
//  * _mm256_cvtpd_ps        == static_cast<float>(double)   (nearest-even)
//  * _CMP_GE_OQ             == scalar `>=` (quiet, NaN -> false)
//
// Vector width divides the lane dimension only — each lane's accumulation
// order is untouched — so results are bit-identical to simd_scalar.cpp for
// every lane count, including the scalar tail when lanes % 4 (or % 8 for
// the float kernels) is nonzero.
#if !defined(__AVX2__)
#error "simd_avx2.cpp must be compiled with -mavx2"
#endif

#include <immintrin.h>

#include "tensor/simd_tables.hpp"

namespace snntest::tensor::simd {
namespace {

template <size_t LANES>
struct LaneBlocks {
  static constexpr size_t kVec = LANES / 4;   // 4-wide double blocks
  static constexpr size_t kTail = LANES % 4;  // scalar double tail
};

template <size_t LANES>
void matvec_lanes_fixed(const float* a, size_t rows, size_t cols, const float* x_lanes,
                        float* y_lanes) {
  constexpr size_t NB = LaneBlocks<LANES>::kVec;
  constexpr size_t TAIL = LaneBlocks<LANES>::kTail;
  for (size_t r = 0; r < rows; ++r) {
    const float* row = a + r * cols;
    __m256d acc[NB > 0 ? NB : 1];
    for (size_t b = 0; b < NB; ++b) acc[b] = _mm256_setzero_pd();
    double acc_tail[TAIL > 0 ? TAIL : 1] = {};
    for (size_t c = 0; c < cols; ++c) {
      const double w = row[c];
      const float* xv = x_lanes + c * LANES;
      if constexpr (NB > 0) {
        const __m256d wv = _mm256_set1_pd(w);
        for (size_t b = 0; b < NB; ++b) {
          const __m256d xd = _mm256_cvtps_pd(_mm_loadu_ps(xv + 4 * b));
          acc[b] = _mm256_add_pd(acc[b], _mm256_mul_pd(wv, xd));
        }
      }
      for (size_t t = 0; t < TAIL; ++t) acc_tail[t] += w * xv[4 * NB + t];
    }
    float* yr = y_lanes + r * LANES;
    for (size_t b = 0; b < NB; ++b) {
      const __m128 sum = _mm256_cvtpd_ps(acc[b]);
      _mm_storeu_ps(yr + 4 * b, _mm_add_ps(_mm_loadu_ps(yr + 4 * b), sum));
    }
    for (size_t t = 0; t < TAIL; ++t) {
      yr[4 * NB + t] += static_cast<float>(acc_tail[t]);
    }
  }
}

template <size_t LANES>
void matvec_gather_lanes_fixed(const float* a, size_t rows, size_t cols, const float* x_lanes,
                               const uint32_t* active, size_t num_active, float* y_lanes) {
  constexpr size_t NB = LaneBlocks<LANES>::kVec;
  constexpr size_t TAIL = LaneBlocks<LANES>::kTail;
  for (size_t r = 0; r < rows; ++r) {
    const float* row = a + r * cols;
    __m256d acc[NB > 0 ? NB : 1];
    for (size_t b = 0; b < NB; ++b) acc[b] = _mm256_setzero_pd();
    double acc_tail[TAIL > 0 ? TAIL : 1] = {};
    for (size_t i = 0; i < num_active; ++i) {
      const uint32_t c = active[i];
      const double w = row[c];
      const float* xv = x_lanes + static_cast<size_t>(c) * LANES;
      if constexpr (NB > 0) {
        const __m256d wv = _mm256_set1_pd(w);
        for (size_t b = 0; b < NB; ++b) {
          const __m256d xd = _mm256_cvtps_pd(_mm_loadu_ps(xv + 4 * b));
          acc[b] = _mm256_add_pd(acc[b], _mm256_mul_pd(wv, xd));
        }
      }
      for (size_t t = 0; t < TAIL; ++t) acc_tail[t] += w * xv[4 * NB + t];
    }
    float* yr = y_lanes + r * LANES;
    for (size_t b = 0; b < NB; ++b) {
      const __m128 sum = _mm256_cvtpd_ps(acc[b]);
      _mm_storeu_ps(yr + 4 * b, _mm_add_ps(_mm_loadu_ps(yr + 4 * b), sum));
    }
    for (size_t t = 0; t < TAIL; ++t) {
      yr[4 * NB + t] += static_cast<float>(acc_tail[t]);
    }
  }
}

template <size_t LANES>
void conv_lanes_dense_fixed(const ConvLaneGeom& g, const float* weights, const float* in_lanes,
                            float* syn_lanes) {
  constexpr size_t NB = LaneBlocks<LANES>::kVec;
  constexpr size_t TAIL = LaneBlocks<LANES>::kTail;
  const size_t oh = g.out_height;
  const size_t ow = g.out_width;
  const size_t k = g.kernel;
  const size_t plane = g.in_height * g.in_width;
  for (size_t oc = 0; oc < g.out_channels; ++oc) {
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        __m256d acc[NB > 0 ? NB : 1];
        for (size_t b = 0; b < NB; ++b) acc[b] = _mm256_setzero_pd();
        double acc_tail[TAIL > 0 ? TAIL : 1] = {};
        for (size_t ic = 0; ic < g.in_channels; ++ic) {
          const float* w_base = weights + ((oc * g.in_channels + ic) * k) * k;
          const float* in_base = in_lanes + ic * plane * LANES;
          for (size_t ky = 0; ky < k; ++ky) {
            const long iy = static_cast<long>(oy * g.stride + ky) - static_cast<long>(g.padding);
            if (iy < 0 || iy >= static_cast<long>(g.in_height)) continue;
            for (size_t kx = 0; kx < k; ++kx) {
              const long ix = static_cast<long>(ox * g.stride + kx) - static_cast<long>(g.padding);
              if (ix < 0 || ix >= static_cast<long>(g.in_width)) continue;
              const double w = w_base[ky * k + kx];
              const float* xv = in_base + (iy * static_cast<long>(g.in_width) + ix) *
                                              static_cast<long>(LANES);
              if constexpr (NB > 0) {
                const __m256d wv = _mm256_set1_pd(w);
                for (size_t b = 0; b < NB; ++b) {
                  const __m256d xd = _mm256_cvtps_pd(_mm_loadu_ps(xv + 4 * b));
                  acc[b] = _mm256_add_pd(acc[b], _mm256_mul_pd(wv, xd));
                }
              }
              for (size_t t = 0; t < TAIL; ++t) acc_tail[t] += w * xv[4 * NB + t];
            }
          }
        }
        float* out = syn_lanes + ((oc * oh + oy) * ow + ox) * LANES;
        for (size_t b = 0; b < NB; ++b) {
          _mm_storeu_ps(out + 4 * b, _mm256_cvtpd_ps(acc[b]));
        }
        for (size_t t = 0; t < TAIL; ++t) {
          out[4 * NB + t] = static_cast<float>(acc_tail[t]);
        }
      }
    }
  }
}

template <size_t LANES>
void conv_lanes_scatter_fixed(const ConvLaneGeom& g, const float* weights, const float* in_lanes,
                              const uint32_t* active, size_t num_active, double* acc,
                              float* syn_lanes) {
  constexpr size_t NB = LaneBlocks<LANES>::kVec;
  constexpr size_t TAIL = LaneBlocks<LANES>::kTail;
  const size_t oh = g.out_height;
  const size_t ow = g.out_width;
  const size_t k = g.kernel;
  const size_t out_size = g.output_size();
  const size_t plane = g.in_height * g.in_width;
  const long stride = static_cast<long>(g.stride);
  for (size_t i = 0; i < num_active; ++i) {
    const size_t flat = active[i];
    const size_t ic = flat / plane;
    const size_t rem = flat % plane;
    const size_t iy = rem / g.in_width;
    const size_t ix = rem % g.in_width;
    const float* vals = in_lanes + flat * LANES;
    // The pixel's lane values are reused for every (oc, ky, kx) tap: widen
    // them to double once (exact conversion, so numerically invisible).
    __m256d vals_pd[NB > 0 ? NB : 1];
    for (size_t b = 0; b < NB; ++b) vals_pd[b] = _mm256_cvtps_pd(_mm_loadu_ps(vals + 4 * b));
    for (size_t oc = 0; oc < g.out_channels; ++oc) {
      const float* w_base = weights + ((oc * g.in_channels + ic) * k) * k;
      double* acc_base = acc + oc * oh * ow * LANES;
      for (size_t ky = 0; ky < k; ++ky) {
        const long num_y = static_cast<long>(iy + g.padding) - static_cast<long>(ky);
        if (num_y < 0 || num_y % stride != 0) continue;
        const long oy = num_y / stride;
        if (oy >= static_cast<long>(oh)) continue;
        for (size_t kx = 0; kx < k; ++kx) {
          const long num_x = static_cast<long>(ix + g.padding) - static_cast<long>(kx);
          if (num_x < 0 || num_x % stride != 0) continue;
          const long ox = num_x / stride;
          if (ox >= static_cast<long>(ow)) continue;
          const double w = w_base[ky * k + kx];
          double* a = acc_base + (oy * static_cast<long>(ow) + ox) * static_cast<long>(LANES);
          if constexpr (NB > 0) {
            const __m256d wv = _mm256_set1_pd(w);
            for (size_t b = 0; b < NB; ++b) {
              const __m256d cur = _mm256_loadu_pd(a + 4 * b);
              _mm256_storeu_pd(a + 4 * b, _mm256_add_pd(cur, _mm256_mul_pd(wv, vals_pd[b])));
            }
          }
          for (size_t t = 0; t < TAIL; ++t) a[4 * NB + t] += w * vals[4 * NB + t];
        }
      }
    }
  }
  // Flat narrow of the double accumulators (length out_size * LANES, so the
  // 4-wide blocks need no per-pixel tail handling).
  const size_t total = out_size * LANES;
  size_t f = 0;
  for (; f + 4 <= total; f += 4) {
    _mm_storeu_ps(syn_lanes + f, _mm256_cvtpd_ps(_mm256_loadu_pd(acc + f)));
  }
  for (; f < total; ++f) syn_lanes[f] = static_cast<float>(acc[f]);
}

template <size_t LANES>
void pool_lanes_fixed(size_t channels, size_t in_height, size_t in_width, size_t window,
                      const float* in_lanes, float* syn_lanes) {
  constexpr size_t NB8 = LANES / 8;   // 8-wide float blocks
  constexpr size_t TAIL8 = LANES % 8;
  const size_t oh = in_height / window;
  const size_t ow = in_width / window;
  for (size_t c = 0; c < channels; ++c) {
    const float* in_base = in_lanes + c * in_height * in_width * LANES;
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        __m256 acc[NB8 > 0 ? NB8 : 1];
        for (size_t b = 0; b < NB8; ++b) acc[b] = _mm256_setzero_ps();
        float acc_tail[TAIL8 > 0 ? TAIL8 : 1] = {};
        for (size_t wy = 0; wy < window; ++wy) {
          const size_t iy = oy * window + wy;
          for (size_t wx = 0; wx < window; ++wx) {
            const float* p = in_base + (iy * in_width + ox * window + wx) * LANES;
            for (size_t b = 0; b < NB8; ++b) {
              acc[b] = _mm256_add_ps(acc[b], _mm256_loadu_ps(p + 8 * b));
            }
            for (size_t t = 0; t < TAIL8; ++t) acc_tail[t] += p[8 * NB8 + t];
          }
        }
        float* out = syn_lanes + ((c * oh + oy) * ow + ox) * LANES;
        for (size_t b = 0; b < NB8; ++b) _mm256_storeu_ps(out + 8 * b, acc[b]);
        for (size_t t = 0; t < TAIL8; ++t) out[8 * NB8 + t] = acc_tail[t];
      }
    }
  }
}

void matvec_lanes(const float* a, size_t rows, size_t cols, const float* x_lanes, size_t lanes,
                  float* y_lanes) {
  switch (lanes) {
#define SNNTEST_CASE(n) \
  case n: return matvec_lanes_fixed<n>(a, rows, cols, x_lanes, y_lanes);
    SNNTEST_CASE(1) SNNTEST_CASE(2) SNNTEST_CASE(3) SNNTEST_CASE(4)
    SNNTEST_CASE(5) SNNTEST_CASE(6) SNNTEST_CASE(7) SNNTEST_CASE(8)
    SNNTEST_CASE(9) SNNTEST_CASE(10) SNNTEST_CASE(11) SNNTEST_CASE(12)
    SNNTEST_CASE(13) SNNTEST_CASE(14) SNNTEST_CASE(15) SNNTEST_CASE(16)
#undef SNNTEST_CASE
    default: return;  // callers validate lanes in [1, kMaxLanes]
  }
}

void matvec_gather_lanes(const float* a, size_t rows, size_t cols, const float* x_lanes,
                         size_t lanes, const uint32_t* active, size_t num_active,
                         float* y_lanes) {
  switch (lanes) {
#define SNNTEST_CASE(n) \
  case n: return matvec_gather_lanes_fixed<n>(a, rows, cols, x_lanes, active, num_active, y_lanes);
    SNNTEST_CASE(1) SNNTEST_CASE(2) SNNTEST_CASE(3) SNNTEST_CASE(4)
    SNNTEST_CASE(5) SNNTEST_CASE(6) SNNTEST_CASE(7) SNNTEST_CASE(8)
    SNNTEST_CASE(9) SNNTEST_CASE(10) SNNTEST_CASE(11) SNNTEST_CASE(12)
    SNNTEST_CASE(13) SNNTEST_CASE(14) SNNTEST_CASE(15) SNNTEST_CASE(16)
#undef SNNTEST_CASE
    default: return;
  }
}

void conv_lanes_dense(const ConvLaneGeom& g, const float* weights, const float* in_lanes,
                      size_t lanes, float* syn_lanes) {
  switch (lanes) {
#define SNNTEST_CASE(n) \
  case n: return conv_lanes_dense_fixed<n>(g, weights, in_lanes, syn_lanes);
    SNNTEST_CASE(1) SNNTEST_CASE(2) SNNTEST_CASE(3) SNNTEST_CASE(4)
    SNNTEST_CASE(5) SNNTEST_CASE(6) SNNTEST_CASE(7) SNNTEST_CASE(8)
    SNNTEST_CASE(9) SNNTEST_CASE(10) SNNTEST_CASE(11) SNNTEST_CASE(12)
    SNNTEST_CASE(13) SNNTEST_CASE(14) SNNTEST_CASE(15) SNNTEST_CASE(16)
#undef SNNTEST_CASE
    default: return;
  }
}

void conv_lanes_scatter(const ConvLaneGeom& g, const float* weights, const float* in_lanes,
                        size_t lanes, const uint32_t* active, size_t num_active, double* acc,
                        float* syn_lanes) {
  switch (lanes) {
#define SNNTEST_CASE(n) \
  case n: return conv_lanes_scatter_fixed<n>(g, weights, in_lanes, active, num_active, acc, \
                                             syn_lanes);
    SNNTEST_CASE(1) SNNTEST_CASE(2) SNNTEST_CASE(3) SNNTEST_CASE(4)
    SNNTEST_CASE(5) SNNTEST_CASE(6) SNNTEST_CASE(7) SNNTEST_CASE(8)
    SNNTEST_CASE(9) SNNTEST_CASE(10) SNNTEST_CASE(11) SNNTEST_CASE(12)
    SNNTEST_CASE(13) SNNTEST_CASE(14) SNNTEST_CASE(15) SNNTEST_CASE(16)
#undef SNNTEST_CASE
    default: return;
  }
}

void pool_lanes(size_t channels, size_t in_height, size_t in_width, size_t window,
                const float* in_lanes, size_t lanes, float* syn_lanes) {
  switch (lanes) {
#define SNNTEST_CASE(n) \
  case n: return pool_lanes_fixed<n>(channels, in_height, in_width, window, in_lanes, syn_lanes);
    SNNTEST_CASE(1) SNNTEST_CASE(2) SNNTEST_CASE(3) SNNTEST_CASE(4)
    SNNTEST_CASE(5) SNNTEST_CASE(6) SNNTEST_CASE(7) SNNTEST_CASE(8)
    SNNTEST_CASE(9) SNNTEST_CASE(10) SNNTEST_CASE(11) SNNTEST_CASE(12)
    SNNTEST_CASE(13) SNNTEST_CASE(14) SNNTEST_CASE(15) SNNTEST_CASE(16)
#undef SNNTEST_CASE
    default: return;
  }
}

void lif_lanes(float* u, int* refrac, const float* syn, float* out, size_t lanes, float leak,
               float threshold, float reset_v, int refractory) {
  const __m256 leak_v = _mm256_set1_ps(leak);
  const __m256 thr_v = _mm256_set1_ps(threshold);
  const __m256 reset_ps = _mm256_set1_ps(reset_v);
  const __m256 one_ps = _mm256_set1_ps(1.0f);
  const __m256i refractory_v = _mm256_set1_epi32(refractory);
  const __m256i zero_i = _mm256_setzero_si256();
  size_t l = 0;
  for (; l + 8 <= lanes; l += 8) {
    const __m256 u_v = _mm256_loadu_ps(u + l);
    const __m256 syn_v = _mm256_loadu_ps(syn + l);
    const __m256i rf_v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(refrac + l));
    // Refractory lanes: spike 0, u = reset, refrac decremented. The compare
    // mask is all-ones (== -1) per true lane, so adding it decrements.
    const __m256i in_refrac_i = _mm256_cmpgt_epi32(rf_v, zero_i);
    const __m256 in_refrac = _mm256_castsi256_ps(in_refrac_i);
    // Integration (computed for every lane; refractory lanes discard it):
    // unfused mul + add, exactly the scalar `leak * u + syn`.
    const __m256 u_pre = _mm256_add_ps(_mm256_mul_ps(leak_v, u_v), syn_v);
    // Quiet ordered >= : NaN u_pre compares false, like the scalar branch.
    const __m256 ge = _mm256_cmp_ps(u_pre, thr_v, _CMP_GE_OQ);
    const __m256 spike = _mm256_andnot_ps(in_refrac, ge);
    const __m256i spike_i = _mm256_castps_si256(spike);
    const __m256 u_new =
        _mm256_blendv_ps(u_pre, reset_ps, _mm256_or_ps(in_refrac, spike));
    const __m256i rf_dec = _mm256_add_epi32(rf_v, in_refrac_i);
    const __m256i rf_new = _mm256_blendv_epi8(rf_dec, refractory_v, spike_i);
    _mm256_storeu_ps(u + l, u_new);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(refrac + l), rf_new);
    _mm256_storeu_ps(out + l, _mm256_and_ps(spike, one_ps));
  }
  for (; l < lanes; ++l) {
    float spike = 0.0f;
    if (refrac[l] > 0) {
      --refrac[l];
      u[l] = reset_v;
    } else {
      const float u_pre = leak * u[l] + syn[l];
      if (u_pre >= threshold) {
        spike = 1.0f;
        u[l] = reset_v;
        refrac[l] = refractory;
      } else {
        u[l] = u_pre;
      }
    }
    out[l] = spike;
  }
}

}  // namespace

const LaneKernels kAvx2LaneKernels = {
    matvec_lanes, matvec_gather_lanes, conv_lanes_dense,
    conv_lanes_scatter, pool_lanes, lif_lanes,
};

}  // namespace snntest::tensor::simd
