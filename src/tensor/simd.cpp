#include "tensor/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "obs/report.hpp"
#include "tensor/simd_tables.hpp"
#include "util/logging.hpp"

namespace snntest::tensor::simd {

namespace {

const LaneKernels* table_for(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &kScalarLaneKernels;
    case Backend::kAvx2:
#if defined(SNNTEST_SIMD_AVX2)
      return &kAvx2LaneKernels;
#else
      return nullptr;
#endif
    case Backend::kNeon:
#if defined(SNNTEST_SIMD_NEON)
      return &kNeonLaneKernels;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool host_supports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(SNNTEST_SIMD_AVX2) && (defined(__x86_64__) || defined(__i386__))
      // cpuid check: the AVX2 table is compiled in whenever the compiler
      // accepts -mavx2, but only dispatchable on hosts that execute it.
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(SNNTEST_SIMD_NEON)
      return true;  // NEON is baseline ISA on aarch64
#else
      return false;
#endif
  }
  return false;
}

Backend startup_backend() {
  Backend selected = best_available_backend();
  const char* env = std::getenv("SNNTEST_SIMD");
  if (env && *env != '\0') {
    const std::string value(env);
    Backend requested;
    if (value == "auto") {
      // keep the default
    } else if (!parse_backend(value, requested)) {
      SNNTEST_LOG_WARN("SNNTEST_SIMD=%s not recognized (expected scalar|avx2|neon|auto); "
                       "using %s",
                       value.c_str(), backend_name(selected));
    } else if (!backend_available(requested)) {
      SNNTEST_LOG_WARN("SNNTEST_SIMD=%s unavailable on this host; using %s", value.c_str(),
                       backend_name(selected));
    } else {
      selected = requested;
    }
  }
  return selected;
}

struct Dispatch {
  explicit Dispatch(Backend selected) : table(table_for(selected)), backend(selected) {}
  std::atomic<const LaneKernels*> table;
  std::atomic<Backend> backend;
};

Dispatch& dispatch() {
  // Magic static: the SNNTEST_SIMD override is resolved exactly once, on the
  // first kernel call (or backend query), before any threads race on it.
  static Dispatch d(startup_backend());
  // Environment provenance: the run report records the backend the dispatch
  // actually selected, even for runs that never reach a campaign.
  static const bool reported = [] {
    obs::set_report_field("simd_backend",
                          std::string(backend_name(d.backend.load(std::memory_order_relaxed))));
    return true;
  }();
  (void)reported;
  return d;
}

}  // namespace

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
  }
  return "unknown";
}

bool parse_backend(const std::string& name, Backend& out) {
  if (name == "scalar") { out = Backend::kScalar; return true; }
  if (name == "avx2") { out = Backend::kAvx2; return true; }
  if (name == "neon") { out = Backend::kNeon; return true; }
  return false;
}

bool backend_available(Backend backend) {
  return table_for(backend) != nullptr && host_supports(backend);
}

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kNeon}) {
    if (backend_available(b)) out.push_back(b);
  }
  return out;
}

Backend best_available_backend() {
  if (backend_available(Backend::kAvx2)) return Backend::kAvx2;
  if (backend_available(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

Backend active_backend() { return dispatch().backend.load(std::memory_order_relaxed); }

bool force_backend(Backend backend) {
  if (!backend_available(backend)) return false;
  Dispatch& d = dispatch();
  d.table.store(table_for(backend), std::memory_order_relaxed);
  d.backend.store(backend, std::memory_order_relaxed);
  obs::set_report_field("simd_backend", std::string(backend_name(backend)));
  return true;
}

const LaneKernels& lane_ops() { return *dispatch().table.load(std::memory_order_relaxed); }

}  // namespace snntest::tensor::simd
