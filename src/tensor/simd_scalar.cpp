// Portable reference lane kernels — the bit-exactness contract every SIMD
// backend is tested against. The matvec bodies are the PR-5 lane kernels
// (formerly in ops.cpp), the conv/pool/LIF bodies the lane-network frame
// kernels (formerly file-local in snn/lane_network.cpp), moved here so every
// backend of one kernel lives behind the same dispatch table.
//
// This translation unit (like all simd_*.cpp) is compiled with
// -ffp-contract=off so no host contracts `w * x + acc` into an FMA that the
// explicit mul-then-add SIMD backends cannot reproduce.
#include "tensor/ops.hpp"
#include "tensor/simd.hpp"
#include "tensor/simd_tables.hpp"

namespace snntest::tensor::simd {
namespace {

// Compile-time lane count so the per-column lane loop fully unrolls into
// LANES independent accumulator registers. The double accumulation per
// (row, lane) visits columns in the same ascending order as the scalar
// kernels, so each lane's result is bit-identical to a scalar run.
template <size_t LANES>
void matvec_lanes_fixed(const float* a, size_t rows, size_t cols, const float* x_lanes,
                        float* y_lanes) {
  for (size_t r = 0; r < rows; ++r) {
    const float* row = a + r * cols;
    double acc[LANES] = {};
    for (size_t c = 0; c < cols; ++c) {
      const double w = row[c];
      const float* xv = x_lanes + c * LANES;
      for (size_t l = 0; l < LANES; ++l) acc[l] += w * xv[l];
    }
    float* yr = y_lanes + r * LANES;
    for (size_t l = 0; l < LANES; ++l) yr[l] += static_cast<float>(acc[l]);
  }
}

template <size_t LANES>
void matvec_gather_lanes_fixed(const float* a, size_t rows, size_t cols, const float* x_lanes,
                               const uint32_t* active, size_t num_active, float* y_lanes) {
  for (size_t r = 0; r < rows; ++r) {
    const float* row = a + r * cols;
    double acc[LANES] = {};
    for (size_t i = 0; i < num_active; ++i) {
      const uint32_t c = active[i];
      const double w = row[c];
      const float* xv = x_lanes + static_cast<size_t>(c) * LANES;
      for (size_t l = 0; l < LANES; ++l) acc[l] += w * xv[l];
    }
    float* yr = y_lanes + r * LANES;
    for (size_t l = 0; l < LANES; ++l) yr[l] += static_cast<float>(acc[l]);
  }
}

void matvec_lanes_generic(const float* a, size_t rows, size_t cols, const float* x_lanes,
                          size_t lanes, float* y_lanes) {
  for (size_t r = 0; r < rows; ++r) {
    const float* row = a + r * cols;
    double acc[kMaxLanes] = {};
    for (size_t c = 0; c < cols; ++c) {
      const double w = row[c];
      const float* xv = x_lanes + c * lanes;
      for (size_t l = 0; l < lanes; ++l) acc[l] += w * xv[l];
    }
    float* yr = y_lanes + r * lanes;
    for (size_t l = 0; l < lanes; ++l) yr[l] += static_cast<float>(acc[l]);
  }
}

void matvec_gather_lanes_generic(const float* a, size_t rows, size_t cols, const float* x_lanes,
                                 size_t lanes, const uint32_t* active, size_t num_active,
                                 float* y_lanes) {
  for (size_t r = 0; r < rows; ++r) {
    const float* row = a + r * cols;
    double acc[kMaxLanes] = {};
    for (size_t i = 0; i < num_active; ++i) {
      const uint32_t c = active[i];
      const double w = row[c];
      const float* xv = x_lanes + static_cast<size_t>(c) * lanes;
      for (size_t l = 0; l < lanes; ++l) acc[l] += w * xv[l];
    }
    float* yr = y_lanes + r * lanes;
    for (size_t l = 0; l < lanes; ++l) yr[l] += static_cast<float>(acc[l]);
  }
}

void matvec_lanes(const float* a, size_t rows, size_t cols, const float* x_lanes, size_t lanes,
                  float* y_lanes) {
  switch (lanes) {
    case 1: return matvec_lanes_fixed<1>(a, rows, cols, x_lanes, y_lanes);
    case 2: return matvec_lanes_fixed<2>(a, rows, cols, x_lanes, y_lanes);
    case 3: return matvec_lanes_fixed<3>(a, rows, cols, x_lanes, y_lanes);
    case 4: return matvec_lanes_fixed<4>(a, rows, cols, x_lanes, y_lanes);
    case 8: return matvec_lanes_fixed<8>(a, rows, cols, x_lanes, y_lanes);
    case 16: return matvec_lanes_fixed<16>(a, rows, cols, x_lanes, y_lanes);
    default: return matvec_lanes_generic(a, rows, cols, x_lanes, lanes, y_lanes);
  }
}

void matvec_gather_lanes(const float* a, size_t rows, size_t cols, const float* x_lanes,
                         size_t lanes, const uint32_t* active, size_t num_active,
                         float* y_lanes) {
  switch (lanes) {
    case 1: return matvec_gather_lanes_fixed<1>(a, rows, cols, x_lanes, active, num_active, y_lanes);
    case 2: return matvec_gather_lanes_fixed<2>(a, rows, cols, x_lanes, active, num_active, y_lanes);
    case 3: return matvec_gather_lanes_fixed<3>(a, rows, cols, x_lanes, active, num_active, y_lanes);
    case 4: return matvec_gather_lanes_fixed<4>(a, rows, cols, x_lanes, active, num_active, y_lanes);
    case 8: return matvec_gather_lanes_fixed<8>(a, rows, cols, x_lanes, active, num_active, y_lanes);
    case 16: return matvec_gather_lanes_fixed<16>(a, rows, cols, x_lanes, active, num_active, y_lanes);
    default:
      return matvec_gather_lanes_generic(a, rows, cols, x_lanes, lanes, active, num_active,
                                         y_lanes);
  }
}

/// Lane-strided dense conv: conv_forward_frame with per-lane double
/// accumulators fed in the identical (ic, ky, kx) term order.
void conv_lanes_dense(const ConvLaneGeom& g, const float* weights, const float* in_lanes,
                      size_t lanes, float* syn_lanes) {
  const size_t oh = g.out_height;
  const size_t ow = g.out_width;
  const size_t k = g.kernel;
  const size_t plane = g.in_height * g.in_width;
  for (size_t oc = 0; oc < g.out_channels; ++oc) {
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        double acc[kMaxLanes] = {};
        for (size_t ic = 0; ic < g.in_channels; ++ic) {
          const float* w_base = weights + ((oc * g.in_channels + ic) * k) * k;
          const float* in_base = in_lanes + ic * plane * lanes;
          for (size_t ky = 0; ky < k; ++ky) {
            const long iy = static_cast<long>(oy * g.stride + ky) - static_cast<long>(g.padding);
            if (iy < 0 || iy >= static_cast<long>(g.in_height)) continue;
            for (size_t kx = 0; kx < k; ++kx) {
              const long ix = static_cast<long>(ox * g.stride + kx) - static_cast<long>(g.padding);
              if (ix < 0 || ix >= static_cast<long>(g.in_width)) continue;
              const double w = w_base[ky * k + kx];
              const float* xv =
                  in_base + (iy * static_cast<long>(g.in_width) + ix) * static_cast<long>(lanes);
              for (size_t l = 0; l < lanes; ++l) acc[l] += w * xv[l];
            }
          }
        }
        float* out = syn_lanes + ((oc * oh + oy) * ow + ox) * lanes;
        for (size_t l = 0; l < lanes; ++l) out[l] = static_cast<float>(acc[l]);
      }
    }
  }
}

/// Lane-strided conv scatter over the union-active input pixels. Per lane
/// this is conv_forward_frame_sparse on a superset active list: pixels where
/// the lane is silent contribute exact +/-0.0 terms, so each lane matches
/// the scalar sparse (hence dense) kernel bit for bit.
void conv_lanes_scatter(const ConvLaneGeom& g, const float* weights, const float* in_lanes,
                        size_t lanes, const uint32_t* active, size_t num_active, double* acc,
                        float* syn_lanes) {
  const size_t oh = g.out_height;
  const size_t ow = g.out_width;
  const size_t k = g.kernel;
  const size_t out_size = g.output_size();
  const size_t plane = g.in_height * g.in_width;
  const long stride = static_cast<long>(g.stride);
  for (size_t i = 0; i < num_active; ++i) {
    const size_t flat = active[i];
    const size_t ic = flat / plane;
    const size_t rem = flat % plane;
    const size_t iy = rem / g.in_width;
    const size_t ix = rem % g.in_width;
    const float* vals = in_lanes + flat * lanes;
    for (size_t oc = 0; oc < g.out_channels; ++oc) {
      const float* w_base = weights + ((oc * g.in_channels + ic) * k) * k;
      double* acc_base = acc + oc * oh * ow * lanes;
      for (size_t ky = 0; ky < k; ++ky) {
        const long num_y = static_cast<long>(iy + g.padding) - static_cast<long>(ky);
        if (num_y < 0 || num_y % stride != 0) continue;
        const long oy = num_y / stride;
        if (oy >= static_cast<long>(oh)) continue;
        for (size_t kx = 0; kx < k; ++kx) {
          const long num_x = static_cast<long>(ix + g.padding) - static_cast<long>(kx);
          if (num_x < 0 || num_x % stride != 0) continue;
          const long ox = num_x / stride;
          if (ox >= static_cast<long>(ow)) continue;
          const double w = w_base[ky * k + kx];
          double* a = acc_base + (oy * static_cast<long>(ow) + ox) * static_cast<long>(lanes);
          for (size_t l = 0; l < lanes; ++l) a[l] += w * vals[l];
        }
      }
    }
  }
  for (size_t o = 0; o < out_size; ++o) {
    for (size_t l = 0; l < lanes; ++l) {
      syn_lanes[o * lanes + l] = static_cast<float>(acc[o * lanes + l]);
    }
  }
}

/// Lane-strided sum pool: float window sums in the scalar (wy, wx) order.
void pool_lanes(size_t channels, size_t in_height, size_t in_width, size_t window,
                const float* in_lanes, size_t lanes, float* syn_lanes) {
  const size_t oh = in_height / window;
  const size_t ow = in_width / window;
  for (size_t c = 0; c < channels; ++c) {
    const float* in_base = in_lanes + c * in_height * in_width * lanes;
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        float acc[kMaxLanes] = {};
        for (size_t wy = 0; wy < window; ++wy) {
          const size_t iy = oy * window + wy;
          for (size_t wx = 0; wx < window; ++wx) {
            const float* p = in_base + (iy * in_width + ox * window + wx) * lanes;
            for (size_t l = 0; l < lanes; ++l) acc[l] += p[l];
          }
        }
        float* out = syn_lanes + ((c * oh + oy) * ow + ox) * lanes;
        for (size_t l = 0; l < lanes; ++l) out[l] = acc[l];
      }
    }
  }
}

/// One neuron's LIF update across its lanes — the no-override kNormal fast
/// path of snn::LaneLif::step, verbatim.
void lif_lanes(float* u, int* refrac, const float* syn, float* out, size_t lanes, float leak,
               float threshold, float reset_v, int refractory) {
  for (size_t l = 0; l < lanes; ++l) {
    float spike = 0.0f;
    if (refrac[l] > 0) {
      --refrac[l];
      u[l] = reset_v;
    } else {
      const float u_pre = leak * u[l] + syn[l];
      if (u_pre >= threshold) {
        spike = 1.0f;
        u[l] = reset_v;
        refrac[l] = refractory;
      } else {
        u[l] = u_pre;
      }
    }
    out[l] = spike;
  }
}

}  // namespace

const LaneKernels kScalarLaneKernels = {
    matvec_lanes, matvec_gather_lanes, conv_lanes_dense,
    conv_lanes_scatter, pool_lanes, lif_lanes,
};

}  // namespace snntest::tensor::simd
