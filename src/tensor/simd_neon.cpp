// NEON (aarch64) lane kernels: 2-wide double accumulation and 4-wide float
// state update across lanes. Same bit-identity contract as simd_avx2.cpp:
// vcvt_f64_f32 is the exact float->double widening, vmulq/vaddq are the
// unfused IEEE ops (this TU compiles with -ffp-contract=off, which matters
// on aarch64 where the scalar kernels would otherwise contract to fmadd),
// vcvt_f32_f64 rounds nearest-even like static_cast<float>, and vcgeq_f32
// is the quiet >= with NaN -> false.
#if !defined(__aarch64__)
#error "simd_neon.cpp must be compiled for aarch64"
#endif

#include <arm_neon.h>

#include "tensor/simd_tables.hpp"

namespace snntest::tensor::simd {
namespace {

template <size_t LANES>
struct LaneBlocks {
  static constexpr size_t kVec = LANES / 2;   // 2-wide double blocks
  static constexpr size_t kTail = LANES % 2;  // scalar double tail
};

template <size_t LANES>
void matvec_lanes_fixed(const float* a, size_t rows, size_t cols, const float* x_lanes,
                        float* y_lanes) {
  constexpr size_t NB = LaneBlocks<LANES>::kVec;
  constexpr size_t TAIL = LaneBlocks<LANES>::kTail;
  for (size_t r = 0; r < rows; ++r) {
    const float* row = a + r * cols;
    float64x2_t acc[NB > 0 ? NB : 1];
    for (size_t b = 0; b < NB; ++b) acc[b] = vdupq_n_f64(0.0);
    double acc_tail[TAIL > 0 ? TAIL : 1] = {};
    for (size_t c = 0; c < cols; ++c) {
      const double w = row[c];
      const float* xv = x_lanes + c * LANES;
      if constexpr (NB > 0) {
        const float64x2_t wv = vdupq_n_f64(w);
        for (size_t b = 0; b < NB; ++b) {
          const float64x2_t xd = vcvt_f64_f32(vld1_f32(xv + 2 * b));
          acc[b] = vaddq_f64(acc[b], vmulq_f64(wv, xd));
        }
      }
      for (size_t t = 0; t < TAIL; ++t) acc_tail[t] += w * xv[2 * NB + t];
    }
    float* yr = y_lanes + r * LANES;
    for (size_t b = 0; b < NB; ++b) {
      const float32x2_t sum = vcvt_f32_f64(acc[b]);
      vst1_f32(yr + 2 * b, vadd_f32(vld1_f32(yr + 2 * b), sum));
    }
    for (size_t t = 0; t < TAIL; ++t) {
      yr[2 * NB + t] += static_cast<float>(acc_tail[t]);
    }
  }
}

template <size_t LANES>
void matvec_gather_lanes_fixed(const float* a, size_t rows, size_t cols, const float* x_lanes,
                               const uint32_t* active, size_t num_active, float* y_lanes) {
  constexpr size_t NB = LaneBlocks<LANES>::kVec;
  constexpr size_t TAIL = LaneBlocks<LANES>::kTail;
  for (size_t r = 0; r < rows; ++r) {
    const float* row = a + r * cols;
    float64x2_t acc[NB > 0 ? NB : 1];
    for (size_t b = 0; b < NB; ++b) acc[b] = vdupq_n_f64(0.0);
    double acc_tail[TAIL > 0 ? TAIL : 1] = {};
    for (size_t i = 0; i < num_active; ++i) {
      const uint32_t c = active[i];
      const double w = row[c];
      const float* xv = x_lanes + static_cast<size_t>(c) * LANES;
      if constexpr (NB > 0) {
        const float64x2_t wv = vdupq_n_f64(w);
        for (size_t b = 0; b < NB; ++b) {
          const float64x2_t xd = vcvt_f64_f32(vld1_f32(xv + 2 * b));
          acc[b] = vaddq_f64(acc[b], vmulq_f64(wv, xd));
        }
      }
      for (size_t t = 0; t < TAIL; ++t) acc_tail[t] += w * xv[2 * NB + t];
    }
    float* yr = y_lanes + r * LANES;
    for (size_t b = 0; b < NB; ++b) {
      const float32x2_t sum = vcvt_f32_f64(acc[b]);
      vst1_f32(yr + 2 * b, vadd_f32(vld1_f32(yr + 2 * b), sum));
    }
    for (size_t t = 0; t < TAIL; ++t) {
      yr[2 * NB + t] += static_cast<float>(acc_tail[t]);
    }
  }
}

template <size_t LANES>
void conv_lanes_dense_fixed(const ConvLaneGeom& g, const float* weights, const float* in_lanes,
                            float* syn_lanes) {
  constexpr size_t NB = LaneBlocks<LANES>::kVec;
  constexpr size_t TAIL = LaneBlocks<LANES>::kTail;
  const size_t oh = g.out_height;
  const size_t ow = g.out_width;
  const size_t k = g.kernel;
  const size_t plane = g.in_height * g.in_width;
  for (size_t oc = 0; oc < g.out_channels; ++oc) {
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        float64x2_t acc[NB > 0 ? NB : 1];
        for (size_t b = 0; b < NB; ++b) acc[b] = vdupq_n_f64(0.0);
        double acc_tail[TAIL > 0 ? TAIL : 1] = {};
        for (size_t ic = 0; ic < g.in_channels; ++ic) {
          const float* w_base = weights + ((oc * g.in_channels + ic) * k) * k;
          const float* in_base = in_lanes + ic * plane * LANES;
          for (size_t ky = 0; ky < k; ++ky) {
            const long iy = static_cast<long>(oy * g.stride + ky) - static_cast<long>(g.padding);
            if (iy < 0 || iy >= static_cast<long>(g.in_height)) continue;
            for (size_t kx = 0; kx < k; ++kx) {
              const long ix = static_cast<long>(ox * g.stride + kx) - static_cast<long>(g.padding);
              if (ix < 0 || ix >= static_cast<long>(g.in_width)) continue;
              const double w = w_base[ky * k + kx];
              const float* xv = in_base + (iy * static_cast<long>(g.in_width) + ix) *
                                              static_cast<long>(LANES);
              if constexpr (NB > 0) {
                const float64x2_t wv = vdupq_n_f64(w);
                for (size_t b = 0; b < NB; ++b) {
                  const float64x2_t xd = vcvt_f64_f32(vld1_f32(xv + 2 * b));
                  acc[b] = vaddq_f64(acc[b], vmulq_f64(wv, xd));
                }
              }
              for (size_t t = 0; t < TAIL; ++t) acc_tail[t] += w * xv[2 * NB + t];
            }
          }
        }
        float* out = syn_lanes + ((oc * oh + oy) * ow + ox) * LANES;
        for (size_t b = 0; b < NB; ++b) vst1_f32(out + 2 * b, vcvt_f32_f64(acc[b]));
        for (size_t t = 0; t < TAIL; ++t) out[2 * NB + t] = static_cast<float>(acc_tail[t]);
      }
    }
  }
}

template <size_t LANES>
void conv_lanes_scatter_fixed(const ConvLaneGeom& g, const float* weights, const float* in_lanes,
                              const uint32_t* active, size_t num_active, double* acc,
                              float* syn_lanes) {
  constexpr size_t NB = LaneBlocks<LANES>::kVec;
  constexpr size_t TAIL = LaneBlocks<LANES>::kTail;
  const size_t oh = g.out_height;
  const size_t ow = g.out_width;
  const size_t k = g.kernel;
  const size_t out_size = g.output_size();
  const size_t plane = g.in_height * g.in_width;
  const long stride = static_cast<long>(g.stride);
  for (size_t i = 0; i < num_active; ++i) {
    const size_t flat = active[i];
    const size_t ic = flat / plane;
    const size_t rem = flat % plane;
    const size_t iy = rem / g.in_width;
    const size_t ix = rem % g.in_width;
    const float* vals = in_lanes + flat * LANES;
    float64x2_t vals_pd[NB > 0 ? NB : 1];
    for (size_t b = 0; b < NB; ++b) vals_pd[b] = vcvt_f64_f32(vld1_f32(vals + 2 * b));
    for (size_t oc = 0; oc < g.out_channels; ++oc) {
      const float* w_base = weights + ((oc * g.in_channels + ic) * k) * k;
      double* acc_base = acc + oc * oh * ow * LANES;
      for (size_t ky = 0; ky < k; ++ky) {
        const long num_y = static_cast<long>(iy + g.padding) - static_cast<long>(ky);
        if (num_y < 0 || num_y % stride != 0) continue;
        const long oy = num_y / stride;
        if (oy >= static_cast<long>(oh)) continue;
        for (size_t kx = 0; kx < k; ++kx) {
          const long num_x = static_cast<long>(ix + g.padding) - static_cast<long>(kx);
          if (num_x < 0 || num_x % stride != 0) continue;
          const long ox = num_x / stride;
          if (ox >= static_cast<long>(ow)) continue;
          const double w = w_base[ky * k + kx];
          double* a = acc_base + (oy * static_cast<long>(ow) + ox) * static_cast<long>(LANES);
          if constexpr (NB > 0) {
            const float64x2_t wv = vdupq_n_f64(w);
            for (size_t b = 0; b < NB; ++b) {
              const float64x2_t cur = vld1q_f64(a + 2 * b);
              vst1q_f64(a + 2 * b, vaddq_f64(cur, vmulq_f64(wv, vals_pd[b])));
            }
          }
          for (size_t t = 0; t < TAIL; ++t) a[2 * NB + t] += w * vals[2 * NB + t];
        }
      }
    }
  }
  const size_t total = out_size * LANES;
  size_t f = 0;
  for (; f + 2 <= total; f += 2) {
    vst1_f32(syn_lanes + f, vcvt_f32_f64(vld1q_f64(acc + f)));
  }
  for (; f < total; ++f) syn_lanes[f] = static_cast<float>(acc[f]);
}

template <size_t LANES>
void pool_lanes_fixed(size_t channels, size_t in_height, size_t in_width, size_t window,
                      const float* in_lanes, float* syn_lanes) {
  constexpr size_t NB4 = LANES / 4;   // 4-wide float blocks
  constexpr size_t TAIL4 = LANES % 4;
  const size_t oh = in_height / window;
  const size_t ow = in_width / window;
  for (size_t c = 0; c < channels; ++c) {
    const float* in_base = in_lanes + c * in_height * in_width * LANES;
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        float32x4_t acc[NB4 > 0 ? NB4 : 1];
        for (size_t b = 0; b < NB4; ++b) acc[b] = vdupq_n_f32(0.0f);
        float acc_tail[TAIL4 > 0 ? TAIL4 : 1] = {};
        for (size_t wy = 0; wy < window; ++wy) {
          const size_t iy = oy * window + wy;
          for (size_t wx = 0; wx < window; ++wx) {
            const float* p = in_base + (iy * in_width + ox * window + wx) * LANES;
            for (size_t b = 0; b < NB4; ++b) acc[b] = vaddq_f32(acc[b], vld1q_f32(p + 4 * b));
            for (size_t t = 0; t < TAIL4; ++t) acc_tail[t] += p[4 * NB4 + t];
          }
        }
        float* out = syn_lanes + ((c * oh + oy) * ow + ox) * LANES;
        for (size_t b = 0; b < NB4; ++b) vst1q_f32(out + 4 * b, acc[b]);
        for (size_t t = 0; t < TAIL4; ++t) out[4 * NB4 + t] = acc_tail[t];
      }
    }
  }
}

#define SNNTEST_LANE_SWITCH(expr_macro)                                      \
  switch (lanes) {                                                           \
    expr_macro(1) expr_macro(2) expr_macro(3) expr_macro(4)                  \
    expr_macro(5) expr_macro(6) expr_macro(7) expr_macro(8)                  \
    expr_macro(9) expr_macro(10) expr_macro(11) expr_macro(12)               \
    expr_macro(13) expr_macro(14) expr_macro(15) expr_macro(16)              \
    default: return;                                                         \
  }

void matvec_lanes(const float* a, size_t rows, size_t cols, const float* x_lanes, size_t lanes,
                  float* y_lanes) {
#define SNNTEST_CASE(n) \
  case n: return matvec_lanes_fixed<n>(a, rows, cols, x_lanes, y_lanes);
  SNNTEST_LANE_SWITCH(SNNTEST_CASE)
#undef SNNTEST_CASE
}

void matvec_gather_lanes(const float* a, size_t rows, size_t cols, const float* x_lanes,
                         size_t lanes, const uint32_t* active, size_t num_active,
                         float* y_lanes) {
#define SNNTEST_CASE(n) \
  case n: return matvec_gather_lanes_fixed<n>(a, rows, cols, x_lanes, active, num_active, y_lanes);
  SNNTEST_LANE_SWITCH(SNNTEST_CASE)
#undef SNNTEST_CASE
}

void conv_lanes_dense(const ConvLaneGeom& g, const float* weights, const float* in_lanes,
                      size_t lanes, float* syn_lanes) {
#define SNNTEST_CASE(n) \
  case n: return conv_lanes_dense_fixed<n>(g, weights, in_lanes, syn_lanes);
  SNNTEST_LANE_SWITCH(SNNTEST_CASE)
#undef SNNTEST_CASE
}

void conv_lanes_scatter(const ConvLaneGeom& g, const float* weights, const float* in_lanes,
                        size_t lanes, const uint32_t* active, size_t num_active, double* acc,
                        float* syn_lanes) {
#define SNNTEST_CASE(n) \
  case n: return conv_lanes_scatter_fixed<n>(g, weights, in_lanes, active, num_active, acc, \
                                             syn_lanes);
  SNNTEST_LANE_SWITCH(SNNTEST_CASE)
#undef SNNTEST_CASE
}

void pool_lanes(size_t channels, size_t in_height, size_t in_width, size_t window,
                const float* in_lanes, size_t lanes, float* syn_lanes) {
#define SNNTEST_CASE(n) \
  case n: return pool_lanes_fixed<n>(channels, in_height, in_width, window, in_lanes, syn_lanes);
  SNNTEST_LANE_SWITCH(SNNTEST_CASE)
#undef SNNTEST_CASE
}

#undef SNNTEST_LANE_SWITCH

void lif_lanes(float* u, int* refrac, const float* syn, float* out, size_t lanes, float leak,
               float threshold, float reset_v, int refractory) {
  const float32x4_t leak_v = vdupq_n_f32(leak);
  const float32x4_t thr_v = vdupq_n_f32(threshold);
  const float32x4_t reset_ps = vdupq_n_f32(reset_v);
  const float32x4_t one_ps = vdupq_n_f32(1.0f);
  const float32x4_t zero_ps = vdupq_n_f32(0.0f);
  const int32x4_t refractory_v = vdupq_n_s32(refractory);
  const int32x4_t zero_i = vdupq_n_s32(0);
  size_t l = 0;
  for (; l + 4 <= lanes; l += 4) {
    const float32x4_t u_v = vld1q_f32(u + l);
    const float32x4_t syn_v = vld1q_f32(syn + l);
    const int32x4_t rf_v = vld1q_s32(refrac + l);
    const uint32x4_t in_refrac = vcgtq_s32(rf_v, zero_i);
    // Unfused mul + add (this TU is -ffp-contract=off), matching the scalar
    // `leak * u + syn` exactly.
    const float32x4_t u_pre = vaddq_f32(vmulq_f32(leak_v, u_v), syn_v);
    const uint32x4_t ge = vcgeq_f32(u_pre, thr_v);  // quiet; NaN -> false
    const uint32x4_t spike = vbicq_u32(ge, in_refrac);
    const float32x4_t u_new = vbslq_f32(vorrq_u32(in_refrac, spike), reset_ps, u_pre);
    // True-lane mask is all-ones == -1: adding it decrements the counter.
    const int32x4_t rf_dec = vaddq_s32(rf_v, vreinterpretq_s32_u32(in_refrac));
    const int32x4_t rf_new = vbslq_s32(spike, refractory_v, rf_dec);
    vst1q_f32(u + l, u_new);
    vst1q_s32(refrac + l, rf_new);
    vst1q_f32(out + l, vbslq_f32(spike, one_ps, zero_ps));
  }
  for (; l < lanes; ++l) {
    float spike = 0.0f;
    if (refrac[l] > 0) {
      --refrac[l];
      u[l] = reset_v;
    } else {
      const float u_pre = leak * u[l] + syn[l];
      if (u_pre >= threshold) {
        spike = 1.0f;
        u[l] = reset_v;
        refrac[l] = refractory;
      } else {
        u[l] = u_pre;
      }
    }
    out[l] = spike;
  }
}

}  // namespace

const LaneKernels kNeonLaneKernels = {
    matvec_lanes, matvec_gather_lanes, conv_lanes_dense,
    conv_lanes_scatter, pool_lanes, lif_lanes,
};

}  // namespace snntest::tensor::simd
