#include "tensor/tensor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace snntest::tensor {

size_t Shape::numel() const {
  size_t n = 1;
  for (size_t d : dims_) n *= d;
  return dims_.empty() ? 0 : n;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ", ";
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_.numel(), 0.0f) {}

Tensor::Tensor(Shape shape, float fill) : shape_(std::move(shape)), data_(shape_.numel(), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_.numel() != data_.size()) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_.to_string());
  }
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::reshape(Shape new_shape) {
  if (new_shape.numel() != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch (" +
                                shape_.to_string() + " -> " + new_shape.to_string() + ")");
  }
  shape_ = std::move(new_shape);
}

void Tensor::resize_zero(Shape new_shape) {
  const size_t n = new_shape.numel();
  shape_ = std::move(new_shape);
  data_.assign(n, 0.0f);  // vector::assign reuses capacity
}

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

float Tensor::max_value() const {
  if (data_.empty()) throw std::logic_error("Tensor::max_value on empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::min_value() const {
  if (data_.empty()) throw std::logic_error("Tensor::min_value on empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

size_t Tensor::count_nonzero() const {
  size_t n = 0;
  for (float v : data_) n += (v > 0.5f);
  return n;
}

}  // namespace snntest::tensor
