#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/simd.hpp"

namespace snntest::tensor {

void matvec_accumulate(const float* a, size_t rows, size_t cols, const float* x, float* y) {
  for (size_t r = 0; r < rows; ++r) {
    const float* row = a + r * cols;
    double acc = 0.0;
    for (size_t c = 0; c < cols; ++c) acc += static_cast<double>(row[c]) * x[c];
    y[r] += static_cast<float>(acc);
  }
}

size_t extract_active(const float* frame, size_t n, std::vector<uint32_t>& scratch) {
  scratch.clear();
  for (size_t i = 0; i < n; ++i) {
    if (frame[i] != 0.0f) scratch.push_back(static_cast<uint32_t>(i));
  }
  return scratch.size();
}

SpikeFrameView make_frame_view(const float* frame, size_t n, std::vector<uint32_t>& scratch) {
  SpikeFrameView view;
  view.frame = frame;
  view.size = n;
  view.num_active = extract_active(frame, n, scratch);
  view.active = scratch.data();
  return view;
}

void matvec_accumulate_gather(const float* a, size_t rows, size_t cols, const float* x,
                              const uint32_t* active, size_t num_active, float* y) {
  for (size_t r = 0; r < rows; ++r) {
    const float* row = a + r * cols;
    double acc = 0.0;
    for (size_t i = 0; i < num_active; ++i) {
      const uint32_t c = active[i];
      acc += static_cast<double>(row[c]) * x[c];
    }
    y[r] += static_cast<float>(acc);
  }
}

// The lane-strided kernel bodies live behind the SIMD dispatch layer
// (simd_scalar.cpp / simd_avx2.cpp / simd_neon.cpp); the public entry
// points here keep the argument validation and then jump through the
// active backend's table.
void matvec_accumulate_lanes(const float* a, size_t rows, size_t cols, const float* x_lanes,
                             size_t lanes, float* y_lanes) {
  if (lanes == 0 || lanes > kMaxLanes) {
    throw std::invalid_argument("matvec_accumulate_lanes: bad lane count");
  }
  simd::lane_ops().matvec_lanes(a, rows, cols, x_lanes, lanes, y_lanes);
}

void matvec_accumulate_gather_lanes(const float* a, size_t rows, size_t cols,
                                    const float* x_lanes, size_t lanes, const uint32_t* active,
                                    size_t num_active, float* y_lanes) {
  if (lanes == 0 || lanes > kMaxLanes) {
    throw std::invalid_argument("matvec_accumulate_gather_lanes: bad lane count");
  }
  simd::lane_ops().matvec_gather_lanes(a, rows, cols, x_lanes, lanes, active, num_active,
                                       y_lanes);
}

size_t extract_active_union(const float* x_lanes, size_t n, size_t lanes,
                            std::vector<uint32_t>& scratch) {
  scratch.clear();
  for (size_t c = 0; c < n; ++c) {
    const float* p = x_lanes + c * lanes;
    bool any = false;
    for (size_t l = 0; l < lanes; ++l) any = any || p[l] != 0.0f;
    if (any) scratch.push_back(static_cast<uint32_t>(c));
  }
  return scratch.size();
}

void matvec_transpose_accumulate(const float* a, size_t rows, size_t cols, const float* x,
                                 float* y) {
  for (size_t r = 0; r < rows; ++r) {
    const float xr = x[r];
    if (xr == 0.0f) continue;  // spike frames are sparse; skip silent rows
    const float* row = a + r * cols;
    for (size_t c = 0; c < cols; ++c) y[c] += row[c] * xr;
  }
}

void outer_accumulate(float* a, size_t rows, size_t cols, const float* u, const float* v,
                      float alpha) {
  for (size_t r = 0; r < rows; ++r) {
    const float ur = alpha * u[r];
    if (ur == 0.0f) continue;
    float* row = a + r * cols;
    for (size_t c = 0; c < cols; ++c) row[c] += ur * v[c];
  }
}

void outer_accumulate_gather(float* a, size_t rows, size_t cols, const float* u, const float* v,
                             const uint32_t* active, size_t num_active, float alpha) {
  for (size_t r = 0; r < rows; ++r) {
    const float ur = alpha * u[r];
    if (ur == 0.0f) continue;  // matches the dense kernel's silent-row skip
    float* row = a + r * cols;
    for (size_t i = 0; i < num_active; ++i) {
      const uint32_t c = active[i];
      row[c] += ur * v[c];
    }
  }
}

void add(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void axpy(float* a, const float* b, float s, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] += s * b[i];
}

void scale(float* a, float s, size_t n) {
  for (size_t i = 0; i < n; ++i) a[i] *= s;
}

double dot(const float* a, const float* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

void clamp(float* a, size_t n, float lo, float hi) {
  for (size_t i = 0; i < n; ++i) a[i] = std::min(hi, std::max(lo, a[i]));
}

double l1_distance(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("l1_distance: shape mismatch " + a.shape().to_string() + " vs " +
                                b.shape().to_string());
  }
  double acc = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < a.numel(); ++i) acc += std::fabs(static_cast<double>(pa[i]) - pb[i]);
  return acc;
}

size_t argmax(const float* a, size_t n) {
  if (n == 0) throw std::logic_error("argmax on empty range");
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

}  // namespace snntest::tensor
