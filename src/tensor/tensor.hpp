// Dense row-major float tensor.
//
// This is deliberately a small, concrete class rather than a general
// autodiff framework: the SNN engine implements backward passes by hand
// (layer-wise BPTT, Sec. IV of the paper relies on "the same backpropagation
// pipeline that is used during the training of the SNN"), so all the tensor
// has to do is own contiguous storage and provide shape-checked indexing.
//
// Conventions used across the codebase:
//  * Spike trains are stored time-major as [T, N] (one frame of N neuron
//    values per timestep) so a single timestep is a contiguous slice.
//  * Spatial feature maps are flattened channel-major: index =
//    (c * height + y) * width + x.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace snntest::tensor {

/// Shape of a tensor: up to 4 dimensions, stored explicitly.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<size_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<size_t> dims) : dims_(std::move(dims)) {}

  size_t rank() const { return dims_.size(); }
  size_t dim(size_t i) const {
    assert(i < dims_.size());
    return dims_[i];
  }
  size_t numel() const;
  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  const std::vector<size_t>& dims() const { return dims_; }
  std::string to_string() const;

 private:
  std::vector<size_t> dims_;
};

/// Contiguous row-major float tensor with value semantics.
class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }

  const Shape& shape() const { return shape_; }
  size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

  float& operator[](size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  float operator[](size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  /// 2-D indexing for [rows, cols] tensors (e.g. spike trains [T, N]).
  float& at(size_t r, size_t c) {
    assert(shape_.rank() == 2);
    assert(r < shape_.dim(0) && c < shape_.dim(1));
    return data_[r * shape_.dim(1) + c];
  }
  float at(size_t r, size_t c) const {
    assert(shape_.rank() == 2);
    assert(r < shape_.dim(0) && c < shape_.dim(1));
    return data_[r * shape_.dim(1) + c];
  }

  /// Pointer to row `r` of a rank-2 tensor (a timestep frame).
  float* row(size_t r) {
    assert(shape_.rank() == 2 && r < shape_.dim(0));
    return data_.data() + r * shape_.dim(1);
  }
  const float* row(size_t r) const {
    assert(shape_.rank() == 2 && r < shape_.dim(0));
    return data_.data() + r * shape_.dim(1);
  }

  void fill(float v);

  /// Reshape in place; the number of elements must not change.
  void reshape(Shape new_shape);

  /// Take shape `new_shape` and zero all elements, reusing the existing
  /// storage capacity (no reallocation once the tensor has been sized to
  /// the largest shape it sees). Scratch-buffer counterpart of
  /// constructing a fresh zero tensor — used by Layer::forward_into so the
  /// fault-simulation hot loop stops allocating per fault.
  void resize_zero(Shape new_shape);

  /// Sum of all elements (double accumulator for stability).
  double sum() const;
  float max_value() const;
  float min_value() const;

  /// Count of elements > 0.5 — spike count for binary tensors.
  size_t count_nonzero() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace snntest::tensor
