// Free-function numeric kernels on raw float spans.
//
// The hot loops of the SNN engine (synaptic integration, BPTT accumulation)
// operate on per-timestep frames; these helpers keep those loops in one
// audited place. All functions are bounds-unchecked in release builds —
// callers pass sizes that come from validated Shape objects.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace snntest::tensor {

/// y += A x, with A stored row-major [rows, cols]: y[r] += sum_c A[r,c]*x[c].
void matvec_accumulate(const float* a, size_t rows, size_t cols, const float* x, float* y);

/// One spike frame plus the ascending indices of its nonzero entries.
/// Spike frames are binary almost everywhere in this codebase, so a frame at
/// low activity is described completely by a short index list; the sparse
/// kernels below consume exactly this view.
struct SpikeFrameView {
  const float* frame = nullptr;
  size_t size = 0;
  const uint32_t* active = nullptr;  // ascending indices of nonzero entries
  size_t num_active = 0;

  double density() const {
    return size == 0 ? 0.0 : static_cast<double>(num_active) / static_cast<double>(size);
  }
};

/// Collect the ascending indices of nonzero entries of `frame` into
/// `scratch` (overwritten) and return the count. Exact zeros (either sign)
/// are inactive; any other value is active, so the extraction is valid for
/// relaxed (non-binary) frames too.
size_t extract_active(const float* frame, size_t n, std::vector<uint32_t>& scratch);

/// extract_active + view assembly in one call; `scratch` owns the indices.
SpikeFrameView make_frame_view(const float* frame, size_t n, std::vector<uint32_t>& scratch);

/// Sparse y += A x over the active entries of x only:
/// y[r] += sum_{c in active} A[r,c]*x[c].
///
/// Bit-identical to matvec_accumulate when `active` lists exactly the
/// nonzero entries of x in ascending order: both kernels accumulate the
/// same ordered sequence of double products per row, and the terms the
/// sparse kernel skips are exact +/-0.0 contributions, which never change a
/// double accumulator that starts at +0.0.
void matvec_accumulate_gather(const float* a, size_t rows, size_t cols, const float* x,
                              const uint32_t* active, size_t num_active, float* y);

/// Sparse rank-1 update over the active entries of v only:
/// A[r,c] += alpha * u[r] * v[c] for c in active.
///
/// Bit-identical to outer_accumulate when `active` lists exactly the
/// nonzero entries of v in ascending order: each accumulator A[r,c]
/// receives the identical float term (or none), and the skipped terms are
/// exact +/-0.0 additions. A +/-0.0 add can only change an accumulator
/// that currently holds -0.0, and a gradient accumulator zeroed to +0.0
/// can never reach -0.0 through float additions (x + y == -0.0 requires
/// x == y == -0.0), so skipping is exact. Used by the sparse backward
/// paths for dL/dW += grad_syn (x) saved_input.
void outer_accumulate_gather(float* a, size_t rows, size_t cols, const float* u, const float* v,
                             const uint32_t* active, size_t num_active, float alpha);

// --- lane-strided kernels (parallel fault simulation, DESIGN.md §12) ----
//
// A lane frame packs W independent simulations of the same layer into one
// buffer, strided lane-minor: element (c, lane) lives at x[c*lanes + lane].
// One traversal of the weight matrix then feeds W accumulator columns, so
// the weights are streamed from memory once per frame instead of once per
// fault, and the per-lane double accumulators break the serial dependency
// chain of the scalar kernel (W independent chains per row).

/// Hard upper bound on the lane count of the lane kernels (fixed-size
/// accumulator arrays; EngineConfig::lane_width is clamped to this).
inline constexpr size_t kMaxLanes = 16;

/// Lane-strided y += A x: y[r*lanes+l] += sum_c A[r,c] * x[c*lanes+l].
/// Each lane accumulates the identical ordered double sum the scalar
/// matvec_accumulate computes, so every lane is bit-identical to a scalar
/// run on that lane's frame. `lanes` must be in [1, kMaxLanes].
void matvec_accumulate_lanes(const float* a, size_t rows, size_t cols, const float* x_lanes,
                             size_t lanes, float* y_lanes);

/// Lane-strided sparse matvec over `active` columns (ascending). Bit-
/// identical to matvec_accumulate_lanes when `active` covers every column
/// that is nonzero in at least one lane: a skipped column is zero in every
/// lane, so the skipped terms are exact +/-0.0 contributions per lane (the
/// same argument as matvec_accumulate_gather).
void matvec_accumulate_gather_lanes(const float* a, size_t rows, size_t cols,
                                    const float* x_lanes, size_t lanes, const uint32_t* active,
                                    size_t num_active, float* y_lanes);

/// Ascending indices c where lane frame `x_lanes` is nonzero in ANY lane —
/// the union active set driving the lane gather kernel above.
size_t extract_active_union(const float* x_lanes, size_t n, size_t lanes,
                            std::vector<uint32_t>& scratch);

/// y += A^T x: y[c] += sum_r A[r,c]*x[r].
void matvec_transpose_accumulate(const float* a, size_t rows, size_t cols, const float* x,
                                 float* y);

/// Rank-1 update: A[r,c] += alpha * u[r] * v[c].
void outer_accumulate(float* a, size_t rows, size_t cols, const float* u, const float* v,
                      float alpha);

/// out[i] = a[i] + b[i].
void add(const float* a, const float* b, float* out, size_t n);
/// a[i] += s * b[i].
void axpy(float* a, const float* b, float s, size_t n);
/// a[i] *= s.
void scale(float* a, float s, size_t n);
/// dot product with double accumulation.
double dot(const float* a, const float* b, size_t n);

/// Elementwise clamp into [lo, hi].
void clamp(float* a, size_t n, float lo, float hi);

/// L1 distance between two equal-shape tensors: sum |a - b|.
double l1_distance(const Tensor& a, const Tensor& b);

/// Index of maximum element (first on ties).
size_t argmax(const float* a, size_t n);

}  // namespace snntest::tensor
