// Free-function numeric kernels on raw float spans.
//
// The hot loops of the SNN engine (synaptic integration, BPTT accumulation)
// operate on per-timestep frames; these helpers keep those loops in one
// audited place. All functions are bounds-unchecked in release builds —
// callers pass sizes that come from validated Shape objects.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace snntest::tensor {

/// y += A x, with A stored row-major [rows, cols]: y[r] += sum_c A[r,c]*x[c].
void matvec_accumulate(const float* a, size_t rows, size_t cols, const float* x, float* y);

/// y += A^T x: y[c] += sum_r A[r,c]*x[r].
void matvec_transpose_accumulate(const float* a, size_t rows, size_t cols, const float* x,
                                 float* y);

/// Rank-1 update: A[r,c] += alpha * u[r] * v[c].
void outer_accumulate(float* a, size_t rows, size_t cols, const float* u, const float* v,
                      float alpha);

/// out[i] = a[i] + b[i].
void add(const float* a, const float* b, float* out, size_t n);
/// a[i] += s * b[i].
void axpy(float* a, const float* b, float s, size_t n);
/// a[i] *= s.
void scale(float* a, float s, size_t n);
/// dot product with double accumulation.
double dot(const float* a, const float* b, size_t n);

/// Elementwise clamp into [lo, hi].
void clamp(float* a, size_t n, float lo, float hi);

/// L1 distance between two equal-shape tensors: sum |a - b|.
double l1_distance(const Tensor& a, const Tensor& b);

/// Index of maximum element (first on ties).
size_t argmax(const float* a, size_t n);

}  // namespace snntest::tensor
