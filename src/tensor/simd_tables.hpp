// Internal: per-backend kernel tables linked into the dispatcher. The AVX2
// and NEON tables exist only when the matching SNNTEST_SIMD_* macro is set
// by CMake (which also isolates the ISA flags to those translation units).
#pragma once

#include "tensor/simd.hpp"

namespace snntest::tensor::simd {

extern const LaneKernels kScalarLaneKernels;
#if defined(SNNTEST_SIMD_AVX2)
extern const LaneKernels kAvx2LaneKernels;
#endif
#if defined(SNNTEST_SIMD_NEON)
extern const LaneKernels kNeonLaneKernels;
#endif

}  // namespace snntest::tensor::simd
