// Runtime-dispatched SIMD backends for the lane-strided kernels.
//
// The lane layout (DESIGN.md §12) is lane-minor — element (c, lane) of a
// lane frame lives at x[c*lanes + lane] — so the W independent per-lane
// accumulators of one row/pixel sit contiguously in memory. Vectorizing
// ACROSS lanes therefore never reorders any lane's own accumulation: a
// 4-wide AVX2 double add performs four independent lane updates in one
// instruction, each lane still seeing exactly the ordered scalar sum the
// portable kernel computes. That is why every backend below is bit-identical
// to the scalar engine (enforced by tests/test_simd.cpp and the
// backend-forced campaign fuzz in tests/test_campaign.cpp):
//
//  * identical per-lane term order — vector width divides across lanes,
//    never across the reduction dimension;
//  * identical roundings — explicit mul-then-add intrinsics (no FMA; the
//    SIMD translation units also compile with -ffp-contract=off, and the
//    scalar reference kernels pin the same flag so no host contracts one
//    side and not the other);
//  * identical branch semantics — the LIF update uses ordered-quiet
//    compares and blends that replicate the scalar if/else per lane.
//
// Backend selection happens once, on first use: AVX2 via cpuid
// (__builtin_cpu_supports) on x86-64, NEON on aarch64 (baseline ISA), the
// portable scalar code everywhere else. `SNNTEST_SIMD=scalar|avx2|neon|auto`
// overrides the choice (unavailable/unknown values warn once and fall back
// to the best available backend). Tests and benches can also switch
// programmatically with force_backend().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace snntest::tensor::simd {

enum class Backend : uint8_t {
  kScalar = 0,  // portable reference kernels (always available)
  kAvx2 = 1,    // x86-64 AVX2: 4-wide f64 / 8-wide f32 across lanes
  kNeon = 2,    // aarch64 NEON: 2-wide f64 / 4-wide f32 across lanes
};

/// Stable lower-case name ("scalar", "avx2", "neon") for logs and reports.
const char* backend_name(Backend backend);

/// Parse a backend name (as accepted by SNNTEST_SIMD, case-sensitive).
/// Returns false for unknown names; "auto" is NOT a backend (callers map it
/// to best_available_backend()).
bool parse_backend(const std::string& name, Backend& out);

/// Compiled in AND usable on this host (cpuid / baseline-ISA check).
bool backend_available(Backend backend);

/// Backends usable on this host, scalar first.
std::vector<Backend> available_backends();

/// Best usable backend on this host (the startup default when SNNTEST_SIMD
/// is unset or "auto").
Backend best_available_backend();

/// The backend the lane kernels currently dispatch to.
Backend active_backend();

/// Force a specific backend (tests/benches). Returns false — leaving the
/// active backend unchanged — when `backend` is unavailable on this host.
/// Not thread-safe against in-flight kernels; switch between runs only.
bool force_backend(Backend backend);

/// Conv geometry for the lane conv kernels, mirrored from snn::Conv2dSpec
/// as a plain tensor-level POD (the dispatch layer cannot depend on snn).
struct ConvLaneGeom {
  size_t in_channels = 0;
  size_t in_height = 0;
  size_t in_width = 0;
  size_t out_channels = 0;
  size_t out_height = 0;
  size_t out_width = 0;
  size_t kernel = 0;
  size_t stride = 1;
  size_t padding = 0;

  size_t input_size() const { return in_channels * in_height * in_width; }
  size_t output_size() const { return out_channels * out_height * out_width; }
};

/// One backend's lane-kernel table. All pointers are non-null in every
/// registered table; `lanes` is always in [1, kMaxLanes] (callers validate).
struct LaneKernels {
  /// Lane-strided y += A x (see tensor::matvec_accumulate_lanes).
  void (*matvec_lanes)(const float* a, size_t rows, size_t cols, const float* x_lanes,
                       size_t lanes, float* y_lanes);
  /// Lane-strided sparse matvec over ascending `active` columns.
  void (*matvec_gather_lanes)(const float* a, size_t rows, size_t cols, const float* x_lanes,
                              size_t lanes, const uint32_t* active, size_t num_active,
                              float* y_lanes);
  /// Dense lane conv: syn[(pixel)*lanes + l] = ordered double sum per lane.
  void (*conv_lanes_dense)(const ConvLaneGeom& geom, const float* weights, const float* in_lanes,
                           size_t lanes, float* syn_lanes);
  /// Scatter lane conv over the union-active input pixels. `acc` is a
  /// caller-zeroed [output_size * lanes] double buffer; the kernel scatters
  /// into it and then narrows into syn_lanes.
  void (*conv_lanes_scatter)(const ConvLaneGeom& geom, const float* weights,
                             const float* in_lanes, size_t lanes, const uint32_t* active,
                             size_t num_active, double* acc, float* syn_lanes);
  /// Lane sum pool: float window sums in the scalar (wy, wx) order.
  void (*pool_lanes)(size_t channels, size_t in_height, size_t in_width, size_t window,
                     const float* in_lanes, size_t lanes, float* syn_lanes);
  /// One neuron's LIF update across its lanes (the no-override kNormal fast
  /// path of snn::LaneLif::step): per lane,
  ///   refrac > 0 ? (--refrac, u = reset, spike 0)
  ///              : u_pre = leak*u + syn; u_pre >= threshold ?
  ///                  (spike 1, u = reset, refrac = refractory) : u = u_pre.
  void (*lif_lanes)(float* u, int* refrac, const float* syn, float* out, size_t lanes,
                    float leak, float threshold, float reset_v, int refractory);
};

/// The active backend's kernel table. Cheap (one relaxed atomic load), but
/// hot loops should still hoist the reference out of per-frame loops.
const LaneKernels& lane_ops();

}  // namespace snntest::tensor::simd
