#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace snntest::obs {
namespace {

struct ReportState {
  std::mutex mutex;
  std::map<std::string, std::string> fields;  // pre-rendered JSON values
  std::string metrics_path;
  std::string trace_path;
  bool exit_installed = false;
};

ReportState& state() {
  // Leaked: the atexit handler below reads it during shutdown.
  static ReportState* s = new ReportState;
  return *s;
}

/// JSON number rendering; non-finite values are not valid JSON -> null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void exit_writer() {
  ReportState& s = state();
  std::string metrics_path, trace_path;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    metrics_path = s.metrics_path;
    trace_path = s.trace_path;
  }
  if (!trace_path.empty()) write_chrome_trace(trace_path);
  if (!metrics_path.empty()) write_metrics_report(metrics_path);
}

}  // namespace

void set_report_field(const std::string& key, const std::string& value) {
  ReportState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.fields[key] = "\"" + util::json_escape(value) + "\"";
}

void set_report_field(const std::string& key, double value) {
  ReportState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.fields[key] = json_number(value);
}

void set_report_field(const std::string& key, uint64_t value) {
  ReportState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.fields[key] = std::to_string(value);
}

void set_report_field(const std::string& key, bool value) {
  ReportState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.fields[key] = value ? "true" : "false";
}

std::string metrics_report_json() {
  const Registry::Snapshot snap = Registry::instance().snapshot();
  std::string out = "{\"schema\":\"snntest-metrics-v1\",\"fields\":{";
  {
    ReportState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    // Environment provenance every report carries: filled at render time so
    // it can never be forgotten, but an explicit set_report_field wins.
    std::map<std::string, std::string> fields = s.fields;
    fields.emplace("hardware_threads",
                   std::to_string(std::thread::hardware_concurrency()));
    bool first = true;
    for (const auto& [key, rendered] : fields) {
      if (!first) out += ",";
      first = false;
      out += "\"" + util::json_escape(key) + "\":" + rendered;
    }
  }
  out += "},\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + util::json_escape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + util::json_escape(name) + "\":" + json_number(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + util::json_escape(name) + "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + json_number(h.sum) + ",\"bounds\":[";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ",";
      out += json_number(h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

bool write_metrics_report(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    SNNTEST_LOG_WARN("cannot write metrics report to %s", path.c_str());
    return false;
  }
  out << metrics_report_json() << "\n";
  return static_cast<bool>(out);
}

void install_exit_writer(const std::string& metrics_path, const std::string& trace_path) {
  ReportState& s = state();
  bool install = false;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.metrics_path = metrics_path;
    s.trace_path = trace_path;
    install = !s.exit_installed;
    s.exit_installed = true;
  }
  if (install) std::atexit(exit_writer);
}

void configure(const std::string& trace_out, const std::string& metrics_out) {
  std::string trace_path = trace_out;
  if (trace_path.empty()) {
    if (const char* env = std::getenv("SNNTEST_TRACE")) trace_path = env;
  }
  if (trace_path.empty() && metrics_out.empty()) return;
  set_telemetry_enabled(true);
  install_exit_writer(metrics_out, trace_path);
}

}  // namespace snntest::obs
