// Scoped trace spans with Chrome trace-event JSON export (DESIGN.md §11).
//
// OBS_SPAN("campaign/fault_sim"); opens an RAII span: when telemetry is
// enabled it reads the steady clock at entry and exit and records one
// complete ("ph":"X") event on the calling thread's ring buffer; when
// disabled the constructor is a single relaxed bool load and a branch.
//
// Each thread owns a fixed-capacity ring (kRingCapacity completed spans);
// when it fills, the oldest events are overwritten and counted as dropped,
// so a long campaign keeps its most recent activity instead of aborting or
// allocating unboundedly. Export serializes every ring into the Chrome
// trace-event format, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Span names must be string literals (or otherwise process-lifetime
// pointers): the ring stores the pointer, not a copy.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace snntest::obs {

/// Completed spans a thread ring holds before overwriting the oldest.
inline constexpr size_t kRingCapacity = 1 << 16;

/// Microseconds since the process trace epoch (steady clock, first use).
int64_t trace_now_us();

/// Unix time (microseconds since 1970, system clock) of the process trace
/// epoch — the zero point of every span's ts. Exported into the Chrome
/// trace's otherData as "trace_epoch_unix_us" so traces from different
/// processes can be aligned onto one timeline (obs/trace_merge.hpp).
int64_t trace_epoch_unix_us();

/// Record a completed span on the calling thread's ring buffer. `name` must
/// outlive the trace (string literal). Called by SpanScope; direct use is
/// for spans whose begin/end don't nest lexically.
void record_span(const char* name, int64_t begin_us, int64_t end_us);

class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (telemetry_enabled()) {
      name_ = name;
      begin_us_ = trace_now_us();
    }
  }
  ~SpanScope() {
    if (name_ != nullptr) record_span(name_, begin_us_, trace_now_us());
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t begin_us_ = 0;
};

#define SNNTEST_OBS_CONCAT_INNER(a, b) a##b
#define SNNTEST_OBS_CONCAT(a, b) SNNTEST_OBS_CONCAT_INNER(a, b)
/// Open a scoped span covering the rest of the enclosing block.
#define OBS_SPAN(name) \
  ::snntest::obs::SpanScope SNNTEST_OBS_CONCAT(obs_span_, __COUNTER__)(name)

/// Serialize every thread ring as Chrome trace-event JSON
/// ({"traceEvents":[...]}, ts/dur in microseconds).
std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`; false (with a warning) on I/O error.
bool write_chrome_trace(const std::string& path);

/// Spans currently held in ring buffers / overwritten because a ring was
/// full, summed over all threads.
size_t spans_recorded();
size_t spans_dropped();

/// Clear every ring buffer (test isolation; thread registrations survive).
void reset_trace();

}  // namespace snntest::obs
