#include "obs/trace_merge.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace snntest::obs {
namespace {

struct ParsedInput {
  size_t pid = 0;
  std::string label;
  std::vector<util::JsonValue> events;
  int64_t epoch_unix_us = -1;  // -1: input carries no epoch, leave ts as-is
};

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

std::string merge_chrome_traces(const std::vector<TraceMergeInput>& inputs,
                                TraceMergeStats* stats) {
  TraceMergeStats local;
  std::vector<ParsedInput> parsed;
  parsed.reserve(inputs.size());
  int64_t min_epoch = -1;
  for (size_t i = 0; i < inputs.size(); ++i) {
    std::string text;
    if (!read_file(inputs[i].path, text)) {
      SNNTEST_LOG_INFO("trace merge: skipping %s (unreadable)", inputs[i].path.c_str());
      ++local.inputs_skipped;
      continue;
    }
    std::string error;
    auto root = util::try_parse_json(text, &error);
    const util::JsonValue* events =
        root && root->kind == util::JsonValue::kObject ? root->find("traceEvents") : nullptr;
    if (events == nullptr || events->kind != util::JsonValue::kArray) {
      SNNTEST_LOG_WARN("trace merge: skipping %s (not a Chrome trace: %s)",
                       inputs[i].path.c_str(), error.empty() ? "no traceEvents" : error.c_str());
      ++local.inputs_skipped;
      continue;
    }
    ParsedInput pi;
    pi.pid = i + 1;
    pi.label = inputs[i].label;
    pi.events = events->array;
    if (const util::JsonValue* other = root->find("otherData")) {
      if (const util::JsonValue* epoch = other->find("trace_epoch_unix_us")) {
        if (epoch->kind == util::JsonValue::kNumber) {
          pi.epoch_unix_us = static_cast<int64_t>(epoch->number);
          if (min_epoch < 0 || pi.epoch_unix_us < min_epoch) min_epoch = pi.epoch_unix_us;
        }
      }
    }
    ++local.inputs_merged;
    parsed.push_back(std::move(pi));
  }

  // Rewrite every payload event: remap pid, shift ts onto the common
  // timeline (offset from the earliest epoch present). Source-side
  // process_name metadata is dropped in favor of the caller's labels.
  struct Row {
    double ts = 0.0;
    std::string json;
  };
  std::vector<Row> rows;
  std::string metadata;
  for (ParsedInput& pi : parsed) {
    const double shift = pi.epoch_unix_us >= 0 && min_epoch >= 0
                             ? static_cast<double>(pi.epoch_unix_us - min_epoch)
                             : 0.0;
    util::JsonValue name_event;
    name_event.kind = util::JsonValue::kObject;
    name_event.object["ph"] = {util::JsonValue::kString, false, 0.0, "M", {}, {}};
    name_event.object["pid"] = {util::JsonValue::kNumber, false, static_cast<double>(pi.pid)};
    name_event.object["tid"] = {util::JsonValue::kNumber, false, 0.0};
    name_event.object["name"] = {util::JsonValue::kString, false, 0.0, "process_name", {}, {}};
    util::JsonValue args;
    args.kind = util::JsonValue::kObject;
    args.object["name"] = {util::JsonValue::kString, false, 0.0, pi.label, {}, {}};
    name_event.object["args"] = std::move(args);
    if (!metadata.empty()) metadata += ',';
    metadata += util::to_json(name_event);

    for (util::JsonValue& event : pi.events) {
      if (event.kind != util::JsonValue::kObject) continue;
      const util::JsonValue* ph = event.find("ph");
      if (ph != nullptr && ph->str == "M" && event.find("name") != nullptr &&
          event.at("name").str == "process_name") {
        continue;
      }
      event.object["pid"] = {util::JsonValue::kNumber, false, static_cast<double>(pi.pid)};
      Row row;
      auto ts = event.object.find("ts");
      if (ts != event.object.end() && ts->second.kind == util::JsonValue::kNumber) {
        ts->second.number += shift;
        row.ts = ts->second.number;
      }
      row.json = util::to_json(event);
      rows.push_back(std::move(row));
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.ts < b.ts; });
  local.events = rows.size();

  std::string out = "{\"traceEvents\":[";
  out += metadata;
  for (const Row& row : rows) {
    if (!out.empty() && out.back() != '[') out += ',';
    out += row.json;
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"inputs_merged\":";
  out += std::to_string(local.inputs_merged);
  out += ",\"inputs_skipped\":";
  out += std::to_string(local.inputs_skipped);
  out += ",\"events\":";
  out += std::to_string(local.events);
  out += "}}";
  if (stats != nullptr) *stats = local;
  return out;
}

bool write_merged_chrome_trace(const std::string& path,
                               const std::vector<TraceMergeInput>& inputs,
                               TraceMergeStats* stats) {
  std::ofstream out(path);
  if (!out) {
    SNNTEST_LOG_WARN("cannot write merged Chrome trace to %s", path.c_str());
    return false;
  }
  out << merge_chrome_traces(inputs, stats) << "\n";
  return static_cast<bool>(out);
}

}  // namespace snntest::obs
