// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms (DESIGN.md §11).
//
// Hot-loop friendliness is the design constraint: every counter/histogram
// is striped across cache-line-aligned per-thread shards, so an increment
// from a campaign worker or a kernel inner loop is a single uncontended
// relaxed atomic add — no locks, no registry lookup (call sites cache the
// handle returned by Registry::counter()/histogram(), which stays valid for
// the process lifetime). Aggregation across shards happens on demand when a
// report is written.
//
// Telemetry inside per-frame / per-fault hot loops is additionally gated by
// `telemetry_enabled()` — a single relaxed bool load — so the disabled path
// costs one predictable branch and the PR3 bench numbers are untouched when
// tracing is off. Coarse metrics (per-epoch, per-iteration, campaign
// totals) are recorded unconditionally.
//
// Determinism contract: metrics and spans observe the computation, they
// never feed back into it. No RNG draw, loss value, winner selection or
// early-exit decision may depend on a metric value or on a telemetry clock
// read; the byte-identity tests in tests/test_obs.cpp enforce this by
// comparing stimulus and campaign bits with telemetry on vs. off.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace snntest::obs {

namespace detail {
extern std::atomic<bool> g_telemetry_enabled;
/// Stable per-thread stripe index in [0, kMetricShards).
size_t shard_index();
}  // namespace detail

/// Shard count per metric. Power of two; threads are assigned stripes
/// round-robin, so up to this many threads increment without sharing a
/// cache line (beyond it the adds stay correct, just occasionally shared).
inline constexpr size_t kMetricShards = 16;

/// Runtime switch for the hot-loop telemetry (spans, per-frame kernel
/// metrics, per-fault timing). Defaults to off; SNNTEST_TRACE or
/// obs::configure() turn it on. Reading it is one relaxed atomic load.
inline bool telemetry_enabled() {
  return detail::g_telemetry_enabled.load(std::memory_order_relaxed);
}
void set_telemetry_enabled(bool enabled);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(uint64_t n = 1) {
    shards_[detail::shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const;
  void reset_values();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset_values() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Interpolated quantile estimate from fixed-bucket counts: walks the
/// cumulative counts to the bucket holding the q-th observation and
/// interpolates linearly inside it (bucket 0 interpolates from 0, or from
/// bounds[0] itself when the first edge is negative; the overflow bucket
/// has no upper edge and clamps to bounds.back()). `buckets` must have
/// bounds.size() + 1 entries. Returns NaN on an empty histogram or a
/// malformed bounds/buckets pair; q is clamped to [0, 1].
double histogram_percentile(const std::vector<double>& bounds,
                            const std::vector<uint64_t>& buckets, double q);

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first bounds.size() buckets, plus one overflow bucket. Bucket b counts
/// observations v with bounds[b-1] < v <= bounds[b].
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  uint64_t count() const;
  double sum() const;
  /// Aggregated per-bucket counts, bounds().size() + 1 entries.
  std::vector<uint64_t> bucket_counts() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// histogram_percentile over the current aggregated bucket counts.
  double percentile(double q) const { return histogram_percentile(bounds_, bucket_counts(), q); }
  void reset_values();

  static std::vector<double> linear_bounds(double lo, double hi, size_t n);
  /// lo, lo*factor, lo*factor^2, ... (n edges).
  static std::vector<double> exponential_bounds(double lo, double factor, size_t n);

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  Shard shards_[kMetricShards];
};

/// Process-wide registry. Lookup takes a mutex — resolve handles once and
/// cache them; the returned references are valid for the process lifetime
/// (metrics are never destroyed, even by reset_values()).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram (bounds argument ignored).
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  struct HistogramSnapshot {
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0.0;
    double percentile(double q) const { return histogram_percentile(bounds, buckets, q); }
  };
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  Snapshot snapshot() const;

  /// Zero every metric value in place. Registrations (and therefore cached
  /// handles) survive — this is test isolation, not deregistration.
  void reset_values();

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Cached handles for the per-layer kernel-dispatch metrics
///   kernel/<layer>/dense_frames    — frames run through the dense kernel
///   kernel/<layer>/sparse_frames   — frames run through the gather/scatter kernel
///   kernel/<layer>/active_fraction — per-frame input activity histogram
/// so the kAuto per-frame decision (snn::sparse_frame_wins) is auditable.
/// Bind once per layer name; copies (campaign worker clones) share the
/// registry-owned metrics, so the cached pointers stay valid forever.
class KernelDispatchObs {
 public:
  void ensure_bound(const std::string& layer_name);
  bool bound() const { return dense_ != nullptr; }

  void record_dense_frame() { dense_->add(1); }
  void record_frame(size_t num_active, size_t frame_size, bool used_sparse) {
    (used_sparse ? sparse_ : dense_)->add(1);
    if (frame_size != 0) {
      active_fraction_->observe(static_cast<double>(num_active) /
                                static_cast<double>(frame_size));
    }
  }

 private:
  Counter* dense_ = nullptr;
  Counter* sparse_ = nullptr;
  Histogram* active_fraction_ = nullptr;
};

}  // namespace snntest::obs
