// Cross-process Chrome-trace merging (DESIGN.md §16).
//
// Every process in a sharded campaign exports its own Chrome trace
// (obs/trace.hpp): the supervisor and each worker write independent files
// whose ts values count from their own process epoch. merge_chrome_traces
// folds those files into one timeline loadable in chrome://tracing or
// Perfetto:
//
//  * pid mapping — input i becomes pid i+1 in the merged trace, with a
//    process_name metadata event carrying the caller's label ("supervisor",
//    "shard 3"), so every process gets its own track group;
//  * time alignment — each input's otherData.trace_epoch_unix_us anchors
//    its steady-clock ts values to wall time; events are shifted by the
//    input's epoch offset from the earliest epoch present, putting all
//    processes on one common timeline. Inputs without an epoch (foreign or
//    pre-§16 traces) keep their ts values unshifted;
//  * fail-soft inputs — a missing, truncated, or invalid file (a worker
//    SIGKILLed before its exit dump) skips that input and counts it in
//    TraceMergeStats; the merge never throws on bad input data.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace snntest::obs {

struct TraceMergeInput {
  std::string path;   ///< Chrome trace-event JSON file
  std::string label;  ///< process_name shown in the merged timeline
};

struct TraceMergeStats {
  size_t inputs_merged = 0;
  size_t inputs_skipped = 0;  ///< missing / unreadable / invalid JSON inputs
  size_t events = 0;          ///< payload events in the merged trace
};

/// Merge the input traces into one Chrome trace-event JSON document
/// (events sorted by aligned ts). Always returns a valid document, even
/// when every input is skipped.
std::string merge_chrome_traces(const std::vector<TraceMergeInput>& inputs,
                                TraceMergeStats* stats = nullptr);

/// merge_chrome_traces written to `path`; false (with a warning) on I/O
/// error.
bool write_merged_chrome_trace(const std::string& path,
                               const std::vector<TraceMergeInput>& inputs,
                               TraceMergeStats* stats = nullptr);

}  // namespace snntest::obs
