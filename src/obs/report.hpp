// Run-report writer: serialize the full metrics registry plus config
// fingerprint fields to a machine-readable JSON file, typically at process
// exit (DESIGN.md §11).
//
// The report schema ("snntest-metrics-v1"):
//   {
//     "schema":   "snntest-metrics-v1",
//     "fields":   { "<key>": "<value>", ... },          // set_report_field()
//     "counters": { "<name>": <uint>, ... },
//     "gauges":   { "<name>": <double>, ... },
//     "histograms": { "<name>": { "count": <uint>, "sum": <double>,
//                                 "bounds": [...], "buckets": [...] }, ... }
//   }
// Histogram "buckets" has bounds.size()+1 entries (last = overflow).
#pragma once

#include <string>

namespace snntest::obs {

/// Attach a config-fingerprint field to the report (model name, seed,
/// kernel mode, campaign fingerprint, ...). Last write per key wins.
void set_report_field(const std::string& key, const std::string& value);
void set_report_field(const std::string& key, double value);
void set_report_field(const std::string& key, uint64_t value);
void set_report_field(const std::string& key, bool value);  // "true"/"false"

/// Render the report from the current registry snapshot. Environment
/// provenance fields are filled in at render time when not explicitly set:
/// "hardware_threads" (std::thread::hardware_concurrency). "simd_backend"
/// is set by the tensor SIMD dispatch when it resolves, and
/// "campaign_lane_width_effective" by the campaign engine — together the
/// report records the build/runtime environment a run actually used.
std::string metrics_report_json();

/// Write metrics_report_json() to `path`; false (with a warning) on error.
bool write_metrics_report(const std::string& path);

/// Register a std::atexit handler that writes the metrics report and/or the
/// Chrome trace to the given paths (empty path = skip that file). Calling
/// again replaces the paths; the handler is installed once.
void install_exit_writer(const std::string& metrics_path, const std::string& trace_path);

/// Standard wiring for the --trace-out/--metrics-out flags of the bench and
/// example binaries: an empty trace path falls back to $SNNTEST_TRACE; if
/// either path ends up non-empty, telemetry is enabled and the exit writer
/// installed. A no-op when both are empty and the env var is unset.
void configure(const std::string& trace_out, const std::string& metrics_out);

}  // namespace snntest::obs
