#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace snntest::obs {
namespace detail {

// SNNTEST_TRACE=<path> enables the hot-loop telemetry from the environment;
// the path itself is consumed by obs::configure / the report exit writer.
std::atomic<bool> g_telemetry_enabled{[] {
  const char* env = std::getenv("SNNTEST_TRACE");
  return env != nullptr && *env != '\0';
}()};

size_t shard_index() {
  static std::atomic<size_t> next{0};
  static thread_local size_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx & (kMetricShards - 1);
}

}  // namespace detail

void set_telemetry_enabled(bool enabled) {
  detail::g_telemetry_enabled.store(enabled, std::memory_order_relaxed);
}

// --- Counter ---------------------------------------------------------------

uint64_t Counter::value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.value.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset_values() {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

// --- Histogram -------------------------------------------------------------

double histogram_percentile(const std::vector<double>& bounds,
                            const std::vector<uint64_t>& buckets, double q) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  if (bounds.empty() || buckets.size() != bounds.size() + 1) return kNan;
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return kNan;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The rank of the q-th observation (1-based): ceil semantics via the
  // `cumulative >= target` walk below, matching the usual nearest-rank
  // definition before the in-bucket interpolation refines it.
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets[b]);
    if (next >= target) {
      if (b == bounds.size()) return bounds.back();  // overflow: no upper edge
      const double upper = bounds[b];
      const double lower = b == 0 ? std::min(0.0, bounds[0]) : bounds[b - 1];
      const double fraction = (target - cumulative) / static_cast<double>(buckets[b]);
      return lower + fraction * (upper - lower);
    }
    cumulative = next;
  }
  return bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  const size_t n = bounds_.size() + 1;
  for (Shard& s : shards_) s.buckets.reset(new std::atomic<uint64_t>[n]());
}

void Histogram::observe(double v) {
  const size_t b = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& s = shards_[detail::shard_index()];
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) total += s.count.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Shard& s : shards_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < out.size(); ++b) {
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::reset_values() {
  for (Shard& s : shards_) {
    for (size_t b = 0; b < bounds_.size() + 1; ++b) {
      s.buckets[b].store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::linear_bounds(double lo, double hi, size_t n) {
  std::vector<double> out;
  out.reserve(n);
  const double step = n > 1 ? (hi - lo) / static_cast<double>(n - 1) : 0.0;
  for (size_t i = 0; i < n; ++i) out.push_back(lo + step * static_cast<double>(i));
  return out;
}

std::vector<double> Histogram::exponential_bounds(double lo, double factor, size_t n) {
  std::vector<double> out;
  out.reserve(n);
  double edge = lo;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(edge);
    edge *= factor;
  }
  return out;
}

// --- Registry --------------------------------------------------------------

Registry& Registry::instance() {
  // Leaked on purpose: metric handles are cached across the process (layer
  // clones, static span sites) and the atexit report writer reads the
  // registry during shutdown — destruction-order bugs are not worth a free.
  static Registry* instance = new Registry;
  return *instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

Registry::Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.bounds = h->bounds();
    hs.buckets = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset_values();
  for (auto& [name, g] : gauges_) g->reset_values();
  for (auto& [name, h] : histograms_) h->reset_values();
}

// --- KernelDispatchObs -----------------------------------------------------

void KernelDispatchObs::ensure_bound(const std::string& layer_name) {
  if (dense_ != nullptr) return;
  Registry& reg = Registry::instance();
  const std::string prefix = "kernel/" + layer_name + "/";
  sparse_ = &reg.counter(prefix + "sparse_frames");
  active_fraction_ =
      &reg.histogram(prefix + "active_fraction", Histogram::linear_bounds(0.05, 1.0, 20));
  // dense_ last: it doubles as the bound() flag, so every handle above must
  // be resolved before a concurrent reader can see bound() == true.
  dense_ = &reg.counter(prefix + "dense_frames");
}

}  // namespace snntest::obs
