#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace snntest::obs {
namespace {

struct SpanEvent {
  const char* name;
  int64_t ts_us;
  int64_t dur_us;
};

/// Per-thread span storage. The owning thread appends; export (and test
/// reset) reads from other threads — the per-ring mutex keeps that
/// TSan-clean. It is uncontended in steady state (one owner, export once),
/// so a span end costs a cheap lock + vector write. The ring outlives its
/// thread via the shared_ptr held in the global list, so spans of
/// short-lived pool threads survive into the export.
struct ThreadRing {
  std::mutex mutex;
  uint32_t tid = 0;
  std::vector<SpanEvent> events;
  size_t next = 0;  // overwrite position once full
  size_t dropped = 0;

  void push(const SpanEvent& e) {
    std::lock_guard<std::mutex> lock(mutex);
    if (events.size() < kRingCapacity) {
      events.push_back(e);
    } else {
      events[next] = e;
      next = (next + 1) % kRingCapacity;
      ++dropped;
    }
  }
};

struct RingList {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  uint32_t next_tid = 0;
};

RingList& ring_list() {
  // Leaked: the atexit trace writer may run after static destruction begins.
  static RingList* list = new RingList;
  return *list;
}

ThreadRing& thread_ring() {
  static thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    RingList& list = ring_list();
    std::lock_guard<std::mutex> lock(list.mutex);
    r->tid = list.next_tid++;
    list.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::vector<std::shared_ptr<ThreadRing>> snapshot_rings() {
  RingList& list = ring_list();
  std::lock_guard<std::mutex> lock(list.mutex);
  return list.rings;
}

}  // namespace

namespace {

/// Both clocks sampled back-to-back once, so ts values (steady) and the
/// epoch's wall-clock anchor (system) describe the same instant.
struct TraceEpoch {
  std::chrono::steady_clock::time_point steady;
  int64_t unix_us;
};

const TraceEpoch& trace_epoch() {
  static const TraceEpoch epoch = [] {
    TraceEpoch e;
    e.steady = std::chrono::steady_clock::now();
    e.unix_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();
    return e;
  }();
  return epoch;
}

}  // namespace

int64_t trace_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               trace_epoch().steady)
      .count();
}

int64_t trace_epoch_unix_us() { return trace_epoch().unix_us; }

void record_span(const char* name, int64_t begin_us, int64_t end_us) {
  thread_ring().push({name, begin_us, end_us - begin_us});
}

std::string chrome_trace_json() {
  struct Row {
    SpanEvent event;
    uint32_t tid;
  };
  std::vector<Row> rows;
  size_t dropped = 0;
  for (const auto& ring : snapshot_rings()) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    // Oldest first: a full ring wraps at `next`.
    const size_t n = ring->events.size();
    const size_t start = n < kRingCapacity ? 0 : ring->next;
    for (size_t i = 0; i < n; ++i) {
      rows.push_back({ring->events[(start + i) % n], ring->tid});
    }
    dropped += ring->dropped;
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.event.ts_us < b.event.ts_us; });

  std::string out = "{\"traceEvents\":[";
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"snntest\"}}";
  char buf[160];
  for (const Row& row : rows) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"cat\":\"snntest\",\"ts\":%lld,"
                  "\"dur\":%lld,\"name\":\"",
                  row.tid, static_cast<long long>(row.event.ts_us),
                  static_cast<long long>(row.event.dur_us));
    out += buf;
    out += util::json_escape(row.event.name);
    out += "\"}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"spans\":";
  out += std::to_string(rows.size());
  out += ",\"dropped_spans\":";
  out += std::to_string(dropped);
  out += ",\"trace_epoch_unix_us\":";
  out += std::to_string(trace_epoch_unix_us());
  out += "}}";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    SNNTEST_LOG_WARN("cannot write Chrome trace to %s", path.c_str());
    return false;
  }
  out << chrome_trace_json() << "\n";
  return static_cast<bool>(out);
}

size_t spans_recorded() {
  size_t n = 0;
  for (const auto& ring : snapshot_rings()) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    n += ring->events.size();
  }
  return n;
}

size_t spans_dropped() {
  size_t n = 0;
  for (const auto& ring : snapshot_rings()) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    n += ring->dropped;
  }
  return n;
}

void reset_trace() {
  for (const auto& ring : snapshot_rings()) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    ring->events.clear();
    ring->next = 0;
    ring->dropped = 0;
  }
}

}  // namespace snntest::obs
