// Sharded multi-process campaign orchestration with crash recovery.
//
// run_sharded_campaign splits one fault universe into N deterministic
// contiguous shards (campaign/shard.hpp), launches one worker *process* per
// shard, supervises them with a heartbeat watchdog, retries killed/crashed/
// hung shards with bounded exponential backoff, and merges the committed
// shard dictionaries into one FaultDictionary that is bit-identical to what
// a single unsharded incremental run would have produced (DESIGN.md §15
// carries the full identity argument).
//
// Process isolation is the point: a worker taken out by SIGKILL, an OOM
// reaper, or a wedged thread loses at most the results since its last
// partial-snapshot flush — the retry resumes from that snapshot
// (pairs_reused > 0) instead of starting the shard over, and the other
// shards never notice.
//
// Supervision protocol per shard:
//  * launch  — worker_command builds the argv (typically the current
//    executable re-exec'd with a `run-shard` subcommand); stdout/stderr go
//    to shard_<i>.log.
//  * liveness — the worker bumps a u64 counter in shard_<i>.hb; the
//    orchestrator tracks the last *change* against its own steady clock, so
//    clock skew or mtime games cannot fake progress. No change for
//    heartbeat_timeout_seconds while the process is alive = hung: SIGKILL,
//    then retry.
//  * exit — success requires exit code 0 AND a loadable, compatible
//    shard_<i>.snfd (the file only ever appears via atomic rename, so
//    presence implies completeness). Anything else is a failed attempt.
//  * retry — failed attempts relaunch after retry_backoff_seconds
//    × 2^(attempt-1), capped; more than max_retries failures abandons the
//    campaign (remaining workers are killed, completed=false).
//  * resume — when reuse_completed_shards is set, shards whose final file
//    already exists and matches the job are not launched at all.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "campaign/fleet_view.hpp"
#include "campaign/shard.hpp"
#include "coverage/fault_dictionary.hpp"
#include "obs/trace_merge.hpp"

namespace snntest::campaign {

/// Everything worker_command needs to build one worker invocation.
struct ShardLaunch {
  size_t shard_index = 0;
  size_t num_shards = 1;
  size_t attempt = 0;  ///< 0 on the first launch, +1 per retry
  std::string job_path;
  std::string work_dir;
  size_t flush_every = 16;
};

struct OrchestratorConfig {
  /// Directory for job.bin and all shard_<i>.* files; created (with
  /// parents) if missing. Required.
  std::string work_dir;
  size_t num_shards = 2;
  /// Relaunches allowed per shard beyond the first attempt.
  size_t max_retries = 2;
  /// No heartbeat-counter change for this long while the process is alive
  /// means the worker is hung and gets killed. Generous by default: a
  /// healthy worker beats at least once per completed fault.
  double heartbeat_timeout_seconds = 60.0;
  double poll_interval_seconds = 0.02;
  /// Backoff before retry r (1-based): base × 2^(r-1), capped.
  double retry_backoff_seconds = 0.1;
  double retry_backoff_cap_seconds = 2.0;
  /// Worker partial-snapshot cadence (ShardWorkerOptions::flush_every).
  size_t flush_every = 16;
  /// Skip shards whose final file already exists and matches the job —
  /// re-running an interrupted campaign only runs the missing shards.
  bool reuse_completed_shards = true;
  /// Build the argv for one worker attempt. Required. The default CLI
  /// wiring re-execs the current binary (default_worker_command); tests
  /// inject chaos flags for attempt 0 here.
  std::function<std::vector<std::string>(const ShardLaunch&)> worker_command;

  // --- Fleet observability (DESIGN.md §16). All of it reads shard files and
  // writes sidecar JSON; none of it feeds back into the campaign, so these
  // switches cannot change the merged dictionary bytes.

  /// Rewrite <work_dir>/fleet_status.json (atomic rename) on the status
  /// interval while supervising, and once more at the end.
  bool write_fleet_status = true;
  /// Write <work_dir>/flight_report.json when the campaign ends (either
  /// way): per-shard attempt history, merged metrics with percentiles,
  /// coverage milestones, trace-merge stats.
  bool write_flight_report = true;
  /// Minimum seconds between fleet-status refreshes in the poll loop.
  double status_interval_seconds = 0.5;
  /// Set emit_traces in the job file (workers dump shard_<i>.trace.json on
  /// commit) and merge worker traces + the supervisor's own trace into
  /// <work_dir>/trace_merged.json, pid-mapped per process, loadable in
  /// chrome://tracing or Perfetto.
  bool collect_traces = false;
};

/// One worker launch as the supervisor saw it end.
struct ShardAttempt {
  size_t attempt = 0;  ///< 0-based launch number
  /// "committed", "crashed (signal N)", "exit N (no commit)",
  /// "hung (killed)" or "killed (campaign abandoned)".
  std::string outcome;
  double started_seconds = 0.0;  ///< orchestrator clock, campaign-relative
  double ended_seconds = 0.0;
};

/// Per-shard supervision summary.
struct ShardOutcome {
  size_t shard_index = 0;
  size_t attempts = 0;        ///< processes actually launched
  size_t hung_kills = 0;      ///< attempts killed by the heartbeat watchdog
  size_t failed_attempts = 0; ///< attempts that died or exited nonzero
  bool completed = false;
  bool reused_existing = false;  ///< final file predated this run
  ShardWorkerStats stats;        ///< from the committing attempt (if any)
  std::vector<ShardAttempt> history;  ///< every launch, in order
};

struct OrchestratorResult {
  bool completed = false;
  /// The merged dictionary; meaningful only when completed. Saving it
  /// produces bytes identical to the unsharded incremental run.
  coverage::FaultDictionary merged;
  coverage::FaultDictionary::MergeStats merge_stats;
  std::vector<ShardOutcome> shards;
  double elapsed_seconds = 0.0;
  /// Final fold of the shard status snapshots (observability; empty-ish when
  /// workers never wrote status files).
  FleetView fleet;
  /// Campaign-wide coverage-vs-time curve sampled by the supervisor on the
  /// status interval (orchestrator clock).
  std::vector<CoverageSample> campaign_curve;
  /// Trace-merge outcome when config.collect_traces was set.
  obs::TraceMergeStats trace_merge;

  size_t total_attempts() const;
};

/// Render the end-of-campaign flight report, schema "snntest-flight-v1":
/// completion, per-shard attempt history with kill reasons, merged metrics
/// (counters + histograms with p50/p95/p99), time-to-X%-coverage milestones
/// from the campaign curve, and merge/trace stats.
std::string flight_report_json(const OrchestratorResult& result);

/// The standard worker argv: `exe run-shard --job <job> --work-dir <dir>
/// --shard <i> --num-shards <n> --flush-every <k>`. Tools whose `run-shard`
/// subcommand follows this contract (coverage_tool, the test binaries'
/// self-exec mode) can use it directly:
///   config.worker_command = [exe](const ShardLaunch& l) {
///     return default_worker_command(l, exe);
///   };
std::vector<std::string> default_worker_command(const ShardLaunch& launch,
                                                const std::string& executable);

/// Run `job` sharded across config.num_shards worker processes. Throws
/// std::invalid_argument on an unusable config (empty work_dir or missing
/// worker_command) and std::runtime_error when the work directory cannot be
/// created or the job cannot be written; supervision failures (crashes,
/// hangs, retry exhaustion) are reported via OrchestratorResult instead.
OrchestratorResult run_sharded_campaign(const ShardJob& job, const OrchestratorConfig& config);

}  // namespace snntest::campaign
