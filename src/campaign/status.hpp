// SNST shard status snapshots: the worker-side half of fleet observability
// (DESIGN.md §16).
//
// PR 8's heartbeat file told the supervisor exactly one thing: "the worker
// made progress since you last looked". The status snapshot upgrades that
// channel into a full progress report the worker rewrites atomically on its
// partial-flush cadence — heartbeat counter, faults done/total, detected
// count, the coverage-vs-time curve of this attempt, and a snapshot of the
// worker's live obs metrics registry. The supervisor (and `coverage_tool
// status` from any other process) folds the per-shard files into a fleet
// view (campaign/fleet_view.hpp).
//
// The protocol inherits the shard-file discipline:
//  * writes commit only via util::atomic_write_file — a reader sees the
//    previous complete snapshot or the new one, never a torn write;
//  * reads fail soft — a missing, truncated, or corrupt file (CRC-guarded
//    like the SNFD records) loads as nullopt and the reader counts it; a
//    status file can never wedge the supervisor;
//  * telemetry never feeds back — snapshots describe the computation, no
//    engine decision reads one (the §11 determinism contract, enforced by
//    the observability-on/off byte-identity tests in test_orchestrator).
//
// On-disk (little-endian): magic 'SNST' + version, u64 payload length,
// payload, CRC-32 of the payload.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace snntest::campaign {

inline constexpr uint32_t kStatusMagic = 0x54534E53;  // "SNST"
inline constexpr uint32_t kStatusVersion = 1;

/// One point of a coverage-vs-time curve: after `t_seconds` of the writer's
/// run, `faults_done` pairs were simulated or reused, `detected` of them
/// detected.
struct CoverageSample {
  double t_seconds = 0.0;
  uint64_t faults_done = 0;
  uint64_t detected = 0;
};

/// Everything one worker attempt knows about its own progress.
struct ShardStatus {
  uint64_t shard_index = 0;
  uint64_t num_shards = 1;
  uint64_t heartbeat = 0;       ///< the shard_<i>.hb counter at write time
  uint64_t faults_total = 0;    ///< shard range size
  uint64_t faults_done = 0;     ///< resumed + freshly simulated pairs
  uint64_t detected = 0;        ///< detected among faults_done
  uint64_t pairs_reused = 0;    ///< served from the partial snapshot
  uint64_t pairs_recorded = 0;  ///< simulated fresh by this attempt
  bool completed = false;       ///< final dictionary committed
  double elapsed_seconds = 0.0;            ///< since this attempt started
  std::vector<CoverageSample> samples;     ///< this attempt's coverage curve
  obs::Registry::Snapshot metrics;         ///< worker's live obs registry
};

/// Keep a coverage curve bounded: once `samples` exceeds `max_samples`,
/// drop every other point (the last point always survives). Amortized O(1)
/// per append, so a million-fault shard cannot grow its status file without
/// bound.
void decimate_samples(std::vector<CoverageSample>& samples, size_t max_samples = 512);

/// Serialize exactly the bytes save_shard_status_atomic commits.
std::string serialize_shard_status(const ShardStatus& status);

/// Commit a snapshot via atomic rename (util::atomic_write_file). Throws
/// std::runtime_error when the write fails.
void save_shard_status_atomic(const ShardStatus& status, const std::string& path);

/// nullopt when the file is missing, short, version-mismatched, CRC-damaged
/// or otherwise unparsable — every failure is soft; callers count and move
/// on.
std::optional<ShardStatus> load_shard_status(const std::string& path);

}  // namespace snntest::campaign
