// Divergence-frontier fault simulation (DESIGN.md §17).
//
// Downstream of the fault layer, a fault usually flips a handful of spikes
// per frame. The frontier simulator exploits that: each lane's layer output
// starts as a memcpy of the golden train, and per frame only the neurons
// reachable from the current divergence frontier (plus neurons whose LIF
// state still differs from golden — the persistent-state set) are
// re-simulated, with the exact per-neuron accumulation orders of the dense
// kernels (Layer::frontier_synapse) and the exact LifBank update
// (snn::lif_step_neuron), so every DetectionResult is bit-identical to the
// dense scalar/lane paths. A neuron whose (u, refrac) state re-matches the
// cached golden state traces retires from the dirty set; a layer whose
// frame frontier stays empty is a converged lane — exactly the engine's
// convergence pruning. When a frame's dirty fraction exceeds
// EngineConfig::frontier_threshold the frame falls back to the full dense
// frame kernel (Layer::frontier_synapse_frame), still bit-identical.
//
// One routine serves both the scalar path (count == 1) and lane batches
// (count up to snn::kMaxLaneWidth, all faults confined to the same layer):
// per-lane faults are resolved to snn::LaneFault PODs, neuron faults are
// applied as parameter overrides inside the shared LIF step, synapse faults
// as transient pokes of the worker's mutable clone around each lane's
// fault-layer recomputes. Downstream layers iterate the union of the
// lanes' dirty sets so consecutive lanes reuse hot weight rows.
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/engine.hpp"
#include "campaign/golden_cache.hpp"
#include "campaign/sim_internal.hpp"
#include "fault/lane_injector.hpp"

namespace snntest::campaign {

/// Per-lane frontier walk state, reused across layers and batches.
struct FrontierLaneState {
  snn::LaneFault fault;
  size_t result_index = 0;
  bool active = false;
  bool full_frame = false;  // this frame fell back to the dense frame kernel
  std::vector<uint8_t> dirty;        // [n] membership flags of dirty_list
  std::vector<uint8_t> param_dirty;  // [n] fault-layer seeds, never retired
  std::vector<uint32_t> dirty_list;
  std::vector<float> u;    // [n] live membrane of dirty neurons
  std::vector<int> refrac; // [n] live refractory counters of dirty neurons
  std::vector<float> train;     // current layer's materialized output [T*n]
  std::vector<float> in_train;  // previous layer's materialized output
  std::vector<uint32_t> div_idx;  // current layer's divergence CSR (frames)
  std::vector<uint32_t> div_off;
  std::vector<uint32_t> in_div_idx;  // previous layer's divergence CSR
  std::vector<uint32_t> in_div_off;
  std::vector<float> syn;  // full-frame fallback scratch [n]
  // final-layer detection ledger (every divergent output element
  // contributes exactly 1.0 to the L1, so the sum is an exact integer and
  // order-independent — bit-identical to the dense frame walks)
  double l1 = 0.0;
  int64_t first_frame = -1;
  std::vector<long> class_diff;
};

/// Per-worker scratch — sized on first use, reused for every batch.
struct FrontierSimContext {
  std::vector<FrontierLaneState> lanes;
  std::vector<uint32_t> fanout;      // per-input fanout query scratch
  std::vector<uint16_t> union_mask;  // neuron -> bitmask of dirty lanes
  std::vector<uint32_t> union_list;
  // Full-frame batching scratch: when several lanes of one frame fall back
  // to the dense frame kernel, their frames are interleaved lane-strided
  // and run through the SIMD lane kernels (bit-identical per lane to the
  // scalar frame kernel) instead of one scalar pass per lane.
  std::vector<size_t> full_list;
  std::vector<float> in_lanes;    // [num_inputs * full lanes]
  std::vector<float> prev_lanes;  // recurrent feedback [n * full lanes]
  std::vector<float> syn_lanes;   // [n * full lanes]
  // Last batch's recompute tally (also added to the shared counters) — the
  // engine's adaptive routing reads these to estimate the fault layer's
  // frontier profitability.
  size_t last_updates = 0;
  size_t last_updates_dense = 0;
};

/// Simulate the `count` faults `faults[batch[0..count)]` — all confined to
/// the same layer — with the divergence-frontier walk, writing
/// `results[batch[i]]`. Requires config.prefix_reuse, golden state traces
/// (cache.has_state_traces) and frontier_supported() on every layer; the
/// engine checks all three before routing here. `net` is the WORKER's
/// mutable fault-free clone: synapse faults are poked in around each
/// lane's fault-layer recomputes and restored before return.
void simulate_fault_frontier(snn::Network& net, const tensor::Tensor& stimulus,
                             const GoldenCache& cache, const EngineConfig& config,
                             const std::vector<fault::LayerWeightStats>& stats,
                             const std::vector<fault::FaultDescriptor>& faults,
                             const size_t* batch, size_t count,
                             std::vector<fault::DetectionResult>& results,
                             detail::SimCounters& counters, FrontierSimContext& ctx);

}  // namespace snntest::campaign
