// Golden activation cache for differential fault simulation.
//
// One fault-free forward pass is shared by every fault of a campaign: a
// fault confined to layer k (faults are single-layer by construction, see
// fault/injector.hpp) leaves layers 0..k-1 bit-identical to the golden run,
// so their cached spike trains feed Network::forward_from(k, ...) directly.
// The cache also precomputes everything the detection comparison needs
// (output spike counts) and a fingerprint of (network, stimulus) used to
// validate checkpoint resumes.
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/fingerprint.hpp"
#include "fault/registry.hpp"
#include "snn/network.hpp"
#include "tensor/tensor.hpp"

namespace snntest::campaign {

struct GoldenCache {
  /// Fault-free spike train of every layer; layer_outputs[l] is [T, N_l].
  snn::ForwardResult forward;
  /// Rate-decoded per-class counts of the golden output.
  std::vector<size_t> output_counts;
  /// Layer weight statistics (bit-flip quantization scales) for injectors.
  std::vector<fault::LayerWeightStats> stats;
  /// FNV-1a over the network topology + stimulus bytes.
  uint64_t fingerprint = 0;

  const tensor::Tensor& layer_output(size_t l) const { return forward.layer_outputs[l]; }
  const tensor::Tensor& output() const { return forward.output(); }
  size_t num_layers() const { return forward.num_layers(); }
};

/// Run the fault-free reference pass and assemble the cache. `net` is
/// cloned internally and not modified. `mode` selects the forward kernels
/// of the internal clone (bit-identical results across modes; the default
/// keeps the seed's exact execution path for standalone callers).
GoldenCache build_golden_cache(const snn::Network& net, const tensor::Tensor& stimulus,
                               snn::KernelMode mode = snn::KernelMode::kDense);

}  // namespace snntest::campaign
