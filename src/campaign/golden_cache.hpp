// Golden activation cache for differential fault simulation.
//
// One fault-free forward pass is shared by every fault of a campaign: a
// fault confined to layer k (faults are single-layer by construction, see
// fault/injector.hpp) leaves layers 0..k-1 bit-identical to the golden run,
// so their cached spike trains feed Network::forward_from(k, ...) directly.
// The cache also precomputes everything the detection comparison needs
// (output spike counts) and a fingerprint of (network, stimulus) used to
// validate checkpoint resumes.
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/fingerprint.hpp"
#include "fault/registry.hpp"
#include "snn/network.hpp"
#include "tensor/tensor.hpp"

namespace snntest::campaign {

/// Per-layer golden LIF state traces (divergence-frontier simulation,
/// DESIGN.md §17): the exact post-step membrane potential and refractory
/// counter of every neuron at every timestep of the fault-free run. A
/// frontier simulation seeds a newly-diverged neuron from (u_post, refrac)
/// of the previous frame and retires it when its live state matches these
/// traces again.
struct GoldenLayerState {
  std::vector<float> u_post;    // time-major [T, N_l]
  std::vector<int32_t> refrac;  // time-major [T, N_l]
};

struct GoldenCache {
  /// Fault-free spike train of every layer; layer_outputs[l] is [T, N_l].
  snn::ForwardResult forward;
  /// Rate-decoded per-class counts of the golden output.
  std::vector<size_t> output_counts;
  /// Layer weight statistics (bit-flip quantization scales) for injectors.
  std::vector<fault::LayerWeightStats> stats;
  /// FNV-1a over the network topology + stimulus bytes.
  uint64_t fingerprint = 0;

  /// Per-layer LIF state traces; empty unless built with state_traces and
  /// within budget (see GoldenCacheOptions). state[l] matches layer l;
  /// entries below state_traces_from_layer are empty (never read — the
  /// frontier walk only touches layers at or below its fault layer).
  std::vector<GoldenLayerState> state;
  bool has_state_traces = false;
  size_t state_traces_from_layer = 0;
  /// Bytes cached per layer (spike train + state traces) and their sum.
  std::vector<size_t> layer_bytes;
  size_t total_bytes = 0;

  const tensor::Tensor& layer_output(size_t l) const { return forward.layer_outputs[l]; }
  const tensor::Tensor& output() const { return forward.output(); }
  size_t num_layers() const { return forward.num_layers(); }
};

struct GoldenCacheOptions {
  snn::KernelMode mode = snn::KernelMode::kDense;
  /// Also derive per-layer LIF state traces (u_post + refrac) from a
  /// trace-recording golden pass.
  bool state_traces = false;
  /// First layer whose state traces are recorded and retained. A frontier
  /// simulation only reads traces of layers at or downstream of its fault
  /// layer, so a campaign whose shallowest fault lives in layer k skips
  /// both the recording cost and the memory for layers 0..k-1.
  size_t state_traces_from_layer = 0;
  /// Memory budget over everything the cache retains (0 = unlimited). The
  /// spike trains are irreducible (prefix reuse and detection need them);
  /// when trains + state traces would exceed the budget the state traces
  /// are dropped — fail-soft to prefix-only, with a warning.
  size_t budget_bytes = 0;
};

/// Run the fault-free reference pass and assemble the cache. `net` is
/// cloned internally and not modified. `mode` selects the forward kernels
/// of the internal clone (bit-identical results across modes; the default
/// keeps the seed's exact execution path for standalone callers).
GoldenCache build_golden_cache(const snn::Network& net, const tensor::Tensor& stimulus,
                               snn::KernelMode mode = snn::KernelMode::kDense);

/// Options overload: state traces + memory budget (fail-soft).
GoldenCache build_golden_cache(const snn::Network& net, const tensor::Tensor& stimulus,
                               const GoldenCacheOptions& options);

}  // namespace snntest::campaign
