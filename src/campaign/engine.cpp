#include "campaign/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "campaign/checkpoint.hpp"
#include "campaign/frontier_sim.hpp"
#include "campaign/golden_cache.hpp"
#include "campaign/lane_sim.hpp"
#include "campaign/sim_internal.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "snn/spike_train.hpp"
#include "tensor/simd.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace snntest::campaign {
namespace {

uint64_t campaign_fingerprint(const GoldenCache& cache,
                              const std::vector<fault::FaultDescriptor>& faults,
                              const EngineConfig& config) {
  return detection_settings_fingerprint(hash_fault_list(faults, cache.fingerprint),
                                        config.detection_threshold, config.detect_only);
}

struct WorkerContext {
  snn::Network net;
  fault::FaultInjector injector;
  /// Ping-pong spike-train buffers for the scalar pruning loop: sized on
  /// the first fault, reused (storage kept) for every subsequent layer
  /// forward instead of allocating a fresh train per call.
  tensor::Tensor bufs[2];
  /// Lane-batched path scratch, likewise reused across batches.
  LaneSimContext lane;
  /// Divergence-frontier path scratch, likewise reused across batches.
  FrontierSimContext frontier;

  WorkerContext(const snn::Network& reference, const std::vector<fault::LayerWeightStats>& stats,
                snn::KernelMode mode)
      : net(reference), injector(net, stats) {
    net.set_kernel_mode(mode);
  }
};

void simulate_fault(WorkerContext& worker, const fault::FaultDescriptor& f,
                    const tensor::Tensor& stimulus, const GoldenCache& cache,
                    const EngineConfig& config, fault::DetectionResult& r,
                    detail::SimCounters& counters) {
  const size_t L = cache.num_layers();
  const size_t k = config.prefix_reuse ? fault_layer(f) : 0;
  const tensor::Tensor& start_input = k == 0 ? stimulus : cache.layer_output(k - 1);
  fault::ScopedFault scoped(worker.injector, f);

  if (!config.convergence_pruning) {
    const auto fr = worker.net.forward_from(k, start_input, /*record_traces=*/false);
    counters.layer_forwards.fetch_add(L - k, std::memory_order_relaxed);
    if (config.detect_only) {
      detail::fill_detect_only_result(r, fr.output(), cache, config.detection_threshold);
    } else {
      detail::fill_full_result(r, fr.output(), cache, config.detection_threshold);
    }
    return;
  }

  // Convergence is only decisive at layers >= the faulty one: before it the
  // output trivially equals golden (the fault has not acted yet), which
  // matters when prefix_reuse is off and the walk starts at layer 0.
  const size_t fk = config.prefix_reuse ? k : fault_layer(f);
  const tensor::Tensor* input = &start_input;
  int flip = 0;
  for (size_t l = k; l < L; ++l) {
    tensor::Tensor& out = worker.bufs[flip];
    worker.net.layer(l).forward_into(*input, /*record_traces=*/false, out);
    counters.layer_forwards.fetch_add(1, std::memory_order_relaxed);
    if (l >= fk && detail::trains_equal(out, cache.layer_output(l))) {
      detail::fill_converged_result(r, cache, config);
      if (l + 1 < L) counters.pruned.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    input = &out;
    flip ^= 1;
  }
  if (config.detect_only) {
    detail::fill_detect_only_result(r, *input, cache, config.detection_threshold);
  } else {
    detail::fill_full_result(r, *input, cache, config.detection_threshold);
  }
}

/// One dynamic-scheduler work unit: `count` pending fault indices starting
/// at `begin` in the batched order array. count > 1 means a lane batch of
/// same-layer faults; count == 1 runs the scalar path.
struct WorkItem {
  size_t begin = 0;
  size_t count = 0;
};

/// Group the pending faults by fault layer and chunk each group into lane
/// batches of up to `lane_width`, preserving the campaign order within a
/// group. Leftover singletons become scalar items.
void build_worklist(const std::vector<fault::FaultDescriptor>& faults,
                    const std::vector<char>& have, size_t num_layers, size_t lane_width,
                    bool lane_batching, std::vector<size_t>& order,
                    std::vector<WorkItem>& items) {
  order.clear();
  items.clear();
  if (!lane_batching) {
    for (size_t j = 0; j < faults.size(); ++j) {
      if (!have[j]) order.push_back(j);
    }
    items.reserve(order.size());
    for (size_t i = 0; i < order.size(); ++i) items.push_back({i, 1});
    return;
  }
  std::vector<std::vector<size_t>> by_layer(num_layers);
  for (size_t j = 0; j < faults.size(); ++j) {
    if (!have[j]) by_layer[fault_layer(faults[j])].push_back(j);
  }
  for (const auto& group : by_layer) {
    for (size_t i = 0; i < group.size(); i += lane_width) {
      const size_t count = std::min(lane_width, group.size() - i);
      items.push_back({order.size(), count});
      order.insert(order.end(), group.begin() + i, group.begin() + i + count);
    }
  }
}

}  // namespace

size_t CampaignResult::detected_count() const {
  size_t n = 0;
  for (const auto& r : results) n += r.detected;
  return n;
}

size_t fault_layer(const fault::FaultDescriptor& fault) {
  if (fault.targets_neuron()) return fault.neuron.layer;
  if (fault.connection_granularity) return fault.connection.layer;
  return fault.weight.layer;
}

CampaignResult run_campaign(const snn::Network& net, const tensor::Tensor& stimulus,
                            const std::vector<fault::FaultDescriptor>& faults,
                            const EngineConfig& config) {
  OBS_SPAN("campaign/run");
  util::Timer timer;
  CampaignResult outcome;
  outcome.results.resize(faults.size());
  outcome.stats.faults_total = faults.size();
  // Clamp the requested lane width into the engine's supported range and
  // say so (once per process) instead of silently running narrower: a user
  // asking for 32 lanes should learn they got kMaxLaneWidth.
  const size_t lane_width = std::min(std::max<size_t>(config.lane_width, 1),
                                     snn::kMaxLaneWidth);
  if (lane_width != config.lane_width) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      SNNTEST_LOG_WARN("run_campaign: lane_width %zu out of range, clamped to %zu "
                       "(supported range is [1, %zu])",
                       config.lane_width, lane_width, snn::kMaxLaneWidth);
    }
  }
  outcome.stats.lane_width_effective = lane_width;
  if (faults.empty()) {
    outcome.stats.elapsed_seconds = timer.seconds();
    return outcome;
  }

  GoldenCacheOptions cache_options;
  cache_options.mode = config.kernel_mode;
  cache_options.state_traces = config.frontier && config.prefix_reuse;
  cache_options.budget_bytes = config.golden_cache_budget_bytes;
  if (cache_options.state_traces) {
    // The frontier walk only reads state traces of layers at or downstream
    // of its fault layer; record from the campaign's shallowest fault down.
    size_t min_layer = SIZE_MAX;
    for (const auto& f : faults) min_layer = std::min(min_layer, fault_layer(f));
    cache_options.state_traces_from_layer = min_layer;
  }
  const GoldenCache cache = build_golden_cache(net, stimulus, cache_options);
  const size_t L = cache.num_layers();
  outcome.stats.golden_cache_bytes = cache.total_bytes;
  outcome.stats.golden_cache_layer_bytes = cache.layer_bytes;
  outcome.stats.golden_cache_state_traces = cache.has_state_traces;

  // Frontier simulation needs the golden prefix (the walk starts from it),
  // the golden LIF state traces (dirty-neuron seeding/retirement), and
  // frontier-capable layers. Anything missing falls back to the
  // dense/sparse/lane kernels — results are bit-identical either way, so
  // this is a performance downgrade worth one warning, not an error.
  bool frontier_ok = false;
  if (config.frontier) {
    bool layers_ok = true;
    for (size_t l = 0; l < L; ++l) layers_ok = layers_ok && net.layer(l).frontier_supported();
    frontier_ok = config.prefix_reuse && cache.has_state_traces && layers_ok;
    if (!frontier_ok) {
      static std::atomic<bool> warned{false};
      if (!warned.exchange(true)) {
        SNNTEST_LOG_WARN("run_campaign: frontier simulation requested but unavailable "
                         "(prefix_reuse=%d, state_traces=%d, layers_supported=%d); "
                         "running dense/lane kernels instead",
                         config.prefix_reuse ? 1 : 0, cache.has_state_traces ? 1 : 0,
                         layers_ok ? 1 : 0);
      }
    }
  }
  outcome.stats.frontier_active = frontier_ok;

  // --- checkpoint resume ---------------------------------------------------
  CheckpointHeader header;
  header.fingerprint = campaign_fingerprint(cache, faults, config);
  header.num_faults = faults.size();
  header.threshold = config.detection_threshold;

  std::vector<char> have(faults.size(), 0);
  std::optional<CheckpointWriter> writer;
  if (!config.checkpoint_path.empty()) {
    bool append = false;
    if (auto existing = load_checkpoint(config.checkpoint_path)) {
      if (existing->header.fingerprint != header.fingerprint ||
          existing->header.num_faults != faults.size()) {
        throw std::runtime_error("run_campaign: checkpoint " + config.checkpoint_path +
                                 " was written for different campaign inputs; delete it to "
                                 "start fresh");
      }
      for (auto& [index, result] : existing->results) {
        if (!have[index]) ++outcome.stats.faults_resumed;
        have[index] = 1;
        outcome.results[index] = std::move(result);
      }
      outcome.stats.checkpoint_lines_skipped = existing->skipped_lines;
      if (existing->skipped_lines > 0) {
        SNNTEST_LOG_WARN("run_campaign: checkpoint %s had %zu unusable result line(s); "
                         "those faults will be re-simulated",
                         config.checkpoint_path.c_str(), existing->skipped_lines);
      }
      append = true;
    }
    writer.emplace(config.checkpoint_path, header, append, config.checkpoint_flush_every);
  }

  // --- result-cache reuse (coverage dictionary) ----------------------------
  // Pairs the cache already knows never reach the worklist, so a fully warm
  // campaign performs zero fault simulations (pairs_reused == faults_total).
  if (config.result_cache) {
    OBS_SPAN("campaign/result_cache_lookup");
    for (size_t j = 0; j < faults.size(); ++j) {
      if (have[j]) continue;
      if (config.result_cache(j, outcome.results[j])) {
        have[j] = 1;
        ++outcome.stats.pairs_reused;
      }
    }
  }

  // --- lane-batched worklist -----------------------------------------------
  // Same-layer faults share a golden prefix, so up to lane_width of them
  // ride one multi-lane forward (campaign/lane_sim.cpp). Without prefix
  // reuse there is no shared prefix to batch from (and the "naive" baseline
  // configuration must stay truly naive), so batching requires it.
  const bool lane_batching = lane_width > 1 && config.prefix_reuse;
  std::vector<size_t> order;
  std::vector<WorkItem> items;
  build_worklist(faults, have, L, lane_width, lane_batching, order, items);

  // --- dynamic-schedule simulation -----------------------------------------
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t requested = config.num_threads == 0 ? hw : config.num_threads;
  std::optional<util::ThreadPool> pool;
  if (requested > 1 && items.size() > 1) pool.emplace(requested);
  util::ThreadPool* pool_ptr = pool ? &*pool : nullptr;

  const size_t num_workers = util::dynamic_workers(pool_ptr);
  std::vector<std::unique_ptr<WorkerContext>> workers;
  workers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(std::make_unique<WorkerContext>(net, cache.stats, config.kernel_mode));
  }

  // Auto grain (config.grain == 0): ~8 scheduler round-trips per worker
  // balances the orders-of-magnitude spread in per-item cost without
  // hammering the shared counter. An explicit grain is authoritative.
  const size_t grain =
      config.grain != 0
          ? config.grain
          : std::clamp<size_t>(items.size() / (num_workers * 8), 1, 64);

  detail::SimCounters counters;
  counters.completed.store(outcome.stats.faults_resumed + outcome.stats.pairs_reused);
  std::atomic<bool> cancelled{false};
  std::mutex sink_mutex;  // serializes EngineConfig::result_sink calls

  // Adaptive frontier routing (EngineConfig::frontier_adaptive): per fault
  // layer, tally the frontier walk's recomputed neuron-updates against the
  // dense equivalent over the first probe batches; once a layer's observed
  // recompute fraction exceeds the profitability cutoff, its later batches
  // run the dense/lane kernels instead (bit-identical, just cheaper there).
  // The cutoffs come from bench_campaign_engine's frontier sweep: a scalar
  // batch beats one dense frame walk while the cone stays under about half
  // the layer, whereas a lane batch competes with SIMD-across-lanes kernels
  // and only wins clearly sparse cones.
  struct FrontierLayerPolicy {
    std::atomic<size_t> batches{0};
    std::atomic<size_t> updates{0};
    std::atomic<size_t> updates_dense{0};
  };
  constexpr size_t kFrontierProbeBatches = 1;
  constexpr double kFrontierScalarCutoff = 0.45;
  constexpr double kFrontierLaneCutoff = 0.10;
  std::vector<FrontierLayerPolicy> frontier_policy(frontier_ok ? L : 0);

  // Per-fault telemetry (sim-time and prefix-depth histograms, one span per
  // fault) is resolved once here and gated per fault on a single branch, so
  // the disabled path adds nothing measurable to the worker loop. None of
  // it feeds back into the simulation — campaign results stay bit-identical
  // with telemetry on or off (tests/test_obs.cpp).
  const bool obs_on = obs::telemetry_enabled();
  obs::Histogram& fault_sim_seconds = obs::Registry::instance().histogram(
      "campaign/fault_sim_seconds", obs::Histogram::exponential_bounds(1e-5, 4.0, 12));
  obs::Histogram& prefix_depth = obs::Registry::instance().histogram(
      "campaign/prefix_depth", obs::Histogram::linear_bounds(0.0, 15.0, 16));

  util::parallel_for_dynamic(pool_ptr, items.size(), grain, [&](size_t w, size_t i) {
    if (cancelled.load(std::memory_order_relaxed)) return;
    if (config.cancel && config.cancel()) {
      cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    const WorkItem item = items[i];
    const size_t* batch = order.data() + item.begin;
    auto run_item = [&] {
      bool use_frontier = frontier_ok;
      if (use_frontier && config.frontier_adaptive) {
        FrontierLayerPolicy& p = frontier_policy[fault_layer(faults[batch[0]])];
        if (p.batches.load(std::memory_order_relaxed) >= kFrontierProbeBatches) {
          const auto dense = static_cast<double>(p.updates_dense.load(std::memory_order_relaxed));
          const double frac =
              dense > 0.0 ? static_cast<double>(p.updates.load(std::memory_order_relaxed)) / dense
                          : 0.0;
          use_frontier =
              frac < (item.count > 1 ? kFrontierLaneCutoff : kFrontierScalarCutoff);
        }
      }
      if (use_frontier) {
        simulate_fault_frontier(workers[w]->net, stimulus, cache, config, cache.stats, faults,
                                batch, item.count, outcome.results, counters,
                                workers[w]->frontier);
        if (config.frontier_adaptive) {
          FrontierLayerPolicy& p = frontier_policy[fault_layer(faults[batch[0]])];
          p.updates.fetch_add(workers[w]->frontier.last_updates, std::memory_order_relaxed);
          p.updates_dense.fetch_add(workers[w]->frontier.last_updates_dense,
                                    std::memory_order_relaxed);
          p.batches.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (item.count > 1) {
        simulate_fault_batch(net, stimulus, cache, config, cache.stats, faults, batch,
                             item.count, outcome.results, counters, workers[w]->lane);
      } else {
        simulate_fault(*workers[w], faults[batch[0]], stimulus, cache, config,
                       outcome.results[batch[0]], counters);
      }
    };
    if (obs_on) {
      OBS_SPAN("campaign/fault_sim");
      const int64_t t0 = obs::trace_now_us();
      run_item();
      fault_sim_seconds.observe(static_cast<double>(obs::trace_now_us() - t0) * 1e-6);
      for (size_t b = 0; b < item.count; ++b) {
        prefix_depth.observe(
            static_cast<double>(config.prefix_reuse ? fault_layer(faults[batch[b]]) : 0));
      }
    } else {
      run_item();
    }
    counters.simulated.fetch_add(item.count, std::memory_order_relaxed);
    for (size_t b = 0; b < item.count; ++b) {
      const size_t j = batch[b];
      have[j] = 1;
      if (writer) writer->record(j, outcome.results[j]);
      if (config.result_sink) {
        std::lock_guard<std::mutex> lock(sink_mutex);
        config.result_sink(j, outcome.results[j]);
      }
      const size_t done = counters.completed.fetch_add(1, std::memory_order_relaxed) + 1;
      if (config.progress) config.progress(done, faults.size());
    }
  });
  if (writer) writer->flush();

  for (char h : have) {
    if (!h) {
      outcome.completed = false;
      break;
    }
  }
  outcome.stats.faults_simulated = counters.simulated.load();
  outcome.stats.faults_pruned = counters.pruned.load();
  outcome.stats.layer_forwards = counters.layer_forwards.load();
  outcome.stats.layer_forwards_naive = outcome.stats.faults_simulated * L;
  outcome.stats.lane_batches = counters.lane_batches.load();
  outcome.stats.lane_batched_faults = counters.lane_batched_faults.load();
  outcome.stats.lanes_retired_early = counters.lanes_retired_early.load();
  outcome.stats.frontier_faults = counters.frontier_faults.load();
  outcome.stats.frontier_neuron_updates = counters.frontier_neuron_updates.load();
  outcome.stats.frontier_neuron_updates_dense = counters.frontier_neuron_updates_dense.load();
  outcome.stats.frontier_fallback_frames = counters.frontier_fallback_frames.load();
  outcome.stats.elapsed_seconds = timer.seconds();

  // Campaign-total metrics (coarse, unconditional). "Golden-cache hits" are
  // the layer forwards the naive all-layers path would have run but the
  // differential engine served from the cache (prefix reuse) or proved
  // unnecessary (convergence pruning); misses are the forwards executed.
  {
    obs::Registry& reg = obs::Registry::instance();
    const EngineStats& s = outcome.stats;
    reg.counter("campaign/faults_simulated").add(s.faults_simulated);
    reg.counter("campaign/faults_resumed").add(s.faults_resumed);
    reg.counter("campaign/pairs_reused").add(s.pairs_reused);
    reg.counter("campaign/faults_pruned").add(s.faults_pruned);
    reg.counter("campaign/checkpoint_lines_skipped").add(s.checkpoint_lines_skipped);
    reg.counter("campaign/golden_cache_misses").add(s.layer_forwards);
    reg.counter("campaign/golden_cache_hits")
        .add(s.layer_forwards_naive - std::min(s.layer_forwards, s.layer_forwards_naive));
    reg.gauge("campaign/golden_cache_hit_rate").set(s.forward_savings());
    reg.gauge("campaign/elapsed_seconds").set(s.elapsed_seconds);
    reg.counter("campaign/lane_batches").add(s.lane_batches);
    reg.counter("campaign/lane_retired_early").add(s.lanes_retired_early);
    if (s.lane_batches > 0) {
      reg.gauge("campaign/lane_occupancy")
          .set(static_cast<double>(s.lane_batched_faults) /
               static_cast<double>(s.lane_batches * lane_width));
    }
    reg.counter("campaign/frontier_faults").add(s.frontier_faults);
    reg.counter("campaign/frontier_fallback_frames").add(s.frontier_fallback_frames);
    reg.counter("campaign/frontier_neuron_updates").add(s.frontier_neuron_updates);
    if (s.frontier_neuron_updates_dense > 0) {
      reg.gauge("campaign/frontier_recompute_fraction")
          .set(static_cast<double>(s.frontier_neuron_updates) /
               static_cast<double>(s.frontier_neuron_updates_dense));
    }
    obs::set_report_field("campaign_frontier", s.frontier_active);
    obs::set_report_field("campaign_golden_cache_bytes",
                          static_cast<uint64_t>(s.golden_cache_bytes));
    {
      std::string per_layer;
      for (size_t l = 0; l < s.golden_cache_layer_bytes.size(); ++l) {
        if (l > 0) per_layer += ',';
        per_layer += std::to_string(s.golden_cache_layer_bytes[l]);
      }
      obs::set_report_field("campaign_golden_cache_layer_bytes", per_layer);
    }
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(header.fingerprint));
    obs::set_report_field("campaign_fingerprint", std::string(fp));
    obs::set_report_field("campaign_lane_width_effective",
                          static_cast<uint64_t>(lane_width));
    obs::set_report_field("simd_backend",
                          std::string(tensor::simd::backend_name(tensor::simd::active_backend())));
  }
  return outcome;
}

}  // namespace snntest::campaign
