#include "campaign/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>

#include "campaign/checkpoint.hpp"
#include "campaign/golden_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "snn/spike_train.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace snntest::campaign {
namespace {

uint64_t hash_fault_list(const std::vector<fault::FaultDescriptor>& faults, uint64_t seed) {
  uint64_t h = seed;
  for (const auto& f : faults) {
    uint32_t mag_bits = 0;
    std::memcpy(&mag_bits, &f.magnitude, sizeof(mag_bits));
    const uint64_t sig[11] = {static_cast<uint64_t>(f.kind),
                              f.connection_granularity ? 1u : 0u,
                              f.neuron.layer,
                              f.neuron.index,
                              f.weight.layer,
                              f.weight.param,
                              f.weight.index,
                              f.connection.layer,
                              f.connection.out_index,
                              f.connection.in_index,
                              mag_bits};
    h = fnv1a(sig, sizeof(sig), h);
  }
  return h;
}

uint64_t campaign_fingerprint(const GoldenCache& cache,
                              const std::vector<fault::FaultDescriptor>& faults,
                              const EngineConfig& config) {
  uint64_t h = hash_fault_list(faults, cache.fingerprint);
  uint64_t threshold_bits = 0;
  std::memcpy(&threshold_bits, &config.detection_threshold, sizeof(threshold_bits));
  const uint64_t settings[2] = {threshold_bits, config.detect_only ? 1u : 0u};
  return fnv1a(settings, sizeof(settings), h);
}

bool trains_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  return std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

/// Full Eq. (3) comparison: exact L1 plus per-class count differences.
void fill_full_result(fault::DetectionResult& r, const tensor::Tensor& faulty_output,
                      const GoldenCache& cache, double threshold) {
  r.output_l1 = snn::output_distance(cache.output(), faulty_output);
  r.detected = r.output_l1 > threshold;
  const auto counts = snn::spike_counts(faulty_output);
  r.class_count_diff.resize(counts.size());
  for (size_t c = 0; c < counts.size(); ++c) {
    r.class_count_diff[c] =
        static_cast<long>(counts[c]) - static_cast<long>(cache.output_counts[c]);
  }
}

/// Detect-only comparison: stop at the first timestep where the accumulated
/// L1 mass crosses the threshold. output_l1 is a lower bound of the full L1.
void fill_detect_only_result(fault::DetectionResult& r, const tensor::Tensor& faulty_output,
                             const GoldenCache& cache, double threshold) {
  const tensor::Tensor& golden = cache.output();
  const size_t T = golden.shape().dim(0);
  const size_t n = golden.shape().dim(1);
  double acc = 0.0;
  for (size_t t = 0; t < T; ++t) {
    const float* a = golden.data() + t * n;
    const float* b = faulty_output.data() + t * n;
    for (size_t i = 0; i < n; ++i) acc += std::abs(static_cast<double>(a[i]) - b[i]);
    if (acc > threshold) {
      r.detected = true;
      r.output_l1 = acc;
      if (obs::telemetry_enabled()) {
        static obs::Counter& early_exits =
            obs::Registry::instance().counter("campaign/detect_only_early_exits");
        early_exits.add(1);
      }
      return;
    }
  }
  r.detected = false;
  r.output_l1 = acc;
}

/// Result for a fault whose layer output re-converged onto the golden
/// trajectory: every downstream train is bit-identical, so this is exactly
/// the naive result without running the remaining layers.
void fill_converged_result(fault::DetectionResult& r, const GoldenCache& cache,
                           const EngineConfig& config) {
  r.output_l1 = 0.0;
  r.detected = 0.0 > config.detection_threshold;
  if (!config.detect_only) r.class_count_diff.assign(cache.output_counts.size(), 0);
}

struct WorkerContext {
  snn::Network net;
  fault::FaultInjector injector;

  WorkerContext(const snn::Network& reference, const std::vector<fault::LayerWeightStats>& stats,
                snn::KernelMode mode)
      : net(reference), injector(net, stats) {
    net.set_kernel_mode(mode);
  }
};

struct SimCounters {
  std::atomic<size_t> simulated{0};
  std::atomic<size_t> pruned{0};
  std::atomic<size_t> layer_forwards{0};
  std::atomic<size_t> completed{0};
};

void simulate_fault(WorkerContext& worker, const fault::FaultDescriptor& f,
                    const tensor::Tensor& stimulus, const GoldenCache& cache,
                    const EngineConfig& config, fault::DetectionResult& r,
                    SimCounters& counters) {
  const size_t L = cache.num_layers();
  const size_t k = config.prefix_reuse ? fault_layer(f) : 0;
  const tensor::Tensor& start_input = k == 0 ? stimulus : cache.layer_output(k - 1);
  fault::ScopedFault scoped(worker.injector, f);

  if (!config.convergence_pruning) {
    const auto fr = worker.net.forward_from(k, start_input, /*record_traces=*/false);
    counters.layer_forwards.fetch_add(L - k, std::memory_order_relaxed);
    if (config.detect_only) {
      fill_detect_only_result(r, fr.output(), cache, config.detection_threshold);
    } else {
      fill_full_result(r, fr.output(), cache, config.detection_threshold);
    }
    return;
  }

  tensor::Tensor current;
  const tensor::Tensor* input = &start_input;
  for (size_t l = k; l < L; ++l) {
    current = worker.net.layer(l).forward(*input, /*record_traces=*/false);
    counters.layer_forwards.fetch_add(1, std::memory_order_relaxed);
    if (trains_equal(current, cache.layer_output(l))) {
      fill_converged_result(r, cache, config);
      if (l + 1 < L) counters.pruned.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    input = &current;
  }
  if (config.detect_only) {
    fill_detect_only_result(r, current, cache, config.detection_threshold);
  } else {
    fill_full_result(r, current, cache, config.detection_threshold);
  }
}

}  // namespace

size_t CampaignResult::detected_count() const {
  size_t n = 0;
  for (const auto& r : results) n += r.detected;
  return n;
}

size_t fault_layer(const fault::FaultDescriptor& fault) {
  if (fault.targets_neuron()) return fault.neuron.layer;
  if (fault.connection_granularity) return fault.connection.layer;
  return fault.weight.layer;
}

CampaignResult run_campaign(const snn::Network& net, const tensor::Tensor& stimulus,
                            const std::vector<fault::FaultDescriptor>& faults,
                            const EngineConfig& config) {
  OBS_SPAN("campaign/run");
  util::Timer timer;
  CampaignResult outcome;
  outcome.results.resize(faults.size());
  outcome.stats.faults_total = faults.size();
  if (faults.empty()) {
    outcome.stats.elapsed_seconds = timer.seconds();
    return outcome;
  }

  const GoldenCache cache = build_golden_cache(net, stimulus, config.kernel_mode);
  const size_t L = cache.num_layers();

  // --- checkpoint resume ---------------------------------------------------
  CheckpointHeader header;
  header.fingerprint = campaign_fingerprint(cache, faults, config);
  header.num_faults = faults.size();
  header.threshold = config.detection_threshold;

  std::vector<char> have(faults.size(), 0);
  std::optional<CheckpointWriter> writer;
  if (!config.checkpoint_path.empty()) {
    bool append = false;
    if (auto existing = load_checkpoint(config.checkpoint_path)) {
      if (existing->header.fingerprint != header.fingerprint ||
          existing->header.num_faults != faults.size()) {
        throw std::runtime_error("run_campaign: checkpoint " + config.checkpoint_path +
                                 " was written for different campaign inputs; delete it to "
                                 "start fresh");
      }
      for (auto& [index, result] : existing->results) {
        if (!have[index]) ++outcome.stats.faults_resumed;
        have[index] = 1;
        outcome.results[index] = std::move(result);
      }
      outcome.stats.checkpoint_lines_skipped = existing->skipped_lines;
      if (existing->skipped_lines > 0) {
        SNNTEST_LOG_WARN("run_campaign: checkpoint %s had %zu unusable result line(s); "
                         "those faults will be re-simulated",
                         config.checkpoint_path.c_str(), existing->skipped_lines);
      }
      append = true;
    }
    writer.emplace(config.checkpoint_path, header, append, config.checkpoint_flush_every);
  }

  std::vector<size_t> worklist;
  worklist.reserve(faults.size());
  for (size_t j = 0; j < faults.size(); ++j) {
    if (!have[j]) worklist.push_back(j);
  }

  // --- dynamic-schedule simulation -----------------------------------------
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t requested = config.num_threads == 0 ? hw : config.num_threads;
  std::optional<util::ThreadPool> pool;
  if (requested > 1 && worklist.size() > 1) pool.emplace(requested);
  util::ThreadPool* pool_ptr = pool ? &*pool : nullptr;

  const size_t num_workers = util::dynamic_workers(pool_ptr);
  std::vector<std::unique_ptr<WorkerContext>> workers;
  workers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers.push_back(std::make_unique<WorkerContext>(net, cache.stats, config.kernel_mode));
  }

  SimCounters counters;
  counters.completed.store(outcome.stats.faults_resumed);
  std::atomic<bool> cancelled{false};

  // Per-fault telemetry (sim-time and prefix-depth histograms, one span per
  // fault) is resolved once here and gated per fault on a single branch, so
  // the disabled path adds nothing measurable to the worker loop. None of
  // it feeds back into the simulation — campaign results stay bit-identical
  // with telemetry on or off (tests/test_obs.cpp).
  const bool obs_on = obs::telemetry_enabled();
  obs::Histogram& fault_sim_seconds = obs::Registry::instance().histogram(
      "campaign/fault_sim_seconds", obs::Histogram::exponential_bounds(1e-5, 4.0, 12));
  obs::Histogram& prefix_depth = obs::Registry::instance().histogram(
      "campaign/prefix_depth", obs::Histogram::linear_bounds(0.0, 15.0, 16));

  util::parallel_for_dynamic(pool_ptr, worklist.size(), config.grain, [&](size_t w, size_t i) {
    if (cancelled.load(std::memory_order_relaxed)) return;
    if (config.cancel && config.cancel()) {
      cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    const size_t j = worklist[i];
    if (obs_on) {
      OBS_SPAN("campaign/fault_sim");
      const int64_t t0 = obs::trace_now_us();
      simulate_fault(*workers[w], faults[j], stimulus, cache, config, outcome.results[j],
                     counters);
      fault_sim_seconds.observe(static_cast<double>(obs::trace_now_us() - t0) * 1e-6);
      prefix_depth.observe(
          static_cast<double>(config.prefix_reuse ? fault_layer(faults[j]) : 0));
    } else {
      simulate_fault(*workers[w], faults[j], stimulus, cache, config, outcome.results[j],
                     counters);
    }
    have[j] = 1;
    counters.simulated.fetch_add(1, std::memory_order_relaxed);
    if (writer) writer->record(j, outcome.results[j]);
    const size_t done = counters.completed.fetch_add(1, std::memory_order_relaxed) + 1;
    if (config.progress) config.progress(done, faults.size());
  });
  if (writer) writer->flush();

  for (char h : have) {
    if (!h) {
      outcome.completed = false;
      break;
    }
  }
  outcome.stats.faults_simulated = counters.simulated.load();
  outcome.stats.faults_pruned = counters.pruned.load();
  outcome.stats.layer_forwards = counters.layer_forwards.load();
  outcome.stats.layer_forwards_naive = outcome.stats.faults_simulated * L;
  outcome.stats.elapsed_seconds = timer.seconds();

  // Campaign-total metrics (coarse, unconditional). "Golden-cache hits" are
  // the layer forwards the naive all-layers path would have run but the
  // differential engine served from the cache (prefix reuse) or proved
  // unnecessary (convergence pruning); misses are the forwards executed.
  {
    obs::Registry& reg = obs::Registry::instance();
    const EngineStats& s = outcome.stats;
    reg.counter("campaign/faults_simulated").add(s.faults_simulated);
    reg.counter("campaign/faults_resumed").add(s.faults_resumed);
    reg.counter("campaign/faults_pruned").add(s.faults_pruned);
    reg.counter("campaign/checkpoint_lines_skipped").add(s.checkpoint_lines_skipped);
    reg.counter("campaign/golden_cache_misses").add(s.layer_forwards);
    reg.counter("campaign/golden_cache_hits")
        .add(s.layer_forwards_naive - std::min(s.layer_forwards, s.layer_forwards_naive));
    reg.gauge("campaign/golden_cache_hit_rate").set(s.forward_savings());
    reg.gauge("campaign/elapsed_seconds").set(s.elapsed_seconds);
    char fp[24];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(header.fingerprint));
    obs::set_report_field("campaign_fingerprint", std::string(fp));
  }
  return outcome;
}

}  // namespace snntest::campaign
