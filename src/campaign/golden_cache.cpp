#include "campaign/golden_cache.hpp"

#include <algorithm>
#include <atomic>

#include "campaign/fingerprint.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace snntest::campaign {

namespace {

/// Reconstruct the exact post-step LIF state of one (fault-free) layer from
/// its recorded forward traces. For kNormal neurons LifBank::step implies:
///   integrated & spiked   -> u = reset, refrac = refractory_i
///   integrated & no spike -> u = u_pre, refrac = 0
///   not integrated        -> u = reset, refrac = refrac_prev - 1
/// u_pre is stored verbatim from the live membrane variable, so the derived
/// values match the in-flight state bit-for-bit.
GoldenLayerState derive_layer_state(const snn::LifBank& bank, size_t num_steps) {
  const size_t n = bank.size();
  const float reset = bank.defaults().reset_potential;
  const std::vector<float>& u_pre = bank.trace_u_pre();
  const std::vector<uint8_t>& spike = bank.trace_spikes();
  const std::vector<uint8_t>& integ = bank.trace_integrated();
  GoldenLayerState st;
  st.u_post.resize(num_steps * n);
  st.refrac.resize(num_steps * n);
  std::vector<int32_t> carry(n, 0);  // refrac entering frame t
  for (size_t t = 0; t < num_steps; ++t) {
    const size_t base = t * n;
    for (size_t i = 0; i < n; ++i) {
      const size_t idx = base + i;
      if (integ[idx]) {
        if (spike[idx]) {
          st.u_post[idx] = reset;
          carry[i] = bank.refractories()[i];
        } else {
          st.u_post[idx] = u_pre[idx];
          carry[i] = 0;
        }
      } else {
        st.u_post[idx] = reset;
        carry[i] = carry[i] - 1;
      }
      st.refrac[idx] = carry[i];
    }
  }
  return st;
}

}  // namespace

GoldenCache build_golden_cache(const snn::Network& net, const tensor::Tensor& stimulus,
                               snn::KernelMode mode) {
  GoldenCacheOptions options;
  options.mode = mode;
  return build_golden_cache(net, stimulus, options);
}

GoldenCache build_golden_cache(const snn::Network& net, const tensor::Tensor& stimulus,
                               const GoldenCacheOptions& options) {
  OBS_SPAN("campaign/golden_pass");
  GoldenCache cache;
  const size_t T = stimulus.shape().dim(0);
  const size_t L = net.num_layers();

  // Byte accounting is decided BEFORE the pass: the spike trains are
  // irreducible (prefix reuse and the detection comparison need them), so
  // the budget can only shed the state traces — fail-soft to prefix-only.
  const size_t from = std::min(options.state_traces_from_layer, L);
  std::vector<size_t> train_bytes(L, 0);
  std::vector<size_t> state_bytes(L, 0);
  size_t train_total = 0;
  size_t state_total = 0;
  for (size_t l = 0; l < L; ++l) {
    const size_t n = net.layer(l).num_neurons();
    train_bytes[l] = T * n * sizeof(float);
    if (l >= from) state_bytes[l] = T * n * (sizeof(float) + sizeof(int32_t));
    train_total += train_bytes[l];
    state_total += state_bytes[l];
  }
  bool want_state = options.state_traces;
  if (want_state && options.budget_bytes > 0 &&
      train_total + state_total > options.budget_bytes) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      SNNTEST_LOG_WARN("build_golden_cache: state traces need %zu bytes on top of %zu train "
                       "bytes, over golden_cache_budget_bytes=%zu; falling back to "
                       "prefix-only caching (frontier simulation disabled)",
                       state_total, train_total, options.budget_bytes);
    }
    want_state = false;
  }

  snn::Network golden(net);
  golden.set_kernel_mode(options.mode);
  // Layer-by-layer so trace recording starts at `from`: layers above the
  // shallowest fault pay neither the recording cost nor the memory.
  cache.forward.layer_outputs.reserve(L);
  const tensor::Tensor* current = &stimulus;
  for (size_t l = 0; l < L; ++l) {
    const bool record = want_state && l >= from;
    cache.forward.layer_outputs.push_back(golden.layer(l).forward(*current, record));
    current = &cache.forward.layer_outputs.back();
  }
  cache.output_counts = cache.forward.output_counts();
  cache.stats = fault::compute_weight_stats(golden);
  cache.fingerprint =
      hash_stimulus(stimulus, hash_network_topology(net, util::kFnvOffsetBasis));
  cache.layer_bytes = train_bytes;
  cache.total_bytes = train_total;
  if (want_state) {
    cache.state.resize(L);
    for (size_t l = from; l < L; ++l) {
      cache.state[l] = derive_layer_state(golden.layer(l).lif(), T);
      cache.layer_bytes[l] += state_bytes[l];
    }
    cache.total_bytes += state_total;
    cache.has_state_traces = true;
    cache.state_traces_from_layer = from;
  }
  return cache;
}

}  // namespace snntest::campaign
