#include "campaign/golden_cache.hpp"

#include "obs/trace.hpp"

namespace snntest::campaign {

uint64_t fnv1a(const void* data, size_t bytes, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t hash_stimulus(const tensor::Tensor& stimulus, uint64_t seed) {
  uint64_t h = seed;
  for (size_t d = 0; d < stimulus.shape().rank(); ++d) {
    const uint64_t dim = stimulus.shape().dim(d);
    h = fnv1a(&dim, sizeof(dim), h);
  }
  return fnv1a(stimulus.data(), stimulus.numel() * sizeof(float), h);
}

uint64_t hash_network_topology(const snn::Network& net, uint64_t seed) {
  uint64_t h = fnv1a(net.name().data(), net.name().size(), seed);
  for (size_t l = 0; l < net.num_layers(); ++l) {
    const snn::Layer& layer = net.layer(l);
    const uint64_t sig[3] = {static_cast<uint64_t>(layer.kind()), layer.num_inputs(),
                             layer.num_neurons()};
    h = fnv1a(sig, sizeof(sig), h);
  }
  return h;
}

GoldenCache build_golden_cache(const snn::Network& net, const tensor::Tensor& stimulus,
                               snn::KernelMode mode) {
  OBS_SPAN("campaign/golden_pass");
  GoldenCache cache;
  snn::Network golden(net);
  golden.set_kernel_mode(mode);
  cache.forward = golden.forward(stimulus, /*record_traces=*/false);
  cache.output_counts = cache.forward.output_counts();
  cache.stats = fault::compute_weight_stats(golden);
  cache.fingerprint = hash_stimulus(stimulus, hash_network_topology(net, 14695981039346656037ull));
  return cache;
}

}  // namespace snntest::campaign
