#include "campaign/golden_cache.hpp"

#include "campaign/fingerprint.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"

namespace snntest::campaign {

GoldenCache build_golden_cache(const snn::Network& net, const tensor::Tensor& stimulus,
                               snn::KernelMode mode) {
  OBS_SPAN("campaign/golden_pass");
  GoldenCache cache;
  snn::Network golden(net);
  golden.set_kernel_mode(mode);
  cache.forward = golden.forward(stimulus, /*record_traces=*/false);
  cache.output_counts = cache.forward.output_counts();
  cache.stats = fault::compute_weight_stats(golden);
  cache.fingerprint =
      hash_stimulus(stimulus, hash_network_topology(net, util::kFnvOffsetBasis));
  return cache;
}

}  // namespace snntest::campaign
