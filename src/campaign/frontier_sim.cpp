#include "campaign/frontier_sim.hpp"

#include <bit>
#include <cstring>

#include "obs/metrics.hpp"
#include "snn/conv_layer.hpp"
#include "snn/dense_layer.hpp"
#include "snn/neuron.hpp"
#include "snn/pool_layer.hpp"
#include "snn/recurrent_layer.hpp"
#include "tensor/ops.hpp"
#include "tensor/simd.hpp"

namespace snntest::campaign {
namespace {

static_assert(snn::kMaxLaneWidth <= 16, "union_mask packs lane membership into uint16_t");

/// Transient application of one lane's synapse fault to the worker's
/// mutable (fault-free) network clone: the faulty stored value is written
/// into the exact weight slot the scalar FaultInjector would have mutated,
/// so the recomputed rows see the identical float. Restored before the next
/// lane's fault-layer pass.
struct SynapsePoke {
  float* slot = nullptr;
  float clean = 0.0f;
  snn::ConvLayer* conv = nullptr;  // connection-granularity override owner
};

SynapsePoke apply_synapse_fault(snn::Layer& layer, const snn::LaneSynapseFault& sf) {
  SynapsePoke p;
  using Kind = snn::LaneSynapseFault::Kind;
  switch (sf.kind) {
    case Kind::kNone:
      return p;
    case Kind::kWeight:
      p.slot = layer.kind() == snn::LayerKind::kDense
                   ? &static_cast<snn::DenseLayer&>(layer).weights()[sf.index]
                   : &static_cast<snn::RecurrentLayer&>(layer).weights()[sf.index];
      break;
    case Kind::kRecurrentWeight:
      p.slot = &static_cast<snn::RecurrentLayer&>(layer).recurrent_weights()[sf.index];
      break;
    case Kind::kConvWeight:
      p.slot = &static_cast<snn::ConvLayer&>(layer).weights()[sf.index];
      break;
    case Kind::kConvConnection: {
      auto& conv = static_cast<snn::ConvLayer&>(layer);
      const float stored = conv.connection_weight(sf.out_index, sf.in_index);
      conv.set_connection_override(sf.out_index, sf.in_index, stored + sf.delta);
      p.conv = &conv;
      return p;
    }
  }
  p.clean = *p.slot;
  *p.slot = sf.value;
  return p;
}

void restore_synapse_fault(const SynapsePoke& p) {
  if (p.slot != nullptr) *p.slot = p.clean;
  if (p.conv != nullptr) p.conv->clear_connection_override();
}

/// Lane-strided dense frame kernel over `lanes` interleaved frames — the
/// exact per-layer dispatch of snn::LaneLayerRun::synaptic_lanes' dense
/// mode, so each lane's column of syn_lanes is bit-identical to
/// Layer::frontier_synapse_frame on that lane's frames (the lane kernels'
/// per-lane ordered-double-sum contract, tensor/simd.hpp).
void synapse_frame_lanes(const snn::Layer& layer, const float* in_lanes,
                         const float* prev_lanes, size_t lanes, float* syn_lanes) {
  const size_t n = layer.num_neurons();
  const size_t ni = layer.num_inputs();
  switch (layer.kind()) {
    case snn::LayerKind::kDense:
      std::fill(syn_lanes, syn_lanes + n * lanes, 0.0f);
      tensor::matvec_accumulate_lanes(static_cast<const snn::DenseLayer&>(layer).weights().data(),
                                      n, ni, in_lanes, lanes, syn_lanes);
      break;
    case snn::LayerKind::kRecurrent: {
      const auto& rec = static_cast<const snn::RecurrentLayer&>(layer);
      std::fill(syn_lanes, syn_lanes + n * lanes, 0.0f);
      tensor::matvec_accumulate_lanes(rec.weights().data(), n, ni, in_lanes, lanes, syn_lanes);
      if (prev_lanes != nullptr) {
        tensor::matvec_accumulate_lanes(rec.recurrent_weights().data(), n, n, prev_lanes, lanes,
                                        syn_lanes);
      }
      break;
    }
    case snn::LayerKind::kConv2d: {
      const snn::Conv2dSpec& s = static_cast<const snn::ConvLayer&>(layer).spec();
      tensor::simd::ConvLaneGeom g;
      g.in_channels = s.in_channels;
      g.in_height = s.in_height;
      g.in_width = s.in_width;
      g.out_channels = s.out_channels;
      g.out_height = s.out_height();
      g.out_width = s.out_width();
      g.kernel = s.kernel;
      g.stride = s.stride;
      g.padding = s.padding;
      tensor::simd::lane_ops().conv_lanes_dense(
          g, static_cast<const snn::ConvLayer&>(layer).weights().data(), in_lanes, lanes,
          syn_lanes);
      break;
    }
    case snn::LayerKind::kSumPool: {
      const snn::SumPoolSpec& s = static_cast<const snn::SumPoolLayer&>(layer).spec();
      tensor::simd::lane_ops().pool_lanes(s.channels, s.in_height, s.in_width, s.window, in_lanes,
                                          lanes, syn_lanes);
      break;
    }
  }
}

}  // namespace

void simulate_fault_frontier(snn::Network& net, const tensor::Tensor& stimulus,
                             const GoldenCache& cache, const EngineConfig& config,
                             const std::vector<fault::LayerWeightStats>& stats,
                             const std::vector<fault::FaultDescriptor>& faults,
                             const size_t* batch, size_t count,
                             std::vector<fault::DetectionResult>& results,
                             detail::SimCounters& counters, FrontierSimContext& ctx) {
  const size_t L = cache.num_layers();
  const size_t k = fault_layer(faults[batch[0]]);
  const size_t T = stimulus.shape().dim(0);
  const bool obs_on = obs::telemetry_enabled();

  counters.frontier_faults.fetch_add(count, std::memory_order_relaxed);
  if (count > 1) {
    counters.lane_batches.fetch_add(1, std::memory_order_relaxed);
    counters.lane_batched_faults.fetch_add(count, std::memory_order_relaxed);
  }
  // Hot-loop tallies stay in locals; flushed to the shared atomics once.
  size_t updates = 0;
  size_t updates_dense = 0;
  size_t fallback_frames = 0;
  size_t forwards = 0;
  size_t pruned = 0;
  size_t retired = 0;

  if (ctx.lanes.size() < count) ctx.lanes.resize(count);
  for (size_t b = 0; b < count; ++b) {
    FrontierLaneState& lane = ctx.lanes[b];
    lane.fault = fault::resolve_lane_fault(net, stats, faults[batch[b]]);
    lane.result_index = batch[b];
    lane.active = true;
    // The fault layer reads the golden prefix directly: no input divergence.
    lane.in_div_idx.clear();
    lane.in_div_off.assign(1, 0);
  }
  size_t active_count = count;

  for (size_t l = k; l < L && active_count > 0; ++l) {
    snn::Layer& layer = net.layer(l);
    const size_t n = layer.num_neurons();
    const size_t ni = layer.num_inputs();
    const bool fault_here = l == k;
    const bool final_layer = l + 1 == L;
    const bool recurrent = layer.kind() == snn::LayerKind::kRecurrent;
    const float* gtrain = cache.layer_output(l).data();
    const GoldenLayerState& gstate = cache.state[l];
    const snn::LifBank& bank = layer.lif();
    const float reset = bank.defaults().reset_potential;
    const tensor::Tensor* golden_in =
        fault_here ? (l == 0 ? &stimulus : &cache.layer_output(l - 1)) : nullptr;
    forwards += active_count;
    if (ctx.union_mask.size() < n) ctx.union_mask.assign(n, 0);

    // A newly dirty neuron enters the walk carrying its exact pre-frame
    // state: the golden traces at t-1 (it was bit-identical to golden until
    // now), or the begin_run reset state at t = 0.
    auto mark_dirty = [&](FrontierLaneState& lane, size_t t, uint32_t i) {
      if (lane.dirty[i]) return;
      lane.dirty[i] = 1;
      lane.dirty_list.push_back(i);
      if (t == 0) {
        lane.u[i] = reset;
        lane.refrac[i] = 0;
      } else {
        const size_t p = (t - 1) * n + i;
        lane.u[i] = gstate.u_post[p];
        lane.refrac[i] = static_cast<int>(gstate.refrac[p]);
      }
    };
    auto mark_all = [&](FrontierLaneState& lane, size_t t) {
      for (size_t i = 0; i < n; ++i) mark_dirty(lane, t, static_cast<uint32_t>(i));
    };
    // One neuron-timestep: the exact LifBank::step float expressions via
    // the shared snn::lif_step_neuron, with the lane's single-neuron
    // parameter override substituted at the fault layer.
    auto step_neuron = [&](FrontierLaneState& lane, size_t t, uint32_t i, float syn_i) {
      const snn::LaneNeuronOverride& o = lane.fault.neuron;
      const bool over = fault_here && o.active && o.neuron == i;
      const snn::LifStepResult r = snn::lif_step_neuron(
          lane.u[i], lane.refrac[i], syn_i, over ? o.mode : bank.modes()[i],
          over ? o.threshold : bank.thresholds()[i], over ? o.leak : bank.leaks()[i],
          over ? o.refractory : bank.refractories()[i], reset);
      ++updates;
      const size_t idx = t * n + i;
      lane.train[idx] = r.spike;
      if (r.spike != gtrain[idx]) {
        lane.div_idx.push_back(i);
        if (final_layer) {
          // Divergent output spikes are exactly one unit of L1 mass apart
          // (both trains are exact 0.0f/1.0f), so the ledger's running sum
          // of 1.0s is the bit-exact value of the dense frame walks'
          // element-order double accumulation.
          lane.l1 += 1.0;
          if (!config.detect_only) lane.class_diff[i] += r.spike > 0.5f ? 1 : -1;
        }
      }
    };

    // --- per-layer lane init: start bit-identical to golden -----------------
    for (size_t b = 0; b < count; ++b) {
      FrontierLaneState& lane = ctx.lanes[b];
      if (!lane.active) continue;
      lane.train.resize(T * n);
      std::memcpy(lane.train.data(), gtrain, T * n * sizeof(float));
      lane.dirty.assign(n, 0);
      lane.param_dirty.assign(n, 0);
      lane.dirty_list.clear();
      lane.u.resize(n);
      lane.refrac.resize(n);
      lane.div_idx.clear();
      lane.div_off.assign(1, 0);
      if (final_layer) {
        lane.l1 = 0.0;
        lane.first_frame = -1;
        if (!config.detect_only) lane.class_diff.assign(n, 0);
      }
      if (fault_here) {
        // Seed the neurons the fault acts on directly. They stay
        // param-dirty for the whole window: the perturbation re-applies
        // every frame, so state re-convergence is not decisive for them.
        ctx.fanout.clear();
        bool seed_all = false;
        const snn::LaneFault& f = lane.fault;
        if (f.neuron.active) {
          ctx.fanout.push_back(f.neuron.neuron);
        } else {
          using Kind = snn::LaneSynapseFault::Kind;
          switch (f.synapse.kind) {
            case Kind::kNone:
              break;
            case Kind::kWeight:
              seed_all = !layer.frontier_weight_fanout(0, f.synapse.index, ctx.fanout);
              break;
            case Kind::kRecurrentWeight:
              seed_all = !layer.frontier_weight_fanout(1, f.synapse.index, ctx.fanout);
              break;
            case Kind::kConvWeight:
              seed_all = !layer.frontier_weight_fanout(0, f.synapse.index, ctx.fanout);
              break;
            case Kind::kConvConnection:
              ctx.fanout.push_back(static_cast<uint32_t>(f.synapse.out_index));
              break;
          }
        }
        if (seed_all) {
          for (size_t i = 0; i < n; ++i) ctx.fanout.push_back(static_cast<uint32_t>(i));
        }
        for (uint32_t i : ctx.fanout) {
          lane.param_dirty[i] = 1;
          mark_dirty(lane, 0, i);
        }
      }
    }

    // --- frame loop ---------------------------------------------------------
    for (size_t t = 0; t < T && active_count > 0; ++t) {
      // Phase A: grow each lane's dirty set with this frame's frontier.
      for (size_t b = 0; b < count; ++b) {
        FrontierLaneState& lane = ctx.lanes[b];
        if (!lane.active) continue;
        updates_dense += n;
        lane.full_frame = false;
        bool dirty_all = false;
        // Lateral feedback fans out densely: one divergent own-output spike
        // at t-1 perturbs every neuron's recurrent sum at t.
        if (recurrent && t > 0 && lane.div_off[t] > lane.div_off[t - 1]) dirty_all = true;
        if (!dirty_all && !fault_here) {
          const uint32_t e0 = lane.in_div_off[t];
          const uint32_t e1 = lane.in_div_off[t + 1];
          for (uint32_t e = e0; e < e1; ++e) {
            ctx.fanout.clear();
            if (!layer.frontier_fanout(lane.in_div_idx[e], ctx.fanout)) {
              dirty_all = true;  // dense fan-out: every neuron sees the change
              break;
            }
            for (uint32_t o : ctx.fanout) mark_dirty(lane, t, o);
          }
        }
        if (dirty_all) {
          mark_all(lane, t);
          lane.full_frame = true;
        } else if (static_cast<double>(lane.dirty_list.size()) >
                   config.frontier_threshold * static_cast<double>(n)) {
          mark_all(lane, t);
          lane.full_frame = true;
          ++fallback_frames;
        } else if (lane.dirty_list.size() == n) {
          lane.full_frame = true;  // the frame kernel is cheaper than n gathers
        }
      }

      // Phase B: recompute the dirty neurons' synapses and step them.
      if (fault_here) {
        // Synapse faults are poked into the shared worker clone, so the
        // fault layer runs its lanes strictly one at a time.
        const float* in_frame = golden_in->row(t);
        for (size_t b = 0; b < count; ++b) {
          FrontierLaneState& lane = ctx.lanes[b];
          if (!lane.active || lane.dirty_list.empty()) continue;
          const SynapsePoke poke = apply_synapse_fault(layer, lane.fault.synapse);
          const float* prev = recurrent && t > 0 ? lane.train.data() + (t - 1) * n : nullptr;
          if (lane.full_frame) {
            lane.syn.resize(n);
            layer.frontier_synapse_frame(in_frame, prev, lane.syn.data());
            for (uint32_t i : lane.dirty_list) step_neuron(lane, t, i, lane.syn[i]);
          } else {
            for (uint32_t i : lane.dirty_list) {
              step_neuron(lane, t, i, layer.frontier_synapse(in_frame, prev, i));
            }
          }
          restore_synapse_fault(poke);
        }
      } else {
        // Downstream layers are fault-free and shared. Full-frame lanes are
        // interleaved and batched through the SIMD lane kernels (one weight
        // stream for all of them); the remaining partial lanes are
        // union-scheduled so a weight row streams once for every lane that
        // needs it (consecutive lane visits keep it cache-hot).
        uint16_t partial = 0;
        ctx.full_list.clear();
        for (size_t b = 0; b < count; ++b) {
          FrontierLaneState& lane = ctx.lanes[b];
          if (!lane.active || lane.dirty_list.empty()) continue;
          if (lane.full_frame) {
            ctx.full_list.push_back(b);
          } else {
            partial |= static_cast<uint16_t>(1u << b);
          }
        }
        if (ctx.full_list.size() == 1) {
          FrontierLaneState& lane = ctx.lanes[ctx.full_list[0]];
          lane.syn.resize(n);
          layer.frontier_synapse_frame(
              lane.in_train.data() + t * ni,
              recurrent && t > 0 ? lane.train.data() + (t - 1) * n : nullptr, lane.syn.data());
          for (uint32_t i : lane.dirty_list) step_neuron(lane, t, i, lane.syn[i]);
        } else if (!ctx.full_list.empty()) {
          const size_t W = ctx.full_list.size();
          ctx.in_lanes.resize(ni * W);
          ctx.syn_lanes.resize(n * W);
          for (size_t j = 0; j < W; ++j) {
            const float* src = ctx.lanes[ctx.full_list[j]].in_train.data() + t * ni;
            for (size_t c = 0; c < ni; ++c) ctx.in_lanes[c * W + j] = src[c];
          }
          const float* prev_lanes = nullptr;
          if (recurrent && t > 0) {
            ctx.prev_lanes.resize(n * W);
            for (size_t j = 0; j < W; ++j) {
              const float* src = ctx.lanes[ctx.full_list[j]].train.data() + (t - 1) * n;
              for (size_t i = 0; i < n; ++i) ctx.prev_lanes[i * W + j] = src[i];
            }
            prev_lanes = ctx.prev_lanes.data();
          }
          synapse_frame_lanes(layer, ctx.in_lanes.data(), prev_lanes, W, ctx.syn_lanes.data());
          for (size_t j = 0; j < W; ++j) {
            FrontierLaneState& lane = ctx.lanes[ctx.full_list[j]];
            for (uint32_t i : lane.dirty_list) {
              step_neuron(lane, t, i, ctx.syn_lanes[i * W + j]);
            }
          }
        }
        if (partial != 0 && (partial & (partial - 1)) == 0) {
          // Single partial lane: plain gather loop, no union bookkeeping.
          FrontierLaneState& lane = ctx.lanes[static_cast<size_t>(std::countr_zero(partial))];
          const float* in_frame = lane.in_train.data() + t * ni;
          const float* prev = recurrent && t > 0 ? lane.train.data() + (t - 1) * n : nullptr;
          for (uint32_t i : lane.dirty_list) {
            step_neuron(lane, t, i, layer.frontier_synapse(in_frame, prev, i));
          }
        } else if (partial != 0) {
          ctx.union_list.clear();
          for (size_t b = 0; b < count; ++b) {
            if (!(partial & (1u << b))) continue;
            for (uint32_t i : ctx.lanes[b].dirty_list) {
              if (ctx.union_mask[i] == 0) ctx.union_list.push_back(i);
              ctx.union_mask[i] |= static_cast<uint16_t>(1u << b);
            }
          }
          for (uint32_t i : ctx.union_list) {
            uint16_t m = ctx.union_mask[i];
            ctx.union_mask[i] = 0;  // leave the mask all-zero for the next frame
            while (m != 0) {
              const size_t b = static_cast<size_t>(std::countr_zero(m));
              m &= static_cast<uint16_t>(m - 1);
              FrontierLaneState& lane = ctx.lanes[b];
              step_neuron(lane, t, i,
                          layer.frontier_synapse(lane.in_train.data() + t * ni,
                                                 recurrent && t > 0
                                                     ? lane.train.data() + (t - 1) * n
                                                     : nullptr,
                                                 i));
            }
          }
        }
      }

      // Phase C: close the frame — record the divergence offsets, retire
      // re-converged neurons from the dirty sets, and run the final layer's
      // detection ledger.
      for (size_t b = 0; b < count; ++b) {
        FrontierLaneState& lane = ctx.lanes[b];
        if (!lane.active) continue;
        lane.div_off.push_back(static_cast<uint32_t>(lane.div_idx.size()));
        const float* gu = gstate.u_post.data() + t * n;
        const int32_t* gr = gstate.refrac.data() + t * n;
        for (size_t s = 0; s < lane.dirty_list.size();) {
          const uint32_t i = lane.dirty_list[s];
          // Numeric equality is exact here: future spike decisions compare
          // values numerically, so +0.0 == -0.0 states are interchangeable;
          // a NaN membrane never retires (conservative).
          if (!lane.param_dirty[i] && lane.u[i] == gu[i] &&
              lane.refrac[i] == static_cast<int>(gr[i])) {
            lane.dirty[i] = 0;
            lane.dirty_list[s] = lane.dirty_list.back();
            lane.dirty_list.pop_back();
          } else {
            ++s;
          }
        }
        if (final_layer) {
          if (lane.first_frame < 0 && lane.l1 > config.detection_threshold) {
            lane.first_frame = static_cast<int64_t>(t);
          }
          if (config.detect_only && lane.first_frame >= 0) {
            // Decisive divergence: the scalar fill_detect_only_result early
            // exit, lane-retired mid-window like the lane-batched path.
            fault::DetectionResult& r = results[lane.result_index];
            r.detected = true;
            r.output_l1 = lane.l1;
            r.first_detection_frame = lane.first_frame;
            if (obs_on) {
              static obs::Counter& early_exits =
                  obs::Registry::instance().counter("campaign/detect_only_early_exits");
              early_exits.add(1);
            }
            if (count > 1) ++retired;
            lane.active = false;
            --active_count;
          }
        }
      }
    }

    // --- layer end ----------------------------------------------------------
    for (size_t b = 0; b < count; ++b) {
      FrontierLaneState& lane = ctx.lanes[b];
      if (!lane.active) continue;
      if (final_layer) {
        fault::DetectionResult& r = results[lane.result_index];
        if (config.detect_only) {
          // Survivors never crossed the threshold: exact full L1.
          r.detected = false;
          r.output_l1 = lane.l1;
          r.first_detection_frame = -1;
        } else {
          r.output_l1 = lane.l1;
          r.detected = lane.l1 > config.detection_threshold;
          r.first_detection_frame = lane.first_frame;
          r.class_count_diff = lane.class_diff;
        }
        continue;
      }
      if (lane.div_idx.empty() && config.convergence_pruning) {
        // Whole-window output identical to golden: the exact convergence
        // early exit (downstream is bit-identical too).
        detail::fill_converged_result(results[lane.result_index], cache, config);
        ++pruned;
        if (count > 1) ++retired;
        lane.active = false;
        --active_count;
        continue;
      }
      std::swap(lane.train, lane.in_train);
      std::swap(lane.div_idx, lane.in_div_idx);
      std::swap(lane.div_off, lane.in_div_off);
    }
  }

  ctx.last_updates = updates;
  ctx.last_updates_dense = updates_dense;
  counters.layer_forwards.fetch_add(forwards, std::memory_order_relaxed);
  counters.pruned.fetch_add(pruned, std::memory_order_relaxed);
  counters.lanes_retired_early.fetch_add(retired, std::memory_order_relaxed);
  counters.frontier_neuron_updates.fetch_add(updates, std::memory_order_relaxed);
  counters.frontier_neuron_updates_dense.fetch_add(updates_dense, std::memory_order_relaxed);
  counters.frontier_fallback_frames.fetch_add(fallback_frames, std::memory_order_relaxed);
}

}  // namespace snntest::campaign
