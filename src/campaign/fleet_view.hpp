// FleetView: fold per-shard SNST status snapshots into one campaign-wide
// picture (DESIGN.md §16).
//
// The aggregation is a pure read of the campaign work directory — it runs
// identically inside the supervising orchestrator (which republishes it as
// fleet_status.json on an interval) and inside a completely separate
// `coverage_tool status` process watching a live or finished campaign. No
// side channel exists: whatever the files say is the fleet state.
//
// Merge semantics:
//  * counters sum across shards; histograms sum bucket-wise when bounds
//    match exactly (mismatches are counted, not guessed at); gauges are
//    last-write-wins per process so they do NOT merge — per-shard values
//    stay visible in the per-shard views instead;
//  * throughput is estimated per shard from the trailing window of its
//    coverage curve, so a shard that sprinted early and stalled ranks as the
//    straggler it is;
//  * the ETA divides remaining faults by the summed throughput of the
//    still-running shards — the fleet finishes when its slowest member does,
//    but a committed shard contributes no throughput and no remaining work;
//  * every read fails soft: a missing snapshot is counted in
//    snapshots_missing, an unparsable one in snapshots_corrupt, and a
//    committed shard file (.snfd) marks the shard complete even when its
//    status snapshot is gone.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/status.hpp"

namespace snntest::campaign {

/// One shard as the fleet sees it.
struct ShardView {
  size_t shard_index = 0;
  bool have_status = false;  ///< a loadable SNST snapshot was found
  bool completed = false;    ///< snapshot says so, or the .snfd exists
  ShardStatus status;        ///< defaults when !have_status
  double throughput = 0.0;   ///< faults/s over the trailing sample window
  double eta_seconds = 0.0;  ///< remaining/throughput; 0 when done or unknown
};

struct FleetView {
  size_t num_shards = 0;
  uint64_t faults_total = 0;
  uint64_t faults_done = 0;
  uint64_t detected = 0;
  uint64_t pairs_reused = 0;
  uint64_t pairs_recorded = 0;
  size_t shards_completed = 0;
  size_t snapshots_missing = 0;  ///< no status file (worker not started yet?)
  size_t snapshots_corrupt = 0;  ///< torn/truncated/stale status file skipped
  bool completed = false;        ///< every shard committed
  double throughput = 0.0;       ///< summed faults/s of the running shards
  double eta_seconds = 0.0;      ///< 0 when completed or throughput unknown
  double elapsed_seconds = 0.0;  ///< max over shard-reported elapsed times
  std::vector<ShardView> shards;
  /// Incomplete shards, slowest-to-finish first (remaining/throughput;
  /// shards with unknown throughput rank ahead of everything).
  std::vector<size_t> stragglers;
  /// Counters summed, histograms bucket-summed where bounds agree.
  obs::Registry::Snapshot merged_metrics;
  size_t histograms_bounds_mismatched = 0;
};

/// Faults per shard, in shard order — the trailing-window slope of one
/// shard's coverage curve (0 when fewer than two samples).
double shard_throughput(const std::vector<CoverageSample>& samples);

/// Read every shard's status/committed files under `work_dir` and fold them.
/// num_shards == 0 auto-discovers the fleet size: the first loadable
/// snapshot's num_shards, else the count of consecutive shard_<i> files.
/// `expected_faults` (faults per shard, shard order) backfills faults_total
/// for shards whose snapshot is missing; pass the plan_shards sizes when you
/// have them.
FleetView build_fleet_view(const std::string& work_dir, size_t num_shards,
                           const std::vector<size_t>* expected_faults = nullptr);

/// Human-readable terminal rendering: coverage %, faults/s, ETA, and a
/// per-shard progress table.
std::string render_fleet(const FleetView& view);

/// Machine-readable rendering, schema "snntest-fleet-v1". The orchestrator
/// rewrites this atomically as fleet_status.json while a campaign runs.
std::string fleet_status_json(const FleetView& view);

}  // namespace snntest::campaign
