#include "campaign/fleet_view.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "campaign/shard.hpp"
#include "util/json.hpp"

namespace snntest::campaign {
namespace {

bool file_exists(const std::string& path) { return std::ifstream(path).good(); }

/// Shards still running rank by time-to-finish, unknown throughput worst.
double time_to_finish(const ShardView& s) {
  if (s.completed) return 0.0;
  const uint64_t remaining =
      s.status.faults_total > s.status.faults_done ? s.status.faults_total - s.status.faults_done : 0;
  if (s.throughput <= 0.0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(remaining) / s.throughput;
}

void merge_snapshot(obs::Registry::Snapshot& into, const obs::Registry::Snapshot& from,
                    size_t* bounds_mismatched) {
  for (const auto& [name, value] : from.counters) into.counters[name] += value;
  // Gauges are last-write-wins per process; summing or averaging them across
  // shards would fabricate a value no process ever reported, so they stay
  // per-shard only.
  for (const auto& [name, h] : from.histograms) {
    auto it = into.histograms.find(name);
    if (it == into.histograms.end()) {
      into.histograms[name] = h;
      continue;
    }
    obs::Registry::HistogramSnapshot& acc = it->second;
    if (acc.bounds != h.bounds || acc.buckets.size() != h.buckets.size()) {
      ++*bounds_mismatched;
      continue;
    }
    for (size_t b = 0; b < h.buckets.size(); ++b) acc.buckets[b] += h.buckets[b];
    acc.count += h.count;
    acc.sum += h.sum;
  }
}

size_t discover_num_shards(const std::string& work_dir) {
  // Prefer what a snapshot says; otherwise count consecutive shard files.
  for (size_t i = 0; file_exists(shard_paths(work_dir, i).status) ||
                     file_exists(shard_paths(work_dir, i).final) ||
                     file_exists(shard_paths(work_dir, i).heartbeat);
       ++i) {
    if (auto status = load_shard_status(shard_paths(work_dir, i).status)) {
      if (status->num_shards > 0) return status->num_shards;
    }
  }
  size_t count = 0;
  while (file_exists(shard_paths(work_dir, count).status) ||
         file_exists(shard_paths(work_dir, count).final) ||
         file_exists(shard_paths(work_dir, count).heartbeat)) {
    ++count;
  }
  return count;
}

util::JsonValue json_number(double v) {
  util::JsonValue out;
  out.kind = util::JsonValue::kNumber;
  out.number = v;
  return out;
}

util::JsonValue json_uint(uint64_t v) { return json_number(static_cast<double>(v)); }

}  // namespace

double shard_throughput(const std::vector<CoverageSample>& samples) {
  if (samples.size() < 2) return 0.0;
  // Trailing window: the last ~8 samples, so an early sprint followed by a
  // stall reads as the stall it is.
  const size_t window = std::min<size_t>(samples.size(), 8);
  const CoverageSample& first = samples[samples.size() - window];
  const CoverageSample& last = samples.back();
  const double dt = last.t_seconds - first.t_seconds;
  if (dt <= 0.0 || last.faults_done < first.faults_done) return 0.0;
  return static_cast<double>(last.faults_done - first.faults_done) / dt;
}

FleetView build_fleet_view(const std::string& work_dir, size_t num_shards,
                           const std::vector<size_t>* expected_faults) {
  FleetView view;
  if (num_shards == 0) num_shards = discover_num_shards(work_dir);
  view.num_shards = num_shards;
  view.shards.reserve(num_shards);

  for (size_t i = 0; i < num_shards; ++i) {
    const ShardPaths paths = shard_paths(work_dir, i);
    ShardView s;
    s.shard_index = i;
    if (auto status = load_shard_status(paths.status)) {
      s.have_status = true;
      s.status = std::move(*status);
    } else if (file_exists(paths.status)) {
      ++view.snapshots_corrupt;
    } else {
      ++view.snapshots_missing;
    }
    s.completed = (s.have_status && s.status.completed) || file_exists(paths.final);
    if (!s.have_status && expected_faults != nullptr && i < expected_faults->size()) {
      s.status.faults_total = (*expected_faults)[i];
      if (s.completed) {
        s.status.faults_done = s.status.faults_total;
      }
    }
    if (s.completed && s.status.faults_done < s.status.faults_total) {
      // A committed shard is fully done even when its last snapshot predates
      // the commit.
      s.status.faults_done = s.status.faults_total;
    }
    s.throughput = s.completed ? 0.0 : shard_throughput(s.status.samples);
    const double ttf = time_to_finish(s);
    s.eta_seconds = std::isfinite(ttf) ? ttf : 0.0;

    view.faults_total += s.status.faults_total;
    view.faults_done += s.status.faults_done;
    view.detected += s.status.detected;
    view.pairs_reused += s.status.pairs_reused;
    view.pairs_recorded += s.status.pairs_recorded;
    if (s.completed) ++view.shards_completed;
    if (!s.completed) view.throughput += s.throughput;
    view.elapsed_seconds = std::max(view.elapsed_seconds, s.status.elapsed_seconds);
    if (s.have_status) {
      merge_snapshot(view.merged_metrics, s.status.metrics, &view.histograms_bounds_mismatched);
    }
    view.shards.push_back(std::move(s));
  }

  view.completed = num_shards > 0 && view.shards_completed == num_shards;
  if (!view.completed) {
    // The fleet is done when its slowest member is: ETA is the max of the
    // per-shard times-to-finish, not total-remaining / total-throughput.
    double eta = 0.0;
    bool unknown = false;
    for (const ShardView& s : view.shards) {
      if (s.completed) continue;
      const double ttf = time_to_finish(s);
      if (!std::isfinite(ttf)) {
        unknown = true;
      } else {
        eta = std::max(eta, ttf);
      }
    }
    view.eta_seconds = unknown && eta == 0.0 ? 0.0 : eta;
    for (const ShardView& s : view.shards) {
      if (!s.completed) view.stragglers.push_back(s.shard_index);
    }
    std::stable_sort(view.stragglers.begin(), view.stragglers.end(),
                     [&view](size_t a, size_t b) {
                       return time_to_finish(view.shards[a]) > time_to_finish(view.shards[b]);
                     });
  }
  return view;
}

std::string render_fleet(const FleetView& view) {
  std::ostringstream out;
  char line[256];
  const double coverage =
      view.faults_done == 0
          ? 0.0
          : 100.0 * static_cast<double>(view.detected) / static_cast<double>(view.faults_done);
  const double progress =
      view.faults_total == 0
          ? 0.0
          : 100.0 * static_cast<double>(view.faults_done) / static_cast<double>(view.faults_total);
  std::snprintf(line, sizeof(line),
                "fleet: %zu/%zu shards committed, %llu/%llu faults (%.1f%%), coverage %.1f%%\n",
                view.shards_completed, view.num_shards,
                static_cast<unsigned long long>(view.faults_done),
                static_cast<unsigned long long>(view.faults_total), progress, coverage);
  out << line;
  if (view.completed) {
    std::snprintf(line, sizeof(line), "campaign complete (last shard finished at %.1fs)\n",
                  view.elapsed_seconds);
  } else if (view.throughput > 0.0 && view.eta_seconds > 0.0) {
    std::snprintf(line, sizeof(line), "throughput %.1f faults/s, ETA %.1fs\n", view.throughput,
                  view.eta_seconds);
  } else {
    std::snprintf(line, sizeof(line), "throughput %.1f faults/s, ETA unknown\n", view.throughput);
  }
  out << line;
  if (view.snapshots_missing != 0 || view.snapshots_corrupt != 0) {
    std::snprintf(line, sizeof(line), "status snapshots: %zu missing, %zu corrupt (skipped)\n",
                  view.snapshots_missing, view.snapshots_corrupt);
    out << line;
  }
  out << "shard   done/total  detected   faults/s      eta  state\n";
  for (const ShardView& s : view.shards) {
    const char* state = s.completed ? "committed" : (s.have_status ? "running" : "no status");
    std::snprintf(line, sizeof(line), "%5zu  %6llu/%-6llu %8llu %10.1f %8.1f  %s\n", s.shard_index,
                  static_cast<unsigned long long>(s.status.faults_done),
                  static_cast<unsigned long long>(s.status.faults_total),
                  static_cast<unsigned long long>(s.status.detected), s.throughput, s.eta_seconds,
                  state);
    out << line;
  }
  if (!view.stragglers.empty()) {
    out << "stragglers (slowest-to-finish first):";
    for (size_t i = 0; i < view.stragglers.size() && i < 4; ++i) {
      out << " shard_" << view.stragglers[i];
    }
    out << "\n";
  }
  return out.str();
}

std::string fleet_status_json(const FleetView& view) {
  using util::JsonValue;
  JsonValue root;
  root.kind = JsonValue::kObject;
  JsonValue schema;
  schema.kind = JsonValue::kString;
  schema.str = "snntest-fleet-v1";
  root.object["schema"] = schema;
  root.object["num_shards"] = json_uint(view.num_shards);
  root.object["faults_total"] = json_uint(view.faults_total);
  root.object["faults_done"] = json_uint(view.faults_done);
  root.object["detected"] = json_uint(view.detected);
  root.object["pairs_reused"] = json_uint(view.pairs_reused);
  root.object["pairs_recorded"] = json_uint(view.pairs_recorded);
  root.object["shards_completed"] = json_uint(view.shards_completed);
  root.object["snapshots_missing"] = json_uint(view.snapshots_missing);
  root.object["snapshots_corrupt"] = json_uint(view.snapshots_corrupt);
  JsonValue completed;
  completed.kind = JsonValue::kBool;
  completed.boolean = view.completed;
  root.object["completed"] = completed;
  root.object["throughput_faults_per_second"] = json_number(view.throughput);
  root.object["eta_seconds"] = json_number(view.eta_seconds);
  root.object["elapsed_seconds"] = json_number(view.elapsed_seconds);

  JsonValue shards;
  shards.kind = JsonValue::kArray;
  for (const ShardView& s : view.shards) {
    JsonValue shard;
    shard.kind = JsonValue::kObject;
    shard.object["shard_index"] = json_uint(s.shard_index);
    JsonValue have;
    have.kind = JsonValue::kBool;
    have.boolean = s.have_status;
    shard.object["have_status"] = have;
    JsonValue done;
    done.kind = JsonValue::kBool;
    done.boolean = s.completed;
    shard.object["completed"] = done;
    shard.object["heartbeat"] = json_uint(s.status.heartbeat);
    shard.object["faults_total"] = json_uint(s.status.faults_total);
    shard.object["faults_done"] = json_uint(s.status.faults_done);
    shard.object["detected"] = json_uint(s.status.detected);
    shard.object["pairs_reused"] = json_uint(s.status.pairs_reused);
    shard.object["pairs_recorded"] = json_uint(s.status.pairs_recorded);
    shard.object["elapsed_seconds"] = json_number(s.status.elapsed_seconds);
    shard.object["throughput_faults_per_second"] = json_number(s.throughput);
    shard.object["eta_seconds"] = json_number(s.eta_seconds);
    shards.array.push_back(std::move(shard));
  }
  root.object["shards"] = std::move(shards);

  JsonValue stragglers;
  stragglers.kind = JsonValue::kArray;
  for (size_t idx : view.stragglers) stragglers.array.push_back(json_uint(idx));
  root.object["stragglers"] = std::move(stragglers);

  JsonValue counters;
  counters.kind = JsonValue::kObject;
  for (const auto& [name, value] : view.merged_metrics.counters) {
    counters.object[name] = json_uint(value);
  }
  root.object["merged_counters"] = std::move(counters);
  root.object["histograms_bounds_mismatched"] = json_uint(view.histograms_bounds_mismatched);
  return util::to_json(root);
}

}  // namespace snntest::campaign
