// Differential fault-simulation campaign engine.
//
// The naive campaign re-simulates every layer of the network for every
// fault. This engine exploits the structure of the problem instead:
//
//  * Prefix reuse — a fault is confined to one layer k (see
//    fault/injector.hpp), so the fault-free spike trains of layers 0..k-1
//    from the GoldenCache feed layer k directly; only layers k..L-1 run.
//  * Convergence pruning (exact early exit) — spike trains are binary, so
//    if the faulty output of any layer l >= k is bit-identical to the
//    golden train of layer l, every downstream layer is bit-identical too:
//    the fault is undetectable by this stimulus and simulation stops at
//    layer l. This decides `detected` without ever touching the remaining
//    layers, and the emitted DetectionResult is exactly what the naive
//    path would have produced.
//  * Detect-only early exit — when only Eq. (3)'s detected/undetected bit
//    is needed, the output comparison keeps accumulating the L1 mass
//    timestep by timestep and stops as soon as it crosses the detection
//    threshold (a decisive divergence — later timesteps can only grow it).
//    `output_l1` then holds a lower bound of the full L1 (exact when the
//    train ends below the threshold) and class_count_diff is left empty.
//  * Lane batching — up to `lane_width` pending faults confined to the
//    same layer share one multi-lane forward from the golden prefix: each
//    layer streams its weights once per frame for all lanes (per-lane
//    membrane state, per-lane spike trains), and retired lanes (converged
//    or decisively divergent in detect-only mode) are compacted away so
//    the remaining frames run narrower. Results stay bit-identical to the
//    scalar path (snn/lane_network.hpp, DESIGN.md §12).
//  * Dynamic scheduling — per-fault cost varies by orders of magnitude
//    with fault depth, so workers claim small chunks from a shared atomic
//    counter (util::parallel_for_dynamic) instead of static ranges.
//  * Checkpoint/resume — with a checkpoint path every completed result is
//    streamed to a JSONL file (campaign/checkpoint.hpp); a rerun against
//    the same inputs resumes from the completed shards.
//
// fault::run_detection_campaign is a compatibility wrapper over this
// engine (campaign/legacy.cpp).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/injector.hpp"
#include "tensor/tensor.hpp"

namespace snntest::campaign {

struct EngineConfig {
  size_t num_threads = 0;  // 0 = hardware concurrency
  /// Worklist items claimed per scheduler round-trip (one item is a lane
  /// batch or a single scalar fault). 0 (default) auto-tunes from the
  /// worklist size: items / (workers * 8), clamped to [1, 64] — small
  /// enough to balance uneven per-fault cost, large enough to amortize the
  /// atomic traffic. An explicit value is authoritative.
  size_t grain = 0;
  /// Faults evaluated per forward pass: pending faults confined to the
  /// same layer are packed into lane batches of up to this many lanes
  /// (clamped to snn::kMaxLaneWidth). 1 disables lane batching (pure
  /// scalar path); batching also falls back to scalar for single-fault
  /// groups and when prefix_reuse is off. Results are bit-identical at
  /// every width.
  size_t lane_width = 8;
  /// detected = output_l1 > detection_threshold (default keeps Eq. (3)).
  double detection_threshold = 0.0;
  /// Reuse golden activations of the layers before the faulty one.
  bool prefix_reuse = true;
  /// Stop as soon as a layer's faulty output matches its golden output.
  bool convergence_pruning = true;
  /// Only decide detected/undetected: accumulate the output L1 timestep by
  /// timestep and stop once it crosses detection_threshold (or the train
  /// ends). output_l1 becomes a lower bound (exact for undetected faults)
  /// and class_count_diff is left empty. Off by default (full results).
  bool detect_only = false;
  /// Forward-kernel selection for the golden pass and every worker clone.
  /// All modes produce bit-identical spike trains (snn::KernelMode); the
  /// default kAuto exploits event sparsity per frame and never loses.
  snn::KernelMode kernel_mode = snn::KernelMode::kAuto;
  /// Divergence-frontier simulation (DESIGN.md §17): downstream of the
  /// fault layer, recompute per frame only the neurons reachable from the
  /// set of diverged spikes/state (copying golden values for the rest), in
  /// the exact dense accumulation order — results stay bit-identical at
  /// every lane width. Requires prefix_reuse, golden state traces (see
  /// golden_cache_budget_bytes) and frontier-capable layers; when any
  /// prerequisite is missing the engine logs a one-time warning and runs
  /// the dense/sparse/lane kernels instead. Off by default.
  bool frontier = false;
  /// Dirty-fraction fallback: when more than this fraction of a layer's
  /// neurons is dirty in a frame, that frame runs the full dense frame
  /// kernel (counted in EngineStats::frontier_fallback_frames). 0 forces
  /// the dense kernel every frame (useful to bound frontier overhead);
  /// values >= 1 never fall back.
  double frontier_threshold = 0.5;
  /// Adaptive frontier routing: after a few probe batches per fault layer,
  /// the engine keeps routing a layer's batches through the frontier walk
  /// only while its observed recompute fraction says the walk beats the
  /// dense/lane kernels (sparse cones win; heavily divergent layers lose to
  /// SIMD lane batching). Results are bit-identical either way. Force off
  /// to route every batch through the frontier walk unconditionally.
  bool frontier_adaptive = true;
  /// Memory budget for the golden cache, in bytes (0 = unlimited). The
  /// per-layer spike trains are irreducible; when trains + LIF state traces
  /// would exceed the budget the state traces are dropped (fail-soft to
  /// prefix-only caching, disabling frontier simulation) with a one-time
  /// warning.
  size_t golden_cache_budget_bytes = 0;
  /// JSONL checkpoint file; empty disables checkpointing. If the file
  /// already holds a checkpoint for the same (network, stimulus, faults,
  /// settings) fingerprint, its completed results are reused; a checkpoint
  /// for different inputs throws std::runtime_error.
  std::string checkpoint_path;
  /// Checkpoint flush cadence (completed results per flush).
  size_t checkpoint_flush_every = 32;
  /// Consulted once per fault (after checkpoint resume, before the worklist
  /// is built): return true and fill `result` when the (fault, stimulus)
  /// pair is already known — e.g. served from a coverage fault dictionary
  /// (coverage/incremental.hpp). Such pairs skip simulation entirely and
  /// are counted in EngineStats::pairs_reused. Called from the campaign
  /// thread only, never concurrently. Reused pairs are not re-recorded to
  /// the checkpoint (the cache already persists them).
  std::function<bool(size_t fault_index, fault::DetectionResult& result)> result_cache;
  /// Streaming completion hook: called exactly once per fault *simulated in
  /// this run* (checkpoint-resumed and cache-reused pairs are not replayed
  /// through it), as soon as that fault's DetectionResult is final. Calls
  /// are serialized by an internal mutex but originate from worker threads.
  /// The sharded campaign worker (campaign/shard_worker.hpp) uses this to
  /// persist completed pairs incrementally, so a SIGKILL loses at most the
  /// results accepted since its last flush.
  std::function<void(size_t fault_index, const fault::DetectionResult& result)> result_sink;
  /// Progress callback (completed, total); called from worker threads.
  std::function<void(size_t, size_t)> progress;
  /// Cooperative cancellation, polled between faults. Returning true makes
  /// workers stop claiming work; the partial outcome (completed=false) is
  /// checkpointed and can be resumed.
  std::function<bool()> cancel;
};

struct EngineStats {
  size_t faults_total = 0;
  size_t faults_simulated = 0;  // simulated in this run
  size_t faults_resumed = 0;    // restored from the checkpoint
  /// Fault×stimulus pairs served by EngineConfig::result_cache (coverage
  /// dictionary hits) instead of being simulated.
  size_t pairs_reused = 0;
  /// Faults whose simulation stopped early at a converged layer.
  size_t faults_pruned = 0;
  /// Layer forward passes actually executed vs. what the naive
  /// all-layers-per-fault path would have executed. The ratio is the
  /// arithmetic speedup of the differential simulation.
  size_t layer_forwards = 0;
  size_t layer_forwards_naive = 0;
  /// Checkpoint lines that existed but could not be used on resume
  /// (malformed JSON or out-of-range fault index). One such line is the
  /// expected artifact of a kill mid-write; more than one means the file
  /// was corrupted and those faults were re-simulated.
  size_t checkpoint_lines_skipped = 0;
  /// Lane width the engine actually ran with: EngineConfig::lane_width
  /// clamped into [1, snn::kMaxLaneWidth]. Differs from the config only
  /// when the request was out of range (which also logs a one-time
  /// warning).
  size_t lane_width_effective = 0;
  /// Lane-batched passes executed and the faults they carried; the
  /// remaining simulated faults ran the scalar path (singleton layer
  /// groups, lane_width 1, or prefix_reuse off).
  size_t lane_batches = 0;
  size_t lane_batched_faults = 0;
  /// Lanes retired before their batch finished: converged onto the golden
  /// trajectory at an intermediate layer, or (detect-only) decisively
  /// divergent mid-window.
  size_t lanes_retired_early = 0;
  /// True when the run actually used divergence-frontier simulation
  /// (EngineConfig::frontier requested AND every prerequisite held).
  bool frontier_active = false;
  /// Faults simulated through the frontier path.
  size_t frontier_faults = 0;
  /// Neuron-timestep updates the frontier path executed, vs. what dense
  /// frame kernels would have executed for the same (lane, layer, frame)
  /// work (active lanes × layer size per frame). The ratio is the
  /// per-neuron work reduction; full-frame fallbacks count on both sides.
  size_t frontier_neuron_updates = 0;
  size_t frontier_neuron_updates_dense = 0;
  /// Frames that exceeded EngineConfig::frontier_threshold and fell back
  /// to the dense frame kernel.
  size_t frontier_fallback_frames = 0;
  /// Golden-cache footprint: total retained bytes, the per-layer
  /// breakdown (spike train + any state traces), and whether the LIF state
  /// traces were kept (false after a budget fail-soft).
  size_t golden_cache_bytes = 0;
  std::vector<size_t> golden_cache_layer_bytes;
  bool golden_cache_state_traces = false;
  double elapsed_seconds = 0.0;

  double forward_savings() const {
    return layer_forwards_naive == 0
               ? 0.0
               : 1.0 - static_cast<double>(layer_forwards) /
                           static_cast<double>(layer_forwards_naive);
  }

  /// Fraction of per-neuron work the frontier walk skipped (0 when the
  /// frontier path never ran).
  double frontier_savings() const {
    return frontier_neuron_updates_dense == 0
               ? 0.0
               : 1.0 - static_cast<double>(frontier_neuron_updates) /
                           static_cast<double>(frontier_neuron_updates_dense);
  }
};

struct CampaignResult {
  std::vector<fault::DetectionResult> results;  // parallel to the fault list
  /// False when the run was cancelled before every fault completed; the
  /// unfinished entries are default-constructed (detected=false, l1=0).
  bool completed = true;
  EngineStats stats;

  size_t detected_count() const;
};

/// Layer a fault descriptor is confined to.
size_t fault_layer(const fault::FaultDescriptor& fault);

/// Simulate every fault in `faults` against `stimulus` with the
/// differential engine. `net` must be fault-free; it is not modified
/// (workers use clones). Results are bit-identical to the naive
/// re-simulate-everything campaign unless `detect_only` is set.
CampaignResult run_campaign(const snn::Network& net, const tensor::Tensor& stimulus,
                            const std::vector<fault::FaultDescriptor>& faults,
                            const EngineConfig& config = {});

}  // namespace snntest::campaign
