// Campaign checkpoint/resume: JSONL result streaming.
//
// A campaign with a checkpoint path streams every completed DetectionResult
// to disk as one JSON line, so a multi-hour run killed mid-flight restarts
// from the last completed shard instead of from zero. The file is
// self-describing and append-only:
//
//   {"type":"header","version":2,"fingerprint":"9f2c...","num_faults":1200,"threshold":0}
//   {"type":"result","index":17,"detected":1,"l1":42,"frame":5,"diff":[3,0,-1,2]}
//   ...
//
// Version history: v2 added the "frame" field (first detection frame) to
// result lines. Result lines from a v1 file fail the parse and are counted
// as skipped — those faults re-simulate, which is the correct soft failure
// for a format change.
//
// The fingerprint hashes the network topology, the stimulus, the fault list
// and the detection settings; a resume against a checkpoint written for
// different inputs is rejected loudly (the results would be silently wrong
// otherwise). A truncated trailing line — the expected artifact of a kill
// mid-write — is ignored; that fault is simply re-simulated. Doubles are
// written with max_digits10 so a resumed result is bit-identical to the
// original.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fault/campaign.hpp"

namespace snntest::campaign {

struct CheckpointHeader {
  uint64_t fingerprint = 0;
  size_t num_faults = 0;
  double threshold = 0.0;
};

struct CheckpointData {
  CheckpointHeader header;
  /// (fault index, result) pairs in file order; duplicate indices are
  /// possible after repeated resumes — the last occurrence wins.
  std::vector<std::pair<size_t, fault::DetectionResult>> results;
  /// Non-empty lines after the header that could not be used: malformed
  /// JSON (partial writes, corruption) or a fault index outside
  /// header.num_faults. Exactly one is the expected artifact of a kill
  /// mid-write; the campaign engine surfaces the count through
  /// EngineStats::checkpoint_lines_skipped so corruption is visible
  /// instead of being silently re-simulated.
  size_t skipped_lines = 0;
};

/// Parse a checkpoint file. Returns nullopt when the file does not exist or
/// its first line is not a valid header. Malformed result lines (partial
/// writes) are skipped and counted in CheckpointData::skipped_lines.
std::optional<CheckpointData> load_checkpoint(const std::string& path);

/// Streams results to a checkpoint file. Thread-safe: campaign workers call
/// record() concurrently. Data is flushed every `flush_every` records and on
/// destruction.
class CheckpointWriter {
 public:
  /// Truncates `path` and writes a fresh header, or — with `append` — keeps
  /// the existing contents (resume). Throws std::runtime_error if the file
  /// cannot be opened.
  CheckpointWriter(const std::string& path, const CheckpointHeader& header, bool append,
                   size_t flush_every = 32);

  void record(size_t index, const fault::DetectionResult& result);
  void flush();

 private:
  std::mutex mutex_;
  std::ofstream out_;
  size_t flush_every_;
  size_t since_flush_ = 0;
};

}  // namespace snntest::campaign
