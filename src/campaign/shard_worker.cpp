#include "campaign/shard_worker.hpp"

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>

#include "campaign/shard.hpp"
#include "campaign/status.hpp"
#include "coverage/incremental.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/subprocess.hpp"
#include "util/timer.hpp"

namespace snntest::campaign {
namespace {

/// Heartbeat: a monotonically increasing counter committed atomically. The
/// orchestrator watches the value, not the mtime, so clock skew between
/// writer and watcher cannot fake liveness.
struct Heartbeat {
  std::string path;
  uint64_t counter = 0;
  std::chrono::steady_clock::time_point last = std::chrono::steady_clock::now();

  void beat(bool force = false) {
    const auto now = std::chrono::steady_clock::now();
    if (!force && now - last < std::chrono::milliseconds(100)) return;
    last = now;
    util::atomic_write_file(path, std::to_string(++counter) + "\n");
  }
};

}  // namespace

int run_shard_worker(const ShardWorkerOptions& options) {
  OBS_SPAN("campaign/shard_worker");
  util::Timer timer;
  if (options.num_shards == 0 || options.shard_index >= options.num_shards) {
    std::fprintf(stderr, "shard worker: shard %zu out of range (num_shards %zu)\n",
                 options.shard_index, options.num_shards);
    return 2;
  }

  ShardJob job;
  try {
    job = load_job(options.job_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard worker: cannot load job %s: %s\n", options.job_path.c_str(),
                 e.what());
    return 3;
  }
  // Trace opt-in rides in the job file so every attempt of every shard
  // agrees with the orchestrator without widening the worker argv.
  if (job.emit_traces) obs::set_telemetry_enabled(true);

  const ShardPaths paths = shard_paths(options.work_dir, options.shard_index);
  const ShardRange range = plan_shards(job.faults.size(), options.num_shards)[options.shard_index];
  Heartbeat hb{paths.heartbeat};
  hb.beat(/*force=*/true);

  // The shard dictionary is keyed by the FULL universe (model, fault list,
  // settings) so shard files merge with each other and with an unsharded
  // run; only the pairs in [range.begin, range.end) are ever recorded here.
  coverage::FaultDictionary dict = coverage::make_dictionary(
      job.net, job.faults, job.engine.detection_threshold, job.engine.detect_only);
  coverage::FaultDictionary::LoadStats load_stats;
  if (auto partial = coverage::FaultDictionary::load(paths.partial, &load_stats)) {
    if (partial->compatible_with(dict)) {
      dict = std::move(*partial);
      SNNTEST_LOG_INFO("shard %zu: resuming from partial snapshot (%zu records, %zu skipped)",
                       options.shard_index, dict.num_records(), load_stats.records_skipped);
    } else {
      SNNTEST_LOG_WARN("shard %zu: partial snapshot is for different campaign inputs; ignoring",
                       options.shard_index);
    }
  }

  coverage::StimulusEntry entry;
  entry.fingerprint = coverage::stimulus_fingerprint(job.stimulus);
  entry.duration_frames = job.stimulus.shape().dim(0);
  const size_t stim = [&] {
    if (auto existing = dict.find_stimulus(entry.fingerprint)) return *existing;
    entry.name = job.stimulus_name;
    if (job.store_stimulus_data) entry.data = job.stimulus;
    return dict.add_stimulus(std::move(entry));
  }();

  // Inventory what the (resumed) dictionary already covers of this shard's
  // range, so the status snapshot reports true progress across retries, not
  // just this attempt's fresh work.
  size_t resumed_done = 0, resumed_detected = 0;
  for (size_t local = 0; local < range.size(); ++local) {
    if (const fault::DetectionResult* known = dict.lookup(stim, range.begin + local)) {
      ++resumed_done;
      if (known->detected) ++resumed_detected;
    }
  }

  size_t fresh_detected = 0;
  ShardStatus status;
  status.shard_index = options.shard_index;
  status.num_shards = options.num_shards;
  status.faults_total = range.size();

  const std::vector<fault::FaultDescriptor> shard_faults(job.faults.begin() + range.begin,
                                                         job.faults.begin() + range.end);
  EngineConfig engine = job.engine;
  engine.result_cache = [&dict, stim, &range](size_t local, fault::DetectionResult& out) {
    const fault::DetectionResult* known = dict.lookup(stim, range.begin + local);
    if (known == nullptr) return false;
    out = *known;
    return true;
  };
  size_t recorded = 0, pending = 0;

  // Rewrite the SNST snapshot (atomic rename, fail-soft readers): heartbeat
  // counter, progress totals, this attempt's coverage curve and the live
  // metrics registry. Writes ride the partial-flush cadence so the snapshot
  // never adds I/O the flush didn't already pay for.
  const auto write_status = [&](bool completed) {
    status.heartbeat = hb.counter;
    status.faults_done = resumed_done + recorded;
    status.detected = resumed_detected + fresh_detected;
    status.pairs_reused = resumed_done;
    status.pairs_recorded = recorded;
    status.completed = completed;
    status.elapsed_seconds = timer.seconds();
    status.samples.push_back(
        {status.elapsed_seconds, status.faults_done, status.detected});
    decimate_samples(status.samples);
    status.metrics = obs::Registry::instance().snapshot();
    try {
      save_shard_status_atomic(status, paths.status);
    } catch (const std::exception& e) {
      // Status is observability, never control flow: a full disk or missing
      // directory must not kill a worker mid-campaign.
      SNNTEST_LOG_WARN("shard %zu: cannot write status snapshot: %s", options.shard_index,
                       e.what());
    }
  };
  write_status(/*completed=*/false);

  engine.result_sink = [&](size_t local, const fault::DetectionResult& result) {
    dict.record(stim, range.begin + local, result);
    ++recorded;
    if (result.detected) ++fresh_detected;
    if (options.crash_after != 0 && recorded >= options.crash_after) {
      raise(SIGKILL);  // chaos hook: die exactly as an OOM-killed worker would
    }
    if (options.hang_after != 0 && recorded >= options.hang_after) {
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
    }
    if (++pending >= options.flush_every) {
      dict.save_atomic(paths.partial);
      pending = 0;
      write_status(/*completed=*/false);
    }
    hb.beat();
  };

  const CampaignResult outcome = run_campaign(job.net, job.stimulus, shard_faults, engine);
  if (!outcome.completed) {
    std::fprintf(stderr, "shard worker: campaign incomplete (shard %zu)\n", options.shard_index);
    return 4;
  }

  // Commit: final file appears atomically; the partial snapshot is now
  // redundant (best-effort removal — a leftover is ignored by both sides).
  dict.save_atomic(paths.final);
  std::remove(paths.partial.c_str());

  ShardWorkerStats stats;
  stats.shard_index = options.shard_index;
  stats.faults = range.size();
  stats.pairs_reused = outcome.stats.pairs_reused;
  stats.pairs_recorded = recorded;
  stats.elapsed_seconds = timer.seconds();
  util::atomic_write_file(paths.stats, serialize_worker_stats(stats));
  hb.beat(/*force=*/true);

  obs::Registry& reg = obs::Registry::instance();
  reg.counter("shard_worker/pairs_reused").add(stats.pairs_reused);
  reg.counter("shard_worker/pairs_recorded").add(stats.pairs_recorded);
  write_status(/*completed=*/true);
  if (job.emit_traces) obs::write_chrome_trace(paths.trace);
  std::printf("shard %zu/%zu: %zu faults, %llu reused, %llu simulated in %.3fs\n",
              options.shard_index, options.num_shards, range.size(),
              static_cast<unsigned long long>(stats.pairs_reused),
              static_cast<unsigned long long>(stats.pairs_recorded), stats.elapsed_seconds);
  return 0;
}

}  // namespace snntest::campaign
