#include "campaign/checkpoint.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace snntest::campaign {
namespace {

/// Flush the checkpoint stream, recording the write latency (gated) so a
/// slow disk mid-campaign shows up in the metrics report instead of only as
/// mysteriously long fault times.
void timed_flush(std::ofstream& out) {
  if (!obs::telemetry_enabled()) {
    out.flush();
    return;
  }
  OBS_SPAN("campaign/checkpoint_flush");
  static obs::Histogram& latency = obs::Registry::instance().histogram(
      "campaign/checkpoint_flush_seconds", obs::Histogram::exponential_bounds(1e-6, 4.0, 12));
  const int64_t t0 = obs::trace_now_us();
  out.flush();
  latency.observe(static_cast<double>(obs::trace_now_us() - t0) * 1e-6);
}

// --- tiny field scanners for the exact JSONL we emit ---------------------
// Not a general JSON parser: each accessor finds `"key":` and parses the
// value right after it. Good enough for round-tripping our own writer's
// output while staying dependency-free.

bool find_key(const std::string& line, const char* key, size_t* value_pos) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *value_pos = at + needle.size();
  return true;
}

bool parse_double_field(const std::string& line, const char* key, double* out) {
  size_t pos;
  if (!find_key(line, key, &pos)) return false;
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  *out = std::strtod(start, &end);
  return end != start;
}

bool parse_u64_field(const std::string& line, const char* key, uint64_t* out) {
  size_t pos;
  if (!find_key(line, key, &pos)) return false;
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  *out = std::strtoull(start, &end, 10);
  return end != start;
}

bool parse_i64_field(const std::string& line, const char* key, int64_t* out) {
  size_t pos;
  if (!find_key(line, key, &pos)) return false;
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  *out = std::strtoll(start, &end, 10);
  return end != start;
}

bool parse_hex_field(const std::string& line, const char* key, uint64_t* out) {
  size_t pos;
  if (!find_key(line, key, &pos)) return false;
  if (pos >= line.size() || line[pos] != '"') return false;
  const char* start = line.c_str() + pos + 1;
  char* end = nullptr;
  *out = std::strtoull(start, &end, 16);
  return end != start && *end == '"';
}

bool parse_diff_field(const std::string& line, std::vector<long>* out) {
  size_t pos;
  if (!find_key(line, "diff", &pos)) return false;
  if (pos >= line.size() || line[pos] != '[') return false;
  const char* p = line.c_str() + pos + 1;
  out->clear();
  if (*p == ']') return true;
  for (;;) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) return false;
    out->push_back(v);
    p = end;
    if (*p == ',') {
      ++p;
    } else {
      return *p == ']';
    }
  }
}

bool parse_result_line(const std::string& line, size_t* index, fault::DetectionResult* r) {
  if (line.find("\"type\":\"result\"") == std::string::npos) return false;
  // A partially written line is missing the closing brace — reject it.
  if (line.empty() || line.back() != '}') return false;
  uint64_t idx = 0, detected = 0;
  if (!parse_u64_field(line, "index", &idx)) return false;
  if (!parse_u64_field(line, "detected", &detected)) return false;
  if (!parse_double_field(line, "l1", &r->output_l1)) return false;
  if (!parse_i64_field(line, "frame", &r->first_detection_frame)) return false;
  if (!parse_diff_field(line, &r->class_count_diff)) return false;
  *index = idx;
  r->detected = detected != 0;
  return true;
}

}  // namespace

std::optional<CheckpointData> load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  if (line.find("\"type\":\"header\"") == std::string::npos) return std::nullopt;
  CheckpointData data;
  uint64_t num_faults = 0;
  if (!parse_hex_field(line, "fingerprint", &data.header.fingerprint) ||
      !parse_u64_field(line, "num_faults", &num_faults) ||
      !parse_double_field(line, "threshold", &data.header.threshold)) {
    return std::nullopt;
  }
  data.header.num_faults = num_faults;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    size_t index = 0;
    fault::DetectionResult r;
    if (parse_result_line(line, &index, &r) && index < data.header.num_faults) {
      data.results.emplace_back(index, std::move(r));
    } else {
      ++data.skipped_lines;
    }
  }
  return data;
}

CheckpointWriter::CheckpointWriter(const std::string& path, const CheckpointHeader& header,
                                   bool append, size_t flush_every)
    : flush_every_(flush_every == 0 ? 1 : flush_every) {
  out_.open(path, append ? (std::ios::out | std::ios::app) : std::ios::out);
  if (!out_) throw std::runtime_error("CheckpointWriter: cannot open " + path);
  if (!append) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"type\":\"header\",\"version\":2,\"fingerprint\":\"%016" PRIx64
                  "\",\"num_faults\":%zu,\"threshold\":%.17g}\n",
                  header.fingerprint, header.num_faults, header.threshold);
    out_ << buf;
    out_.flush();
  }
}

void CheckpointWriter::record(size_t index, const fault::DetectionResult& result) {
  // Worst case: 25 bytes of fixed prefix text, a 20-digit %zu index, 12+1
  // bytes for the detected field, 6 bytes of l1 framing plus up to 24 chars
  // of %.17g (sign, 17 digits, point, "e-308"), 9+20 bytes for the frame
  // field, 9 bytes of diff framing and the terminator — 127 bytes total.
  // (96 used to truncate such lines silently, and load_checkpoint then
  // dropped them on resume.)
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"type\":\"result\",\"index\":%zu,\"detected\":%d,\"l1\":%.17g,\"frame\":%lld,\"diff\":[",
                index, result.detected ? 1 : 0, result.output_l1,
                static_cast<long long>(result.first_detection_frame));
  std::string line(buf);
  for (size_t i = 0; i < result.class_count_diff.size(); ++i) {
    if (i) line += ',';
    line += std::to_string(result.class_count_diff[i]);
  }
  line += "]}\n";
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line;
  if (++since_flush_ >= flush_every_) {
    timed_flush(out_);
    since_flush_ = 0;
  }
}

void CheckpointWriter::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  timed_flush(out_);
  since_flush_ = 0;
}

}  // namespace snntest::campaign
