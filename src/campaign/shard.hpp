// Shard planning and the shard-worker job protocol.
//
// A sharded campaign (campaign/orchestrator.hpp) partitions one fault
// universe across N independent worker *processes*. Everything both sides
// must agree on lives here so the orchestrator and the worker can never
// drift apart:
//
//  * plan_shards — the deterministic partitioning rule. Shard i of S over a
//    universe of F faults owns the contiguous index range
//    [i*⌈F/S⌉ … min(F, (i+1)*⌈F/S⌉)) computed greedily with the remainder
//    spread over the leading shards; every fault belongs to exactly one
//    shard and the plan depends only on (F, S).
//  * shard_paths — the file naming rule inside a campaign work directory:
//    shard_<i>.snfd (committed result, written only by atomic rename),
//    shard_<i>.partial.snfd (crash-recovery snapshot, also atomic),
//    shard_<i>.hb (heartbeat counter), shard_<i>.stats (worker stats),
//    shard_<i>.log (worker stdout/stderr), shard_<i>.status.snst (live
//    status snapshot, campaign/status.hpp), shard_<i>.trace.json (the
//    worker's Chrome trace dump when the job enables traces).
//  * ShardJob — the campaign inputs serialized once by the orchestrator
//    (job.bin) and read by every worker attempt: network, stimulus, fault
//    universe, engine settings. Workers derive their own shard range from
//    (shard_index, num_shards) via plan_shards, so the job file is shared
//    by all shards and retries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "fault/fault.hpp"
#include "snn/network.hpp"
#include "tensor/tensor.hpp"

namespace snntest::campaign {

struct ShardRange {
  size_t begin = 0;
  size_t end = 0;  // exclusive
  size_t size() const { return end - begin; }
};

/// Partition [0, num_faults) into `num_shards` contiguous ranges whose
/// sizes differ by at most one (leading shards take the remainder). Always
/// returns exactly num_shards ranges; trailing ranges are empty when
/// num_shards > num_faults. num_shards == 0 is treated as 1.
std::vector<ShardRange> plan_shards(size_t num_faults, size_t num_shards);

/// Canonical file layout of one shard inside a campaign work directory.
struct ShardPaths {
  std::string final;      ///< committed shard dictionary (atomic rename only)
  std::string partial;    ///< crash-recovery snapshot (atomic rename only)
  std::string heartbeat;  ///< u64 counter, rewritten while the worker is alive
  std::string stats;      ///< key-value worker stats (attempt that committed)
  std::string log;        ///< worker stdout+stderr
  std::string status;     ///< SNST live status snapshot (atomic rename only)
  std::string trace;      ///< worker Chrome trace (written when emit_traces)
};

ShardPaths shard_paths(const std::string& work_dir, size_t shard_index);

/// The shared inputs of a sharded campaign — everything a worker needs to
/// reproduce its slice of the unsharded run bit-exactly.
struct ShardJob {
  snn::Network net{"uninitialized"};
  tensor::Tensor stimulus;  // [T, C] binary spike train
  std::vector<fault::FaultDescriptor> faults;
  EngineConfig engine;  // function hooks are NOT serialized (threads, lanes,
                        // threshold, detect_only, kernel_mode, grain are)
  std::string stimulus_name;
  bool store_stimulus_data = true;
  /// Observability opt-in: the worker enables telemetry and dumps its Chrome
  /// trace ring to ShardPaths::trace on commit. Rides in the job file (SNJB
  /// v2) rather than worker argv so the worker command stays stable.
  /// Telemetry never feeds back into the computation (§11), so flipping this
  /// cannot change the dictionary bytes.
  bool emit_traces = false;
};

/// Serialize / load a job file. save_job commits via atomic rename so a
/// worker can never observe a half-written job. load_job throws
/// std::runtime_error on a missing or malformed file.
void save_job(const ShardJob& job, const std::string& path);
ShardJob load_job(const std::string& path);

/// Worker stats committed next to the final shard file (plain "key value"
/// lines — see shard_worker.cpp). Unknown keys are ignored so the format
/// can grow.
struct ShardWorkerStats {
  uint64_t shard_index = 0;
  uint64_t faults = 0;          ///< shard range size
  uint64_t pairs_reused = 0;    ///< served from the partial snapshot on retry
  uint64_t pairs_recorded = 0;  ///< simulated fresh by the committing attempt
  double elapsed_seconds = 0.0;
};

std::string serialize_worker_stats(const ShardWorkerStats& stats);
/// False when the file is missing/unreadable (fields keep their defaults).
bool load_worker_stats(const std::string& path, ShardWorkerStats* stats);

}  // namespace snntest::campaign
