#include "campaign/fingerprint.hpp"

#include <cstring>

namespace snntest::campaign {

using util::fnv1a;

uint64_t hash_stimulus(const tensor::Tensor& stimulus, uint64_t seed) {
  uint64_t h = seed;
  for (size_t d = 0; d < stimulus.shape().rank(); ++d) {
    const uint64_t dim = stimulus.shape().dim(d);
    h = fnv1a(&dim, sizeof(dim), h);
  }
  return fnv1a(stimulus.data(), stimulus.numel() * sizeof(float), h);
}

uint64_t hash_network_topology(const snn::Network& net, uint64_t seed) {
  uint64_t h = fnv1a(net.name().data(), net.name().size(), seed);
  for (size_t l = 0; l < net.num_layers(); ++l) {
    const snn::Layer& layer = net.layer(l);
    const uint64_t sig[3] = {static_cast<uint64_t>(layer.kind()), layer.num_inputs(),
                             layer.num_neurons()};
    h = fnv1a(sig, sizeof(sig), h);
  }
  return h;
}

uint64_t hash_network_params(const snn::Network& net, uint64_t seed) {
  // Layer::params() is non-const because it exposes mutable views for the
  // optimizer; hashing only reads the value arrays.
  auto& mutable_net = const_cast<snn::Network&>(net);
  uint64_t h = seed;
  for (size_t l = 0; l < net.num_layers(); ++l) {
    for (const snn::ParamView& p : mutable_net.layer(l).params()) {
      const uint64_t size = p.size;
      h = fnv1a(&size, sizeof(size), h);
      h = fnv1a(p.value, p.size * sizeof(float), h);
    }
  }
  return h;
}

uint64_t hash_fault_list(const std::vector<fault::FaultDescriptor>& faults, uint64_t seed) {
  uint64_t h = seed;
  for (const auto& f : faults) {
    uint32_t mag_bits = 0;
    std::memcpy(&mag_bits, &f.magnitude, sizeof(mag_bits));
    const uint64_t sig[11] = {static_cast<uint64_t>(f.kind),
                              f.connection_granularity ? 1u : 0u,
                              f.neuron.layer,
                              f.neuron.index,
                              f.weight.layer,
                              f.weight.param,
                              f.weight.index,
                              f.connection.layer,
                              f.connection.out_index,
                              f.connection.in_index,
                              mag_bits};
    h = fnv1a(sig, sizeof(sig), h);
  }
  return h;
}

uint64_t detection_settings_fingerprint(uint64_t seed, double detection_threshold,
                                        bool detect_only) {
  uint64_t threshold_bits = 0;
  std::memcpy(&threshold_bits, &detection_threshold, sizeof(threshold_bits));
  const uint64_t settings[2] = {threshold_bits, detect_only ? 1u : 0u};
  return fnv1a(settings, sizeof(settings), seed);
}

uint64_t model_fingerprint(const snn::Network& net) {
  return hash_network_params(net, hash_network_topology(net, util::kFnvOffsetBasis));
}

}  // namespace snntest::campaign
