#include "campaign/shard.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "snn/serialization.hpp"
#include "util/serialize.hpp"
#include "util/subprocess.hpp"

namespace snntest::campaign {
namespace {

constexpr uint32_t kJobMagic = 0x424A4E53;  // "SNJB"
// v2 appends the emit_traces flag; v1 files still load (emit_traces=false).
constexpr uint32_t kJobVersion = 2;
constexpr uint32_t kJobVersionMin = 1;

void write_fault(std::ostream& os, const fault::FaultDescriptor& f) {
  util::write_u32(os, static_cast<uint32_t>(f.kind));
  util::write_u64(os, f.neuron.layer);
  util::write_u64(os, f.neuron.index);
  util::write_u64(os, f.weight.layer);
  util::write_u64(os, f.weight.param);
  util::write_u64(os, f.weight.index);
  util::write_u32(os, f.connection_granularity ? 1u : 0u);
  util::write_u64(os, f.connection.layer);
  util::write_u64(os, f.connection.out_index);
  util::write_u64(os, f.connection.in_index);
  util::write_f32(os, f.magnitude);
}

fault::FaultDescriptor read_fault(std::istream& is) {
  fault::FaultDescriptor f;
  f.kind = static_cast<fault::FaultKind>(util::read_u32(is));
  f.neuron.layer = util::read_u64(is);
  f.neuron.index = util::read_u64(is);
  f.weight.layer = util::read_u64(is);
  f.weight.param = util::read_u64(is);
  f.weight.index = util::read_u64(is);
  f.connection_granularity = util::read_u32(is) != 0;
  f.connection.layer = util::read_u64(is);
  f.connection.out_index = util::read_u64(is);
  f.connection.in_index = util::read_u64(is);
  f.magnitude = util::read_f32(is);
  return f;
}

}  // namespace

std::vector<ShardRange> plan_shards(size_t num_faults, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  std::vector<ShardRange> plan(num_shards);
  const size_t base = num_faults / num_shards;
  const size_t extra = num_faults % num_shards;  // leading shards take one more
  size_t begin = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    plan[i] = {begin, begin + len};
    begin += len;
  }
  return plan;
}

ShardPaths shard_paths(const std::string& work_dir, size_t shard_index) {
  const std::string stem = work_dir + "/shard_" + std::to_string(shard_index);
  ShardPaths p;
  p.final = stem + ".snfd";
  p.partial = stem + ".partial.snfd";
  p.heartbeat = stem + ".hb";
  p.stats = stem + ".stats";
  p.log = stem + ".log";
  p.status = stem + ".status.snst";
  p.trace = stem + ".trace.json";
  return p;
}

void save_job(const ShardJob& job, const std::string& path) {
  std::ostringstream os;
  util::write_magic(os, kJobMagic, kJobVersion);
  snn::save_network(job.net, os);

  if (job.stimulus.shape().rank() != 2) {
    throw std::runtime_error("save_job: stimulus must be a [T, C] spike train");
  }
  util::write_u64(os, job.stimulus.shape().dim(0));
  util::write_u64(os, job.stimulus.shape().dim(1));
  std::vector<float> data(job.stimulus.data(), job.stimulus.data() + job.stimulus.numel());
  util::write_f32_vector(os, data);
  util::write_string(os, job.stimulus_name);
  util::write_u32(os, job.store_stimulus_data ? 1u : 0u);

  util::write_u64(os, job.faults.size());
  for (const auto& f : job.faults) write_fault(os, f);

  util::write_u64(os, job.engine.num_threads);
  util::write_u64(os, job.engine.grain);
  util::write_u64(os, job.engine.lane_width);
  util::write_f64(os, job.engine.detection_threshold);
  util::write_u32(os, job.engine.prefix_reuse ? 1u : 0u);
  util::write_u32(os, job.engine.convergence_pruning ? 1u : 0u);
  util::write_u32(os, job.engine.detect_only ? 1u : 0u);
  util::write_u32(os, static_cast<uint32_t>(job.engine.kernel_mode));
  util::write_u32(os, job.emit_traces ? 1u : 0u);  // v2
  util::atomic_write_file(path, os.str());
}

ShardJob load_job(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_job: cannot open " + path);
  const uint32_t magic = util::read_u32(is);
  if (magic != kJobMagic) throw std::runtime_error("load_job: bad magic in " + path);
  const uint32_t version = util::read_u32(is);
  if (version < kJobVersionMin || version > kJobVersion) {
    throw std::runtime_error("load_job: unsupported job version " + std::to_string(version) +
                             " in " + path);
  }

  ShardJob job;
  job.net = snn::load_network(is);

  const uint64_t T = util::read_u64(is);
  const uint64_t C = util::read_u64(is);
  const std::vector<float> data = util::read_f32_vector(is);
  if (data.size() != T * C) throw std::runtime_error("load_job: stimulus size mismatch");
  job.stimulus.resize_zero(tensor::Shape{static_cast<size_t>(T), static_cast<size_t>(C)});
  std::copy(data.begin(), data.end(), job.stimulus.data());
  job.stimulus_name = util::read_string(is);
  job.store_stimulus_data = util::read_u32(is) != 0;

  const uint64_t num_faults = util::read_u64(is);
  job.faults.reserve(num_faults);
  for (uint64_t i = 0; i < num_faults; ++i) job.faults.push_back(read_fault(is));

  job.engine.num_threads = util::read_u64(is);
  job.engine.grain = util::read_u64(is);
  job.engine.lane_width = util::read_u64(is);
  job.engine.detection_threshold = util::read_f64(is);
  job.engine.prefix_reuse = util::read_u32(is) != 0;
  job.engine.convergence_pruning = util::read_u32(is) != 0;
  job.engine.detect_only = util::read_u32(is) != 0;
  job.engine.kernel_mode = static_cast<snn::KernelMode>(util::read_u32(is));
  if (version >= 2) job.emit_traces = util::read_u32(is) != 0;
  return job;
}

std::string serialize_worker_stats(const ShardWorkerStats& stats) {
  std::ostringstream os;
  os << "shard_index " << stats.shard_index << "\n"
     << "faults " << stats.faults << "\n"
     << "pairs_reused " << stats.pairs_reused << "\n"
     << "pairs_recorded " << stats.pairs_recorded << "\n"
     << "elapsed_seconds " << stats.elapsed_seconds << "\n";
  return os.str();
}

bool load_worker_stats(const std::string& path, ShardWorkerStats* stats) {
  std::ifstream in(path);
  if (!in) return false;
  std::string key;
  while (in >> key) {
    if (key == "shard_index") {
      in >> stats->shard_index;
    } else if (key == "faults") {
      in >> stats->faults;
    } else if (key == "pairs_reused") {
      in >> stats->pairs_reused;
    } else if (key == "pairs_recorded") {
      in >> stats->pairs_recorded;
    } else if (key == "elapsed_seconds") {
      in >> stats->elapsed_seconds;
    } else {
      std::string ignored;
      std::getline(in, ignored);  // unknown key: skip the rest of the line
    }
    if (!in) break;
  }
  return true;
}

}  // namespace snntest::campaign
