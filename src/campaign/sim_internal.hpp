// Internals shared by the scalar (engine.cpp) and lane-batched
// (lane_sim.cpp) fault-simulation paths. Both paths must emit identical
// DetectionResults, so the result-filling helpers live here in one audited
// place rather than being duplicated.
#pragma once

#include <atomic>
#include <cmath>
#include <cstring>

#include "campaign/engine.hpp"
#include "campaign/golden_cache.hpp"
#include "obs/metrics.hpp"
#include "snn/spike_train.hpp"

namespace snntest::campaign::detail {

inline bool trains_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  return std::memcmp(a.data(), b.data(), a.numel() * sizeof(float)) == 0;
}

/// Full Eq. (3) comparison: exact L1 plus per-class count differences and
/// the first frame whose cumulative L1 crosses the threshold. The frame
/// walk accumulates in the same element order as tensor::l1_distance (flat
/// time-major), so output_l1 is bit-identical to the historical
/// snn::output_distance result.
inline void fill_full_result(fault::DetectionResult& r, const tensor::Tensor& faulty_output,
                             const GoldenCache& cache, double threshold) {
  const tensor::Tensor& golden = cache.output();
  const size_t T = golden.shape().dim(0);
  const size_t n = golden.shape().dim(1);
  double acc = 0.0;
  int64_t first = -1;
  for (size_t t = 0; t < T; ++t) {
    const float* a = golden.data() + t * n;
    const float* b = faulty_output.data() + t * n;
    for (size_t i = 0; i < n; ++i) acc += std::abs(static_cast<double>(a[i]) - b[i]);
    if (first < 0 && acc > threshold) first = static_cast<int64_t>(t);
  }
  r.output_l1 = acc;
  r.detected = acc > threshold;
  r.first_detection_frame = first;
  const auto counts = snn::spike_counts(faulty_output);
  r.class_count_diff.resize(counts.size());
  for (size_t c = 0; c < counts.size(); ++c) {
    r.class_count_diff[c] =
        static_cast<long>(counts[c]) - static_cast<long>(cache.output_counts[c]);
  }
}

/// Detect-only comparison: accumulate the L1 mass timestep by timestep and
/// return as soon as it crosses the threshold (decisive — later timesteps
/// can only grow it). output_l1 is then a lower bound of the full L1; when
/// the train ends below the threshold it is the exact L1.
inline void fill_detect_only_result(fault::DetectionResult& r,
                                    const tensor::Tensor& faulty_output,
                                    const GoldenCache& cache, double threshold) {
  const tensor::Tensor& golden = cache.output();
  const size_t T = golden.shape().dim(0);
  const size_t n = golden.shape().dim(1);
  double acc = 0.0;
  for (size_t t = 0; t < T; ++t) {
    const float* a = golden.data() + t * n;
    const float* b = faulty_output.data() + t * n;
    for (size_t i = 0; i < n; ++i) acc += std::abs(static_cast<double>(a[i]) - b[i]);
    if (acc > threshold) {
      r.detected = true;
      r.output_l1 = acc;
      r.first_detection_frame = static_cast<int64_t>(t);
      if (obs::telemetry_enabled()) {
        static obs::Counter& early_exits =
            obs::Registry::instance().counter("campaign/detect_only_early_exits");
        early_exits.add(1);
      }
      return;
    }
  }
  r.detected = false;
  r.output_l1 = acc;
  r.first_detection_frame = -1;
}

/// Result for a fault whose layer output re-converged onto the golden
/// trajectory: every downstream train is bit-identical, so this is exactly
/// the naive result without running the remaining layers.
inline void fill_converged_result(fault::DetectionResult& r, const GoldenCache& cache,
                                  const EngineConfig& config) {
  r.output_l1 = 0.0;
  r.detected = 0.0 > config.detection_threshold;
  // A (pathological) negative threshold is crossed by the zero divergence at
  // the very first frame — exactly what the full frame walk would report.
  r.first_detection_frame = r.detected ? 0 : -1;
  if (!config.detect_only) r.class_count_diff.assign(cache.output_counts.size(), 0);
}

struct SimCounters {
  std::atomic<size_t> simulated{0};
  std::atomic<size_t> pruned{0};
  std::atomic<size_t> layer_forwards{0};
  std::atomic<size_t> completed{0};
  // lane-batched path only
  std::atomic<size_t> lane_batches{0};
  std::atomic<size_t> lane_batched_faults{0};
  std::atomic<size_t> lanes_retired_early{0};
  // divergence-frontier path only (campaign/frontier_sim.hpp)
  std::atomic<size_t> frontier_faults{0};
  std::atomic<size_t> frontier_neuron_updates{0};
  std::atomic<size_t> frontier_neuron_updates_dense{0};
  std::atomic<size_t> frontier_fallback_frames{0};
};

}  // namespace snntest::campaign::detail
