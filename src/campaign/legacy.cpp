// Compatibility wrapper: the historic fault::run_detection_campaign API
// (declared in fault/campaign.hpp) implemented on top of the differential
// engine, so existing benches, examples and optimizers transparently get
// prefix reuse, convergence pruning and dynamic scheduling.
#include "campaign/engine.hpp"
#include "fault/campaign.hpp"

namespace snntest::fault {

size_t CampaignOutcome::detected_count() const {
  size_t n = 0;
  for (const auto& r : results) n += r.detected;
  return n;
}

CampaignOutcome run_detection_campaign(const snn::Network& net, const tensor::Tensor& stimulus,
                                       const std::vector<FaultDescriptor>& faults,
                                       const CampaignConfig& config) {
  campaign::EngineConfig engine_config;
  engine_config.num_threads = config.num_threads;
  engine_config.detection_threshold = config.detection_threshold;
  engine_config.progress = config.progress;
  auto campaign_result = campaign::run_campaign(net, stimulus, faults, engine_config);
  CampaignOutcome outcome;
  outcome.results = std::move(campaign_result.results);
  outcome.elapsed_seconds = campaign_result.stats.elapsed_seconds;
  return outcome;
}

}  // namespace snntest::fault
