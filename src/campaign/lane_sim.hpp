// Lane-batched fault simulation: W same-layer faults per forward pass.
//
// simulate_fault_batch packs up to lane_width pending faults that share a
// fault layer into one multi-lane forward from the shared golden prefix
// (snn/lane_network.hpp): each downstream layer streams its weights once
// per frame for all lanes instead of once per fault. Every lane's
// DetectionResult is bit-identical to the scalar simulate_fault path —
// the lane kernels replay the scalar ordered-double accumulation per lane,
// and retirement (convergence pruning, detect-only threshold crossing)
// reproduces the scalar early exits exactly (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <vector>

#include "campaign/engine.hpp"
#include "campaign/golden_cache.hpp"
#include "campaign/sim_internal.hpp"
#include "fault/lane_injector.hpp"
#include "snn/lane_network.hpp"

namespace snntest::campaign {

/// Per-worker scratch for the lane path — sized on first use, reused for
/// every batch the worker claims (no per-batch allocation at steady state).
struct LaneSimContext {
  std::vector<snn::LaneFault> lane_faults;  // resolved per-lane faults
  std::vector<size_t> result_index;         // lane -> fault index (compacted)
  std::vector<float> bufs[2];               // ping-pong lane trains [T, n, lanes]
  std::vector<float> frame;                 // detect-only per-frame output [n, lanes]
  std::vector<uint8_t> keep;                // retirement mask
  std::vector<double> l1_acc;               // detect-only per-lane L1
  tensor::Tensor slice;                     // per-lane [T, n] extraction
  snn::LaneLayerRun run;
};

/// Simulate the `count` faults `faults[batch[0..count)]` — all confined to
/// the same layer — in one lane-batched pass, writing `results[batch[i]]`.
/// Requires prefix_reuse (the caller falls back to the scalar path
/// otherwise) and 2 <= count <= snn::kMaxLaneWidth. `net` is the fault-free
/// reference network and is never mutated, so workers share the caller's
/// instance; `stats` must come from compute_weight_stats on it.
void simulate_fault_batch(const snn::Network& net, const tensor::Tensor& stimulus,
                          const GoldenCache& cache, const EngineConfig& config,
                          const std::vector<fault::LayerWeightStats>& stats,
                          const std::vector<fault::FaultDescriptor>& faults,
                          const size_t* batch, size_t count,
                          std::vector<fault::DetectionResult>& results,
                          detail::SimCounters& counters, LaneSimContext& ctx);

}  // namespace snntest::campaign
