// Shard worker: one process, one slice of the fault universe.
//
// run_shard_worker is the entry point behind `coverage_tool run-shard` (and
// the test binaries' self-exec worker mode). It loads the shared job file
// (campaign/shard.hpp), derives its fault range from (shard_index,
// num_shards) via plan_shards, and runs the differential engine over that
// slice with two hooks wired:
//
//  * result_cache <- the partial shard snapshot from a previous (killed)
//    attempt, so every pair that attempt committed is served as a lookup
//    (EngineStats::pairs_reused) instead of re-simulated;
//  * result_sink  -> records each freshly simulated pair into the shard
//    dictionary and, every `flush_every` results, commits a snapshot to
//    shard_<i>.partial.snfd by atomic rename and bumps the heartbeat file.
//
// On completion the dictionary — keyed by the FULL universe fingerprint so
// shards merge — is committed to shard_<i>.snfd by atomic rename, the
// partial snapshot is removed, and worker stats are written. A SIGKILL at
// any point therefore loses at most the results since the last flush; the
// committed prefix survives in the partial file and the final file appears
// only complete, never torn.
//
// Exit codes: 0 success; 2 bad options; 3 job unreadable; 4 campaign
// incomplete (should not happen — the worker never cancels); uncaught
// exceptions print to stderr and return 1.
#pragma once

#include <cstddef>
#include <string>

namespace snntest::campaign {

struct ShardWorkerOptions {
  std::string job_path;
  std::string work_dir;  ///< directory holding the shard_<i>.* files
  size_t shard_index = 0;
  size_t num_shards = 1;
  /// Freshly recorded results per partial-snapshot commit. Smaller = less
  /// work lost to a kill, more rename traffic.
  size_t flush_every = 16;

  // --- chaos hooks (integration tests / CI kill-and-recover drills) -------
  /// > 0: raise SIGKILL after this many freshly recorded results — an
  /// honest mid-campaign kill (no flush first).
  size_t crash_after = 0;
  /// > 0: stop making progress (sleep forever) after this many freshly
  /// recorded results, so the orchestrator's heartbeat watchdog must kill
  /// this process.
  size_t hang_after = 0;
};

int run_shard_worker(const ShardWorkerOptions& options);

}  // namespace snntest::campaign
