#include "campaign/lane_sim.hpp"

#include <cmath>

#include "obs/metrics.hpp"

namespace snntest::campaign {
namespace {

/// Does lane `lane` of a [T, n, lanes] train equal the golden [T, n] train?
/// Spike values are exact 0.0f / 1.0f on both sides, so float equality is
/// equivalent to the scalar path's memcmp.
bool lane_equals_golden(const float* train, size_t T, size_t n, size_t lanes, size_t lane,
                        const tensor::Tensor& golden) {
  const float* g = golden.data();
  for (size_t t = 0; t < T; ++t) {
    const float* f = train + t * n * lanes;
    const float* gr = g + t * n;
    for (size_t i = 0; i < n; ++i) {
      if (f[i * lanes + lane] != gr[i]) return false;
    }
  }
  return true;
}

/// In-place repack of [rows, lanes]-strided data dropping lanes with
/// keep == 0. Safe in place: the write index never overtakes the read index.
void compact_lane_rows(float* data, size_t rows, size_t lanes, const uint8_t* keep) {
  size_t w = 0;
  for (size_t r = 0; r < rows; ++r) {
    const float* src = data + r * lanes;
    for (size_t l = 0; l < lanes; ++l) {
      if (keep[l]) data[w++] = src[l];
    }
  }
}

template <typename T>
void compact_items(std::vector<T>& v, const uint8_t* keep, size_t lanes) {
  size_t w = 0;
  for (size_t l = 0; l < lanes; ++l) {
    if (keep[l]) v[w++] = v[l];
  }
  v.resize(w);
}

}  // namespace

void simulate_fault_batch(const snn::Network& net, const tensor::Tensor& stimulus,
                          const GoldenCache& cache, const EngineConfig& config,
                          const std::vector<fault::LayerWeightStats>& stats,
                          const std::vector<fault::FaultDescriptor>& faults,
                          const size_t* batch, size_t count,
                          std::vector<fault::DetectionResult>& results,
                          detail::SimCounters& counters, LaneSimContext& ctx) {
  const size_t L = cache.num_layers();
  const size_t k = fault_layer(faults[batch[0]]);
  const tensor::Tensor& start_input = k == 0 ? stimulus : cache.layer_output(k - 1);
  const size_t T = start_input.shape().dim(0);

  counters.lane_batches.fetch_add(1, std::memory_order_relaxed);
  counters.lane_batched_faults.fetch_add(count, std::memory_order_relaxed);

  ctx.lane_faults.resize(count);
  ctx.result_index.resize(count);
  for (size_t i = 0; i < count; ++i) {
    ctx.lane_faults[i] = fault::resolve_lane_fault(net, stats, faults[batch[i]]);
    ctx.result_index[i] = batch[i];
  }

  size_t lanes = count;
  int flip = 0;
  const bool obs_on = obs::telemetry_enabled();

  for (size_t l = k; l < L && lanes > 0; ++l) {
    const snn::Layer& layer = net.layer(l);
    const size_t n = layer.num_neurons();
    const size_t in_n = layer.num_inputs();
    const bool fault_here = l == k;
    const bool final_layer = l + 1 == L;
    ctx.run.reset(layer, lanes, fault_here ? ctx.lane_faults.data() : nullptr,
                  config.kernel_mode);
    counters.layer_forwards.fetch_add(lanes, std::memory_order_relaxed);
    std::vector<float>& in_buf = ctx.bufs[flip ^ 1];  // lane input train when !fault_here

    if (final_layer && config.detect_only) {
      // Frame-by-frame output comparison with mid-window retirement: once a
      // lane's accumulated L1 crosses the threshold the divergence is
      // decisive (later timesteps only grow it), which is exactly the
      // scalar fill_detect_only_result early exit — so the lane retires and
      // the remaining frames run narrower.
      ctx.frame.resize(n * lanes);
      ctx.l1_acc.assign(lanes, 0.0);
      const tensor::Tensor& golden = cache.output();
      for (size_t t = 0; t < T && lanes > 0; ++t) {
        if (fault_here) {
          ctx.run.step_shared(start_input.row(t), ctx.frame.data());
        } else {
          ctx.run.step_lanes(in_buf.data() + t * in_n * lanes, ctx.frame.data());
        }
        const float* g = golden.data() + t * n;
        ctx.keep.assign(lanes, 1);
        size_t kept = lanes;
        for (size_t lane = 0; lane < lanes; ++lane) {
          double acc = ctx.l1_acc[lane];
          for (size_t i = 0; i < n; ++i) {
            acc += std::abs(static_cast<double>(g[i]) - ctx.frame[i * lanes + lane]);
          }
          ctx.l1_acc[lane] = acc;
          if (acc > config.detection_threshold) {
            fault::DetectionResult& r = results[ctx.result_index[lane]];
            r.detected = true;
            r.output_l1 = acc;
            r.first_detection_frame = static_cast<int64_t>(t);
            if (obs_on) {
              static obs::Counter& early_exits =
                  obs::Registry::instance().counter("campaign/detect_only_early_exits");
              early_exits.add(1);
            }
            counters.lanes_retired_early.fetch_add(1, std::memory_order_relaxed);
            ctx.keep[lane] = 0;
            --kept;
          }
        }
        if (kept < lanes) {
          if (t + 1 < T && kept > 0) {
            ctx.run.compact(ctx.keep.data());
            if (!fault_here) {
              // Repack the future input frames to the new lane count. The
              // compacted frames land at their new-stride offsets, which
              // are strictly behind the old-stride read positions.
              size_t w = (t + 1) * in_n * kept;
              for (size_t tt = t + 1; tt < T; ++tt) {
                const float* src = in_buf.data() + tt * in_n * lanes;
                for (size_t c = 0; c < in_n; ++c) {
                  for (size_t lane = 0; lane < lanes; ++lane) {
                    if (ctx.keep[lane]) in_buf[w++] = src[c * lanes + lane];
                  }
                }
              }
            }
          }
          compact_items(ctx.result_index, ctx.keep.data(), lanes);
          compact_items(ctx.l1_acc, ctx.keep.data(), lanes);
          lanes = kept;
        }
      }
      // Survivors never crossed the threshold: undetected, exact full L1.
      for (size_t lane = 0; lane < lanes; ++lane) {
        fault::DetectionResult& r = results[ctx.result_index[lane]];
        r.detected = false;
        r.output_l1 = ctx.l1_acc[lane];
        r.first_detection_frame = -1;
      }
      return;
    }

    std::vector<float>& out_buf = ctx.bufs[flip];
    out_buf.resize(T * n * lanes);
    for (size_t t = 0; t < T; ++t) {
      float* out = out_buf.data() + t * n * lanes;
      if (fault_here) {
        ctx.run.step_shared(start_input.row(t), out);
      } else {
        ctx.run.step_lanes(in_buf.data() + t * in_n * lanes, out);
      }
    }

    if (config.convergence_pruning && !final_layer) {
      // A lane whose train re-converged onto the golden trajectory is done:
      // every downstream layer would be bit-identical too (same exact early
      // exit as the scalar path). The final layer needs no check — a
      // converged final train makes fill_full_result produce exactly
      // fill_converged_result's values.
      const tensor::Tensor& golden_l = cache.layer_output(l);
      ctx.keep.assign(lanes, 1);
      size_t kept = lanes;
      for (size_t lane = 0; lane < lanes; ++lane) {
        if (lane_equals_golden(out_buf.data(), T, n, lanes, lane, golden_l)) {
          detail::fill_converged_result(results[ctx.result_index[lane]], cache, config);
          counters.pruned.fetch_add(1, std::memory_order_relaxed);
          counters.lanes_retired_early.fetch_add(1, std::memory_order_relaxed);
          ctx.keep[lane] = 0;
          --kept;
        }
      }
      if (kept < lanes) {
        compact_lane_rows(out_buf.data(), T * n, lanes, ctx.keep.data());
        out_buf.resize(T * n * kept);
        compact_items(ctx.result_index, ctx.keep.data(), lanes);
        lanes = kept;
      }
    }
    flip ^= 1;
  }
  if (lanes == 0) return;

  // Full-result extraction: pull each surviving lane's [T, n] train out of
  // the lane-strided final buffer and fill exactly like the scalar path.
  const size_t out_n = net.layer(L - 1).num_neurons();
  const std::vector<float>& final_buf = ctx.bufs[flip ^ 1];
  for (size_t lane = 0; lane < lanes; ++lane) {
    ctx.slice.resize_zero(tensor::Shape{T, out_n});
    float* s = ctx.slice.data();
    for (size_t t = 0; t < T; ++t) {
      const float* f = final_buf.data() + t * out_n * lanes;
      for (size_t i = 0; i < out_n; ++i) s[t * out_n + i] = f[i * lanes + lane];
    }
    fault::DetectionResult& r = results[ctx.result_index[lane]];
    if (config.detect_only) {
      detail::fill_detect_only_result(r, ctx.slice, cache, config.detection_threshold);
    } else {
      detail::fill_full_result(r, ctx.slice, cache, config.detection_threshold);
    }
  }
}

}  // namespace snntest::campaign
