#include "campaign/status.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/serialize.hpp"
#include "util/subprocess.hpp"

namespace snntest::campaign {

namespace {

void write_snapshot(std::ostream& os, const obs::Registry::Snapshot& snap) {
  util::write_u64(os, snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    util::write_string(os, name);
    util::write_u64(os, value);
  }
  util::write_u64(os, snap.gauges.size());
  for (const auto& [name, value] : snap.gauges) {
    util::write_string(os, name);
    util::write_f64(os, value);
  }
  util::write_u64(os, snap.histograms.size());
  for (const auto& [name, h] : snap.histograms) {
    util::write_string(os, name);
    util::write_u64(os, h.bounds.size());
    for (double b : h.bounds) util::write_f64(os, b);
    util::write_u64(os, h.buckets.size());
    for (uint64_t b : h.buckets) util::write_u64(os, b);
    util::write_u64(os, h.count);
    util::write_f64(os, h.sum);
  }
}

obs::Registry::Snapshot read_snapshot(std::istream& is) {
  obs::Registry::Snapshot snap;
  const uint64_t num_counters = util::read_u64(is);
  for (uint64_t i = 0; i < num_counters; ++i) {
    std::string name = util::read_string(is);
    snap.counters[std::move(name)] = util::read_u64(is);
  }
  const uint64_t num_gauges = util::read_u64(is);
  for (uint64_t i = 0; i < num_gauges; ++i) {
    std::string name = util::read_string(is);
    snap.gauges[std::move(name)] = util::read_f64(is);
  }
  const uint64_t num_histograms = util::read_u64(is);
  for (uint64_t i = 0; i < num_histograms; ++i) {
    std::string name = util::read_string(is);
    obs::Registry::HistogramSnapshot h;
    const uint64_t num_bounds = util::read_u64(is);
    h.bounds.reserve(num_bounds);
    for (uint64_t b = 0; b < num_bounds; ++b) h.bounds.push_back(util::read_f64(is));
    const uint64_t num_buckets = util::read_u64(is);
    h.buckets.reserve(num_buckets);
    for (uint64_t b = 0; b < num_buckets; ++b) h.buckets.push_back(util::read_u64(is));
    h.count = util::read_u64(is);
    h.sum = util::read_f64(is);
    snap.histograms[std::move(name)] = std::move(h);
  }
  return snap;
}

std::string serialize_payload(const ShardStatus& status) {
  std::ostringstream os(std::ios::binary);
  util::write_u64(os, status.shard_index);
  util::write_u64(os, status.num_shards);
  util::write_u64(os, status.heartbeat);
  util::write_u64(os, status.faults_total);
  util::write_u64(os, status.faults_done);
  util::write_u64(os, status.detected);
  util::write_u64(os, status.pairs_reused);
  util::write_u64(os, status.pairs_recorded);
  util::write_u32(os, status.completed ? 1u : 0u);
  util::write_f64(os, status.elapsed_seconds);
  util::write_u64(os, status.samples.size());
  for (const CoverageSample& s : status.samples) {
    util::write_f64(os, s.t_seconds);
    util::write_u64(os, s.faults_done);
    util::write_u64(os, s.detected);
  }
  write_snapshot(os, status.metrics);
  return os.str();
}

ShardStatus parse_payload(const std::string& payload) {
  std::istringstream is(payload, std::ios::binary);
  ShardStatus status;
  status.shard_index = util::read_u64(is);
  status.num_shards = util::read_u64(is);
  status.heartbeat = util::read_u64(is);
  status.faults_total = util::read_u64(is);
  status.faults_done = util::read_u64(is);
  status.detected = util::read_u64(is);
  status.pairs_reused = util::read_u64(is);
  status.pairs_recorded = util::read_u64(is);
  status.completed = util::read_u32(is) != 0;
  status.elapsed_seconds = util::read_f64(is);
  const uint64_t num_samples = util::read_u64(is);
  status.samples.reserve(num_samples);
  for (uint64_t i = 0; i < num_samples; ++i) {
    CoverageSample s;
    s.t_seconds = util::read_f64(is);
    s.faults_done = util::read_u64(is);
    s.detected = util::read_u64(is);
    status.samples.push_back(s);
  }
  status.metrics = read_snapshot(is);
  return status;
}

}  // namespace

void decimate_samples(std::vector<CoverageSample>& samples, size_t max_samples) {
  if (max_samples < 2 || samples.size() <= max_samples) return;
  std::vector<CoverageSample> kept;
  kept.reserve(samples.size() / 2 + 1);
  for (size_t i = 0; i < samples.size(); i += 2) kept.push_back(samples[i]);
  if (kept.back().t_seconds != samples.back().t_seconds ||
      kept.back().faults_done != samples.back().faults_done) {
    kept.push_back(samples.back());
  }
  samples = std::move(kept);
}

std::string serialize_shard_status(const ShardStatus& status) {
  const std::string payload = serialize_payload(status);
  std::ostringstream os(std::ios::binary);
  util::write_magic(os, kStatusMagic, kStatusVersion);
  util::write_u64(os, payload.size());
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  util::write_u32(os, util::crc32(payload.data(), payload.size()));
  return os.str();
}

void save_shard_status_atomic(const ShardStatus& status, const std::string& path) {
  util::atomic_write_file(path, serialize_shard_status(status));
}

std::optional<ShardStatus> load_shard_status(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf(std::ios::binary);
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  // Header: magic u32 + version u32 + payload length u64, then payload + CRC.
  constexpr size_t kHeaderBytes = 4 + 4 + 8;
  if (bytes.size() < kHeaderBytes + 4) return std::nullopt;
  try {
    std::istringstream is(bytes, std::ios::binary);
    util::check_magic(is, kStatusMagic, kStatusVersion);
    const uint64_t payload_len = util::read_u64(is);
    if (bytes.size() != kHeaderBytes + payload_len + 4) return std::nullopt;
    const std::string payload = bytes.substr(kHeaderBytes, payload_len);
    std::istringstream crc_is(bytes.substr(kHeaderBytes + payload_len, 4), std::ios::binary);
    if (util::read_u32(crc_is) != util::crc32(payload.data(), payload.size())) {
      return std::nullopt;
    }
    return parse_payload(payload);
  } catch (const std::exception&) {
    // Torn, truncated or stale-version snapshot: the reader carries on with
    // what the other shards report.
    return std::nullopt;
  }
}

}  // namespace snntest::campaign
