#include "campaign/orchestrator.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "coverage/incremental.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/subprocess.hpp"
#include "util/timer.hpp"

namespace snntest::campaign {
namespace {

using Clock = std::chrono::steady_clock;

void ensure_directory(const std::string& path) {
  std::string prefix;
  prefix.reserve(path.size());
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      prefix.push_back(path[i]);
      continue;
    }
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      throw std::runtime_error("orchestrator: cannot create directory " + prefix + ": " +
                               std::strerror(errno));
    }
    if (i < path.size()) prefix.push_back('/');
  }
}

/// The heartbeat file holds a bare u64 counter; absent/garbled reads as 0
/// (== "no beat yet"), which is fine — liveness is judged on *changes*.
uint64_t read_heartbeat(const std::string& path) {
  std::ifstream in(path);
  uint64_t value = 0;
  in >> value;
  return in ? value : 0;
}

/// A shard is committed iff its final file loads and matches the job's
/// campaign identity. Presence alone is almost enough (the file only
/// appears via atomic rename) — the compatibility check additionally
/// rejects stale files from an older campaign in a reused work dir.
bool shard_committed(const ShardPaths& paths, const coverage::FaultDictionary& expected) {
  auto dict = coverage::FaultDictionary::load(paths.final);
  return dict && dict->compatible_with(expected);
}

struct ShardState {
  enum class Phase { kPending, kRunning, kBackoff, kDone, kAbandoned };
  Phase phase = Phase::kPending;
  pid_t pid = -1;
  size_t attempts = 0;  // launches so far
  Clock::time_point retry_at{};
  uint64_t last_heartbeat = 0;
  Clock::time_point last_heartbeat_change{};
  ShardOutcome outcome;
};

}  // namespace

size_t OrchestratorResult::total_attempts() const {
  size_t n = 0;
  for (const ShardOutcome& s : shards) n += s.attempts;
  return n;
}

std::vector<std::string> default_worker_command(const ShardLaunch& launch,
                                                const std::string& executable) {
  return {executable,
          "run-shard",
          "--job",
          launch.job_path,
          "--work-dir",
          launch.work_dir,
          "--shard",
          std::to_string(launch.shard_index),
          "--num-shards",
          std::to_string(launch.num_shards),
          "--flush-every",
          std::to_string(launch.flush_every)};
}

OrchestratorResult run_sharded_campaign(const ShardJob& job, const OrchestratorConfig& config) {
  OBS_SPAN("campaign/orchestrate");
  if (config.work_dir.empty()) {
    throw std::invalid_argument("orchestrator: work_dir is required");
  }
  if (!config.worker_command) {
    throw std::invalid_argument("orchestrator: worker_command is required");
  }
  const size_t num_shards = config.num_shards == 0 ? 1 : config.num_shards;

  util::Timer timer;
  ensure_directory(config.work_dir);
  const std::string job_path = config.work_dir + "/job.bin";
  save_job(job, job_path);

  const coverage::FaultDictionary expected = coverage::make_dictionary(
      job.net, job.faults, job.engine.detection_threshold, job.engine.detect_only);

  obs::Registry& reg = obs::Registry::instance();
  std::vector<ShardState> shards(num_shards);
  size_t incomplete = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    shards[i].outcome.shard_index = i;
    const ShardPaths paths = shard_paths(config.work_dir, i);
    if (config.reuse_completed_shards && shard_committed(paths, expected)) {
      shards[i].phase = ShardState::Phase::kDone;
      shards[i].outcome.completed = true;
      shards[i].outcome.reused_existing = true;
      load_worker_stats(paths.stats, &shards[i].outcome.stats);
      reg.counter("orchestrator/shards_reused").add();
      SNNTEST_LOG_INFO("orchestrator: shard %zu already committed, skipping", i);
    } else {
      ++incomplete;
    }
  }

  const auto backoff = [&config](size_t retry_number) {
    double s = config.retry_backoff_seconds;
    for (size_t i = 1; i < retry_number; ++i) s *= 2.0;
    if (s > config.retry_backoff_cap_seconds) s = config.retry_backoff_cap_seconds;
    return std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(s));
  };

  const auto launch = [&](size_t i) {
    ShardState& st = shards[i];
    ShardLaunch info;
    info.shard_index = i;
    info.num_shards = num_shards;
    info.attempt = st.attempts;
    info.job_path = job_path;
    info.work_dir = config.work_dir;
    info.flush_every = config.flush_every;
    const std::vector<std::string> argv = config.worker_command(info);
    util::SpawnOptions opts;
    opts.log_path = shard_paths(config.work_dir, i).log;
    st.pid = util::spawn_process(argv, opts);
    ++st.attempts;
    st.outcome.attempts = st.attempts;
    st.phase = ShardState::Phase::kRunning;
    st.last_heartbeat = read_heartbeat(shard_paths(config.work_dir, i).heartbeat);
    st.last_heartbeat_change = Clock::now();
    reg.counter("orchestrator/worker_launches").add();
  };

  // One attempt ended (exit observed or watchdog kill): commit, retry, or
  // abandon. Returns false when the shard is out of retries.
  const auto attempt_ended = [&](size_t i, bool was_hung) -> bool {
    ShardState& st = shards[i];
    const ShardPaths paths = shard_paths(config.work_dir, i);
    if (!was_hung && shard_committed(paths, expected)) {
      st.phase = ShardState::Phase::kDone;
      st.outcome.completed = true;
      load_worker_stats(paths.stats, &st.outcome.stats);
      reg.counter("orchestrator/shards_completed").add();
      return true;
    }
    ++st.outcome.failed_attempts;
    if (was_hung) ++st.outcome.hung_kills;
    reg.counter(was_hung ? "orchestrator/workers_hung" : "orchestrator/workers_failed").add();
    if (st.attempts > config.max_retries) {
      st.phase = ShardState::Phase::kAbandoned;
      SNNTEST_LOG_WARN("orchestrator: shard %zu abandoned after %zu attempts", i, st.attempts);
      return false;
    }
    st.phase = ShardState::Phase::kBackoff;
    st.retry_at = Clock::now() + backoff(st.attempts);
    reg.counter("orchestrator/worker_retries").add();
    SNNTEST_LOG_INFO("orchestrator: shard %zu attempt %zu %s, retrying", i, st.attempts,
                     was_hung ? "hung (killed)" : "failed");
    return true;
  };

  const auto heartbeat_timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config.heartbeat_timeout_seconds));
  bool abandoned = false;
  while (incomplete > 0 && !abandoned) {
    for (size_t i = 0; i < num_shards && !abandoned; ++i) {
      ShardState& st = shards[i];
      switch (st.phase) {
        case ShardState::Phase::kPending:
          launch(i);
          break;
        case ShardState::Phase::kBackoff:
          if (Clock::now() >= st.retry_at) launch(i);
          break;
        case ShardState::Phase::kRunning: {
          const util::ProcessStatus ps = util::poll_process(st.pid);
          if (!ps.running) {
            st.pid = -1;
            abandoned = !attempt_ended(i, /*was_hung=*/false);
            if (st.phase == ShardState::Phase::kDone) --incomplete;
            break;
          }
          const uint64_t hb = read_heartbeat(shard_paths(config.work_dir, i).heartbeat);
          const auto now = Clock::now();
          if (hb != st.last_heartbeat) {
            st.last_heartbeat = hb;
            st.last_heartbeat_change = now;
          } else if (now - st.last_heartbeat_change > heartbeat_timeout) {
            util::kill_process(st.pid);
            util::wait_process(st.pid);  // reap; also bars a post-kill commit race
            st.pid = -1;
            abandoned = !attempt_ended(i, /*was_hung=*/true);
          }
          break;
        }
        case ShardState::Phase::kDone:
        case ShardState::Phase::kAbandoned:
          break;
      }
    }
    if (incomplete > 0 && !abandoned) {
      std::this_thread::sleep_for(std::chrono::duration<double>(config.poll_interval_seconds));
    }
  }

  // Abandoning one shard abandons the campaign: kill whatever still runs.
  if (abandoned) {
    for (ShardState& st : shards) {
      if (st.phase == ShardState::Phase::kRunning && st.pid > 0) {
        util::kill_process(st.pid);
        util::wait_process(st.pid);
        st.pid = -1;
        ++st.outcome.failed_attempts;
      }
    }
  }

  OrchestratorResult result;
  result.shards.reserve(num_shards);
  for (ShardState& st : shards) result.shards.push_back(st.outcome);
  result.completed = !abandoned;

  if (result.completed) {
    OBS_SPAN("campaign/orchestrate_merge");
    result.merged = expected;
    for (size_t i = 0; i < num_shards; ++i) {
      const auto dict = coverage::FaultDictionary::load(shard_paths(config.work_dir, i).final);
      if (!dict || !dict->compatible_with(expected)) {
        // Should be unreachable: kDone required a committed file moments ago.
        SNNTEST_LOG_WARN("orchestrator: shard %zu file vanished before merge", i);
        result.completed = false;
        break;
      }
      const coverage::FaultDictionary::MergeStats ms = result.merged.merge(*dict);
      result.merge_stats.records_added += ms.records_added;
      result.merge_stats.duplicates_agreeing += ms.duplicates_agreeing;
      result.merge_stats.conflicts_skipped += ms.conflicts_skipped;
      result.merge_stats.stimuli_added += ms.stimuli_added;
    }
  }

  result.elapsed_seconds = timer.seconds();
  obs::set_report_field("orchestrator.num_shards", static_cast<uint64_t>(num_shards));
  obs::set_report_field("orchestrator.total_attempts",
                        static_cast<uint64_t>(result.total_attempts()));
  obs::set_report_field("orchestrator.completed", result.completed);
  obs::set_report_field("orchestrator.elapsed_seconds", result.elapsed_seconds);
  return result;
}

}  // namespace snntest::campaign
