#include "campaign/orchestrator.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "coverage/incremental.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/subprocess.hpp"
#include "util/timer.hpp"

namespace snntest::campaign {
namespace {

using Clock = std::chrono::steady_clock;

void ensure_directory(const std::string& path) {
  std::string prefix;
  prefix.reserve(path.size());
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      prefix.push_back(path[i]);
      continue;
    }
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      throw std::runtime_error("orchestrator: cannot create directory " + prefix + ": " +
                               std::strerror(errno));
    }
    if (i < path.size()) prefix.push_back('/');
  }
}

/// The heartbeat file holds a bare u64 counter; absent/garbled reads as 0
/// (== "no beat yet"), which is fine — liveness is judged on *changes*.
uint64_t read_heartbeat(const std::string& path) {
  std::ifstream in(path);
  uint64_t value = 0;
  in >> value;
  return in ? value : 0;
}

/// A shard is committed iff its final file loads and matches the job's
/// campaign identity. Presence alone is almost enough (the file only
/// appears via atomic rename) — the compatibility check additionally
/// rejects stale files from an older campaign in a reused work dir.
bool shard_committed(const ShardPaths& paths, const coverage::FaultDictionary& expected) {
  auto dict = coverage::FaultDictionary::load(paths.final);
  return dict && dict->compatible_with(expected);
}

struct ShardState {
  enum class Phase { kPending, kRunning, kBackoff, kDone, kAbandoned };
  Phase phase = Phase::kPending;
  pid_t pid = -1;
  size_t attempts = 0;  // launches so far
  Clock::time_point retry_at{};
  uint64_t last_heartbeat = 0;
  Clock::time_point last_heartbeat_change{};
  ShardOutcome outcome;
};

/// How one attempt ended, for the flight report's attempt history.
std::string attempt_outcome_string(const util::ProcessStatus* ps, bool was_hung, bool committed) {
  if (committed) return "committed";
  if (was_hung) return "hung (killed)";
  if (ps != nullptr && ps->signaled) {
    return "crashed (signal " + std::to_string(ps->term_signal) + ")";
  }
  if (ps != nullptr && ps->exited) {
    return "exit " + std::to_string(ps->exit_code) + " (no commit)";
  }
  return "failed";
}

util::JsonValue jnum(double v) {
  util::JsonValue out;
  out.kind = util::JsonValue::kNumber;
  out.number = v;
  return out;
}

util::JsonValue juint(uint64_t v) { return jnum(static_cast<double>(v)); }

util::JsonValue jstr(const std::string& s) {
  util::JsonValue out;
  out.kind = util::JsonValue::kString;
  out.str = s;
  return out;
}

util::JsonValue jbool(bool b) {
  util::JsonValue out;
  out.kind = util::JsonValue::kBool;
  out.boolean = b;
  return out;
}

}  // namespace

size_t OrchestratorResult::total_attempts() const {
  size_t n = 0;
  for (const ShardOutcome& s : shards) n += s.attempts;
  return n;
}

std::string flight_report_json(const OrchestratorResult& result) {
  using util::JsonValue;
  JsonValue root;
  root.kind = JsonValue::kObject;
  root.object["schema"] = jstr("snntest-flight-v1");
  root.object["completed"] = jbool(result.completed);
  root.object["elapsed_seconds"] = jnum(result.elapsed_seconds);
  root.object["num_shards"] = juint(result.shards.size());
  root.object["total_attempts"] = juint(result.total_attempts());
  root.object["faults_total"] = juint(result.fleet.faults_total);
  root.object["faults_done"] = juint(result.fleet.faults_done);
  root.object["detected"] = juint(result.fleet.detected);

  JsonValue merge;
  merge.kind = JsonValue::kObject;
  merge.object["records_added"] = juint(result.merge_stats.records_added);
  merge.object["duplicates_agreeing"] = juint(result.merge_stats.duplicates_agreeing);
  merge.object["conflicts_skipped"] = juint(result.merge_stats.conflicts_skipped);
  merge.object["stimuli_added"] = juint(result.merge_stats.stimuli_added);
  root.object["merge_stats"] = std::move(merge);

  // Time to X% of the fault universe processed, interpolated from nothing —
  // the first supervisor sample at or past the threshold. null when the
  // campaign never got there.
  JsonValue milestones;
  milestones.kind = JsonValue::kObject;
  const double total = static_cast<double>(result.fleet.faults_total);
  for (double frac : {0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    char key[32];
    std::snprintf(key, sizeof(key), "t_%g", frac);
    JsonValue when;  // defaults to kNull
    if (total > 0.0) {
      for (const CoverageSample& s : result.campaign_curve) {
        if (static_cast<double>(s.faults_done) + 1e-9 >= frac * total) {
          when = jnum(s.t_seconds);
          break;
        }
      }
    }
    milestones.object[key] = when;
  }
  root.object["milestones"] = std::move(milestones);

  JsonValue curve;
  curve.kind = JsonValue::kArray;
  for (const CoverageSample& s : result.campaign_curve) {
    JsonValue point;
    point.kind = JsonValue::kObject;
    point.object["t_seconds"] = jnum(s.t_seconds);
    point.object["faults_done"] = juint(s.faults_done);
    point.object["detected"] = juint(s.detected);
    curve.array.push_back(std::move(point));
  }
  root.object["campaign_curve"] = std::move(curve);

  JsonValue shards;
  shards.kind = JsonValue::kArray;
  for (const ShardOutcome& s : result.shards) {
    JsonValue shard;
    shard.kind = JsonValue::kObject;
    shard.object["shard_index"] = juint(s.shard_index);
    shard.object["attempts"] = juint(s.attempts);
    shard.object["hung_kills"] = juint(s.hung_kills);
    shard.object["failed_attempts"] = juint(s.failed_attempts);
    shard.object["completed"] = jbool(s.completed);
    shard.object["reused_existing"] = jbool(s.reused_existing);
    shard.object["faults"] = juint(s.stats.faults);
    shard.object["pairs_reused"] = juint(s.stats.pairs_reused);
    shard.object["pairs_recorded"] = juint(s.stats.pairs_recorded);
    shard.object["elapsed_seconds"] = jnum(s.stats.elapsed_seconds);
    JsonValue history;
    history.kind = JsonValue::kArray;
    for (const ShardAttempt& a : s.history) {
      JsonValue attempt;
      attempt.kind = JsonValue::kObject;
      attempt.object["attempt"] = juint(a.attempt);
      attempt.object["outcome"] = jstr(a.outcome);
      attempt.object["started_seconds"] = jnum(a.started_seconds);
      attempt.object["ended_seconds"] = jnum(a.ended_seconds);
      history.array.push_back(std::move(attempt));
    }
    shard.object["history"] = std::move(history);
    shards.array.push_back(std::move(shard));
  }
  root.object["shards"] = std::move(shards);

  JsonValue counters;
  counters.kind = JsonValue::kObject;
  for (const auto& [name, value] : result.fleet.merged_metrics.counters) {
    counters.object[name] = juint(value);
  }
  root.object["merged_counters"] = std::move(counters);

  JsonValue histograms;
  histograms.kind = JsonValue::kObject;
  for (const auto& [name, h] : result.fleet.merged_metrics.histograms) {
    JsonValue hist;
    hist.kind = JsonValue::kObject;
    hist.object["count"] = juint(h.count);
    hist.object["sum"] = jnum(h.sum);
    hist.object["p50"] = jnum(h.percentile(0.50));
    hist.object["p95"] = jnum(h.percentile(0.95));
    hist.object["p99"] = jnum(h.percentile(0.99));
    histograms.object[name] = std::move(hist);
  }
  root.object["merged_histograms"] = std::move(histograms);

  JsonValue trace;
  trace.kind = JsonValue::kObject;
  trace.object["inputs_merged"] = juint(result.trace_merge.inputs_merged);
  trace.object["inputs_skipped"] = juint(result.trace_merge.inputs_skipped);
  trace.object["events"] = juint(result.trace_merge.events);
  root.object["trace_merge"] = std::move(trace);
  return util::to_json(root);
}

std::vector<std::string> default_worker_command(const ShardLaunch& launch,
                                                const std::string& executable) {
  return {executable,
          "run-shard",
          "--job",
          launch.job_path,
          "--work-dir",
          launch.work_dir,
          "--shard",
          std::to_string(launch.shard_index),
          "--num-shards",
          std::to_string(launch.num_shards),
          "--flush-every",
          std::to_string(launch.flush_every)};
}

OrchestratorResult run_sharded_campaign(const ShardJob& job, const OrchestratorConfig& config) {
  OBS_SPAN("campaign/orchestrate");
  if (config.work_dir.empty()) {
    throw std::invalid_argument("orchestrator: work_dir is required");
  }
  if (!config.worker_command) {
    throw std::invalid_argument("orchestrator: worker_command is required");
  }
  const size_t num_shards = config.num_shards == 0 ? 1 : config.num_shards;

  util::Timer timer;
  ensure_directory(config.work_dir);
  const std::string job_path = config.work_dir + "/job.bin";
  if (config.collect_traces && !job.emit_traces) {
    // The trace opt-in travels in the job file so every worker attempt picks
    // it up without changing the worker argv contract.
    ShardJob traced = job;
    traced.emit_traces = true;
    save_job(traced, job_path);
  } else {
    save_job(job, job_path);
  }

  const coverage::FaultDictionary expected = coverage::make_dictionary(
      job.net, job.faults, job.engine.detection_threshold, job.engine.detect_only);

  obs::Registry& reg = obs::Registry::instance();
  std::vector<ShardState> shards(num_shards);
  size_t incomplete = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    shards[i].outcome.shard_index = i;
    const ShardPaths paths = shard_paths(config.work_dir, i);
    if (config.reuse_completed_shards && shard_committed(paths, expected)) {
      shards[i].phase = ShardState::Phase::kDone;
      shards[i].outcome.completed = true;
      shards[i].outcome.reused_existing = true;
      load_worker_stats(paths.stats, &shards[i].outcome.stats);
      reg.counter("orchestrator/shards_reused").add();
      SNNTEST_LOG_INFO("orchestrator: shard %zu already committed, skipping", i);
    } else {
      ++incomplete;
    }
  }

  const auto backoff = [&config](size_t retry_number) {
    double s = config.retry_backoff_seconds;
    for (size_t i = 1; i < retry_number; ++i) s *= 2.0;
    if (s > config.retry_backoff_cap_seconds) s = config.retry_backoff_cap_seconds;
    return std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(s));
  };

  const auto launch = [&](size_t i) {
    ShardState& st = shards[i];
    ShardLaunch info;
    info.shard_index = i;
    info.num_shards = num_shards;
    info.attempt = st.attempts;
    info.job_path = job_path;
    info.work_dir = config.work_dir;
    info.flush_every = config.flush_every;
    const std::vector<std::string> argv = config.worker_command(info);
    util::SpawnOptions opts;
    opts.log_path = shard_paths(config.work_dir, i).log;
    st.pid = util::spawn_process(argv, opts);
    ShardAttempt record;
    record.attempt = st.attempts;
    record.started_seconds = timer.seconds();
    st.outcome.history.push_back(std::move(record));
    ++st.attempts;
    st.outcome.attempts = st.attempts;
    st.phase = ShardState::Phase::kRunning;
    st.last_heartbeat = read_heartbeat(shard_paths(config.work_dir, i).heartbeat);
    st.last_heartbeat_change = Clock::now();
    reg.counter("orchestrator/worker_launches").add();
  };

  // One attempt ended (exit observed or watchdog kill): commit, retry, or
  // abandon. Returns false when the shard is out of retries.
  const auto attempt_ended = [&](size_t i, const util::ProcessStatus* ps, bool was_hung) -> bool {
    ShardState& st = shards[i];
    const ShardPaths paths = shard_paths(config.work_dir, i);
    const bool committed = !was_hung && shard_committed(paths, expected);
    if (!st.outcome.history.empty()) {
      ShardAttempt& record = st.outcome.history.back();
      record.ended_seconds = timer.seconds();
      record.outcome = attempt_outcome_string(ps, was_hung, committed);
    }
    if (committed) {
      st.phase = ShardState::Phase::kDone;
      st.outcome.completed = true;
      load_worker_stats(paths.stats, &st.outcome.stats);
      reg.counter("orchestrator/shards_completed").add();
      return true;
    }
    ++st.outcome.failed_attempts;
    if (was_hung) ++st.outcome.hung_kills;
    reg.counter(was_hung ? "orchestrator/workers_hung" : "orchestrator/workers_failed").add();
    if (st.attempts > config.max_retries) {
      st.phase = ShardState::Phase::kAbandoned;
      SNNTEST_LOG_WARN("orchestrator: shard %zu abandoned after %zu attempts", i, st.attempts);
      return false;
    }
    st.phase = ShardState::Phase::kBackoff;
    st.retry_at = Clock::now() + backoff(st.attempts);
    reg.counter("orchestrator/worker_retries").add();
    SNNTEST_LOG_INFO("orchestrator: shard %zu attempt %zu %s, retrying", i, st.attempts,
                     was_hung ? "hung (killed)" : "failed");
    return true;
  };

  const auto heartbeat_timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config.heartbeat_timeout_seconds));

  // Fleet observability: fold the shard status snapshots on an interval,
  // republish as fleet_status.json (atomic rename) and keep the campaign
  // coverage curve the flight report's milestones are computed from. Pure
  // reads of shard files — supervision decisions never consult the view.
  const bool need_fleet = config.write_fleet_status || config.write_flight_report;
  std::vector<size_t> expected_totals;
  expected_totals.reserve(num_shards);
  for (const ShardRange& r : plan_shards(job.faults.size(), num_shards)) {
    expected_totals.push_back(r.size());
  }
  std::vector<CoverageSample> campaign_curve;
  const std::string fleet_status_path = config.work_dir + "/fleet_status.json";
  const auto status_interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config.status_interval_seconds));
  Clock::time_point last_status_refresh{};  // epoch: first refresh fires immediately
  const auto refresh_fleet = [&]() -> FleetView {
    FleetView view = build_fleet_view(config.work_dir, num_shards, &expected_totals);
    campaign_curve.push_back({timer.seconds(), view.faults_done, view.detected});
    if (config.write_fleet_status) {
      try {
        util::atomic_write_file(fleet_status_path, fleet_status_json(view) + "\n");
      } catch (const std::exception& e) {
        SNNTEST_LOG_WARN("orchestrator: cannot write %s: %s", fleet_status_path.c_str(), e.what());
      }
    }
    return view;
  };

  bool abandoned = false;
  while (incomplete > 0 && !abandoned) {
    for (size_t i = 0; i < num_shards && !abandoned; ++i) {
      ShardState& st = shards[i];
      switch (st.phase) {
        case ShardState::Phase::kPending:
          launch(i);
          break;
        case ShardState::Phase::kBackoff:
          if (Clock::now() >= st.retry_at) launch(i);
          break;
        case ShardState::Phase::kRunning: {
          const util::ProcessStatus ps = util::poll_process(st.pid);
          if (!ps.running) {
            st.pid = -1;
            abandoned = !attempt_ended(i, &ps, /*was_hung=*/false);
            if (st.phase == ShardState::Phase::kDone) --incomplete;
            break;
          }
          const uint64_t hb = read_heartbeat(shard_paths(config.work_dir, i).heartbeat);
          const auto now = Clock::now();
          if (hb != st.last_heartbeat) {
            st.last_heartbeat = hb;
            st.last_heartbeat_change = now;
          } else if (now - st.last_heartbeat_change > heartbeat_timeout) {
            util::kill_process(st.pid);
            util::wait_process(st.pid);  // reap; also bars a post-kill commit race
            st.pid = -1;
            abandoned = !attempt_ended(i, nullptr, /*was_hung=*/true);
          }
          break;
        }
        case ShardState::Phase::kDone:
        case ShardState::Phase::kAbandoned:
          break;
      }
    }
    if (need_fleet && Clock::now() - last_status_refresh >= status_interval) {
      last_status_refresh = Clock::now();
      refresh_fleet();
    }
    if (incomplete > 0 && !abandoned) {
      std::this_thread::sleep_for(std::chrono::duration<double>(config.poll_interval_seconds));
    }
  }

  // Abandoning one shard abandons the campaign: kill whatever still runs.
  if (abandoned) {
    for (ShardState& st : shards) {
      if (st.phase == ShardState::Phase::kRunning && st.pid > 0) {
        util::kill_process(st.pid);
        util::wait_process(st.pid);
        st.pid = -1;
        ++st.outcome.failed_attempts;
        if (!st.outcome.history.empty()) {
          st.outcome.history.back().ended_seconds = timer.seconds();
          st.outcome.history.back().outcome = "killed (campaign abandoned)";
        }
      }
    }
  }

  OrchestratorResult result;
  result.shards.reserve(num_shards);
  for (ShardState& st : shards) result.shards.push_back(st.outcome);
  result.completed = !abandoned;

  if (result.completed) {
    OBS_SPAN("campaign/orchestrate_merge");
    result.merged = expected;
    for (size_t i = 0; i < num_shards; ++i) {
      const auto dict = coverage::FaultDictionary::load(shard_paths(config.work_dir, i).final);
      if (!dict || !dict->compatible_with(expected)) {
        // Should be unreachable: kDone required a committed file moments ago.
        SNNTEST_LOG_WARN("orchestrator: shard %zu file vanished before merge", i);
        result.completed = false;
        break;
      }
      const coverage::FaultDictionary::MergeStats ms = result.merged.merge(*dict);
      result.merge_stats.records_added += ms.records_added;
      result.merge_stats.duplicates_agreeing += ms.duplicates_agreeing;
      result.merge_stats.conflicts_skipped += ms.conflicts_skipped;
      result.merge_stats.stimuli_added += ms.stimuli_added;
    }
  }

  // Final observability pass — runs even for abandoned campaigns, so a
  // failed run still leaves a fleet status, flight report and merged trace
  // to debug from.
  result.fleet = refresh_fleet();
  result.campaign_curve = std::move(campaign_curve);

  if (config.collect_traces) {
    OBS_SPAN("campaign/orchestrate_trace_merge");
    const std::string supervisor_trace = config.work_dir + "/supervisor.trace.json";
    obs::write_chrome_trace(supervisor_trace);
    std::vector<obs::TraceMergeInput> inputs;
    inputs.push_back({supervisor_trace, "supervisor"});
    for (size_t i = 0; i < num_shards; ++i) {
      inputs.push_back({shard_paths(config.work_dir, i).trace, "shard " + std::to_string(i)});
    }
    obs::write_merged_chrome_trace(config.work_dir + "/trace_merged.json", inputs,
                                   &result.trace_merge);
  }

  result.elapsed_seconds = timer.seconds();

  if (config.write_flight_report) {
    const std::string report_path = config.work_dir + "/flight_report.json";
    try {
      util::atomic_write_file(report_path, flight_report_json(result) + "\n");
    } catch (const std::exception& e) {
      SNNTEST_LOG_WARN("orchestrator: cannot write %s: %s", report_path.c_str(), e.what());
    }
  }

  obs::set_report_field("orchestrator.num_shards", static_cast<uint64_t>(num_shards));
  obs::set_report_field("orchestrator.total_attempts",
                        static_cast<uint64_t>(result.total_attempts()));
  obs::set_report_field("orchestrator.completed", result.completed);
  obs::set_report_field("orchestrator.elapsed_seconds", result.elapsed_seconds);
  return result;
}

}  // namespace snntest::campaign
