// Campaign/coverage identity fingerprints (single shared helper).
//
// Every persistent artifact derived from a fault campaign — the JSONL
// checkpoint (campaign/checkpoint.hpp) and the coverage fault dictionary
// (coverage/fault_dictionary.hpp) — must be invalidated when the inputs it
// was computed from change. These helpers are the one place that defines
// what "the inputs" hash to, all built on util::fnv1a and chainable (each
// takes the previous digest as `seed`):
//
//  * hash_network_topology — layer kinds and geometry. Cheap; catches
//    architecture swaps but NOT retraining.
//  * hash_network_params   — every trainable parameter value. Catches
//    retraining/finetuning; this is what makes a stale coverage dictionary
//    for a retrained model fail loudly instead of silently lying.
//  * hash_stimulus         — shape + raw spike bytes of one input train.
//  * hash_fault_list       — every field of every FaultDescriptor, order
//    sensitive (campaign results are positional).
//  * detection_settings_fingerprint — threshold + detect-only flag.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/injector.hpp"
#include "snn/network.hpp"
#include "tensor/tensor.hpp"
#include "util/hash.hpp"

namespace snntest::campaign {

uint64_t hash_stimulus(const tensor::Tensor& stimulus, uint64_t seed);
uint64_t hash_network_topology(const snn::Network& net, uint64_t seed);
/// Topology plus the value bytes of every trainable parameter (reads the
/// params through a const_cast-internal view; the network is not modified).
uint64_t hash_network_params(const snn::Network& net, uint64_t seed);
uint64_t hash_fault_list(const std::vector<fault::FaultDescriptor>& faults, uint64_t seed);
uint64_t detection_settings_fingerprint(uint64_t seed, double detection_threshold,
                                        bool detect_only);

/// Full model identity: topology + parameters (what the coverage dictionary
/// keys on — a retrained model produces a different fingerprint even when
/// the architecture is unchanged).
uint64_t model_fingerprint(const snn::Network& net);

}  // namespace snntest::campaign
