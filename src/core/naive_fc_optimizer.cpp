#include "core/naive_fc_optimizer.hpp"

#include "fault/campaign.hpp"
#include "fault/coverage.hpp"
#include "snn/spike_train.hpp"
#include "util/timer.hpp"

namespace snntest::core {

NaiveFcReport naive_fc_optimize(const snn::Network& net,
                                const std::vector<fault::FaultDescriptor>& faults,
                                const NaiveFcConfig& config) {
  util::Timer timer;
  util::Rng rng(config.seed);
  NaiveFcReport report;

  fault::CampaignConfig campaign;
  campaign.num_threads = config.num_threads;
  auto evaluate = [&](const Tensor& candidate) {
    const auto outcome = fault::run_detection_campaign(net, candidate, faults, campaign);
    report.fault_simulations += faults.size();
    return fault::fault_coverage(outcome.results);
  };

  // Deep-copy forward interface needs a non-const Network; campaigns clone
  // internally, so `net` itself stays untouched.
  report.best_input = snn::random_spike_train(config.num_steps, net.input_size(),
                                              config.initial_density, rng);
  report.best_coverage = evaluate(report.best_input);
  report.coverage_trace.push_back(report.best_coverage);

  for (size_t m = 1; m < config.iterations; ++m) {
    Tensor candidate = report.best_input;
    bool mutated = false;
    for (size_t i = 0; i < candidate.numel(); ++i) {
      if (rng.bernoulli(config.mutation_rate)) {
        candidate[i] = candidate[i] > 0.5f ? 0.0f : 1.0f;
        mutated = true;
      }
    }
    if (!mutated) {
      // force at least one flip so every iteration explores
      const size_t i = rng.uniform_index(candidate.numel());
      candidate[i] = candidate[i] > 0.5f ? 0.0f : 1.0f;
    }
    const double fc = evaluate(candidate);
    if (fc >= report.best_coverage) {
      report.best_coverage = fc;
      report.best_input = std::move(candidate);
    }
    report.coverage_trace.push_back(report.best_coverage);
  }

  report.seconds = timer.seconds();
  return report;
}

}  // namespace snntest::core
