#include "core/losses.hpp"

#include <cmath>
#include <stdexcept>

#include "snn/conv_layer.hpp"
#include "snn/dense_layer.hpp"
#include "snn/recurrent_layer.hpp"
#include "snn/spike_train.hpp"
#include "tensor/ops.hpp"

namespace snntest::core {
namespace {

/// Subgradient of a "fire at least once" hinge max(0, 1 - count) for one
/// neuron: adds -1 at every timestep when the neuron is silent.
void add_activation_term(const Tensor& train, size_t neuron, double& value, Tensor& grad) {
  const size_t T = train.shape().dim(0);
  const size_t n = train.shape().dim(1);
  size_t count = 0;
  for (size_t t = 0; t < T; ++t) count += train.data()[t * n + neuron] > 0.5f;
  if (count >= 1) return;
  value += 1.0;
  for (size_t t = 0; t < T; ++t) grad.data()[t * n + neuron] += -1.0f;
}

int sign_of(float a, float b) {
  const bool sa = a > 0.5f;
  const bool sb = b > 0.5f;
  if (sa == sb) return 0;
  return sa ? 1 : -1;
}

/// L4 kernel shared by dense-style weight matrices: weights [rows, cols],
/// contribution c_j = w[i,j] * count_prev[j] over the non-zero weights of
/// each row i. Returns the summed variance; accumulates d/dcount_prev.
double variance_over_rows(const float* weights, size_t rows, size_t cols,
                          const std::vector<double>& counts_prev,
                          std::vector<double>& grad_counts_prev) {
  double total = 0.0;
  for (size_t i = 0; i < rows; ++i) {
    const float* w = weights + i * cols;
    double sum = 0.0, sum_sq = 0.0;
    size_t k = 0;
    for (size_t j = 0; j < cols; ++j) {
      if (w[j] == 0.0f) continue;
      const double c = static_cast<double>(w[j]) * counts_prev[j];
      sum += c;
      sum_sq += c * c;
      ++k;
    }
    if (k < 2) continue;
    const double mean = sum / static_cast<double>(k);
    const double var = sum_sq / static_cast<double>(k) - mean * mean;
    total += std::max(0.0, var);
    const double inv_k = 1.0 / static_cast<double>(k);
    for (size_t j = 0; j < cols; ++j) {
      if (w[j] == 0.0f) continue;
      const double c = static_cast<double>(w[j]) * counts_prev[j];
      // dVar/dc_j = 2*(c_j - mean)/k ; dc_j/dcount_j = w_ij
      grad_counts_prev[j] += 2.0 * (c - mean) * inv_k * static_cast<double>(w[j]);
    }
  }
  return total;
}

}  // namespace

NeuronMask full_mask(const Network& net) {
  NeuronMask mask(net.num_layers());
  for (size_t l = 0; l < net.num_layers(); ++l) {
    mask[l].assign(net.layer(l).num_neurons(), 1);
  }
  return mask;
}

std::vector<Tensor> make_grad_accumulators(const ForwardResult& o) {
  std::vector<Tensor> grads;
  grads.reserve(o.layer_outputs.size());
  for (const auto& out : o.layer_outputs) grads.emplace_back(out.shape());
  return grads;
}

double OutputActivationLoss::compute(const ForwardResult& o,
                                     std::vector<Tensor>& grad_accum) const {
  const size_t L = o.layer_outputs.size();
  const Tensor& out = o.layer_outputs[L - 1];
  double value = 0.0;
  for (size_t i = 0; i < out.shape().dim(1); ++i) {
    add_activation_term(out, i, value, grad_accum[L - 1]);
  }
  return value;
}

double NeuronActivationLoss::compute(const ForwardResult& o,
                                     std::vector<Tensor>& grad_accum) const {
  double value = 0.0;
  for (size_t l = 0; l < o.layer_outputs.size(); ++l) {
    const Tensor& train = o.layer_outputs[l];
    for (size_t i = 0; i < train.shape().dim(1); ++i) {
      if (mask_ && !(*mask_)[l][i]) continue;
      add_activation_term(train, i, value, grad_accum[l]);
    }
  }
  return value;
}

double TemporalDiversityLoss::compute(const ForwardResult& o,
                                      std::vector<Tensor>& grad_accum) const {
  double value = 0.0;
  for (size_t l = 0; l < o.layer_outputs.size(); ++l) {
    const Tensor& train = o.layer_outputs[l];
    const size_t T = train.shape().dim(0);
    const size_t n = train.shape().dim(1);
    const auto td = snn::temporal_diversity(train);
    for (size_t i = 0; i < n; ++i) {
      if (mask_ && !(*mask_)[l][i]) continue;
      if (td[i] >= td_min_) continue;
      value += static_cast<double>(td_min_ - td[i]);
      // d(TD_min - TD)/ds[t] = -dTD/ds[t];
      // dTD/ds[t] = sign(s[t]-s[t-1]) - sign(s[t+1]-s[t]).
      float* g = grad_accum[l].data();
      for (size_t t = 0; t < T; ++t) {
        int d = 0;
        if (t > 0) d += sign_of(train.data()[t * n + i], train.data()[(t - 1) * n + i]);
        if (t + 1 < T) d -= sign_of(train.data()[(t + 1) * n + i], train.data()[t * n + i]);
        g[t * n + i] += static_cast<float>(-d);
      }
    }
  }
  return value;
}

double SynapseUniformityLoss::compute(const ForwardResult& o,
                                      std::vector<Tensor>& grad_accum) const {
  double value = 0.0;
  // Paper Eq. (13) sums from l = 2: the presynaptic spike trains must be
  // *neuron outputs*, so layer 0 (fed by the raw input) is excluded.
  for (size_t l = 1; l < o.layer_outputs.size(); ++l) {
    const Tensor& prev_train = o.layer_outputs[l - 1];
    const size_t T = prev_train.shape().dim(0);
    const size_t m = prev_train.shape().dim(1);
    const auto counts_sz = snn::spike_counts(prev_train);
    std::vector<double> counts(counts_sz.begin(), counts_sz.end());
    std::vector<double> grad_counts(m, 0.0);

    snn::Layer& layer = net_->layer(l);
    switch (layer.kind()) {
      case snn::LayerKind::kDense: {
        auto& dense = static_cast<snn::DenseLayer&>(layer);
        value += variance_over_rows(dense.weights().data(), dense.num_neurons(), m, counts,
                                    grad_counts);
        break;
      }
      case snn::LayerKind::kRecurrent: {
        auto& rec = static_cast<snn::RecurrentLayer&>(layer);
        value += variance_over_rows(rec.weights().data(), rec.num_neurons(), m, counts,
                                    grad_counts);
        break;
      }
      case snn::LayerKind::kConv2d: {
        auto& conv = static_cast<snn::ConvLayer&>(layer);
        const auto& spec = conv.spec();
        const size_t oh = spec.out_height();
        const size_t ow = spec.out_width();
        const size_t k = spec.kernel;
        const float* weights = conv.weights().data();
        // Variance over the receptive-field taps of each output neuron.
        std::vector<double> contribs;
        std::vector<size_t> tap_inputs;
        for (size_t oc = 0; oc < spec.out_channels; ++oc) {
          for (size_t oy = 0; oy < oh; ++oy) {
            for (size_t ox = 0; ox < ow; ++ox) {
              contribs.clear();
              tap_inputs.clear();
              double sum = 0.0;
              for (size_t ic = 0; ic < spec.in_channels; ++ic) {
                const float* w_base = weights + ((oc * spec.in_channels + ic) * k) * k;
                for (size_t ky = 0; ky < k; ++ky) {
                  const long iy = static_cast<long>(oy * spec.stride + ky) -
                                  static_cast<long>(spec.padding);
                  if (iy < 0 || iy >= static_cast<long>(spec.in_height)) continue;
                  for (size_t kx = 0; kx < k; ++kx) {
                    const long ix = static_cast<long>(ox * spec.stride + kx) -
                                    static_cast<long>(spec.padding);
                    if (ix < 0 || ix >= static_cast<long>(spec.in_width)) continue;
                    const float w = w_base[ky * k + kx];
                    if (w == 0.0f) continue;
                    const size_t in_idx = (ic * spec.in_height + static_cast<size_t>(iy)) *
                                              spec.in_width +
                                          static_cast<size_t>(ix);
                    const double c = static_cast<double>(w) * counts[in_idx];
                    contribs.push_back(c);
                    tap_inputs.push_back(in_idx);
                    sum += c;
                  }
                }
              }
              const size_t kk = contribs.size();
              if (kk < 2) continue;
              const double mean = sum / static_cast<double>(kk);
              double var = 0.0;
              for (double c : contribs) var += (c - mean) * (c - mean);
              var /= static_cast<double>(kk);
              value += var;
              // regather weights to chain into counts
              size_t tap = 0;
              for (size_t ic = 0; ic < spec.in_channels; ++ic) {
                const float* w_base = weights + ((oc * spec.in_channels + ic) * k) * k;
                for (size_t ky = 0; ky < k; ++ky) {
                  const long iy = static_cast<long>(oy * spec.stride + ky) -
                                  static_cast<long>(spec.padding);
                  if (iy < 0 || iy >= static_cast<long>(spec.in_height)) continue;
                  for (size_t kx = 0; kx < k; ++kx) {
                    const long ix = static_cast<long>(ox * spec.stride + kx) -
                                    static_cast<long>(spec.padding);
                    if (ix < 0 || ix >= static_cast<long>(spec.in_width)) continue;
                    const float w = w_base[ky * k + kx];
                    if (w == 0.0f) continue;
                    grad_counts[tap_inputs[tap]] +=
                        2.0 * (contribs[tap] - mean) / static_cast<double>(kk) *
                        static_cast<double>(w);
                    ++tap;
                  }
                }
              }
            }
          }
        }
        break;
      }
      case snn::LayerKind::kSumPool:
        // Fixed wiring — no synapse-fault sites, no L4 term.
        break;
    }

    // d count_j / d s[t, j] = 1 at every timestep.
    float* g = grad_accum[l - 1].data();
    for (size_t t = 0; t < T; ++t) {
      for (size_t j = 0; j < m; ++j) {
        if (grad_counts[j] != 0.0) g[t * m + j] += static_cast<float>(grad_counts[j]);
      }
    }
  }
  return value;
}

double SparsityLoss::compute(const ForwardResult& o, std::vector<Tensor>& grad_accum) const {
  double value = 0.0;
  // Hidden layers only: l < L-1.
  for (size_t l = 0; l + 1 < o.layer_outputs.size(); ++l) {
    const Tensor& train = o.layer_outputs[l];
    value += static_cast<double>(train.count_nonzero());
    float* g = grad_accum[l].data();
    for (size_t i = 0; i < train.numel(); ++i) g[i] += 1.0f;
  }
  return value;
}

double OutputConstancyPenalty::compute(const ForwardResult& o,
                                       std::vector<Tensor>& grad_accum) const {
  const size_t L = o.layer_outputs.size();
  const Tensor& out = o.layer_outputs[L - 1];
  if (out.shape() != reference_.shape()) {
    throw std::invalid_argument("OutputConstancyPenalty: output/reference shape mismatch");
  }
  double value = 0.0;
  float* g = grad_accum[L - 1].data();
  for (size_t i = 0; i < out.numel(); ++i) {
    const float diff = out[i] - reference_[i];
    value += std::fabs(static_cast<double>(diff));
    if (diff > 0.5f) {
      g[i] += static_cast<float>(mu_);
    } else if (diff < -0.5f) {
      g[i] -= static_cast<float>(mu_);
    }
  }
  return mu_ * value;
}

void CompositeLoss::add(std::shared_ptr<const SpikeLoss> loss, double weight) {
  losses_.push_back(std::move(loss));
  weights_.push_back(weight);
}

double CompositeLoss::compute(const ForwardResult& o, std::vector<Tensor>& grad_accum,
                              std::vector<double>* per_term) const {
  if (per_term) per_term->assign(losses_.size(), 0.0);
  double total = 0.0;
  for (size_t i = 0; i < losses_.size(); ++i) {
    std::vector<Tensor> local = make_grad_accumulators(o);
    const double v = losses_[i]->compute(o, local);
    if (per_term) (*per_term)[i] = v;
    total += weights_[i] * v;
    for (size_t l = 0; l < grad_accum.size(); ++l) {
      tensor::axpy(grad_accum[l].data(), local[l].data(), static_cast<float>(weights_[i]),
                   grad_accum[l].numel());
    }
  }
  return total;
}

void CompositeLoss::calibrate_weights(const ForwardResult& o, double floor) {
  std::vector<Tensor> scratch = make_grad_accumulators(o);
  for (size_t i = 0; i < losses_.size(); ++i) {
    const double v = std::fabs(losses_[i]->compute(o, scratch));
    weights_[i] = 1.0 / std::max(v, floor);
  }
}

}  // namespace snntest::core
