#include "core/input_optimizer.hpp"

#include <limits>

#include "train/adam.hpp"
#include "train/schedule.hpp"

namespace snntest::core {

InputOptimizer::InputOptimizer(snn::Network& net, GumbelSoftmaxInput& input, StageConfig config)
    : net_(&net), input_(&input), config_(config) {}

StageOutcome InputOptimizer::run(
    const CompositeLoss& loss,
    const std::function<bool(const snn::ForwardResult&)>& accept) {
  StageOutcome outcome;
  outcome.best_loss = std::numeric_limits<double>::infinity();

  // "During the input optimization the SNN model stays fixed": dL/dW is
  // never consumed here (the seed zeroed it every step and discarded it),
  // so turn parameter-gradient accumulation off for the whole stage.
  // dL/d(input) — the only gradient this loop uses — is bit-identical with
  // the flag off, so the optimization trajectory is unchanged.
  struct ParamGradGuard {
    snn::Network* net;
    bool previous;
    ~ParamGradGuard() { net->set_param_grads_enabled(previous); }
  } param_grad_guard{net_, net_->param_grads_enabled()};
  net_->set_param_grads_enabled(false);
  net_->zero_grad();  // leave no stale weight grads behind for later readers

  train::AdamConfig adam_config;
  adam_config.lr = config_.lr_initial;
  train::AdamOptimizer adam(adam_config);
  adam.attach(input_->real_data(), input_->grad_data(), input_->size());

  const train::CosineSchedule lr_schedule(config_.lr_initial, config_.lr_final);
  const train::CosineSchedule tau_schedule(config_.tau_max, config_.tau_min);

  for (size_t step = 0; step < config_.num_steps; ++step) {
    const double tau = tau_schedule.at(step, config_.num_steps);
    adam.set_lr(lr_schedule.at(step, config_.num_steps));

    // --- stochastic step: sample, forward with traces, backward ---
    const Tensor& candidate = input_->forward(tau, /*stochastic=*/true);
    auto fwd = net_->forward(candidate, /*record_traces=*/true);
    std::vector<Tensor> grads = make_grad_accumulators(fwd);
    const double stochastic_loss = loss.compute(fwd, grads);
    const Tensor grad_input = net_->backward(grads);
    input_->backward(grad_input);
    adam.step();
    ++outcome.steps_run;

    // --- candidate tracking with deterministic rounding ---
    // The stochastic forward above already gives an unbiased view; to keep
    // best-candidate selection reproducible we score the deterministic
    // binarization of the *updated* logits every eval_every steps.
    if (step % std::max<size_t>(1, config_.eval_every) == 0 ||
        step + 1 == config_.num_steps) {
      const Tensor& det = input_->forward(tau, /*stochastic=*/false);
      auto det_fwd = net_->forward(det, /*record_traces=*/false);
      std::vector<Tensor> scratch = make_grad_accumulators(det_fwd);
      const double det_loss = loss.compute(det_fwd, scratch);
      outcome.loss_trace.push_back(det_loss);
      const bool acceptable = !accept || accept(det_fwd);
      if (acceptable && det_loss < outcome.best_loss) {
        outcome.best_loss = det_loss;
        outcome.best_input = det;
        outcome.best_forward = std::move(det_fwd);
      }
    }
    (void)stochastic_loss;
  }
  return outcome;
}

}  // namespace snntest::core
