// The complete test-generation algorithm (paper Sec. IV-C, Fig. 2).
//
// Outer loop: each iteration optimizes one input chunk in two stages
// (stage 1: L1+L2+L3+L4 excitation/observability; stage 2: L5 sparsification
// under constant O^L), records the newly activated neurons, retargets the
// remaining set N_T = N \ N_A, and stops when every neuron is activated or
// the time limit elapses. The final test is the chunk sequence interleaved
// with sleep inputs (TestStimulus).
//
// Defaults follow Sec. V-C scaled to CPU budgets (paper values in
// parentheses): N^1_steps configurable (2000), N^2 = N^1/2, lr 0.1 annealed,
// tau annealed with max 0.9, beta doubling on growth, TD_min = T_in,min/10,
// alpha_i = 1/expected-magnitude, t_limit (3 h).
#pragma once

#include <vector>

#include "core/input_optimizer.hpp"
#include "core/test_stimulus.hpp"

namespace snntest::core {

struct TestGenConfig {
  // stage optimization
  size_t steps_stage1 = 300;  // paper: 2000
  size_t steps_stage2 = 0;    // 0 -> steps_stage1 / 2 (Sec. V-C)
  double lr_initial = 0.1;
  double lr_final = 0.01;
  double tau_max = 0.9;
  double tau_min = 0.25;
  size_t eval_every = 5;

  // input duration control (timesteps)
  size_t t_in_min = 0;   // 0 = auto-search via min L1 (Sec. V-C)
  size_t t_in_start = 4; // starting duration of the auto-search ("1 ms")
  size_t t_in_max = 64;  // cap for the auto-search
  size_t beta = 10;      // growth increment; doubles after every growth
  size_t max_growths_per_iteration = 2;

  // termination
  double t_limit_seconds = 600.0;  // paper: 3 h
  size_t max_iterations = 24;
  size_t activation_min_spikes = 1;

  // multi-restart stage optimization: each outer iteration runs `restarts`
  // independent stage-1/stage-2 optimizations (per-restart Gumbel seed
  // derived from `seed` via util::mix_seed) and keeps the restart that
  // activates the most new neurons. The generated stimulus is bit-identical
  // for a given seed regardless of `num_threads` — restarts share no
  // mutable state and the winner is picked by a deterministic rule, never
  // by wall clock (DESIGN.md §10).
  size_t restarts = 1;
  size_t num_threads = 1;  // threads for the restart fan-out (0 = hardware)

  // Kernel selection for every forward/backward inside the generator; all
  // modes produce bit-identical stimuli (kAuto is fastest on sparse data).
  snn::KernelMode kernel_mode = snn::KernelMode::kAuto;

  // losses
  size_t td_min_override = 0;  // 0 -> max(1, t_in_min / 10)
  bool use_l1 = true;          // ablation switches
  bool use_l2 = true;
  bool use_l3 = true;
  bool use_l4 = true;
  bool enable_stage2 = true;
  double constancy_mu = 4.0;  // penalty weight for the Eq. (15) constraint

  double input_init_bias = -1.0;  // starting logit bias (density control)
  uint64_t seed = 0xC0FFEEull;
  bool verbose = false;
};

struct IterationRecord {
  size_t iteration = 0;
  size_t duration_steps = 0;
  size_t growths = 0;
  double stage1_loss = 0.0;
  double stage2_loss = 0.0;
  bool stage2_accepted = false;
  size_t newly_activated = 0;
  size_t total_activated = 0;
  size_t winning_restart = 0;  // index of the restart that produced the chunk
  double seconds = 0.0;
};

struct TestGenReport {
  TestStimulus stimulus;
  double runtime_seconds = 0.0;
  size_t total_neurons = 0;
  size_t activated_neurons = 0;
  size_t t_in_min = 0;
  bool hit_time_limit = false;
  std::vector<IterationRecord> iterations;

  double activated_fraction() const {
    return total_neurons == 0
               ? 0.0
               : static_cast<double>(activated_neurons) / static_cast<double>(total_neurons);
  }
};

class TestGenerator {
 public:
  TestGenerator(snn::Network& net, TestGenConfig config = {});

  TestGenReport generate();

  /// Sec. V-C: minimum input duration that produces non-zero output for all
  /// output-layer neurons, found by optimizing min_I L1(O^L) with growing T.
  static size_t find_min_input_duration(snn::Network& net, const TestGenConfig& config,
                                        util::Rng& rng);

 private:
  snn::Network* net_;
  TestGenConfig config_;
};

}  // namespace snntest::core
