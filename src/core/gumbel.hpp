// Differentiable binary-input parameterization (paper Sec. IV-C3, Fig. 3).
//
// The SNN input is a binary tensor, which cannot be optimized by gradient
// descent directly. Following Eq. (17)-(19):
//   I_soft = GumbelSoftmax(I_real, tau)   — binary-concrete relaxation
//   I_in   = STE(I_soft)                  — hard {0,1} in the forward pass
// and in the backward pass the STE passes the gradient through unchanged
// while the Gumbel-sigmoid contributes its local derivative
//   dI_soft/dI_real = I_soft * (1 - I_soft) / tau.
//
// For the two-category (spike / no spike) case the Gumbel-Softmax reduces to
// the Gumbel-sigmoid: I_soft = sigma((I_real + G1 - G2) / tau) with G1, G2
// i.i.d. standard Gumbel. Fresh noise is drawn per optimization step, which
// gives the optimizer its exploration.
#pragma once

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace snntest::core {

using tensor::Shape;
using tensor::Tensor;

class GumbelSoftmaxInput {
 public:
  /// `num_steps` x `num_channels` input window; I_real starts at small
  /// random logits so the initial binary input is roughly 50% dense
  /// (initial_bias shifts the starting density: negative = sparser).
  GumbelSoftmaxInput(size_t num_steps, size_t num_channels, util::Rng& rng,
                     float initial_bias = -1.0f);

  size_t num_steps() const { return real_.shape().dim(0); }
  size_t num_channels() const { return real_.shape().dim(1); }

  /// Sample noise and produce the binary input I_in for this step.
  /// With `stochastic` false, uses zero noise (deterministic rounding) —
  /// used for the final evaluation of a candidate.
  const Tensor& forward(double tau, bool stochastic = true);

  /// Translate dL/dI_in into dL/dI_real (overwrites the stored gradient).
  /// Must follow a forward() with the same tau.
  void backward(const Tensor& grad_input);

  /// Adam attachment points.
  float* real_data() { return real_.data(); }
  const float* grad_data() const { return grad_.data(); }
  size_t size() const { return real_.numel(); }

  const Tensor& binary() const { return binary_; }
  const Tensor& real() const { return real_; }
  Tensor& mutable_real() { return real_; }

  /// Grow the window by `extra_steps` (duration increase by beta,
  /// Sec. IV-C3), preserving the optimized prefix and initializing the new
  /// tail randomly.
  void grow(size_t extra_steps, util::Rng& rng, float initial_bias = -1.0f);

 private:
  Tensor real_;    // logits
  Tensor soft_;    // relaxed values from the last forward
  Tensor binary_;  // STE-binarized values from the last forward
  Tensor grad_;    // dL/dI_real
  util::Rng* rng_;
  double last_tau_ = 1.0;
};

}  // namespace snntest::core
