#include "core/test_stimulus.hpp"

#include <fstream>
#include <stdexcept>

#include "snn/spike_train.hpp"
#include "util/serialize.hpp"

namespace snntest::core {
namespace {
constexpr uint32_t kMagic = 0x53544D53;  // "STMS"
constexpr uint32_t kVersion = 1;
}  // namespace

void TestStimulus::add_chunk(Tensor chunk) {
  if (chunk.shape().rank() != 2) {
    throw std::invalid_argument("TestStimulus::add_chunk: chunk must be [T, N]");
  }
  if (num_channels_ == 0) num_channels_ = chunk.shape().dim(1);
  if (chunk.shape().dim(1) != num_channels_) {
    throw std::invalid_argument("TestStimulus::add_chunk: channel-count mismatch");
  }
  chunks_.push_back(std::move(chunk));
}

size_t TestStimulus::total_steps() const {
  // Eq. (8): every chunk except the last is followed by an equal-length
  // sleep separator.
  size_t steps = 0;
  for (size_t j = 0; j < chunks_.size(); ++j) {
    steps += chunks_[j].shape().dim(0);
    if (j + 1 < chunks_.size()) steps += chunks_[j].shape().dim(0);
  }
  return steps;
}

size_t TestStimulus::chunk_steps() const {
  size_t steps = 0;
  for (const auto& c : chunks_) steps += c.shape().dim(0);
  return steps;
}

Tensor TestStimulus::assemble() const {
  if (chunks_.empty()) throw std::logic_error("TestStimulus::assemble: no chunks");
  std::vector<Tensor> parts;
  parts.reserve(2 * chunks_.size() - 1);
  for (size_t j = 0; j < chunks_.size(); ++j) {
    parts.push_back(chunks_[j]);
    if (j + 1 < chunks_.size()) {
      parts.push_back(snn::zero_train(chunks_[j].shape().dim(0), num_channels_));
    }
  }
  return snn::concat_time(parts);
}

double TestStimulus::duration_in_samples(size_t steps_per_sample) const {
  if (steps_per_sample == 0) throw std::invalid_argument("duration_in_samples: zero divisor");
  return static_cast<double>(chunk_steps()) / static_cast<double>(steps_per_sample);
}

double TestStimulus::total_duration_in_samples(size_t steps_per_sample) const {
  if (steps_per_sample == 0) throw std::invalid_argument("duration_in_samples: zero divisor");
  return static_cast<double>(total_steps()) / static_cast<double>(steps_per_sample);
}

double TestStimulus::spike_density() const {
  size_t ones = 0;
  size_t cells = 0;
  for (const auto& c : chunks_) {
    ones += c.count_nonzero();
    cells += c.numel();
  }
  // separators are all zero but occupy time
  const size_t sep_cells = (total_steps() - chunk_steps()) * num_channels_;
  cells += sep_cells;
  return cells == 0 ? 0.0 : static_cast<double>(ones) / static_cast<double>(cells);
}

void TestStimulus::save(std::ostream& os) const {
  util::write_magic(os, kMagic, kVersion);
  util::write_u64(os, num_channels_);
  util::write_u32(os, static_cast<uint32_t>(chunks_.size()));
  for (const auto& c : chunks_) {
    util::write_u64(os, c.shape().dim(0));
    // bit-pack the binary chunk (the on-chip storage format)
    const size_t bits = c.numel();
    std::vector<uint8_t> packed((bits + 7) / 8, 0);
    for (size_t i = 0; i < bits; ++i) {
      if (c[i] > 0.5f) packed[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
    }
    util::write_u8_vector(os, packed);
  }
}

void TestStimulus::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("TestStimulus::save: cannot open " + path);
  save(os);
}

TestStimulus TestStimulus::load(std::istream& is) {
  util::check_magic(is, kMagic, kVersion);
  TestStimulus stimulus;
  stimulus.num_channels_ = util::read_u64(is);
  const uint32_t count = util::read_u32(is);
  for (uint32_t j = 0; j < count; ++j) {
    const size_t steps = util::read_u64(is);
    const auto packed = util::read_u8_vector(is);
    Tensor chunk(Shape{steps, stimulus.num_channels_});
    const size_t bits = chunk.numel();
    if (packed.size() != (bits + 7) / 8) {
      throw std::runtime_error("TestStimulus::load: packed size mismatch");
    }
    for (size_t i = 0; i < bits; ++i) {
      chunk[i] = (packed[i / 8] >> (i % 8)) & 1u ? 1.0f : 0.0f;
    }
    stimulus.chunks_.push_back(std::move(chunk));
  }
  return stimulus;
}

TestStimulus TestStimulus::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("TestStimulus::load: cannot open " + path);
  return load(is);
}

}  // namespace snntest::core
