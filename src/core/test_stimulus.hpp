// The generated test stimulus (Eqs. (7)-(8)).
//
// The final test is the concatenation of the optimized input chunks
// interleaved with equal-length zero ("sleep") inputs that let the membrane
// potentials decay between chunks:
//   I = { I^1, 0^1, I^2, 0^2, ..., 0^{d-1}, I^d }
//   T_test = sum_{j<d} 2*T^j + T^d.
// The stimulus is small enough to live in on-chip memory for in-field
// testing, so it serializes to a compact run-length packed binary format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace snntest::core {

using tensor::Shape;
using tensor::Tensor;

class TestStimulus {
 public:
  TestStimulus() = default;
  explicit TestStimulus(size_t num_channels) : num_channels_(num_channels) {}

  size_t num_channels() const { return num_channels_; }
  size_t num_chunks() const { return chunks_.size(); }
  const Tensor& chunk(size_t j) const { return chunks_.at(j); }
  const std::vector<Tensor>& chunks() const { return chunks_; }

  /// Append an optimized input chunk [T_j, num_channels].
  void add_chunk(Tensor chunk);

  /// Total duration in timesteps per Eq. (8) (chunks + sleep separators).
  size_t total_steps() const;
  /// Duration of the chunks alone (without separators).
  size_t chunk_steps() const;

  /// Materialize the full test input per Eq. (7): [total_steps, channels].
  Tensor assemble() const;

  /// Duration expressed in dataset-sample equivalents (Table III row
  /// "Test duration (samples)"). Matches the paper's convention: the
  /// optimized chunks count, the zero separators do not (Table III's SHD
  /// row reads 7.82 samples yet 14.64 s at 1 s/sample — only consistent if
  /// "samples" excludes the sleeps while "time" includes them).
  double duration_in_samples(size_t steps_per_sample) const;

  /// Total applied duration (with separators) in sample units — the
  /// "Test duration (time)" row, up to the per-benchmark timestep.
  double total_duration_in_samples(size_t steps_per_sample) const;

  /// Fraction of ones in the assembled stimulus (storage density).
  double spike_density() const;

  // --- persistence (on-chip test storage / in-field reuse) ---
  void save(std::ostream& os) const;
  void save(const std::string& path) const;
  static TestStimulus load(std::istream& is);
  static TestStimulus load(const std::string& path);

 private:
  size_t num_channels_ = 0;
  std::vector<Tensor> chunks_;
};

}  // namespace snntest::core
