// The strawman the paper argues against (Sec. IV-B): optimize the input
// with the fault coverage FC itself as the fitness, Eq. (5).
//
// Every candidate evaluation is a full fault-simulation campaign, so the
// optimization costs O(M * T_FS) where M is the iteration count and T_FS
// the campaign time — this "quickly explodes with the size of the SNN
// model" and is the reason the paper replaces FC with the loss functions
// L1..L5 (cost O(M + T_FS)). We implement it as a (1+1) evolutionary hill
// climber over the binary input (gradients of FC do not exist), both to
// reproduce the complexity argument quantitatively (bench_naive_fc) and as
// a correctness oracle on tiny models.
#pragma once

#include "core/test_stimulus.hpp"
#include "fault/registry.hpp"
#include "util/rng.hpp"

namespace snntest::core {

struct NaiveFcConfig {
  size_t num_steps = 16;      // fixed input duration (timesteps)
  size_t iterations = 100;    // M — candidate evaluations (campaigns!)
  double initial_density = 0.2;
  double mutation_rate = 0.02;  // per-cell flip probability per iteration
  uint64_t seed = 5;
  size_t num_threads = 0;
};

struct NaiveFcReport {
  Tensor best_input;
  double best_coverage = 0.0;
  size_t fault_simulations = 0;  // total single-fault inferences spent
  double seconds = 0.0;
  std::vector<double> coverage_trace;  // best-so-far per iteration
};

/// Hill-climb an input against `faults` using FC as the fitness.
NaiveFcReport naive_fc_optimize(const snn::Network& net,
                                const std::vector<fault::FaultDescriptor>& faults,
                                const NaiveFcConfig& config = {});

}  // namespace snntest::core
