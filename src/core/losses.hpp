// The paper's test-generation loss functions L1..L5 (Sec. IV-C).
//
// Every loss takes the recorded spike trains O = [O^1..O^L] of one forward
// pass and returns a scalar plus gradients dL/dO^l accumulated into
// per-layer tensors, which Network::backward then chains to the input via
// surrogate BPTT. Spike counts are step functions of the input, so all
// "gradients" here are the natural subgradients the paper's optimizer uses
// through the surrogate pipeline.
//
//  L1 (Eq. 9)  — every output neuron fires >= 1 spike (fault effects must be
//                observable at the output).
//  L2 (Eq. 10) — every (targeted) neuron fires >= 1 spike (necessary
//                condition for dead / timing neuron fault excitation).
//  L3 (Eq. 12) — temporal diversity of each neuron's output >= TD_min
//                (exposes timing-variation faults).
//  L4 (Eq. 13) — per-postsynaptic-neuron variance of incoming synapse
//                contributions w * |O| is minimized (prevents strong
//                synapses from masking weak ones).
//  L5 (Eq. 16) — total hidden spike count is minimized subject to constant
//                O^L (stage 2: keeps fault effects from being dropped in
//                refractory periods on their way to the output).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "snn/network.hpp"

namespace snntest::core {

using snn::ForwardResult;
using snn::Network;
using tensor::Tensor;

/// Per-layer, per-neuron 0/1 mask selecting which neurons a loss applies to
/// (the iteration target set N_T of Sec. IV-C). Empty = all neurons.
using NeuronMask = std::vector<std::vector<uint8_t>>;

/// Make an all-ones mask shaped like the network.
NeuronMask full_mask(const Network& net);

class SpikeLoss {
 public:
  virtual ~SpikeLoss() = default;
  virtual std::string name() const = 0;
  /// Compute the loss and ADD dL/dO^l into grad_accum[l] ([T, N_l], must be
  /// preallocated and zeroed by the caller across losses).
  virtual double compute(const ForwardResult& o, std::vector<Tensor>& grad_accum) const = 0;
};

/// L1 — output-layer activation (Eq. 9).
class OutputActivationLoss final : public SpikeLoss {
 public:
  std::string name() const override { return "L1-output-activation"; }
  double compute(const ForwardResult& o, std::vector<Tensor>& grad_accum) const override;
};

/// L2 — all-neuron activation (Eq. 10), restricted to `mask` when provided.
class NeuronActivationLoss final : public SpikeLoss {
 public:
  explicit NeuronActivationLoss(const NeuronMask* mask = nullptr) : mask_(mask) {}
  std::string name() const override { return "L2-neuron-activation"; }
  double compute(const ForwardResult& o, std::vector<Tensor>& grad_accum) const override;

 private:
  const NeuronMask* mask_;
};

/// L3 — temporal diversity (Eqs. 11-12), restricted to `mask` when provided.
class TemporalDiversityLoss final : public SpikeLoss {
 public:
  TemporalDiversityLoss(size_t td_min, const NeuronMask* mask = nullptr)
      : td_min_(td_min), mask_(mask) {}
  std::string name() const override { return "L3-temporal-diversity"; }
  double compute(const ForwardResult& o, std::vector<Tensor>& grad_accum) const override;

  size_t td_min() const { return td_min_; }

 private:
  size_t td_min_;
  const NeuronMask* mask_;
};

/// L4 — synapse contribution uniformity (Eq. 13). Needs the network for the
/// weights; layers report their own incoming-contribution variance through
/// Layer-type-specific code here (dense/recurrent exact, conv per receptive
/// field, pooling skipped — fixed wiring is not a synapse fault site).
class SynapseUniformityLoss final : public SpikeLoss {
 public:
  explicit SynapseUniformityLoss(Network& net) : net_(&net) {}
  std::string name() const override { return "L4-synapse-uniformity"; }
  double compute(const ForwardResult& o, std::vector<Tensor>& grad_accum) const override;

 private:
  Network* net_;
};

/// L5 — hidden spike sparsity (Eq. 16): sum of |O^{l,i}| over l < L.
class SparsityLoss final : public SpikeLoss {
 public:
  std::string name() const override { return "L5-sparsity"; }
  double compute(const ForwardResult& o, std::vector<Tensor>& grad_accum) const override;
};

/// Penalty form of the Eq. (15) constraint "constant O^L":
/// mu * ||O^L - O^L_ref||_1 (DESIGN.md §2.6).
class OutputConstancyPenalty final : public SpikeLoss {
 public:
  OutputConstancyPenalty(Tensor reference, double mu)
      : reference_(std::move(reference)), mu_(mu) {}
  std::string name() const override { return "output-constancy"; }
  double compute(const ForwardResult& o, std::vector<Tensor>& grad_accum) const override;

  const Tensor& reference() const { return reference_; }

 private:
  Tensor reference_;
  double mu_;
};

/// Weighted sum of losses (Eq. 6): value = sum alpha_i * L_i, gradients
/// scaled accordingly.
class CompositeLoss {
 public:
  void add(std::shared_ptr<const SpikeLoss> loss, double weight = 1.0);
  size_t terms() const { return losses_.size(); }
  /// Name of term i (registration order) — per-term telemetry labels.
  std::string term_name(size_t i) const { return losses_[i]->name(); }

  /// Evaluate; `per_term` (optional) receives each unweighted L_i value.
  double compute(const ForwardResult& o, std::vector<Tensor>& grad_accum,
                 std::vector<double>* per_term = nullptr) const;

  /// Set alpha_i = 1 / max(|L_i(O)|, floor) as per Sec. V-C ("inverse of the
  /// expected magnitude ... to ensure balanced contribution").
  void calibrate_weights(const ForwardResult& o, double floor = 1e-3);

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<std::shared_ptr<const SpikeLoss>> losses_;
  std::vector<double> weights_;
};

/// Allocate one zeroed [T, N_l] gradient tensor per layer.
std::vector<Tensor> make_grad_accumulators(const ForwardResult& o);

}  // namespace snntest::core
