#include "core/gumbel.hpp"

#include <cmath>
#include <stdexcept>

namespace snntest::core {

GumbelSoftmaxInput::GumbelSoftmaxInput(size_t num_steps, size_t num_channels, util::Rng& rng,
                                       float initial_bias)
    : real_(Shape{num_steps, num_channels}),
      soft_(Shape{num_steps, num_channels}),
      binary_(Shape{num_steps, num_channels}),
      grad_(Shape{num_steps, num_channels}),
      rng_(&rng) {
  for (size_t i = 0; i < real_.numel(); ++i) {
    real_[i] = initial_bias + static_cast<float>(rng.normal(0.0, 1.0));
  }
}

const Tensor& GumbelSoftmaxInput::forward(double tau, bool stochastic) {
  if (tau <= 0.0) throw std::invalid_argument("GumbelSoftmaxInput: tau must be > 0");
  last_tau_ = tau;
  for (size_t i = 0; i < real_.numel(); ++i) {
    double logit = real_[i];
    if (stochastic) logit += rng_->gumbel() - rng_->gumbel();
    const double soft = 1.0 / (1.0 + std::exp(-logit / tau));
    soft_[i] = static_cast<float>(soft);
    binary_[i] = soft > 0.5 ? 1.0f : 0.0f;
  }
  return binary_;
}

void GumbelSoftmaxInput::backward(const Tensor& grad_input) {
  if (grad_input.shape() != real_.shape()) {
    throw std::invalid_argument("GumbelSoftmaxInput::backward: shape mismatch");
  }
  for (size_t i = 0; i < real_.numel(); ++i) {
    // STE: identity. Gumbel-sigmoid local derivative: s(1-s)/tau.
    const double s = soft_[i];
    grad_[i] = static_cast<float>(grad_input[i] * s * (1.0 - s) / last_tau_);
  }
}

void GumbelSoftmaxInput::grow(size_t extra_steps, util::Rng& rng, float initial_bias) {
  const size_t old_steps = num_steps();
  const size_t channels = num_channels();
  Tensor new_real(Shape{old_steps + extra_steps, channels});
  std::copy(real_.data(), real_.data() + real_.numel(), new_real.data());
  for (size_t i = real_.numel(); i < new_real.numel(); ++i) {
    new_real[i] = initial_bias + static_cast<float>(rng.normal(0.0, 1.0));
  }
  real_ = std::move(new_real);
  soft_ = Tensor(real_.shape());
  binary_ = Tensor(real_.shape());
  grad_ = Tensor(real_.shape());
}

}  // namespace snntest::core
