#include "core/test_generator.hpp"

#include <algorithm>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "snn/spike_train.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace snntest::core {
namespace {

/// Activation bookkeeping: one bit per neuron, layer-major.
struct ActivationSet {
  explicit ActivationSet(const snn::Network& net) {
    layers.resize(net.num_layers());
    for (size_t l = 0; l < net.num_layers(); ++l) {
      layers[l].assign(net.layer(l).num_neurons(), 0);
    }
  }

  /// Mark neurons with >= min_spikes in `fwd`; returns how many were new.
  size_t absorb(const snn::ForwardResult& fwd, size_t min_spikes) {
    size_t newly = 0;
    for (size_t l = 0; l < layers.size(); ++l) {
      const auto counts = snn::spike_counts(fwd.layer_outputs[l]);
      for (size_t i = 0; i < counts.size(); ++i) {
        if (!layers[l][i] && counts[i] >= min_spikes) {
          layers[l][i] = 1;
          ++newly;
        }
      }
    }
    return newly;
  }

  size_t count() const {
    size_t n = 0;
    for (const auto& layer : layers) {
      for (uint8_t b : layer) n += b;
    }
    return n;
  }

  /// Target mask N_T = complement of the activated set.
  NeuronMask target_mask() const {
    NeuronMask mask(layers.size());
    for (size_t l = 0; l < layers.size(); ++l) {
      mask[l].resize(layers[l].size());
      for (size_t i = 0; i < layers[l].size(); ++i) mask[l][i] = layers[l][i] ? 0 : 1;
    }
    return mask;
  }

  std::vector<std::vector<uint8_t>> layers;
};

/// Overwrite logits so that deterministic rounding reproduces `binary`
/// exactly — stage 2 must fine-tune *from* the stage-1 result.
void seed_logits_from(GumbelSoftmaxInput& input, const Tensor& binary) {
  Tensor& real = input.mutable_real();
  for (size_t i = 0; i < real.numel(); ++i) real[i] = binary[i] > 0.5f ? 3.0f : -3.0f;
}

bool all_output_neurons_fire(const snn::ForwardResult& fwd) {
  const auto counts = snn::spike_counts(fwd.output());
  return std::all_of(counts.begin(), counts.end(), [](size_t c) { return c >= 1; });
}

/// Re-evaluate a stage's composite on its best forward pass and record the
/// unweighted per-term values into "testgen/loss/<term>" histograms (L1-L5
/// plus the stage-2 constancy penalty). Telemetry only — the local gradient
/// accumulators are discarded, nothing observable by the optimizer changes.
void record_loss_terms(const CompositeLoss& loss, const snn::ForwardResult& fwd) {
  auto accum = make_grad_accumulators(fwd);
  std::vector<double> per_term;
  loss.compute(fwd, accum, &per_term);
  obs::Registry& reg = obs::Registry::instance();
  for (size_t i = 0; i < per_term.size(); ++i) {
    reg.histogram("testgen/loss/" + loss.term_name(i),
                  obs::Histogram::exponential_bounds(1e-3, 4.0, 14))
        .observe(per_term[i]);
  }
}

/// Result of one independent stage-1/stage-2 restart within an iteration.
struct RestartOutcome {
  Tensor chunk;
  snn::ForwardResult chunk_fwd;
  size_t newly_activated = 0;
  size_t duration_steps = 0;
  size_t growths = 0;
  double stage1_loss = 0.0;
  double stage2_loss = 0.0;
  bool stage2_accepted = false;
  bool valid = false;
};

}  // namespace

TestGenerator::TestGenerator(snn::Network& net, TestGenConfig config)
    : net_(&net), config_(config) {
  if (config_.steps_stage2 == 0) config_.steps_stage2 = std::max<size_t>(1, config_.steps_stage1 / 2);
}

size_t TestGenerator::find_min_input_duration(snn::Network& net, const TestGenConfig& config,
                                              util::Rng& rng) {
  net.set_kernel_mode(config.kernel_mode);
  StageConfig stage;
  stage.num_steps = std::max<size_t>(40, config.steps_stage1 / 4);
  stage.lr_initial = config.lr_initial;
  stage.lr_final = config.lr_final;
  stage.tau_max = config.tau_max;
  stage.tau_min = config.tau_min;
  stage.eval_every = std::max<size_t>(1, config.eval_every / 2);

  CompositeLoss l1_only;
  l1_only.add(std::make_shared<OutputActivationLoss>(), 1.0);

  size_t duration = std::max<size_t>(1, config.t_in_start);
  while (true) {
    GumbelSoftmaxInput input(duration, net.input_size(), rng,
                             static_cast<float>(config.input_init_bias));
    InputOptimizer optimizer(net, input, stage);
    const StageOutcome outcome = optimizer.run(l1_only);
    if (!outcome.best_input.empty() && all_output_neurons_fire(outcome.best_forward)) {
      return duration;
    }
    if (duration >= config.t_in_max) return config.t_in_max;
    duration = std::min(config.t_in_max, duration + std::max<size_t>(2, duration / 2));
  }
}

TestGenReport TestGenerator::generate() {
  OBS_SPAN("testgen/generate");
  util::Timer total_timer;
  util::Rng rng(config_.seed);
  TestGenReport report;
  report.total_neurons = net_->total_neurons();

  // Config fingerprint for the run report (obs/report.hpp).
  obs::set_report_field("testgen_seed", static_cast<uint64_t>(config_.seed));
  obs::set_report_field("testgen_restarts",
                        static_cast<uint64_t>(std::max<size_t>(1, config_.restarts)));
  obs::set_report_field("testgen_kernel_mode", snn::kernel_mode_name(config_.kernel_mode));

  // The Gumbel input emits hard 0/1 spike frames, so every optimization
  // forward *and* backward benefits from the sparse kernels; kAuto falls
  // back to the dense sweep per frame whenever a candidate is busy
  // (bit-identical results in every mode).
  net_->set_kernel_mode(config_.kernel_mode);

  // --- T_in,min (Sec. V-C) ---
  report.t_in_min = config_.t_in_min != 0
                        ? config_.t_in_min
                        : find_min_input_duration(*net_, config_, rng);
  const size_t td_min = config_.td_min_override != 0
                            ? config_.td_min_override
                            : std::max<size_t>(1, report.t_in_min / 10);

  report.stimulus = TestStimulus(net_->input_size());
  ActivationSet activated(*net_);

  StageConfig stage1_cfg;
  stage1_cfg.num_steps = config_.steps_stage1;
  stage1_cfg.lr_initial = config_.lr_initial;
  stage1_cfg.lr_final = config_.lr_final;
  stage1_cfg.tau_max = config_.tau_max;
  stage1_cfg.tau_min = config_.tau_min;
  stage1_cfg.eval_every = config_.eval_every;
  StageConfig stage2_cfg = stage1_cfg;
  stage2_cfg.num_steps = config_.steps_stage2;

  const size_t restarts = std::max<size_t>(1, config_.restarts);
  std::unique_ptr<util::ThreadPool> pool;
  if (restarts > 1 && config_.num_threads != 1) {
    pool = std::make_unique<util::ThreadPool>(config_.num_threads);
  }

  // One independent stage-1/stage-2 restart (the seed's whole iteration
  // body). Determinism across thread counts: the restart clones the
  // network (forward traces and weight grads are per-clone), seeds its own
  // Gumbel stream from (seed, iteration, r) via mix_seed, reads only
  // immutable shared state (config, target mask, activated-set copies) and
  // never consults the wall clock — its outcome is a pure function of the
  // master seed.
  auto run_restart = [&](size_t iteration, size_t r, const NeuronMask& target) {
    OBS_SPAN("testgen/restart");
    // Telemetry clocks below observe the restart, they never steer it: no
    // decision (growth, acceptance, winner) reads them, so the stimulus
    // stays a pure function of the master seed with tracing on or off.
    const bool obs_on = obs::telemetry_enabled();
    RestartOutcome out;
    snn::Network net(*net_);  // kernel mode is cloned with the layers
    util::Rng restart_rng(util::mix_seed(config_.seed, iteration, r));

    // --- stage 1: excitation + observability ---
    CompositeLoss stage1_loss;
    if (config_.use_l1) stage1_loss.add(std::make_shared<OutputActivationLoss>());
    if (config_.use_l2) stage1_loss.add(std::make_shared<NeuronActivationLoss>(&target));
    if (config_.use_l3) {
      stage1_loss.add(std::make_shared<TemporalDiversityLoss>(td_min, &target));
    }
    if (config_.use_l4) stage1_loss.add(std::make_shared<SynapseUniformityLoss>(net));

    size_t beta = config_.beta;
    GumbelSoftmaxInput input(report.t_in_min, net.input_size(), restart_rng,
                             static_cast<float>(config_.input_init_bias));

    // alpha_i = 1 / expected magnitude, measured on the initial input.
    {
      const Tensor& initial = input.forward(config_.tau_max, /*stochastic=*/false);
      const auto fwd0 = net.forward(initial, /*record_traces=*/false);
      stage1_loss.calibrate_weights(fwd0);
    }

    StageOutcome stage1;
    {
      OBS_SPAN("testgen/stage1");
      const int64_t t0 = obs_on ? obs::trace_now_us() : 0;
      for (size_t growth = 0;; ++growth) {
        InputOptimizer optimizer(net, input, stage1_cfg);
        stage1 = optimizer.run(stage1_loss);
        // Did this candidate activate anything new?
        ActivationSet probe = activated;
        const size_t newly =
            stage1.best_input.empty()
                ? 0
                : probe.absorb(stage1.best_forward, config_.activation_min_spikes);
        if (newly > 0 || growth >= config_.max_growths_per_iteration) {
          out.growths = growth;
          break;
        }
        // Sec. IV-C3: no new neuron activated -> extend the window by beta
        // (doubling each time) and rerun the stage. The time limit is
        // enforced between iterations only — the decision to grow must not
        // depend on any clock read, telemetry ones included.
        input.grow(beta, restart_rng, static_cast<float>(config_.input_init_bias));
        beta *= 2;
      }
      if (obs_on) {
        static obs::Histogram& stage1_seconds = obs::Registry::instance().histogram(
            "testgen/stage1_seconds", obs::Histogram::exponential_bounds(1e-3, 2.0, 16));
        stage1_seconds.observe(static_cast<double>(obs::trace_now_us() - t0) * 1e-6);
      }
    }
    if (stage1.best_input.empty()) return out;  // nothing usable; valid stays false
    if (obs_on) record_loss_terms(stage1_loss, stage1.best_forward);
    out.duration_steps = stage1.best_input.shape().dim(0);
    out.stage1_loss = stage1.best_loss;
    out.chunk = stage1.best_input;
    out.chunk_fwd = stage1.best_forward;

    // --- stage 2: spike sparsification under constant O^L ---
    if (config_.enable_stage2 && config_.steps_stage2 > 0) {
      OBS_SPAN("testgen/stage2");
      const int64_t stage2_t0 = obs_on ? obs::trace_now_us() : 0;
      seed_logits_from(input, out.chunk);
      const Tensor reference = out.chunk_fwd.output();
      CompositeLoss stage2_loss;
      stage2_loss.add(std::make_shared<SparsityLoss>());
      stage2_loss.add(std::make_shared<OutputConstancyPenalty>(reference, config_.constancy_mu));
      {
        const Tensor& start = input.forward(config_.tau_max, /*stochastic=*/false);
        const auto fwd0 = net.forward(start, /*record_traces=*/false);
        stage2_loss.calibrate_weights(fwd0);
      }
      auto accept = [&reference](const snn::ForwardResult& fwd) {
        return snn::output_distance(fwd.output(), reference) == 0.0;
      };
      InputOptimizer optimizer(net, input, stage2_cfg);
      const StageOutcome stage2 = optimizer.run(stage2_loss, accept);
      if (!stage2.best_input.empty()) {
        // Keep the sparsified input only if it does not lose activations —
        // stage 2 trims excess spikes but must not undo stage 1's work.
        ActivationSet probe = activated;
        const size_t newly_s2 = probe.absorb(stage2.best_forward, config_.activation_min_spikes);
        ActivationSet probe1 = activated;
        const size_t newly_s1 = probe1.absorb(out.chunk_fwd, config_.activation_min_spikes);
        if (newly_s2 >= newly_s1) {
          out.chunk = stage2.best_input;
          out.chunk_fwd = stage2.best_forward;
          out.stage2_accepted = true;
        }
        out.stage2_loss = stage2.best_loss;
        if (obs_on) record_loss_terms(stage2_loss, stage2.best_forward);
      }
      if (obs_on) {
        static obs::Histogram& stage2_seconds = obs::Registry::instance().histogram(
            "testgen/stage2_seconds", obs::Histogram::exponential_bounds(1e-3, 2.0, 16));
        stage2_seconds.observe(static_cast<double>(obs::trace_now_us() - stage2_t0) * 1e-6);
      }
    }

    ActivationSet probe = activated;
    out.newly_activated = probe.absorb(out.chunk_fwd, config_.activation_min_spikes);
    out.valid = true;
    return out;
  };

  for (size_t iteration = 0; iteration < config_.max_iterations; ++iteration) {
    if (activated.count() >= report.total_neurons) break;
    if (total_timer.seconds() >= config_.t_limit_seconds) {
      report.hit_time_limit = true;
      break;
    }
    OBS_SPAN("testgen/iteration");
    util::Timer iter_timer;
    const NeuronMask target = activated.target_mask();

    std::vector<RestartOutcome> outcomes(restarts);
    util::parallel_for_dynamic(pool.get(), restarts, /*grain=*/1,
                               [&](size_t /*worker*/, size_t r) {
                                 outcomes[r] = run_restart(iteration, r, target);
                               });

    // Deterministic winner: most newly activated neurons, then lowest
    // stage-1 loss, then lowest restart index — never wall clock.
    size_t best = restarts;
    for (size_t r = 0; r < restarts; ++r) {
      if (!outcomes[r].valid) continue;
      if (best == restarts) {
        best = r;
        continue;
      }
      const RestartOutcome& a = outcomes[r];
      const RestartOutcome& b = outcomes[best];
      if (a.newly_activated > b.newly_activated ||
          (a.newly_activated == b.newly_activated && a.stage1_loss < b.stage1_loss)) {
        best = r;
      }
    }
    if (best == restarts) {
      // Every restart failed to produce a usable chunk; stop rather than
      // emit a broken one.
      report.hit_time_limit = total_timer.seconds() >= config_.t_limit_seconds;
      break;
    }
    RestartOutcome& winner = outcomes[best];

    IterationRecord record;
    record.iteration = iteration;
    record.duration_steps = winner.duration_steps;
    record.growths = winner.growths;
    record.stage1_loss = winner.stage1_loss;
    record.stage2_loss = winner.stage2_loss;
    record.stage2_accepted = winner.stage2_accepted;
    record.winning_restart = best;
    record.newly_activated = activated.absorb(winner.chunk_fwd, config_.activation_min_spikes);
    record.total_activated = activated.count();
    record.seconds = iter_timer.seconds();
    report.stimulus.add_chunk(std::move(winner.chunk));

    // Coarse per-iteration metrics: one registry touch each per iteration,
    // recorded regardless of the telemetry flag (negligible cost).
    {
      obs::Registry& reg = obs::Registry::instance();
      static obs::Counter& iters = reg.counter("testgen/iterations");
      static obs::Gauge& win_r = reg.gauge("testgen/winning_restart");
      static obs::Gauge& gain = reg.gauge("testgen/activation_gain");
      static obs::Gauge& total = reg.gauge("testgen/total_activated");
      static obs::Histogram& iter_seconds = reg.histogram(
          "testgen/iteration_seconds", obs::Histogram::exponential_bounds(1e-3, 2.0, 16));
      iters.add(1);
      win_r.set(static_cast<double>(record.winning_restart));
      gain.set(static_cast<double>(record.newly_activated));
      total.set(static_cast<double>(record.total_activated));
      iter_seconds.observe(record.seconds);
    }
    report.iterations.push_back(record);

    if (config_.verbose) {
      SNNTEST_LOG_INFO(
          "testgen iter %zu: T=%zu, +%zu neurons (%zu/%zu), stage1 loss %.3f%s, restart %zu/%zu "
          "(%s)",
          iteration, record.duration_steps, record.newly_activated, record.total_activated,
          report.total_neurons, record.stage1_loss,
          record.stage2_accepted ? ", stage2 ok" : "", record.winning_restart, restarts,
          util::format_duration(record.seconds).c_str());
    }
    if (record.newly_activated == 0) {
      // The remaining neurons are unreachable (e.g. receptive fields outside
      // active input, dead weights): further iterations would loop forever.
      break;
    }
  }

  report.activated_neurons = activated.count();
  report.runtime_seconds = total_timer.seconds();
  return report;
}

}  // namespace snntest::core
