// Within-stage input optimization (paper Sec. IV-C3, Fig. 3).
//
// One stage minimizes a composite spike-train loss over the input window by
// Adam on the Gumbel-Softmax logits:
//   I_real -> GumbelSoftmax(tau) -> STE -> SNN forward -> O -> L(O)
//   -> BPTT to the input -> STE (identity) -> Gumbel local grad -> I_real.
// lr and tau follow annealing schedules; the best binary input visited
// (lowest deterministic-rounding loss) is returned. If the stage fails to
// activate new target neurons, the caller grows the window by beta and
// reruns (handled in TestGenerator).
#pragma once

#include <functional>

#include "core/gumbel.hpp"
#include "core/losses.hpp"
#include "snn/network.hpp"
#include "util/rng.hpp"

namespace snntest::core {

struct StageConfig {
  size_t num_steps = 300;     // N_steps^{stage#}
  double lr_initial = 0.1;    // Sec. V-C
  double lr_final = 0.01;
  double tau_max = 0.9;       // Sec. V-C: annealing with maximum value 0.9
  double tau_min = 0.25;
  /// Evaluate the deterministic candidate every `eval_every` steps (1 =
  /// every step; larger values trade tracking granularity for speed).
  size_t eval_every = 1;
};

struct StageOutcome {
  Tensor best_input;            // binary [T, N1] — best I_in visited
  double best_loss = 0.0;
  snn::ForwardResult best_forward;  // spike trains under best_input
  size_t steps_run = 0;
  std::vector<double> loss_trace;   // deterministic loss per evaluation
};

class InputOptimizer {
 public:
  /// `net` is the fixed SNN under test ("During the input optimization the
  /// SNN model stays fixed"); `input` the logits being optimized.
  InputOptimizer(snn::Network& net, GumbelSoftmaxInput& input, StageConfig config);

  /// Run the stage against `loss`. The composite must already be weighted
  /// (calibrate_weights) by the caller.
  /// `accept` (optional): a candidate becomes "best" only if accept(fwd)
  /// holds — used by stage 2 to enforce the constant-O^L constraint.
  StageOutcome run(const CompositeLoss& loss,
                   const std::function<bool(const snn::ForwardResult&)>& accept = nullptr);

 private:
  snn::Network* net_;
  GumbelSoftmaxInput* input_;
  StageConfig config_;
};

}  // namespace snntest::core
