// Benchmark model zoo: the three case studies of Sec. V-A, scaled for CPU
// (DESIGN.md §4), with train-once-and-cache semantics so every bench and
// example can fetch the same trained model deterministically.
//
//  nmnist  — conv8(s2)-conv16(s2)-fc64-fc10 on SyntheticNmnist  (Fig. 4)
//  gesture — conv12(s2)-conv24(s2)-fc128-fc11 on SyntheticGesture (Fig. 5)
//  shd     — rec128-fc64-fc20 on SyntheticShd                   (Fig. 6)
#pragma once

#include <memory>
#include <string>

#include "data/dataset.hpp"
#include "snn/network.hpp"

namespace snntest::zoo {

enum class BenchmarkId { kNmnist, kGesture, kShd };

const char* benchmark_name(BenchmarkId id);
BenchmarkId parse_benchmark(const std::string& name);  // throws on unknown

struct ZooOptions {
  /// Cache directory for trained models; overridden by $SNNTEST_CACHE_DIR.
  std::string cache_dir = "snntest_cache";
  bool allow_cache = true;
  /// Scale knob for CI/tests: fraction of the default training budget.
  double train_budget = 1.0;
  bool verbose = true;
  uint64_t seed = 42;
};

struct BenchmarkBundle {
  snn::Network network;
  std::shared_ptr<data::Dataset> train;
  std::shared_ptr<data::Dataset> test;
  /// Top-1 accuracy on a held-out evaluation subset (Table I row).
  double test_accuracy = 0.0;
  /// Timesteps of one dataset sample (denominator for "test duration in
  /// samples").
  size_t steps_per_sample = 0;
  /// Seconds spent training (0 when loaded from cache).
  double train_seconds = 0.0;
  bool from_cache = false;
};

/// Untrained network with freshly initialized weights.
snn::Network make_network(BenchmarkId id, uint64_t seed);

/// The datasets behind each benchmark (train + test split).
data::TrainTestSplit make_datasets(BenchmarkId id);

/// Load the trained model from cache, or train and cache it.
BenchmarkBundle load_or_train(BenchmarkId id, const ZooOptions& options = {});

/// Resolved cache path for a benchmark model.
std::string model_cache_path(BenchmarkId id, const ZooOptions& options);

}  // namespace snntest::zoo
