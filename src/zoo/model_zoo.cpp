#include "zoo/model_zoo.hpp"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "data/synthetic_gesture.hpp"
#include "data/synthetic_nmnist.hpp"
#include "data/synthetic_shd.hpp"
#include "snn/conv_layer.hpp"
#include "snn/dense_layer.hpp"
#include "snn/recurrent_layer.hpp"
#include "snn/serialization.hpp"
#include "train/trainer.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace snntest::zoo {
namespace {

snn::LifParams default_lif() {
  snn::LifParams p;
  p.threshold = 1.0f;
  p.leak = 0.9f;
  p.refractory = 1;
  p.reset_potential = 0.0f;
  return p;
}

snn::Network make_nmnist_network(uint64_t seed) {
  util::Rng rng(seed);
  snn::Network net("snn-nmnist");
  const snn::LifParams lif = default_lif();
  {
    snn::Conv2dSpec s;
    s.in_channels = 2; s.in_height = 16; s.in_width = 16;
    s.out_channels = 8; s.kernel = 3; s.stride = 2; s.padding = 1;
    auto conv = std::make_unique<snn::ConvLayer>(s, lif);
    conv->init_weights(rng, 1.2f);
    net.add_layer(std::move(conv));
  }
  {
    snn::Conv2dSpec s;
    s.in_channels = 8; s.in_height = 8; s.in_width = 8;
    s.out_channels = 16; s.kernel = 3; s.stride = 2; s.padding = 1;
    auto conv = std::make_unique<snn::ConvLayer>(s, lif);
    conv->init_weights(rng, 1.2f);
    net.add_layer(std::move(conv));
  }
  {
    auto fc = std::make_unique<snn::DenseLayer>(16 * 4 * 4, 64, lif);
    fc->init_weights(rng, 1.2f);
    net.add_layer(std::move(fc));
  }
  {
    auto fc = std::make_unique<snn::DenseLayer>(64, 10, lif);
    fc->init_weights(rng, 1.2f);
    net.add_layer(std::move(fc));
  }
  return net;
}

snn::Network make_gesture_network(uint64_t seed) {
  util::Rng rng(seed + 1);
  snn::Network net("snn-gesture");
  const snn::LifParams lif = default_lif();
  {
    snn::Conv2dSpec s;
    s.in_channels = 2; s.in_height = 24; s.in_width = 24;
    s.out_channels = 12; s.kernel = 3; s.stride = 2; s.padding = 1;
    auto conv = std::make_unique<snn::ConvLayer>(s, lif);
    conv->init_weights(rng, 1.2f);
    net.add_layer(std::move(conv));
  }
  {
    snn::Conv2dSpec s;
    s.in_channels = 12; s.in_height = 12; s.in_width = 12;
    s.out_channels = 24; s.kernel = 3; s.stride = 2; s.padding = 1;
    auto conv = std::make_unique<snn::ConvLayer>(s, lif);
    conv->init_weights(rng, 1.2f);
    net.add_layer(std::move(conv));
  }
  {
    auto fc = std::make_unique<snn::DenseLayer>(24 * 6 * 6, 128, lif);
    fc->init_weights(rng, 1.2f);
    net.add_layer(std::move(fc));
  }
  {
    auto fc = std::make_unique<snn::DenseLayer>(128, 11, lif);
    fc->init_weights(rng, 1.2f);
    net.add_layer(std::move(fc));
  }
  return net;
}

snn::Network make_shd_network(uint64_t seed) {
  util::Rng rng(seed + 2);
  snn::Network net("snn-shd");
  const snn::LifParams lif = default_lif();
  {
    auto rec = std::make_unique<snn::RecurrentLayer>(64, 128, lif);
    rec->init_weights(rng, 1.2f, 0.3f);
    net.add_layer(std::move(rec));
  }
  {
    auto fc = std::make_unique<snn::DenseLayer>(128, 64, lif);
    fc->init_weights(rng, 1.2f);
    net.add_layer(std::move(fc));
  }
  {
    auto fc = std::make_unique<snn::DenseLayer>(64, 20, lif);
    fc->init_weights(rng, 1.2f);
    net.add_layer(std::move(fc));
  }
  return net;
}

struct TrainPlan {
  size_t epochs;
  size_t train_samples;
  size_t eval_samples;
  double lr;
};

TrainPlan plan_for(BenchmarkId id, double budget) {
  TrainPlan plan{};
  switch (id) {
    case BenchmarkId::kNmnist:
      plan = {26, 640, 200, 3e-3};
      break;
    case BenchmarkId::kGesture:
      plan = {10, 330, 110, 3e-3};
      break;
    case BenchmarkId::kShd:
      plan = {28, 760, 200, 4e-3};
      break;
  }
  plan.epochs = std::max<size_t>(1, static_cast<size_t>(plan.epochs * budget));
  plan.train_samples = std::max<size_t>(32, static_cast<size_t>(plan.train_samples * budget));
  return plan;
}

}  // namespace

const char* benchmark_name(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kNmnist: return "nmnist";
    case BenchmarkId::kGesture: return "gesture";
    case BenchmarkId::kShd: return "shd";
  }
  return "unknown";
}

BenchmarkId parse_benchmark(const std::string& name) {
  if (name == "nmnist") return BenchmarkId::kNmnist;
  if (name == "gesture" || name == "ibm" || name == "dvs128") return BenchmarkId::kGesture;
  if (name == "shd") return BenchmarkId::kShd;
  throw std::invalid_argument("unknown benchmark: " + name + " (expect nmnist|gesture|shd)");
}

snn::Network make_network(BenchmarkId id, uint64_t seed) {
  switch (id) {
    case BenchmarkId::kNmnist: return make_nmnist_network(seed);
    case BenchmarkId::kGesture: return make_gesture_network(seed);
    case BenchmarkId::kShd: return make_shd_network(seed);
  }
  throw std::logic_error("make_network: bad id");
}

data::TrainTestSplit make_datasets(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kNmnist: {
      data::SyntheticNmnistConfig cfg;
      cfg.count = 1024;
      auto ds = std::make_shared<data::SyntheticNmnist>(cfg);
      return data::split(ds, 768, 256);
    }
    case BenchmarkId::kGesture: {
      data::SyntheticGestureConfig cfg;
      cfg.count = 528;
      auto ds = std::make_shared<data::SyntheticGesture>(cfg);
      return data::split(ds, 396, 132);
    }
    case BenchmarkId::kShd: {
      data::SyntheticShdConfig cfg;
      cfg.count = 1000;
      auto ds = std::make_shared<data::SyntheticShd>(cfg);
      return data::split(ds, 760, 240);
    }
  }
  throw std::logic_error("make_datasets: bad id");
}

std::string model_cache_path(BenchmarkId id, const ZooOptions& options) {
  std::string dir = options.cache_dir;
  if (const char* env = std::getenv("SNNTEST_CACHE_DIR")) dir = env;
  return dir + "/" + benchmark_name(id) + ".snnt";
}

BenchmarkBundle load_or_train(BenchmarkId id, const ZooOptions& options) {
  BenchmarkBundle bundle;
  auto datasets = make_datasets(id);
  bundle.train = datasets.train;
  bundle.test = datasets.test;
  bundle.steps_per_sample = bundle.train->num_steps();

  const std::string path = model_cache_path(id, options);
  const TrainPlan plan = plan_for(id, options.train_budget);

  if (options.allow_cache && std::filesystem::exists(path)) {
    try {
      bundle.network = snn::load_network(path);
      bundle.from_cache = true;
    } catch (const std::exception& e) {
      SNNTEST_LOG_WARN("model cache %s unreadable (%s); retraining", path.c_str(), e.what());
    }
  }

  if (!bundle.from_cache) {
    bundle.network = make_network(id, options.seed);
    train::TrainerConfig tc;
    tc.epochs = plan.epochs;
    tc.lr = plan.lr;
    tc.max_train_samples = plan.train_samples;
    tc.eval_samples = plan.eval_samples;
    tc.verbose = options.verbose;
    util::Timer timer;
    train::Trainer trainer(bundle.network, tc);
    if (options.verbose) {
      SNNTEST_LOG_INFO("training %s model (%zu epochs x %zu samples)...",
                       benchmark_name(id), plan.epochs, plan.train_samples);
    }
    trainer.fit(*bundle.train, *bundle.test);
    bundle.train_seconds = timer.seconds();
    // Freshly trained models are always cached; allow_cache only gates
    // *loading* (so --retrain refreshes the cache rather than bypassing it).
    std::error_code ec;
    std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
    try {
      snn::save_network(bundle.network, path);
    } catch (const std::exception& e) {
      SNNTEST_LOG_WARN("cannot cache model to %s: %s", path.c_str(), e.what());
    }
  }

  bundle.test_accuracy =
      train::evaluate(bundle.network, *bundle.test, plan.eval_samples).accuracy;
  return bundle;
}

}  // namespace snntest::zoo
