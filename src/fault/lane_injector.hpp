// Fault resolution for the lane-batched simulation path (DESIGN.md §12).
//
// The scalar campaign path injects a fault by mutating a worker's network
// clone (fault/injector.hpp). The lane path runs on a const, shared,
// fault-free network instead, so the fault must be expressed as a per-lane
// perturbation: resolve_lane_fault computes the exact faulty values the
// injector would have written — the same float expressions on the same
// stored weights / neuron parameters — and packs them into the plain
// snn::LaneFault POD the lane kernels consume.
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "fault/registry.hpp"
#include "snn/lane_network.hpp"

namespace snntest::fault {

/// Resolve `fault` against the fault-free reference network. `stats` must
/// come from compute_weight_stats on the same network (bit-flip faults need
/// the layer quantization scale, exactly like FaultInjector).
snn::LaneFault resolve_lane_fault(const snn::Network& net,
                                  const std::vector<LayerWeightStats>& stats,
                                  const FaultDescriptor& fault);

}  // namespace snntest::fault
