// Behavioural fault model for SNN hardware (paper Sec. III).
//
// Neuron faults: dead (halts spike propagation), saturated (non-stop
// spiking), and timing variations modelled as perturbations of the neuron
// parameters (threshold / leak / refractory period).
// Synapse faults: dead (zero weight), positively/negatively saturated
// (outlier weight w.r.t. the weight distribution), and perturbed value
// modelled as a bit-flip in the quantized weight memory.
//
// The paper's evaluated fault universe (reverse-engineered from Table II:
// neuron faults = 2 x #neurons, synapse faults = 3 x #synapses) is
// {dead, saturated} per neuron and {dead, sat+, sat-} per synapse; the
// parametric faults are available behind config flags and exercised by the
// extended benches/tests.
#pragma once

#include <cstdint>
#include <string>

#include "snn/network.hpp"

namespace snntest::fault {

enum class FaultKind : uint8_t {
  // --- neuron faults ---
  kNeuronDead = 0,
  kNeuronSaturated = 1,
  kNeuronThresholdVariation = 2,   // threshold *= (1 + magnitude)
  kNeuronLeakVariation = 3,        // leak clamped((1 + magnitude) * leak, 0.01, 1)
  kNeuronRefractoryVariation = 4,  // refractory += int(magnitude) steps
  // --- synapse faults ---
  kSynapseDead = 5,
  kSynapseSaturatedPositive = 6,  // w = +saturation magnitude
  kSynapseSaturatedNegative = 7,  // w = -saturation magnitude
  kSynapseBitFlip = 8,            // flip bit int(magnitude) of the int8-quantized weight
};

const char* fault_kind_name(FaultKind kind);
bool is_neuron_fault(FaultKind kind);

/// One physical connection in a convolutional layer (paper Table I counts
/// synapses as connections; in a conv accelerator a routing/connection
/// fault hits one (output position, kernel tap) pair rather than the shared
/// stored weight).
struct ConnectionRef {
  size_t layer = 0;
  size_t out_index = 0;  // flattened output-neuron index
  size_t in_index = 0;   // flattened input index
  bool operator==(const ConnectionRef&) const = default;
};

struct FaultDescriptor {
  FaultKind kind = FaultKind::kNeuronDead;
  snn::NeuronRef neuron;  // valid when is_neuron_fault(kind)
  snn::WeightRef weight;  // valid for weight-granularity synapse faults
  /// When true, this synapse fault targets a single conv connection
  /// (`connection`) instead of a stored weight (`weight`).
  bool connection_granularity = false;
  ConnectionRef connection;
  /// Interpretation depends on kind: relative delta for variations,
  /// saturation weight value, or bit index for bit-flips.
  float magnitude = 0.0f;

  bool targets_neuron() const { return is_neuron_fault(kind); }
  std::string to_string() const;
};

/// int8 symmetric quantization used to model the digital weight memory for
/// bit-flip faults. `scale` maps int8 code 127 to the given full-scale value.
int8_t quantize_weight(float w, float scale);
float dequantize_weight(int8_t code, float scale);
/// Result of flipping `bit` (0 = LSB .. 7 = sign) of w's stored code.
float bitflip_weight(float w, float scale, int bit);

}  // namespace snntest::fault
