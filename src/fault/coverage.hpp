// Fault-coverage accounting (Eq. (4) and the Table III metric rows).
//
// Joins detection results (did the test stimulus expose the fault?) with
// criticality labels (does the fault matter for the application?) into the
// four coverage figures the paper reports: FC over critical/benign x
// neuron/synapse faults, plus the worst-case accuracy drop of undetected
// critical faults.
#pragma once

#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/classifier.hpp"

namespace snntest::fault {

struct CoverageCell {
  size_t detected = 0;
  size_t total = 0;
  double coverage() const {
    return total == 0 ? 1.0 : static_cast<double>(detected) / static_cast<double>(total);
  }
};

struct CoverageReport {
  CoverageCell critical_neuron;
  CoverageCell critical_synapse;
  CoverageCell benign_neuron;
  CoverageCell benign_synapse;
  /// Overall FC per Eq. (4), ignoring criticality.
  CoverageCell overall;
  /// Worst accuracy drop among *undetected critical* faults (test escapes),
  /// split neuron / synapse as in the last row of Table III.
  double max_escape_accuracy_drop_neuron = 0.0;
  double max_escape_accuracy_drop_synapse = 0.0;

  std::string to_string() const;
};

/// `faults`, `detections` and `labels` must be parallel arrays.
CoverageReport build_coverage_report(const std::vector<FaultDescriptor>& faults,
                                     const std::vector<DetectionResult>& detections,
                                     const std::vector<FaultClassification>& labels);

/// Coverage without criticality labels (plain Eq. (4)).
double fault_coverage(const std::vector<DetectionResult>& detections);

}  // namespace snntest::fault
