// Fault-simulation campaign: sequential single-fault injection + inference,
// parallelized across worker threads (each worker owns a network clone).
//
// Two campaign flavours mirror the paper:
//  * run_detection_campaign — the Eq. (3)/(4) experiment: apply one test
//    stimulus to the golden and each faulty network and compare output
//    spike trains (L1 > 0 -> detected). This is T_FS in Sec. IV-B.
//  * classify (see classifier.hpp) — the Table II experiment labelling
//    faults critical/benign over a dataset.
//
// run_detection_campaign is a thin compatibility wrapper over the
// differential engine in campaign/engine.hpp (golden-prefix reuse,
// convergence pruning, dynamic scheduling, checkpoint/resume); new code
// should call campaign::run_campaign directly.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/injector.hpp"
#include "tensor/tensor.hpp"
#include "util/thread_pool.hpp"

namespace snntest::fault {

struct DetectionResult {
  bool detected = false;
  /// ||O^L - O^L(f)||_1 — output spike-train corruption magnitude (Fig. 9).
  double output_l1 = 0.0;
  /// First output timestep at which the cumulative L1 divergence exceeds the
  /// detection threshold — the frame an in-field output comparator would
  /// flag the device, and the per-pair detection latency the coverage
  /// dictionary persists (coverage/fault_dictionary.hpp). -1 when the fault
  /// is undetected. The cumulative L1 is nondecreasing over time, so
  /// first_detection_frame >= 0 exactly when detected.
  int64_t first_detection_frame = -1;
  /// Per-class |count - golden count| differences (signed: faulty - golden).
  std::vector<long> class_count_diff;
};

struct CampaignConfig {
  size_t num_threads = 0;  // 0 = hardware concurrency
  /// A fault counts as detected when output_l1 > detection_threshold. The
  /// default 0.0 keeps the paper's Eq. (3) criterion (any output spike
  /// difference); raise it to ignore sub-threshold corruption, e.g. to model
  /// a comparator with limited precision.
  double detection_threshold = 0.0;
  /// Progress callback (completed, total); called from worker threads.
  std::function<void(size_t, size_t)> progress;
};

struct CampaignOutcome {
  std::vector<DetectionResult> results;  // parallel to the fault list
  double elapsed_seconds = 0.0;
  size_t detected_count() const;
};

/// Simulate every fault in `faults` against `stimulus` and report detection
/// per Eq. (3). `net` must be fault-free; it is not modified (workers use
/// clones).
CampaignOutcome run_detection_campaign(const snn::Network& net, const tensor::Tensor& stimulus,
                                       const std::vector<FaultDescriptor>& faults,
                                       const CampaignConfig& config = {});

}  // namespace snntest::fault
