#include "fault/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "snn/spike_train.hpp"
#include "util/timer.hpp"

namespace snntest::fault {

size_t CampaignOutcome::detected_count() const {
  size_t n = 0;
  for (const auto& r : results) n += r.detected;
  return n;
}

CampaignOutcome run_detection_campaign(const snn::Network& net, const tensor::Tensor& stimulus,
                                       const std::vector<FaultDescriptor>& faults,
                                       const CampaignConfig& config) {
  util::Timer timer;
  CampaignOutcome outcome;
  outcome.results.resize(faults.size());

  // Golden response (fault-free reference O^L of Eq. (3)).
  snn::Network golden_net(net);
  const auto golden = golden_net.forward(stimulus, /*record_traces=*/false);
  const auto golden_counts = golden.output_counts();
  const auto& golden_output = golden.output();
  const auto stats = compute_weight_stats(golden_net);

  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t workers = config.num_threads == 0 ? hw : config.num_threads;
  std::atomic<size_t> done{0};

  auto simulate_range = [&](snn::Network& worker_net, size_t begin, size_t end) {
    FaultInjector injector(worker_net, stats);
    for (size_t j = begin; j < end; ++j) {
      ScopedFault scoped(injector, faults[j]);
      const auto faulty = worker_net.forward(stimulus, /*record_traces=*/false);
      DetectionResult& r = outcome.results[j];
      r.output_l1 = snn::output_distance(golden_output, faulty.output());
      r.detected = r.output_l1 > 0.0;
      const auto counts = faulty.output_counts();
      r.class_count_diff.resize(counts.size());
      for (size_t c = 0; c < counts.size(); ++c) {
        r.class_count_diff[c] = static_cast<long>(counts[c]) - static_cast<long>(golden_counts[c]);
      }
      const size_t completed = done.fetch_add(1) + 1;
      if (config.progress) config.progress(completed, faults.size());
    }
  };

  if (workers <= 1 || faults.size() < 2 * workers) {
    snn::Network worker_net(net);
    simulate_range(worker_net, 0, faults.size());
  } else {
    util::ThreadPool pool(workers);
    const size_t chunk = (faults.size() + workers - 1) / workers;
    std::vector<snn::Network> worker_nets(workers, net);
    for (size_t w = 0; w < workers; ++w) {
      const size_t begin = w * chunk;
      const size_t end = std::min(faults.size(), begin + chunk);
      if (begin >= end) break;
      pool.submit([&, w, begin, end] { simulate_range(worker_nets[w], begin, end); });
    }
    pool.wait_idle();
  }

  outcome.elapsed_seconds = timer.seconds();
  return outcome;
}

}  // namespace snntest::fault
