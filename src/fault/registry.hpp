// Fault-universe enumeration (the {f_j} of Sec. IV-A).
//
// Enumerates every fault of the configured kinds over every neuron and
// stored weight of a network, in a stable deterministic order; also
// supports unbiased random sampling of the universe (statistical fault
// sampling, used to bound single-core campaign times — DESIGN.md §2.4).
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "util/rng.hpp"

namespace snntest::fault {

struct FaultUniverseConfig {
  // Default universe matches the paper's Table II composition.
  bool neuron_dead = true;
  bool neuron_saturated = true;
  bool synapse_dead = true;
  bool synapse_saturated_positive = true;
  bool synapse_saturated_negative = true;

  // Extended (parametric) faults, off by default.
  bool neuron_threshold_variation = false;
  bool neuron_leak_variation = false;
  bool neuron_refractory_variation = false;
  bool synapse_bitflip = false;

  /// Relative deltas used for the parametric variations; both +delta and
  /// -delta instances are generated for threshold/leak.
  float threshold_delta = 0.25f;
  float leak_delta = 0.2f;
  int refractory_extra_steps = 2;
  /// Saturated weight magnitude = factor * max |w| of the layer's weights.
  float saturation_factor = 1.5f;
  /// Bits to flip (int8 weight memory); 7 is the sign bit.
  std::vector<int> bitflip_bits = {6};

  /// When true, conv-layer synapse faults are enumerated per physical
  /// connection (paper's Table I convention) instead of per stored weight
  /// (weight-memory granularity, DESIGN.md §2.5). Dense/recurrent layers
  /// are per-weight either way (the two coincide). Bit-flips stay at
  /// weight granularity — they model the weight memory itself.
  bool conv_connection_granularity = false;
};

/// Layer-wise weight statistics used to place saturation outliers.
struct LayerWeightStats {
  float max_abs = 0.0f;   // over all stored weights of the layer
  float quant_scale = 0.0f;  // int8 full-scale (== max_abs, floored to eps)
};

std::vector<LayerWeightStats> compute_weight_stats(snn::Network& net);

/// Enumerate the full fault universe in deterministic order: all neuron
/// faults layer-major, then all synapse faults layer/param-major.
std::vector<FaultDescriptor> enumerate_faults(snn::Network& net,
                                              const FaultUniverseConfig& config = {});

/// Uniformly sample `k` faults without replacement (k >= universe size
/// returns the whole universe, order shuffled).
std::vector<FaultDescriptor> sample_faults(const std::vector<FaultDescriptor>& universe, size_t k,
                                           util::Rng& rng);

/// Partition helpers for reporting.
size_t count_neuron_faults(const std::vector<FaultDescriptor>& faults);
size_t count_synapse_faults(const std::vector<FaultDescriptor>& faults);

}  // namespace snntest::fault
