#include "fault/lane_injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "snn/conv_layer.hpp"
#include "snn/dense_layer.hpp"
#include "snn/recurrent_layer.hpp"

namespace snntest::fault {
namespace {

/// Stored (fault-free) weight behind a WeightRef, via the const per-kind
/// accessors (Layer::params() is non-const), plus the lane fault kind the
/// ref maps to. Mirrors weight_slot in injector.cpp.
float stored_weight(const snn::Network& net, const snn::WeightRef& ref,
                    snn::LaneSynapseFault::Kind& kind) {
  const snn::Layer& layer = net.layer(ref.layer);
  switch (layer.kind()) {
    case snn::LayerKind::kDense: {
      const auto& w = static_cast<const snn::DenseLayer&>(layer).weights();
      if (ref.param != 0 || ref.index >= w.size()) {
        throw std::out_of_range("resolve_lane_fault: bad weight ref");
      }
      kind = snn::LaneSynapseFault::Kind::kWeight;
      return w[ref.index];
    }
    case snn::LayerKind::kConv2d: {
      const auto& w = static_cast<const snn::ConvLayer&>(layer).weights();
      if (ref.param != 0 || ref.index >= w.size()) {
        throw std::out_of_range("resolve_lane_fault: bad weight ref");
      }
      kind = snn::LaneSynapseFault::Kind::kConvWeight;
      return w[ref.index];
    }
    case snn::LayerKind::kRecurrent: {
      const auto& rec = static_cast<const snn::RecurrentLayer&>(layer);
      const auto& w = ref.param == 0 ? rec.weights() : rec.recurrent_weights();
      if (ref.param > 1 || ref.index >= w.size()) {
        throw std::out_of_range("resolve_lane_fault: bad weight ref");
      }
      kind = ref.param == 0 ? snn::LaneSynapseFault::Kind::kWeight
                            : snn::LaneSynapseFault::Kind::kRecurrentWeight;
      return w[ref.index];
    }
    case snn::LayerKind::kSumPool:
      break;
  }
  throw std::logic_error("resolve_lane_fault: layer has no weights");
}

/// Faulty stored-weight value — the exact expressions FaultInjector::inject
/// writes into the weight slot.
float faulty_weight_value(FaultKind kind, float stored, float magnitude, float quant_scale) {
  switch (kind) {
    case FaultKind::kSynapseDead:
      return 0.0f;
    case FaultKind::kSynapseSaturatedPositive:
      return std::fabs(magnitude);
    case FaultKind::kSynapseSaturatedNegative:
      return -std::fabs(magnitude);
    case FaultKind::kSynapseBitFlip:
      return bitflip_weight(stored, quant_scale, static_cast<int>(magnitude));
    default:
      throw std::logic_error("resolve_lane_fault: kind/target mismatch");
  }
}

}  // namespace

snn::LaneFault resolve_lane_fault(const snn::Network& net,
                                  const std::vector<LayerWeightStats>& stats,
                                  const FaultDescriptor& fault) {
  snn::LaneFault lane;
  if (fault.targets_neuron()) {
    const snn::LifBank& lif = net.layer(fault.neuron.layer).lif();
    const size_t i = fault.neuron.index;
    if (i >= lif.size()) throw std::out_of_range("resolve_lane_fault: bad neuron index");
    snn::LaneNeuronOverride& o = lane.neuron;
    o.active = true;
    o.neuron = static_cast<uint32_t>(i);
    o.threshold = lif.thresholds()[i];
    o.leak = lif.leaks()[i];
    o.refractory = lif.refractories()[i];
    o.mode = lif.modes()[i];
    switch (fault.kind) {
      case FaultKind::kNeuronDead:
        o.mode = snn::NeuronMode::kDead;
        break;
      case FaultKind::kNeuronSaturated:
        o.mode = snn::NeuronMode::kSaturated;
        break;
      case FaultKind::kNeuronThresholdVariation:
        o.threshold = std::max(1e-3f, o.threshold * (1.0f + fault.magnitude));
        break;
      case FaultKind::kNeuronLeakVariation:
        o.leak = std::clamp(o.leak * (1.0f + fault.magnitude), 0.01f, 1.0f);
        break;
      case FaultKind::kNeuronRefractoryVariation:
        o.refractory = std::max(0, o.refractory + static_cast<int>(fault.magnitude));
        break;
      default:
        throw std::logic_error("resolve_lane_fault: kind/target mismatch");
    }
  } else if (fault.connection_granularity) {
    const snn::Layer& layer = net.layer(fault.connection.layer);
    if (layer.kind() != snn::LayerKind::kConv2d) {
      throw std::logic_error("resolve_lane_fault: connection faults target conv layers");
    }
    const auto& conv = static_cast<const snn::ConvLayer&>(layer);
    const float stored = conv.connection_weight(fault.connection.out_index,
                                                fault.connection.in_index);
    const float value = faulty_weight_value(fault.kind, stored, fault.magnitude,
                                            stats[fault.connection.layer].quant_scale);
    snn::LaneSynapseFault& sf = lane.synapse;
    sf.kind = snn::LaneSynapseFault::Kind::kConvConnection;
    sf.out_index = fault.connection.out_index;
    sf.in_index = fault.connection.in_index;
    // Same delta ConvLayer::set_connection_override stores.
    sf.delta = value - stored;
  } else {
    snn::LaneSynapseFault& sf = lane.synapse;
    const float stored = stored_weight(net, fault.weight, sf.kind);
    sf.index = fault.weight.index;
    sf.value = faulty_weight_value(fault.kind, stored, fault.magnitude,
                                   stats[fault.weight.layer].quant_scale);
  }
  return lane;
}

}  // namespace snntest::fault
