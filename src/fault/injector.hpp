// Fault injection into a live Network (the SpikeFI-equivalent substrate).
//
// Injection mutates the network in place — a weight value or a per-neuron
// parameter/mode in the target layer's LifBank — and records exactly what
// it changed so removal is a perfect restore. `ScopedFault` is the RAII
// form used by campaign workers: inject on construction, restore on scope
// exit, so a worker can sweep thousands of faults over one network clone.
#pragma once

#include <optional>

#include "fault/fault.hpp"
#include "fault/registry.hpp"

namespace snntest::fault {

class FaultInjector {
 public:
  /// `stats` must come from compute_weight_stats on the same (fault-free)
  /// network — bit-flip faults need the layer quantization scale.
  FaultInjector(snn::Network& net, std::vector<LayerWeightStats> stats);
  /// Convenience: computes the stats itself.
  explicit FaultInjector(snn::Network& net);

  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Apply `fault`. Exactly one fault can be active at a time (the paper's
  /// single-fault assumption); injecting while active throws.
  void inject(const FaultDescriptor& fault);

  /// Restore the saved state. No-op if nothing is active.
  void remove();

  bool active() const { return active_.has_value(); }
  const FaultDescriptor* active_fault() const { return active_ ? &*active_ : nullptr; }

 private:
  struct SavedNeuron {
    float threshold;
    float leak;
    int refractory;
    snn::NeuronMode mode;
  };

  snn::Network* net_;
  std::vector<LayerWeightStats> stats_;
  std::optional<FaultDescriptor> active_;
  SavedNeuron saved_neuron_{};
  float saved_weight_ = 0.0f;
};

/// RAII single-fault scope.
class ScopedFault {
 public:
  ScopedFault(FaultInjector& injector, const FaultDescriptor& fault) : injector_(injector) {
    injector_.inject(fault);
  }
  ~ScopedFault() { injector_.remove(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultInjector& injector_;
};

}  // namespace snntest::fault
