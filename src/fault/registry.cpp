#include "fault/registry.hpp"

#include <algorithm>
#include <cmath>

#include "snn/conv_layer.hpp"

namespace snntest::fault {

std::vector<LayerWeightStats> compute_weight_stats(snn::Network& net) {
  std::vector<LayerWeightStats> stats(net.num_layers());
  for (size_t l = 0; l < net.num_layers(); ++l) {
    float max_abs = 0.0f;
    for (const snn::ParamView& p : net.layer(l).params()) {
      for (size_t i = 0; i < p.size; ++i) max_abs = std::max(max_abs, std::fabs(p.value[i]));
    }
    stats[l].max_abs = max_abs;
    stats[l].quant_scale = std::max(max_abs, 1e-6f);
  }
  return stats;
}

std::vector<FaultDescriptor> enumerate_faults(snn::Network& net,
                                              const FaultUniverseConfig& config) {
  std::vector<FaultDescriptor> faults;
  const auto stats = compute_weight_stats(net);

  // --- neuron faults, layer-major ---
  for (const snn::NeuronRef& n : net.all_neurons()) {
    auto push_neuron = [&](FaultKind kind, float magnitude) {
      FaultDescriptor f;
      f.kind = kind;
      f.neuron = n;
      f.magnitude = magnitude;
      faults.push_back(f);
    };
    if (config.neuron_dead) push_neuron(FaultKind::kNeuronDead, 0.0f);
    if (config.neuron_saturated) push_neuron(FaultKind::kNeuronSaturated, 0.0f);
    if (config.neuron_threshold_variation) {
      push_neuron(FaultKind::kNeuronThresholdVariation, +config.threshold_delta);
      push_neuron(FaultKind::kNeuronThresholdVariation, -config.threshold_delta);
    }
    if (config.neuron_leak_variation) {
      push_neuron(FaultKind::kNeuronLeakVariation, +config.leak_delta);
      push_neuron(FaultKind::kNeuronLeakVariation, -config.leak_delta);
    }
    if (config.neuron_refractory_variation) {
      push_neuron(FaultKind::kNeuronRefractoryVariation,
                  static_cast<float>(config.refractory_extra_steps));
    }
  }

  // --- synapse faults over every stored weight ---
  for (const snn::WeightRef& w : net.all_weights()) {
    const bool conv = net.layer(w.layer).kind() == snn::LayerKind::kConv2d;
    const float sat = config.saturation_factor * stats[w.layer].max_abs;
    auto push_weight = [&](FaultKind kind, float magnitude) {
      FaultDescriptor f;
      f.kind = kind;
      f.weight = w;
      f.magnitude = magnitude;
      faults.push_back(f);
    };
    // With connection granularity requested, conv dead/saturated faults are
    // emitted per connection below; bit-flips remain weight-memory faults.
    if (!(conv && config.conv_connection_granularity)) {
      if (config.synapse_dead) push_weight(FaultKind::kSynapseDead, 0.0f);
      if (config.synapse_saturated_positive) {
        push_weight(FaultKind::kSynapseSaturatedPositive, sat);
      }
      if (config.synapse_saturated_negative) {
        push_weight(FaultKind::kSynapseSaturatedNegative, sat);
      }
    }
    if (config.synapse_bitflip) {
      for (int bit : config.bitflip_bits) {
        push_weight(FaultKind::kSynapseBitFlip, static_cast<float>(bit));
      }
    }
  }

  // --- per-connection conv synapse faults (optional) ---
  if (config.conv_connection_granularity) {
    for (size_t l = 0; l < net.num_layers(); ++l) {
      if (net.layer(l).kind() != snn::LayerKind::kConv2d) continue;
      const auto& conv = static_cast<const snn::ConvLayer&>(net.layer(l));
      const auto& spec = conv.spec();
      const float sat = config.saturation_factor * stats[l].max_abs;
      const size_t oh = spec.out_height();
      const size_t ow = spec.out_width();
      for (size_t oc = 0; oc < spec.out_channels; ++oc) {
        for (size_t oy = 0; oy < oh; ++oy) {
          for (size_t ox = 0; ox < ow; ++ox) {
            const size_t out_index = (oc * oh + oy) * ow + ox;
            for (size_t ic = 0; ic < spec.in_channels; ++ic) {
              for (size_t ky = 0; ky < spec.kernel; ++ky) {
                const long iy = static_cast<long>(oy * spec.stride + ky) -
                                static_cast<long>(spec.padding);
                if (iy < 0 || iy >= static_cast<long>(spec.in_height)) continue;
                for (size_t kx = 0; kx < spec.kernel; ++kx) {
                  const long ix = static_cast<long>(ox * spec.stride + kx) -
                                  static_cast<long>(spec.padding);
                  if (ix < 0 || ix >= static_cast<long>(spec.in_width)) continue;
                  const size_t in_index =
                      (ic * spec.in_height + static_cast<size_t>(iy)) * spec.in_width +
                      static_cast<size_t>(ix);
                  auto push_conn = [&](FaultKind kind, float magnitude) {
                    FaultDescriptor f;
                    f.kind = kind;
                    f.connection_granularity = true;
                    f.connection = {l, out_index, in_index};
                    f.magnitude = magnitude;
                    faults.push_back(f);
                  };
                  if (config.synapse_dead) push_conn(FaultKind::kSynapseDead, 0.0f);
                  if (config.synapse_saturated_positive) {
                    push_conn(FaultKind::kSynapseSaturatedPositive, sat);
                  }
                  if (config.synapse_saturated_negative) {
                    push_conn(FaultKind::kSynapseSaturatedNegative, sat);
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return faults;
}

std::vector<FaultDescriptor> sample_faults(const std::vector<FaultDescriptor>& universe, size_t k,
                                           util::Rng& rng) {
  const auto indices = rng.sample_without_replacement(universe.size(), k);
  std::vector<FaultDescriptor> sampled;
  sampled.reserve(indices.size());
  for (size_t i : indices) sampled.push_back(universe[i]);
  return sampled;
}

size_t count_neuron_faults(const std::vector<FaultDescriptor>& faults) {
  return static_cast<size_t>(
      std::count_if(faults.begin(), faults.end(),
                    [](const FaultDescriptor& f) { return f.targets_neuron(); }));
}

size_t count_synapse_faults(const std::vector<FaultDescriptor>& faults) {
  return faults.size() - count_neuron_faults(faults);
}

}  // namespace snntest::fault
