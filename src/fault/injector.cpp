#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "snn/conv_layer.hpp"

namespace snntest::fault {
namespace {

float* weight_slot(snn::Network& net, const snn::WeightRef& ref) {
  auto params = net.layer(ref.layer).params();
  if (ref.param >= params.size()) throw std::out_of_range("FaultInjector: bad param index");
  if (ref.index >= params[ref.param].size) throw std::out_of_range("FaultInjector: bad weight index");
  return params[ref.param].value + ref.index;
}

}  // namespace

FaultInjector::FaultInjector(snn::Network& net, std::vector<LayerWeightStats> stats)
    : net_(&net), stats_(std::move(stats)) {
  if (stats_.size() != net.num_layers()) {
    throw std::invalid_argument("FaultInjector: stats/layer count mismatch");
  }
}

FaultInjector::FaultInjector(snn::Network& net)
    : FaultInjector(net, compute_weight_stats(net)) {}

FaultInjector::~FaultInjector() { remove(); }

void FaultInjector::inject(const FaultDescriptor& fault) {
  if (active_) throw std::logic_error("FaultInjector: a fault is already active");
  if (fault.targets_neuron()) {
    snn::LifBank& lif = net_->layer(fault.neuron.layer).lif();
    const size_t i = fault.neuron.index;
    if (i >= lif.size()) throw std::out_of_range("FaultInjector: bad neuron index");
    saved_neuron_ = {lif.thresholds()[i], lif.leaks()[i], lif.refractories()[i], lif.modes()[i]};
    switch (fault.kind) {
      case FaultKind::kNeuronDead:
        lif.modes()[i] = snn::NeuronMode::kDead;
        break;
      case FaultKind::kNeuronSaturated:
        lif.modes()[i] = snn::NeuronMode::kSaturated;
        break;
      case FaultKind::kNeuronThresholdVariation:
        lif.thresholds()[i] =
            std::max(1e-3f, saved_neuron_.threshold * (1.0f + fault.magnitude));
        break;
      case FaultKind::kNeuronLeakVariation:
        lif.leaks()[i] = std::clamp(saved_neuron_.leak * (1.0f + fault.magnitude), 0.01f, 1.0f);
        break;
      case FaultKind::kNeuronRefractoryVariation:
        lif.refractories()[i] =
            std::max(0, saved_neuron_.refractory + static_cast<int>(fault.magnitude));
        break;
      default:
        throw std::logic_error("FaultInjector: kind/target mismatch");
    }
  } else if (fault.connection_granularity) {
    snn::Layer& layer = net_->layer(fault.connection.layer);
    if (layer.kind() != snn::LayerKind::kConv2d) {
      throw std::logic_error("FaultInjector: connection faults target conv layers");
    }
    auto& conv = static_cast<snn::ConvLayer&>(layer);
    if (conv.connection_override_active()) {
      throw std::logic_error("FaultInjector: connection override already active");
    }
    const float stored =
        conv.connection_weight(fault.connection.out_index, fault.connection.in_index);
    float value = stored;
    switch (fault.kind) {
      case FaultKind::kSynapseDead:
        value = 0.0f;
        break;
      case FaultKind::kSynapseSaturatedPositive:
        value = std::fabs(fault.magnitude);
        break;
      case FaultKind::kSynapseSaturatedNegative:
        value = -std::fabs(fault.magnitude);
        break;
      case FaultKind::kSynapseBitFlip: {
        const float scale = stats_[fault.connection.layer].quant_scale;
        value = bitflip_weight(stored, scale, static_cast<int>(fault.magnitude));
        break;
      }
      default:
        throw std::logic_error("FaultInjector: kind/target mismatch");
    }
    conv.set_connection_override(fault.connection.out_index, fault.connection.in_index, value);
  } else {
    float* slot = weight_slot(*net_, fault.weight);
    saved_weight_ = *slot;
    switch (fault.kind) {
      case FaultKind::kSynapseDead:
        *slot = 0.0f;
        break;
      case FaultKind::kSynapseSaturatedPositive:
        *slot = std::fabs(fault.magnitude);
        break;
      case FaultKind::kSynapseSaturatedNegative:
        *slot = -std::fabs(fault.magnitude);
        break;
      case FaultKind::kSynapseBitFlip: {
        const float scale = stats_[fault.weight.layer].quant_scale;
        *slot = bitflip_weight(saved_weight_, scale, static_cast<int>(fault.magnitude));
        break;
      }
      default:
        throw std::logic_error("FaultInjector: kind/target mismatch");
    }
  }
  active_ = fault;
}

void FaultInjector::remove() {
  if (!active_) return;
  const FaultDescriptor& fault = *active_;
  if (fault.targets_neuron()) {
    snn::LifBank& lif = net_->layer(fault.neuron.layer).lif();
    const size_t i = fault.neuron.index;
    lif.thresholds()[i] = saved_neuron_.threshold;
    lif.leaks()[i] = saved_neuron_.leak;
    lif.refractories()[i] = saved_neuron_.refractory;
    lif.modes()[i] = saved_neuron_.mode;
  } else if (fault.connection_granularity) {
    static_cast<snn::ConvLayer&>(net_->layer(fault.connection.layer))
        .clear_connection_override();
  } else {
    *weight_slot(*net_, fault.weight) = saved_weight_;
  }
  active_.reset();
}

}  // namespace snntest::fault
