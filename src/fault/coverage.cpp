#include "fault/coverage.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace snntest::fault {

std::string CoverageReport::to_string() const {
  std::ostringstream os;
  os << "FC critical neuron:  " << util::fmt_pct(critical_neuron.coverage()) << " ("
     << critical_neuron.detected << "/" << critical_neuron.total << ")\n"
     << "FC critical synapse: " << util::fmt_pct(critical_synapse.coverage()) << " ("
     << critical_synapse.detected << "/" << critical_synapse.total << ")\n"
     << "FC benign neuron:    " << util::fmt_pct(benign_neuron.coverage()) << " ("
     << benign_neuron.detected << "/" << benign_neuron.total << ")\n"
     << "FC benign synapse:   " << util::fmt_pct(benign_synapse.coverage()) << " ("
     << benign_synapse.detected << "/" << benign_synapse.total << ")\n"
     << "FC overall:          " << util::fmt_pct(overall.coverage()) << " (" << overall.detected
     << "/" << overall.total << ")\n"
     << "max escape accuracy drop: " << util::fmt_pct(max_escape_accuracy_drop_neuron)
     << " (neuron), " << util::fmt_pct(max_escape_accuracy_drop_synapse) << " (synapse)\n";
  return os.str();
}

CoverageReport build_coverage_report(const std::vector<FaultDescriptor>& faults,
                                     const std::vector<DetectionResult>& detections,
                                     const std::vector<FaultClassification>& labels) {
  if (faults.size() != detections.size() || faults.size() != labels.size()) {
    throw std::invalid_argument("build_coverage_report: array size mismatch");
  }
  CoverageReport report;
  for (size_t j = 0; j < faults.size(); ++j) {
    const bool neuron = faults[j].targets_neuron();
    const bool critical = labels[j].critical;
    const bool detected = detections[j].detected;
    CoverageCell& cell = neuron ? (critical ? report.critical_neuron : report.benign_neuron)
                                : (critical ? report.critical_synapse : report.benign_synapse);
    ++cell.total;
    cell.detected += detected;
    ++report.overall.total;
    report.overall.detected += detected;
    if (critical && !detected) {
      double& worst = neuron ? report.max_escape_accuracy_drop_neuron
                             : report.max_escape_accuracy_drop_synapse;
      worst = std::max(worst, labels[j].accuracy_drop);
    }
  }
  return report;
}

double fault_coverage(const std::vector<DetectionResult>& detections) {
  if (detections.empty()) return 1.0;
  size_t detected = 0;
  for (const auto& d : detections) detected += d.detected;
  return static_cast<double>(detected) / static_cast<double>(detections.size());
}

}  // namespace snntest::fault
