// Critical/benign fault classification (paper Sec. III & Table II).
//
// "A fault is critical if it alters the top-1 prediction for at least one
// sample in the available dataset." Classification runs the full fault list
// against a set of dataset samples: golden predictions are computed once,
// then each faulty network is evaluated on the same samples. Per-fault we
// also record the accuracy drop, which feeds Table III's "maximum accuracy
// drop for undetected critical faults" row.
#pragma once

#include <functional>
#include <vector>

#include "data/dataset.hpp"
#include "fault/injector.hpp"

namespace snntest::fault {

struct FaultClassification {
  bool critical = false;
  /// Number of evaluated samples whose top-1 changed under the fault.
  size_t prediction_changes = 0;
  /// (faulty mispredictions - golden mispredictions) / samples, clamped >= 0:
  /// the accuracy the device would lose if this fault escaped the test.
  double accuracy_drop = 0.0;
};

struct ClassifierConfig {
  /// Samples used for labelling (0 = whole dataset). The paper uses the full
  /// dataset on an A100 over days; we default to a subset (DESIGN.md §2.4).
  size_t max_samples = 64;
  size_t num_threads = 0;
  /// Output decoding used for the top-1 criterion (rate or TTFS —
  /// criticality depends on how the deployed model reads its outputs).
  snn::Decoding decoding = snn::Decoding::kRate;
  /// Forward-kernel selection for the golden pass and every worker clone
  /// (bit-identical results across modes; kAuto exploits event sparsity).
  snn::KernelMode kernel_mode = snn::KernelMode::kAuto;
  std::function<void(size_t, size_t)> progress;
};

struct ClassificationOutcome {
  std::vector<FaultClassification> labels;  // parallel to the fault list
  double golden_accuracy = 0.0;
  double elapsed_seconds = 0.0;
  size_t critical_count() const;
};

ClassificationOutcome classify_faults(const snn::Network& net,
                                      const std::vector<FaultDescriptor>& faults,
                                      const data::Dataset& dataset,
                                      const ClassifierConfig& config = {});

}  // namespace snntest::fault
