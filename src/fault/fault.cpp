#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace snntest::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNeuronDead: return "neuron-dead";
    case FaultKind::kNeuronSaturated: return "neuron-saturated";
    case FaultKind::kNeuronThresholdVariation: return "neuron-threshold-var";
    case FaultKind::kNeuronLeakVariation: return "neuron-leak-var";
    case FaultKind::kNeuronRefractoryVariation: return "neuron-refractory-var";
    case FaultKind::kSynapseDead: return "synapse-dead";
    case FaultKind::kSynapseSaturatedPositive: return "synapse-sat-pos";
    case FaultKind::kSynapseSaturatedNegative: return "synapse-sat-neg";
    case FaultKind::kSynapseBitFlip: return "synapse-bitflip";
  }
  return "unknown";
}

bool is_neuron_fault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNeuronDead:
    case FaultKind::kNeuronSaturated:
    case FaultKind::kNeuronThresholdVariation:
    case FaultKind::kNeuronLeakVariation:
    case FaultKind::kNeuronRefractoryVariation:
      return true;
    default:
      return false;
  }
}

std::string FaultDescriptor::to_string() const {
  std::ostringstream os;
  os << fault_kind_name(kind);
  if (targets_neuron()) {
    os << "@L" << neuron.layer << "n" << neuron.index;
  } else if (connection_granularity) {
    os << "@L" << connection.layer << "c" << connection.in_index << ">" << connection.out_index;
  } else {
    os << "@L" << weight.layer << "p" << weight.param << "w" << weight.index;
  }
  if (magnitude != 0.0f) os << "(m=" << magnitude << ")";
  return os.str();
}

int8_t quantize_weight(float w, float scale) {
  if (scale <= 0.0f) throw std::invalid_argument("quantize_weight: scale must be > 0");
  const float code = std::round(w / scale * 127.0f);
  return static_cast<int8_t>(std::clamp(code, -127.0f, 127.0f));
}

float dequantize_weight(int8_t code, float scale) {
  return static_cast<float>(code) / 127.0f * scale;
}

float bitflip_weight(float w, float scale, int bit) {
  if (bit < 0 || bit > 7) throw std::invalid_argument("bitflip_weight: bit must be in [0, 7]");
  const auto code = static_cast<uint8_t>(quantize_weight(w, scale));
  const auto flipped = static_cast<int8_t>(code ^ (1u << bit));
  return dequantize_weight(flipped, scale);
}

}  // namespace snntest::fault
