#include "fault/classifier.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <thread>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace snntest::fault {

size_t ClassificationOutcome::critical_count() const {
  size_t n = 0;
  for (const auto& l : labels) n += l.critical;
  return n;
}

ClassificationOutcome classify_faults(const snn::Network& net,
                                      const std::vector<FaultDescriptor>& faults,
                                      const data::Dataset& dataset,
                                      const ClassifierConfig& config) {
  util::Timer timer;
  ClassificationOutcome outcome;
  outcome.labels.resize(faults.size());

  const size_t n_samples =
      config.max_samples == 0 ? dataset.size() : std::min(config.max_samples, dataset.size());

  // Materialize the evaluation samples and the golden predictions once.
  std::vector<data::Sample> samples;
  samples.reserve(n_samples);
  for (size_t i = 0; i < n_samples; ++i) samples.push_back(dataset.get(i));

  snn::Network golden_net(net);
  golden_net.set_kernel_mode(config.kernel_mode);
  std::vector<size_t> golden_pred(n_samples);
  size_t golden_correct = 0;
  for (size_t i = 0; i < n_samples; ++i) {
    golden_pred[i] = golden_net.forward(samples[i].input).predicted_class(config.decoding);
    golden_correct += golden_pred[i] == samples[i].label;
  }
  outcome.golden_accuracy =
      n_samples ? static_cast<double>(golden_correct) / static_cast<double>(n_samples) : 0.0;

  const auto stats = compute_weight_stats(golden_net);
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  const size_t requested = config.num_threads == 0 ? hw : config.num_threads;
  std::atomic<size_t> done{0};

  // Per-fault cost is dominated by n_samples full inferences but still
  // varies (a dead front-layer neuron silences downstream activity and the
  // LIF update cost tracks activity), so workers claim small dynamic chunks
  // instead of one static range each.
  std::optional<util::ThreadPool> pool;
  if (requested > 1 && faults.size() >= 2 * requested) pool.emplace(requested);
  util::ThreadPool* pool_ptr = pool ? &*pool : nullptr;

  struct Worker {
    snn::Network net;
    FaultInjector injector;
    Worker(const snn::Network& reference, const std::vector<LayerWeightStats>& stats,
           snn::KernelMode mode)
        : net(reference), injector(net, stats) {
      net.set_kernel_mode(mode);
    }
  };
  std::vector<std::unique_ptr<Worker>> workers;
  for (size_t w = 0; w < util::dynamic_workers(pool_ptr); ++w) {
    workers.push_back(std::make_unique<Worker>(net, stats, config.kernel_mode));
  }

  util::parallel_for_dynamic(pool_ptr, faults.size(), /*grain=*/4, [&](size_t w, size_t j) {
    Worker& worker = *workers[w];
    ScopedFault scoped(worker.injector, faults[j]);
    FaultClassification& label = outcome.labels[j];
    size_t faulty_correct = 0;
    for (size_t i = 0; i < n_samples; ++i) {
      const size_t pred = worker.net.forward(samples[i].input).predicted_class(config.decoding);
      if (pred != golden_pred[i]) {
        label.critical = true;
        ++label.prediction_changes;
      }
      faulty_correct += pred == samples[i].label;
    }
    const double faulty_acc =
        n_samples ? static_cast<double>(faulty_correct) / static_cast<double>(n_samples) : 0.0;
    label.accuracy_drop = std::max(0.0, outcome.golden_accuracy - faulty_acc);
    const size_t completed = done.fetch_add(1) + 1;
    if (config.progress) config.progress(completed, faults.size());
  });

  outcome.elapsed_seconds = timer.seconds();
  return outcome;
}

}  // namespace snntest::fault
