// Dynamic-Vision-Sensor event simulation (internal helper).
//
// NMNIST and IBM DVS128 Gesture were both captured with a DVS: a pixel emits
// an ON event when its brightness rises and an OFF event when it falls. We
// reproduce that encoding from synthetic binary animation frames — events
// are the frame-to-frame differences, with polarity channels laid out
// channel-major: [polarity(2), H, W] flattened per timestep, ON = channel 0,
// OFF = channel 1. Sensor imperfections are modelled with per-event dropout
// and background noise events, which is what makes two samples of the same
// class differ.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace snntest::data {

struct DvsConfig {
  size_t height = 16;
  size_t width = 16;
  size_t num_steps = 20;
  double event_dropout = 0.15;  // probability a real event is lost
  double noise_density = 0.004; // probability of a spurious event per pixel/step/polarity
};

/// `frame(t, mask)` must fill `mask` (H*W bytes) with the binary scene at
/// time t. Returns the event tensor [T, 2*H*W].
tensor::Tensor dvs_encode(const DvsConfig& config,
                          const std::function<void(size_t, std::vector<uint8_t>&)>& frame,
                          util::Rng& rng);

}  // namespace snntest::data
