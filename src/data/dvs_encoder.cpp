#include "data/dvs_encoder.hpp"

namespace snntest::data {

tensor::Tensor dvs_encode(const DvsConfig& config,
                          const std::function<void(size_t, std::vector<uint8_t>&)>& frame,
                          util::Rng& rng) {
  const size_t pixels = config.height * config.width;
  tensor::Tensor events(tensor::Shape{config.num_steps, 2 * pixels});
  std::vector<uint8_t> prev(pixels, 0);
  std::vector<uint8_t> cur(pixels, 0);
  // The scene before t=0 is taken as the t=0 frame, so the first timestep
  // carries only noise (a real DVS emits nothing for a static scene).
  frame(0, prev);
  for (size_t t = 0; t < config.num_steps; ++t) {
    frame(t, cur);
    float* row = events.row(t);
    for (size_t p = 0; p < pixels; ++p) {
      const bool on_event = cur[p] && !prev[p];
      const bool off_event = !cur[p] && prev[p];
      if (on_event && !rng.bernoulli(config.event_dropout)) row[p] = 1.0f;
      if (off_event && !rng.bernoulli(config.event_dropout)) row[pixels + p] = 1.0f;
      // background activity
      if (rng.bernoulli(config.noise_density)) row[p] = 1.0f;
      if (rng.bernoulli(config.noise_density)) row[pixels + p] = 1.0f;
    }
    std::swap(prev, cur);
  }
  return events;
}

}  // namespace snntest::data
