// Synthetic IBM DVS128 Gesture stand-in (DESIGN.md §2.2).
//
// The real dataset contains 11 hand/arm gestures seen by a DVS. We keep the
// structure — 11 classes of characteristic *motion patterns* on a 2-polarity
// retina — with synthetic scenes: classes 0-7 are a blob translating in one
// of 8 compass directions, 8/9 are clockwise / counter-clockwise orbits
// (arm roll analogue), and 10 is an expand-contract pulsation (clap
// analogue). Per-sample speed/phase/position jitter plays the role of the
// 29 subjects and 3 lighting conditions.
#pragma once

#include "data/dataset.hpp"
#include "data/dvs_encoder.hpp"

namespace snntest::data {

struct SyntheticGestureConfig {
  size_t count = 528;  // divisible by 11 keeps classes balanced
  size_t height = 24;
  size_t width = 24;
  size_t num_steps = 30;
  uint64_t seed = 202;
  double event_dropout = 0.2;
  double noise_density = 0.003;
};

class SyntheticGesture final : public Dataset {
 public:
  explicit SyntheticGesture(SyntheticGestureConfig config = {});

  std::string name() const override { return "synthetic-dvs-gesture"; }
  size_t size() const override { return config_.count; }
  size_t num_classes() const override { return 11; }
  size_t input_size() const override { return 2 * config_.height * config_.width; }
  size_t num_steps() const override { return config_.num_steps; }
  Sample get(size_t index) const override;

  const SyntheticGestureConfig& config() const { return config_; }

 private:
  SyntheticGestureConfig config_;
};

}  // namespace snntest::data
