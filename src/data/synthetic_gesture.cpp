#include "data/synthetic_gesture.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace snntest::data {
namespace {

void draw_disc(std::vector<uint8_t>& mask, size_t height, size_t width, double cx, double cy,
               double radius) {
  const double r2 = radius * radius;
  const long y0 = static_cast<long>(std::floor(cy - radius));
  const long y1 = static_cast<long>(std::ceil(cy + radius));
  for (long y = y0; y <= y1; ++y) {
    if (y < 0 || y >= static_cast<long>(height)) continue;
    for (long x = static_cast<long>(std::floor(cx - radius));
         x <= static_cast<long>(std::ceil(cx + radius)); ++x) {
      if (x < 0 || x >= static_cast<long>(width)) continue;
      const double dx = static_cast<double>(x) - cx;
      const double dy = static_cast<double>(y) - cy;
      if (dx * dx + dy * dy <= r2) {
        mask[static_cast<size_t>(y) * width + static_cast<size_t>(x)] = 1;
      }
    }
  }
}

}  // namespace

SyntheticGesture::SyntheticGesture(SyntheticGestureConfig config) : config_(config) {
  if (config.height < 16 || config.width < 16) {
    throw std::invalid_argument("SyntheticGesture: retina too small");
  }
}

Sample SyntheticGesture::get(size_t index) const {
  if (index >= config_.count) throw std::out_of_range("SyntheticGesture::get: bad index");
  const size_t gesture = index % num_classes();
  util::Rng rng(config_.seed * 0x9E3779B97F4A7C15ull + index * 0xBF58476D1CE4E5B9ull + 1);

  const double H = static_cast<double>(config_.height);
  const double W = static_cast<double>(config_.width);
  const double cx0 = W / 2.0 + rng.uniform(-2.0, 2.0);
  const double cy0 = H / 2.0 + rng.uniform(-2.0, 2.0);
  const double speed = rng.uniform(0.35, 0.6);            // px per step
  const double phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double radius = rng.uniform(2.2, 3.2);
  const double orbit_r = rng.uniform(4.5, 6.5);
  const double omega = rng.uniform(0.25, 0.4);            // rad per step

  DvsConfig dvs;
  dvs.height = config_.height;
  dvs.width = config_.width;
  dvs.num_steps = config_.num_steps;
  dvs.event_dropout = config_.event_dropout;
  dvs.noise_density = config_.noise_density;

  auto frame = [&](size_t t, std::vector<uint8_t>& mask) {
    mask.assign(config_.height * config_.width, 0);
    const double time = static_cast<double>(t);
    if (gesture < 8) {
      // translation along one of 8 compass directions, wrapping around
      const double angle = static_cast<double>(gesture) * std::numbers::pi / 4.0;
      double cx = cx0 + std::cos(angle) * speed * time;
      double cy = cy0 + std::sin(angle) * speed * time;
      cx = std::fmod(std::fmod(cx, W) + W, W);
      cy = std::fmod(std::fmod(cy, H) + H, H);
      draw_disc(mask, config_.height, config_.width, cx, cy, radius);
    } else if (gesture == 8 || gesture == 9) {
      // two-blob orbit, CW vs CCW
      const double dir = gesture == 8 ? 1.0 : -1.0;
      const double theta = phase + dir * omega * time;
      for (int k = 0; k < 2; ++k) {
        const double a = theta + k * std::numbers::pi;
        draw_disc(mask, config_.height, config_.width, cx0 + orbit_r * std::cos(a),
                  cy0 + orbit_r * std::sin(a), radius * 0.9);
      }
    } else {
      // pulsating blob: radius breathes between 1.5 and ~6 px
      const double breathe = 3.5 + 2.5 * std::sin(phase + 2.0 * omega * time);
      draw_disc(mask, config_.height, config_.width, cx0, cy0, std::max(1.5, breathe));
    }
  };

  Sample sample;
  sample.input = dvs_encode(dvs, frame, rng);
  sample.label = gesture;
  return sample;
}

}  // namespace snntest::data
