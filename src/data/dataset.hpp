// Dataset abstraction for spiking samples.
//
// The paper's benchmarks are event datasets (NMNIST, IBM DVS128 Gesture,
// SHD). A sample is a binary spatio-temporal spike tensor [T, N1] plus a
// class label. Synthetic replacements (DESIGN.md §2.2) generate samples
// deterministically from (dataset seed, sample index), so a "dataset" has
// no backing storage and is cheap to pass around.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace snntest::data {

using tensor::Shape;
using tensor::Tensor;

struct Sample {
  Tensor input;  // [T, input_size], values in {0, 1}
  size_t label = 0;
};

class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual std::string name() const = 0;
  virtual size_t size() const = 0;
  virtual size_t num_classes() const = 0;
  /// Width of one input frame (N^1 in the paper's notation).
  virtual size_t input_size() const = 0;
  /// Timesteps per sample (T_in * f).
  virtual size_t num_steps() const = 0;

  virtual Sample get(size_t index) const = 0;
};

/// A contiguous index-range view (train/test split of a generated dataset).
class DatasetSlice final : public Dataset {
 public:
  DatasetSlice(std::shared_ptr<const Dataset> base, size_t offset, size_t count);

  std::string name() const override;
  size_t size() const override { return count_; }
  size_t num_classes() const override { return base_->num_classes(); }
  size_t input_size() const override { return base_->input_size(); }
  size_t num_steps() const override { return base_->num_steps(); }
  Sample get(size_t index) const override;

 private:
  std::shared_ptr<const Dataset> base_;
  size_t offset_;
  size_t count_;
};

struct TrainTestSplit {
  std::shared_ptr<Dataset> train;
  std::shared_ptr<Dataset> test;
};

/// Split a dataset into a leading train part and trailing test part.
TrainTestSplit split(std::shared_ptr<const Dataset> base, size_t train_count, size_t test_count);

/// Histogram of labels — used by tests to check class balance.
std::vector<size_t> label_histogram(const Dataset& ds);

}  // namespace snntest::data
