#include "data/synthetic_shd.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace snntest::data {

SyntheticShd::SyntheticShd(SyntheticShdConfig config) : config_(config) {
  if (config.channels < 8) throw std::invalid_argument("SyntheticShd: too few channels");
  if (config.num_steps < 5) throw std::invalid_argument("SyntheticShd: too few steps");
}

std::vector<SyntheticShd::Trajectory> SyntheticShd::class_template(size_t label) const {
  // The template is a function of (dataset seed, label) only, so every
  // sample of a class shares its formants — that is what makes the class.
  util::Rng rng(config_.seed * 0xD1B54A32D192ED03ull + label * 0x9E3779B97F4A7C15ull + 7);
  std::vector<Trajectory> trajectories(3);
  const double C = static_cast<double>(config_.channels);
  const double T = static_cast<double>(config_.num_steps);
  for (auto& tr : trajectories) {
    tr.start_channel = rng.uniform(0.1 * C, 0.9 * C);
    tr.slope = rng.uniform(-0.6 * C / T, 0.6 * C / T);
    tr.curvature = rng.uniform(-0.3 * C / (T * T), 0.3 * C / (T * T));
  }
  return trajectories;
}

Sample SyntheticShd::get(size_t index) const {
  if (index >= config_.count) throw std::out_of_range("SyntheticShd::get: bad index");
  const size_t label = index % num_classes();
  util::Rng rng(config_.seed * 0x94D049BB133111EBull + index * 0xBF58476D1CE4E5B9ull + 3);

  const auto trajectories = class_template(label);
  // per-sample articulation jitter
  const double channel_shift = rng.uniform(-2.0, 2.0);
  const double time_stretch = rng.uniform(0.9, 1.1);
  const long onset = rng.uniform_int(0, 2);

  Sample sample;
  sample.input = Tensor(Shape{config_.num_steps, config_.channels});
  const long C = static_cast<long>(config_.channels);
  for (size_t t = 0; t < config_.num_steps; ++t) {
    float* row = sample.input.row(t);
    const double tau = (static_cast<double>(t) - static_cast<double>(onset)) * time_stretch;
    if (tau >= 0.0) {
      for (const auto& tr : trajectories) {
        if (!rng.bernoulli(config_.spike_probability)) continue;
        const double c =
            tr.start_channel + channel_shift + tr.slope * tau + tr.curvature * tau * tau;
        const long ch = std::lround(c) + rng.uniform_int(-1, 1);  // 1-channel spread
        if (ch >= 0 && ch < C) row[ch] = 1.0f;
      }
    }
    for (long ch = 0; ch < C; ++ch) {
      if (rng.bernoulli(config_.noise_density)) row[ch] = 1.0f;
    }
  }
  sample.label = label;
  return sample;
}

}  // namespace snntest::data
