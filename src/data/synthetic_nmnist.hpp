// Synthetic NMNIST stand-in (DESIGN.md §2.2).
//
// NMNIST is MNIST viewed by a saccading DVS: each sample is an event stream
// of a digit shape sweeping through small camera motions. We reproduce that
// structure with seven-segment digit glyphs rendered on a 16x16 canvas and
// animated along a triangular saccade path; the DVS encoder turns the
// animation into ON/OFF polarity events. Labels are the digits 0-9 and are
// exactly class-balanced (label = index mod 10).
#pragma once

#include "data/dataset.hpp"
#include "data/dvs_encoder.hpp"

namespace snntest::data {

struct SyntheticNmnistConfig {
  size_t count = 1024;
  size_t height = 16;
  size_t width = 16;
  size_t num_steps = 20;
  uint64_t seed = 101;
  double event_dropout = 0.15;
  double noise_density = 0.004;
};

class SyntheticNmnist final : public Dataset {
 public:
  explicit SyntheticNmnist(SyntheticNmnistConfig config = {});

  std::string name() const override { return "synthetic-nmnist"; }
  size_t size() const override { return config_.count; }
  size_t num_classes() const override { return 10; }
  size_t input_size() const override { return 2 * config_.height * config_.width; }
  size_t num_steps() const override { return config_.num_steps; }
  Sample get(size_t index) const override;

  const SyntheticNmnistConfig& config() const { return config_; }

 private:
  SyntheticNmnistConfig config_;
};

/// Render digit `d` (0-9) as a seven-segment glyph into `mask` (H*W) at
/// integer offset (dx, dy). Exposed for tests.
void render_seven_segment(size_t digit, long dx, long dy, size_t height, size_t width,
                          std::vector<uint8_t>& mask);

}  // namespace snntest::data
