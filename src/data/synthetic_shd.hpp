// Synthetic Spiking Heidelberg Digits stand-in (DESIGN.md §2.2).
//
// SHD converts spoken digits (German + English) into spike trains over 700
// cochlear channels. We keep the structure — spatio-temporal formant
// trajectories over a bank of frequency channels — at 64 channels: each of
// the 20 classes ("zero".."nine" x 2 languages) is a fixed set of 3 chirp
// trajectories (start channel, slope, curvature) drawn once from a
// class-seeded generator; per-sample jitter shifts channels and stretches
// time, and Bernoulli noise models spontaneous cochlear activity.
#pragma once

#include "data/dataset.hpp"

namespace snntest::data {

struct SyntheticShdConfig {
  size_t count = 1000;  // divisible by 20 keeps classes balanced
  size_t channels = 64;
  size_t num_steps = 25;
  uint64_t seed = 303;
  double spike_probability = 0.85;  // per trajectory per step
  double noise_density = 0.006;
};

class SyntheticShd final : public Dataset {
 public:
  explicit SyntheticShd(SyntheticShdConfig config = {});

  std::string name() const override { return "synthetic-shd"; }
  size_t size() const override { return config_.count; }
  size_t num_classes() const override { return 20; }
  size_t input_size() const override { return config_.channels; }
  size_t num_steps() const override { return config_.num_steps; }
  Sample get(size_t index) const override;

  const SyntheticShdConfig& config() const { return config_; }

 private:
  struct Trajectory {
    double start_channel;
    double slope;      // channels per step
    double curvature;  // channels per step^2
  };

  std::vector<Trajectory> class_template(size_t label) const;

  SyntheticShdConfig config_;
};

}  // namespace snntest::data
