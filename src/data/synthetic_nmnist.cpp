#include "data/synthetic_nmnist.hpp"

#include <array>
#include <stdexcept>

namespace snntest::data {
namespace {

// Seven-segment encoding per digit; segments: 0=top, 1=top-right, 2=bottom-
// right, 3=bottom, 4=bottom-left, 5=top-left, 6=middle.
constexpr std::array<uint8_t, 10> kSegments = {
    0b0111111,  // 0
    0b0000110,  // 1
    0b1011011,  // 2
    0b1001111,  // 3
    0b1100110,  // 4
    0b1101101,  // 5
    0b1111101,  // 6
    0b0000111,  // 7
    0b1111111,  // 8
    0b1101111,  // 9
};

void fill_rect(std::vector<uint8_t>& mask, size_t height, size_t width, long x0, long y0, long x1,
               long y1) {
  for (long y = y0; y <= y1; ++y) {
    if (y < 0 || y >= static_cast<long>(height)) continue;
    for (long x = x0; x <= x1; ++x) {
      if (x < 0 || x >= static_cast<long>(width)) continue;
      mask[static_cast<size_t>(y) * width + static_cast<size_t>(x)] = 1;
    }
  }
}

}  // namespace

void render_seven_segment(size_t digit, long dx, long dy, size_t height, size_t width,
                          std::vector<uint8_t>& mask) {
  if (digit > 9) throw std::invalid_argument("render_seven_segment: digit must be 0-9");
  mask.assign(height * width, 0);
  // Glyph box ~ 8 wide x 12 tall, anchored near the canvas center.
  const long gx = static_cast<long>(width) / 2 - 4 + dx;
  const long gy = static_cast<long>(height) / 2 - 6 + dy;
  const long w = 7;   // glyph width - 1
  const long h = 11;  // glyph height - 1
  const uint8_t segs = kSegments[digit];
  // horizontal segments: 2px thick bars
  if (segs & (1u << 0)) fill_rect(mask, height, width, gx, gy, gx + w, gy + 1);          // top
  if (segs & (1u << 6)) fill_rect(mask, height, width, gx, gy + h / 2, gx + w, gy + h / 2 + 1);
  if (segs & (1u << 3)) fill_rect(mask, height, width, gx, gy + h - 1, gx + w, gy + h);  // bottom
  // vertical segments
  if (segs & (1u << 5)) fill_rect(mask, height, width, gx, gy, gx + 1, gy + h / 2);          // TL
  if (segs & (1u << 1)) fill_rect(mask, height, width, gx + w - 1, gy, gx + w, gy + h / 2);  // TR
  if (segs & (1u << 4)) fill_rect(mask, height, width, gx, gy + h / 2, gx + 1, gy + h);      // BL
  if (segs & (1u << 2)) fill_rect(mask, height, width, gx + w - 1, gy + h / 2, gx + w, gy + h);
}

SyntheticNmnist::SyntheticNmnist(SyntheticNmnistConfig config) : config_(config) {
  if (config.height < 14 || config.width < 10) {
    throw std::invalid_argument("SyntheticNmnist: canvas too small for the glyph");
  }
}

Sample SyntheticNmnist::get(size_t index) const {
  if (index >= config_.count) throw std::out_of_range("SyntheticNmnist::get: bad index");
  const size_t digit = index % num_classes();
  util::Rng rng(config_.seed * 0x9E3779B97F4A7C15ull + index * 0xD1B54A32D192ED03ull + 1);
  // Per-sample saccade: a triangular camera path visiting three offsets, as
  // in NMNIST's three saccades.
  const long base_dx = rng.uniform_int(-2, 2);
  const long base_dy = rng.uniform_int(-1, 1);
  const std::array<std::pair<long, long>, 4> waypoints = {
      std::pair<long, long>{0, 0}, {2, 1}, {0, 2}, {-2, 0}};

  DvsConfig dvs;
  dvs.height = config_.height;
  dvs.width = config_.width;
  dvs.num_steps = config_.num_steps;
  dvs.event_dropout = config_.event_dropout;
  dvs.noise_density = config_.noise_density;

  const size_t T = config_.num_steps;
  auto frame = [&](size_t t, std::vector<uint8_t>& mask) {
    // piecewise-linear interpolation along the saccade path
    const double progress = static_cast<double>(t) / static_cast<double>(T) * 3.0;
    const size_t seg = std::min<size_t>(2, static_cast<size_t>(progress));
    const double frac = progress - static_cast<double>(seg);
    const long dx = base_dx + waypoints[seg].first +
                    static_cast<long>(frac * static_cast<double>(waypoints[seg + 1].first -
                                                                 waypoints[seg].first));
    const long dy = base_dy + waypoints[seg].second +
                    static_cast<long>(frac * static_cast<double>(waypoints[seg + 1].second -
                                                                 waypoints[seg].second));
    render_seven_segment(digit, dx, dy, config_.height, config_.width, mask);
  };
  Sample sample;
  sample.input = dvs_encode(dvs, frame, rng);
  sample.label = digit;
  return sample;
}

}  // namespace snntest::data
