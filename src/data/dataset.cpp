#include "data/dataset.hpp"

#include <stdexcept>

namespace snntest::data {

DatasetSlice::DatasetSlice(std::shared_ptr<const Dataset> base, size_t offset, size_t count)
    : base_(std::move(base)), offset_(offset), count_(count) {
  if (!base_) throw std::invalid_argument("DatasetSlice: null base");
  if (offset_ + count_ > base_->size()) {
    throw std::out_of_range("DatasetSlice: range exceeds base dataset size");
  }
}

std::string DatasetSlice::name() const {
  return base_->name() + "[" + std::to_string(offset_) + ":" +
         std::to_string(offset_ + count_) + "]";
}

Sample DatasetSlice::get(size_t index) const {
  if (index >= count_) throw std::out_of_range("DatasetSlice::get: index out of range");
  return base_->get(offset_ + index);
}

TrainTestSplit split(std::shared_ptr<const Dataset> base, size_t train_count, size_t test_count) {
  TrainTestSplit out;
  out.train = std::make_shared<DatasetSlice>(base, 0, train_count);
  out.test = std::make_shared<DatasetSlice>(base, train_count, test_count);
  return out;
}

std::vector<size_t> label_histogram(const Dataset& ds) {
  std::vector<size_t> hist(ds.num_classes(), 0);
  for (size_t i = 0; i < ds.size(); ++i) {
    const size_t label = ds.get(i).label;
    if (label >= hist.size()) throw std::logic_error("label_histogram: label out of range");
    ++hist[label];
  }
  return hist;
}

}  // namespace snntest::data
