#include "snn/pool_layer.hpp"

#include <stdexcept>

namespace snntest::snn {

SumPoolLayer::SumPoolLayer(SumPoolSpec spec, LifParams params)
    : spec_(spec), lif_(spec.output_size(), params) {
  if (spec.window == 0 || spec.out_height() == 0 || spec.out_width() == 0) {
    throw std::invalid_argument("SumPoolLayer: window does not fit input");
  }
}

std::string SumPoolLayer::name() const {
  return "sumpool(" + std::to_string(spec_.channels) + "x" + std::to_string(spec_.in_height) +
         "x" + std::to_string(spec_.in_width) + ",w" + std::to_string(spec_.window) + ")";
}

void SumPoolLayer::pool_frame(const float* in, float* syn) const {
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  for (size_t c = 0; c < spec_.channels; ++c) {
    const float* in_base = in + c * spec_.in_height * spec_.in_width;
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        float acc = 0.0f;
        for (size_t wy = 0; wy < spec_.window; ++wy) {
          const size_t iy = oy * spec_.window + wy;
          for (size_t wx = 0; wx < spec_.window; ++wx) {
            acc += in_base[iy * spec_.in_width + ox * spec_.window + wx];
          }
        }
        syn[(c * oh + oy) * ow + ox] = acc;
      }
    }
  }
}

void SumPoolLayer::forward_into(const Tensor& in, bool record_traces, Tensor& out) {
  if (in.shape().rank() != 2 || in.shape().dim(1) != spec_.input_size()) {
    throw std::invalid_argument("SumPoolLayer::forward: bad input shape " +
                                in.shape().to_string());
  }
  const size_t T = in.shape().dim(0);
  out.resize_zero(Shape{T, lif_.size()});
  lif_.begin_run(T, record_traces);
  syn_scratch_.resize(lif_.size());
  std::vector<float>& syn = syn_scratch_;
  for (size_t t = 0; t < T; ++t) {
    pool_frame(in.row(t), syn.data());
    lif_.step(syn.data(), out.row(t));
  }
}

float SumPoolLayer::frontier_synapse(const float* in_frame, const float* /*prev_out_frame*/,
                                     size_t neuron) const {
  // One window of pool_frame: float accumulation in the identical
  // ascending (wy, wx) order.
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  const size_t c = neuron / (oh * ow);
  const size_t oy = (neuron / ow) % oh;
  const size_t ox = neuron % ow;
  const float* in_base = in_frame + c * spec_.in_height * spec_.in_width;
  float acc = 0.0f;
  for (size_t wy = 0; wy < spec_.window; ++wy) {
    const size_t iy = oy * spec_.window + wy;
    for (size_t wx = 0; wx < spec_.window; ++wx) {
      acc += in_base[iy * spec_.in_width + ox * spec_.window + wx];
    }
  }
  return acc;
}

void SumPoolLayer::frontier_synapse_frame(const float* in_frame,
                                          const float* /*prev_out_frame*/, float* syn) const {
  pool_frame(in_frame, syn);
}

bool SumPoolLayer::frontier_fanout(size_t in_index, std::vector<uint32_t>& out) const {
  // Non-overlapping windows: a pixel feeds at most one pool neuron (none
  // when it falls outside the fitted windows).
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  const size_t plane = spec_.in_height * spec_.in_width;
  const size_t c = in_index / plane;
  const size_t rem = in_index % plane;
  const size_t oy = (rem / spec_.in_width) / spec_.window;
  const size_t ox = (rem % spec_.in_width) / spec_.window;
  if (oy < oh && ox < ow) {
    out.push_back(static_cast<uint32_t>((c * oh + oy) * ow + ox));
  }
  return true;
}

Tensor SumPoolLayer::backward(const Tensor& grad_out) {
  const size_t T = grad_out.shape().dim(0);
  Tensor grad_syn(Shape{T, lif_.size()});
  lif_.backward(grad_out.data(), T, surrogate_, grad_syn.data());
  Tensor grad_in(Shape{T, spec_.input_size()});
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  for (size_t t = 0; t < T; ++t) {
    const float* gs = grad_syn.row(t);
    float* gi = grad_in.row(t);
    for (size_t c = 0; c < spec_.channels; ++c) {
      float* gi_base = gi + c * spec_.in_height * spec_.in_width;
      for (size_t oy = 0; oy < oh; ++oy) {
        for (size_t ox = 0; ox < ow; ++ox) {
          const float g = gs[(c * oh + oy) * ow + ox];
          if (g == 0.0f) continue;
          for (size_t wy = 0; wy < spec_.window; ++wy) {
            const size_t iy = oy * spec_.window + wy;
            for (size_t wx = 0; wx < spec_.window; ++wx) {
              gi_base[iy * spec_.in_width + ox * spec_.window + wx] += g;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::unique_ptr<Layer> SumPoolLayer::clone() const {
  return std::make_unique<SumPoolLayer>(*this);
}

}  // namespace snntest::snn
