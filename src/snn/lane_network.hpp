// Lane-batched layer execution for parallel fault simulation (DESIGN.md §12).
//
// The campaign engine packs up to W same-layer faults into one multi-lane
// pass: every lane shares the identical fault-free prefix and the identical
// weights, so each layer streams its weight matrix once per frame and feeds
// W per-lane accumulators (tensor/ops.hpp lane kernels), with per-lane
// membrane/refractory state and per-lane spike output.
//
// Bit-identity discipline: a lane must produce exactly the spike train the
// scalar engine produces for that lane's fault.
//  * At the fault layer the input is shared (golden prefix), so the fault-
//    free synaptic frame is computed once with the scalar kernels and
//    broadcast; a lane's synapse fault only changes the rows/outputs it
//    touches, and those are recomputed per lane with the faulty value
//    substituted in the scalar accumulation order (ordered double sums).
//  * At the layers after the fault the weights are fault-free and shared;
//    the lane-strided kernels accumulate each lane's ordered double sum
//    exactly like the scalar kernels (see tensor/ops.hpp), and the sparse
//    variants gather over the union of the lanes' active sets (the skipped
//    terms are exact +/-0.0 for every lane).
//  * Neuron faults never touch the synaptic frame: LaneLif applies a
//    per-lane single-neuron parameter override inside the (elementwise)
//    LIF update, replicating fault/injector.cpp's perturbed values.
//
// Layering note: this header knows nothing about fault descriptors — the
// campaign side resolves fault::FaultDescriptor into the plain LaneFault
// PODs below (fault/lane_injector.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "snn/network.hpp"
#include "tensor/ops.hpp"

namespace snntest::snn {

/// Hard upper bound on lanes per batch (fixed accumulator arrays in the
/// lane kernels); campaign::EngineConfig::lane_width is clamped to this.
inline constexpr size_t kMaxLaneWidth = tensor::kMaxLanes;

/// Per-lane override of one neuron's LIF parameters — the resolved effect
/// of a neuron fault, applied to a single lane during LaneLif::step.
struct LaneNeuronOverride {
  bool active = false;
  uint32_t neuron = 0;
  float threshold = 0.0f;
  float leak = 0.0f;
  int refractory = 0;
  NeuronMode mode = NeuronMode::kNormal;
};

/// Per-lane synaptic perturbation at the fault layer — the resolved effect
/// of a synapse fault (the faulty stored value, not a delta, so the
/// affected row is recomputed exactly as the scalar path computes it).
struct LaneSynapseFault {
  enum class Kind : uint8_t {
    kNone = 0,
    kWeight = 1,           // dense / recurrent feed-forward weight (param 0)
    kRecurrentWeight = 2,  // recurrent lateral weight (param 1)
    kConvWeight = 3,       // conv stored kernel tap
    kConvConnection = 4,   // conv single-connection override
  };
  Kind kind = Kind::kNone;
  size_t index = 0;      // flat weight index within the faulted parameter
  float value = 0.0f;    // faulty stored-weight value
  size_t out_index = 0;  // conv connection endpoints
  size_t in_index = 0;
  float delta = 0.0f;    // conv connection: effective - stored weight
};

/// One lane's fault. At most one of {neuron, synapse} is active
/// (single-fault assumption, as in fault/injector.hpp).
struct LaneFault {
  LaneNeuronOverride neuron;
  LaneSynapseFault synapse;
};

/// Lane-strided LIF state: element (neuron i, lane l) lives at
/// state[i*lanes + l]. The update is elementwise, so each lane replays the
/// scalar LifBank::step float expressions exactly; shared per-neuron
/// parameters come from the (fault-free) reference bank, with at most one
/// per-lane neuron override.
class LaneLif {
 public:
  /// Bind to `bank` (borrowed; must outlive the run) and reset state for a
  /// fresh window. `faults` is null (no overrides) or length `lanes`.
  void reset(const LifBank& bank, size_t lanes, const LaneFault* faults);
  void step(const float* syn_lanes, float* out_lanes);
  /// Drop lanes with keep[l] == 0 (retirement compaction).
  void compact(const uint8_t* keep);

  size_t lanes() const { return lanes_; }

 private:
  void rebuild_override_map();

  const LifBank* bank_ = nullptr;
  size_t n_ = 0;
  size_t lanes_ = 0;
  std::array<LaneNeuronOverride, kMaxLaneWidth> override_{};
  /// Per-neuron flag: some lane overrides this neuron. Empty when no lane
  /// has an override, which keeps step() on the hoisted fast path.
  std::vector<uint8_t> overridden_;
  std::vector<float> u_;       // [n * lanes]
  std::vector<int> refrac_;    // [n * lanes]
};

/// Runs one layer of a (const, fault-free) network over a window for W
/// lanes, one timestep at a time, so the caller can interleave per-frame
/// detection checks and lane retirement. Reusable: reset() rebinds without
/// reallocating scratch.
class LaneLayerRun {
 public:
  /// `layer` is borrowed and never mutated. `faults` is null for a
  /// downstream (fault-free) layer, else length `lanes` — per-lane faults
  /// of THIS layer. `mode` picks dense/sparse kernels per frame
  /// (bit-identical either way).
  void reset(const Layer& layer, size_t lanes, const LaneFault* faults, KernelMode mode);

  size_t lanes() const { return lanes_; }

  /// Advance one timestep from a SHARED input frame [num_inputs] — the
  /// fault-layer entry point (every lane sees the golden prefix).
  /// `out_lanes` receives the lane-strided spike frame [num_neurons*lanes].
  void step_shared(const float* in_frame, float* out_lanes);

  /// Advance one timestep from a lane-strided input frame
  /// [num_inputs*lanes] — the downstream-layer entry point.
  void step_lanes(const float* in_lanes, float* out_lanes);

  /// Drop lanes with keep[l] == 0: compacts LIF state, recurrent feedback
  /// and the per-lane fault table. Call between timesteps only.
  void compact(const uint8_t* keep);

 private:
  void broadcast_base(float* syn_lanes) const;
  /// `num_active` is the length of the input frame's active set in
  /// `active_` (SIZE_MAX when none was extracted): weight-fault row
  /// recomputes then walk only the active columns — bit-identical, the
  /// skipped terms are exact +/-0.0 contributions.
  void apply_shared_synapse_faults(const float* in_frame, size_t num_active, float* syn_lanes);
  void synaptic_lanes(const float* in_lanes, float* syn_lanes);
  void finish_step(float* out_lanes);

  const Layer* layer_ = nullptr;
  size_t lanes_ = 0;
  size_t n_ = 0;  // num_neurons
  KernelMode mode_ = KernelMode::kAuto;
  size_t t_ = 0;
  bool has_synapse_faults_ = false;
  std::vector<LaneFault> faults_;  // per-lane, compacted along with state
  LaneLif lif_;
  std::vector<float> base_;       // shared fault-free syn frame [n]
  std::vector<float> syn_;        // lane-strided syn frame [n*lanes]
  std::vector<float> prev_out_;   // recurrent feedback [n*lanes]
  std::vector<float> chan_;       // conv channel-recompute scratch [oh*ow]
  std::vector<double> acc_;       // conv lane scatter accumulators [n*lanes]
  std::vector<uint32_t> active_;  // per-frame active / union-active indices
};

}  // namespace snntest::snn
