// Network persistence.
//
// Trained benchmark models are cached on disk (examples/benches train once
// and reuse); generated test stimuli are stored separately (see
// core/test_stimulus.hpp) — the paper's in-field use case stores the compact
// test on-chip (Sec. I).
#pragma once

#include <iosfwd>
#include <string>

#include "snn/network.hpp"

namespace snntest::snn {

void save_network(const Network& net, std::ostream& os);
void save_network(const Network& net, const std::string& path);

/// Throws std::runtime_error on a malformed or version-mismatched stream.
Network load_network(std::istream& is);
Network load_network(const std::string& path);

}  // namespace snntest::snn
