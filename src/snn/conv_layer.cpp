#include "snn/conv_layer.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace snntest::snn {

ConvLayer::ConvLayer(Conv2dSpec spec, LifParams params)
    : spec_(spec),
      lif_(spec.output_size(), params),
      weights_(spec.weight_count(), 0.0f),
      weight_grads_(spec.weight_count(), 0.0f) {
  if (spec.kernel == 0 || spec.stride == 0) {
    throw std::invalid_argument("ConvLayer: kernel and stride must be > 0");
  }
  if (spec.in_height + 2 * spec.padding < spec.kernel ||
      spec.in_width + 2 * spec.padding < spec.kernel) {
    throw std::invalid_argument("ConvLayer: kernel larger than padded input");
  }
}

std::string ConvLayer::name() const {
  return "conv(" + std::to_string(spec_.in_channels) + "x" + std::to_string(spec_.in_height) +
         "x" + std::to_string(spec_.in_width) + "->" + std::to_string(spec_.out_channels) + "x" +
         std::to_string(spec_.out_height()) + "x" + std::to_string(spec_.out_width()) + ",k" +
         std::to_string(spec_.kernel) + ",s" + std::to_string(spec_.stride) + ")";
}

size_t ConvLayer::num_connections() const {
  // Every (output position, kernel tap) pair that lands inside the input is
  // one physical connection. Padding taps connect to nothing.
  size_t count = 0;
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  for (size_t oy = 0; oy < oh; ++oy) {
    for (size_t ox = 0; ox < ow; ++ox) {
      for (size_t ky = 0; ky < spec_.kernel; ++ky) {
        const long iy = static_cast<long>(oy * spec_.stride + ky) - static_cast<long>(spec_.padding);
        if (iy < 0 || iy >= static_cast<long>(spec_.in_height)) continue;
        for (size_t kx = 0; kx < spec_.kernel; ++kx) {
          const long ix =
              static_cast<long>(ox * spec_.stride + kx) - static_cast<long>(spec_.padding);
          if (ix < 0 || ix >= static_cast<long>(spec_.in_width)) continue;
          ++count;
        }
      }
    }
  }
  return count * spec_.out_channels * spec_.in_channels;
}

void ConvLayer::init_weights(util::Rng& rng, float gain) {
  const float fan_in = static_cast<float>(spec_.in_channels * spec_.kernel * spec_.kernel);
  const float bound = gain * lif_.defaults().threshold * 3.0f / std::sqrt(fan_in);
  for (auto& w : weights_) w = static_cast<float>(rng.uniform(-bound, bound));
}

void ConvLayer::conv_forward_frame(const float* in, float* syn) const {
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  const size_t k = spec_.kernel;
  for (size_t oc = 0; oc < spec_.out_channels; ++oc) {
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        double acc = 0.0;
        for (size_t ic = 0; ic < spec_.in_channels; ++ic) {
          const float* w_base = weights_.data() + ((oc * spec_.in_channels + ic) * k) * k;
          const float* in_base = in + ic * spec_.in_height * spec_.in_width;
          for (size_t ky = 0; ky < k; ++ky) {
            const long iy =
                static_cast<long>(oy * spec_.stride + ky) - static_cast<long>(spec_.padding);
            if (iy < 0 || iy >= static_cast<long>(spec_.in_height)) continue;
            for (size_t kx = 0; kx < k; ++kx) {
              const long ix =
                  static_cast<long>(ox * spec_.stride + kx) - static_cast<long>(spec_.padding);
              if (ix < 0 || ix >= static_cast<long>(spec_.in_width)) continue;
              acc += static_cast<double>(w_base[ky * k + kx]) *
                     in_base[iy * static_cast<long>(spec_.in_width) + ix];
            }
          }
        }
        syn[(oc * oh + oy) * ow + ox] = static_cast<float>(acc);
      }
    }
  }
}

void ConvLayer::conv_forward_frame_sparse(const float* in, const uint32_t* active,
                                          size_t num_active, float* syn) {
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  const size_t k = spec_.kernel;
  const size_t out_size = spec_.output_size();
  const size_t plane = spec_.in_height * spec_.in_width;
  const long stride = static_cast<long>(spec_.stride);
  syn_acc_.assign(out_size, 0.0);
  for (size_t i = 0; i < num_active; ++i) {
    const size_t flat = active[i];
    const size_t ic = flat / plane;
    const size_t rem = flat % plane;
    const size_t iy = rem / spec_.in_width;
    const size_t ix = rem % spec_.in_width;
    const double val = in[flat];
    for (size_t oc = 0; oc < spec_.out_channels; ++oc) {
      const float* w_base = weights_.data() + ((oc * spec_.in_channels + ic) * k) * k;
      double* acc_base = syn_acc_.data() + oc * oh * ow;
      for (size_t ky = 0; ky < k; ++ky) {
        // oy * stride + ky - padding == iy, so the tap is live only when the
        // division below is exact and the output row is in range.
        const long num_y = static_cast<long>(iy + spec_.padding) - static_cast<long>(ky);
        if (num_y < 0 || num_y % stride != 0) continue;
        const long oy = num_y / stride;
        if (oy >= static_cast<long>(oh)) continue;
        for (size_t kx = 0; kx < k; ++kx) {
          const long num_x = static_cast<long>(ix + spec_.padding) - static_cast<long>(kx);
          if (num_x < 0 || num_x % stride != 0) continue;
          const long ox = num_x / stride;
          if (ox >= static_cast<long>(ow)) continue;
          acc_base[oy * static_cast<long>(ow) + ox] +=
              static_cast<double>(w_base[ky * k + kx]) * val;
        }
      }
    }
  }
  for (size_t o = 0; o < out_size; ++o) syn[o] = static_cast<float>(syn_acc_[o]);
}

void ConvLayer::conv_backward_frame(const float* in, const float* grad_syn, float* grad_in) {
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  const size_t k = spec_.kernel;
  for (size_t oc = 0; oc < spec_.out_channels; ++oc) {
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        const float g = grad_syn[(oc * oh + oy) * ow + ox];
        if (g == 0.0f) continue;
        for (size_t ic = 0; ic < spec_.in_channels; ++ic) {
          float* wg_base = weight_grads_.data() + ((oc * spec_.in_channels + ic) * k) * k;
          const float* w_base = weights_.data() + ((oc * spec_.in_channels + ic) * k) * k;
          const float* in_base = in + ic * spec_.in_height * spec_.in_width;
          float* gin_base = grad_in + ic * spec_.in_height * spec_.in_width;
          for (size_t ky = 0; ky < k; ++ky) {
            const long iy =
                static_cast<long>(oy * spec_.stride + ky) - static_cast<long>(spec_.padding);
            if (iy < 0 || iy >= static_cast<long>(spec_.in_height)) continue;
            for (size_t kx = 0; kx < k; ++kx) {
              const long ix =
                  static_cast<long>(ox * spec_.stride + kx) - static_cast<long>(spec_.padding);
              if (ix < 0 || ix >= static_cast<long>(spec_.in_width)) continue;
              const long in_idx = iy * static_cast<long>(spec_.in_width) + ix;
              wg_base[ky * k + kx] += g * in_base[in_idx];
              gin_base[in_idx] += g * w_base[ky * k + kx];
            }
          }
        }
      }
    }
  }
}

void ConvLayer::conv_backward_input_frame(const float* grad_syn, float* grad_in) const {
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  const size_t k = spec_.kernel;
  for (size_t oc = 0; oc < spec_.out_channels; ++oc) {
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        const float g = grad_syn[(oc * oh + oy) * ow + ox];
        if (g == 0.0f) continue;
        for (size_t ic = 0; ic < spec_.in_channels; ++ic) {
          const float* w_base = weights_.data() + ((oc * spec_.in_channels + ic) * k) * k;
          float* gin_base = grad_in + ic * spec_.in_height * spec_.in_width;
          for (size_t ky = 0; ky < k; ++ky) {
            const long iy =
                static_cast<long>(oy * spec_.stride + ky) - static_cast<long>(spec_.padding);
            if (iy < 0 || iy >= static_cast<long>(spec_.in_height)) continue;
            for (size_t kx = 0; kx < k; ++kx) {
              const long ix =
                  static_cast<long>(ox * spec_.stride + kx) - static_cast<long>(spec_.padding);
              if (ix < 0 || ix >= static_cast<long>(spec_.in_width)) continue;
              gin_base[iy * static_cast<long>(spec_.in_width) + ix] += g * w_base[ky * k + kx];
            }
          }
        }
      }
    }
  }
}

void ConvLayer::conv_backward_weight_frame(const float* in, const float* grad_syn) {
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  const size_t k = spec_.kernel;
  for (size_t oc = 0; oc < spec_.out_channels; ++oc) {
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        const float g = grad_syn[(oc * oh + oy) * ow + ox];
        if (g == 0.0f) continue;
        for (size_t ic = 0; ic < spec_.in_channels; ++ic) {
          float* wg_base = weight_grads_.data() + ((oc * spec_.in_channels + ic) * k) * k;
          const float* in_base = in + ic * spec_.in_height * spec_.in_width;
          for (size_t ky = 0; ky < k; ++ky) {
            const long iy =
                static_cast<long>(oy * spec_.stride + ky) - static_cast<long>(spec_.padding);
            if (iy < 0 || iy >= static_cast<long>(spec_.in_height)) continue;
            for (size_t kx = 0; kx < k; ++kx) {
              const long ix =
                  static_cast<long>(ox * spec_.stride + kx) - static_cast<long>(spec_.padding);
              if (ix < 0 || ix >= static_cast<long>(spec_.in_width)) continue;
              wg_base[ky * k + kx] += g * in_base[iy * static_cast<long>(spec_.in_width) + ix];
            }
          }
        }
      }
    }
  }
}

void ConvLayer::conv_backward_weight_frame_sparse(const float* in, const uint32_t* active,
                                                  size_t num_active, const float* grad_syn) {
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  const size_t k = spec_.kernel;
  const size_t plane = spec_.in_height * spec_.in_width;
  const long stride = static_cast<long>(spec_.stride);
  // Ordering argument: for one tap (oc, ic, ky, kx) the dense sweep visits
  // contributing outputs in ascending (oy, ox); here the pixels ascend in
  // flat (ic, iy, ix) order and oy / ox are monotone in iy / ix, so each tap
  // accumulator sees the identical term sequence.
  for (size_t i = 0; i < num_active; ++i) {
    const size_t flat = active[i];
    const size_t ic = flat / plane;
    const size_t rem = flat % plane;
    const size_t iy = rem / spec_.in_width;
    const size_t ix = rem % spec_.in_width;
    const float val = in[flat];
    for (size_t oc = 0; oc < spec_.out_channels; ++oc) {
      float* wg_base = weight_grads_.data() + ((oc * spec_.in_channels + ic) * k) * k;
      const float* g_base = grad_syn + oc * oh * ow;
      for (size_t ky = 0; ky < k; ++ky) {
        const long num_y = static_cast<long>(iy + spec_.padding) - static_cast<long>(ky);
        if (num_y < 0 || num_y % stride != 0) continue;
        const long oy = num_y / stride;
        if (oy >= static_cast<long>(oh)) continue;
        for (size_t kx = 0; kx < k; ++kx) {
          const long num_x = static_cast<long>(ix + spec_.padding) - static_cast<long>(kx);
          if (num_x < 0 || num_x % stride != 0) continue;
          const long ox = num_x / stride;
          if (ox >= static_cast<long>(ow)) continue;
          const float g = g_base[oy * static_cast<long>(ow) + ox];
          if (g == 0.0f) continue;  // mirror the dense path's grad_syn skip
          wg_base[ky * k + kx] += g * val;
        }
      }
    }
  }
}

size_t ConvLayer::tap_index(size_t out_index, size_t in_index) const {
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  if (out_index >= spec_.output_size() || in_index >= spec_.input_size()) {
    throw std::invalid_argument("ConvLayer: connection index out of range");
  }
  const size_t oc = out_index / (oh * ow);
  const size_t oy = (out_index / ow) % oh;
  const size_t ox = out_index % ow;
  const size_t ic = in_index / (spec_.in_height * spec_.in_width);
  const size_t iy = (in_index / spec_.in_width) % spec_.in_height;
  const size_t ix = in_index % spec_.in_width;
  const long ky = static_cast<long>(iy) + static_cast<long>(spec_.padding) -
                  static_cast<long>(oy * spec_.stride);
  const long kx = static_cast<long>(ix) + static_cast<long>(spec_.padding) -
                  static_cast<long>(ox * spec_.stride);
  if (ky < 0 || kx < 0 || ky >= static_cast<long>(spec_.kernel) ||
      kx >= static_cast<long>(spec_.kernel)) {
    throw std::invalid_argument("ConvLayer: neurons are not connected");
  }
  return ((oc * spec_.in_channels + ic) * spec_.kernel + static_cast<size_t>(ky)) *
             spec_.kernel +
         static_cast<size_t>(kx);
}

float ConvLayer::connection_weight(size_t out_index, size_t in_index) const {
  return weights_[tap_index(out_index, in_index)];
}

void ConvLayer::set_connection_override(size_t out_index, size_t in_index, float new_weight) {
  const float stored = connection_weight(out_index, in_index);
  override_.out_index = out_index;
  override_.in_index = in_index;
  override_.delta = new_weight - stored;
  override_.active = true;
}

void ConvLayer::clear_connection_override() { override_.active = false; }

void ConvLayer::forward_into(const Tensor& in, bool record_traces, Tensor& out) {
  if (in.shape().rank() != 2 || in.shape().dim(1) != spec_.input_size()) {
    throw std::invalid_argument("ConvLayer::forward: expected [T, " +
                                std::to_string(spec_.input_size()) + "], got " +
                                in.shape().to_string());
  }
  const size_t T = in.shape().dim(0);
  out.resize_zero(Shape{T, lif_.size()});
  lif_.begin_run(T, record_traces);
  syn_scratch_.resize(lif_.size());
  std::vector<float>& syn = syn_scratch_;
  const KernelMode mode = kernel_mode_;
  const bool obs_on = obs::telemetry_enabled();
  if (obs_on) kernel_obs_.ensure_bound(name());
  for (size_t t = 0; t < T; ++t) {
    if (mode == KernelMode::kDense) {
      conv_forward_frame(in.row(t), syn.data());
      if (obs_on) kernel_obs_.record_dense_frame();
    } else {
      const auto view = tensor::make_frame_view(in.row(t), spec_.input_size(), active_scratch_);
      const bool use_sparse =
          mode == KernelMode::kSparse || sparse_frame_wins(view.num_active, view.size);
      if (obs_on) kernel_obs_.record_frame(view.num_active, view.size, use_sparse);
      if (use_sparse) {
        conv_forward_frame_sparse(view.frame, view.active, view.num_active, syn.data());
      } else {
        conv_forward_frame(in.row(t), syn.data());
      }
    }
    if (override_.active) {
      // connection-granularity fault: adjust exactly one synapse's effect
      syn[override_.out_index] += override_.delta * in.row(t)[override_.in_index];
    }
    lif_.step(syn.data(), out.row(t));
  }
  if (record_traces) saved_input_ = in;
}

float ConvLayer::frontier_synapse(const float* in_frame, const float* /*prev_out_frame*/,
                                  size_t neuron) const {
  // One output of conv_forward_frame's (oc, oy, ox) gather, same (ic, ky,
  // kx) term order and cast point; an active connection override lands on
  // top exactly like forward_into applies it.
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  const size_t k = spec_.kernel;
  const size_t oc = neuron / (oh * ow);
  const size_t oy = (neuron / ow) % oh;
  const size_t ox = neuron % ow;
  double acc = 0.0;
  for (size_t ic = 0; ic < spec_.in_channels; ++ic) {
    const float* w_base = weights_.data() + ((oc * spec_.in_channels + ic) * k) * k;
    const float* in_base = in_frame + ic * spec_.in_height * spec_.in_width;
    for (size_t ky = 0; ky < k; ++ky) {
      const long iy = static_cast<long>(oy * spec_.stride + ky) - static_cast<long>(spec_.padding);
      if (iy < 0 || iy >= static_cast<long>(spec_.in_height)) continue;
      for (size_t kx = 0; kx < k; ++kx) {
        const long ix =
            static_cast<long>(ox * spec_.stride + kx) - static_cast<long>(spec_.padding);
        if (ix < 0 || ix >= static_cast<long>(spec_.in_width)) continue;
        acc += static_cast<double>(w_base[ky * k + kx]) *
               in_base[iy * static_cast<long>(spec_.in_width) + ix];
      }
    }
  }
  float syn = static_cast<float>(acc);
  if (override_.active && neuron == override_.out_index) {
    syn += override_.delta * in_frame[override_.in_index];
  }
  return syn;
}

void ConvLayer::frontier_synapse_frame(const float* in_frame, const float* /*prev_out_frame*/,
                                       float* syn) const {
  conv_forward_frame(in_frame, syn);
  if (override_.active) {
    syn[override_.out_index] += override_.delta * in_frame[override_.in_index];
  }
}

bool ConvLayer::frontier_fanout(size_t in_index, std::vector<uint32_t>& out) const {
  // Receptive-field inverse: every (oc, oy, ox) with a live kernel tap on
  // input pixel (ic, iy, ix) — same tap-liveness arithmetic as the sparse
  // scatter kernel (conv_forward_frame_sparse).
  const size_t oh = spec_.out_height();
  const size_t ow = spec_.out_width();
  const size_t k = spec_.kernel;
  const size_t plane = spec_.in_height * spec_.in_width;
  const long stride = static_cast<long>(spec_.stride);
  const size_t rem = in_index % plane;
  const size_t iy = rem / spec_.in_width;
  const size_t ix = rem % spec_.in_width;
  for (size_t ky = 0; ky < k; ++ky) {
    const long num_y = static_cast<long>(iy + spec_.padding) - static_cast<long>(ky);
    if (num_y < 0 || num_y % stride != 0) continue;
    const long oy = num_y / stride;
    if (oy >= static_cast<long>(oh)) continue;
    for (size_t kx = 0; kx < k; ++kx) {
      const long num_x = static_cast<long>(ix + spec_.padding) - static_cast<long>(kx);
      if (num_x < 0 || num_x % stride != 0) continue;
      const long ox = num_x / stride;
      if (ox >= static_cast<long>(ow)) continue;
      for (size_t oc = 0; oc < spec_.out_channels; ++oc) {
        out.push_back(static_cast<uint32_t>((oc * oh + static_cast<size_t>(oy)) * ow +
                                            static_cast<size_t>(ox)));
      }
    }
  }
  return true;
}

bool ConvLayer::frontier_weight_fanout(size_t param, size_t index,
                                       std::vector<uint32_t>& out) const {
  if (param != 0 || index >= weights_.size()) return false;
  // A stored kernel tap is shared by every output position of its channel.
  const size_t positions = spec_.out_height() * spec_.out_width();
  const size_t oc = index / (spec_.in_channels * spec_.kernel * spec_.kernel);
  for (size_t p = 0; p < positions; ++p) {
    out.push_back(static_cast<uint32_t>(oc * positions + p));
  }
  return true;
}

Tensor ConvLayer::backward(const Tensor& grad_out) {
  const size_t T = grad_out.shape().dim(0);
  if (saved_input_.empty() || saved_input_.shape().dim(0) != T) {
    throw std::logic_error("ConvLayer::backward without matching recorded forward");
  }
  Tensor grad_syn(Shape{T, lif_.size()});
  lif_.backward(grad_out.data(), T, surrogate_, grad_syn.data());
  Tensor grad_in(Shape{T, spec_.input_size()});
  const KernelMode mode = kernel_mode_;
  for (size_t t = 0; t < T; ++t) {
    const float* in = saved_input_.row(t);
    const float* gs = grad_syn.row(t);
    float* gi = grad_in.row(t);
    if (mode == KernelMode::kDense && param_grads_enabled_) {
      conv_backward_frame(in, gs, gi);  // fused seed path
    } else {
      // Split halves: grad_in is inherently dense in the input pixels, but
      // the weight-gradient half only receives terms from active pixels, so
      // it can go event-driven per frame. Both halves keep the fused path's
      // per-accumulator term order (bit-identical, see conv_layer.hpp).
      conv_backward_input_frame(gs, gi);
      if (param_grads_enabled_) {
        const auto view = tensor::make_frame_view(in, spec_.input_size(), active_scratch_);
        if (mode == KernelMode::kSparse || sparse_frame_wins(view.num_active, view.size)) {
          conv_backward_weight_frame_sparse(view.frame, view.active, view.num_active, gs);
        } else {
          conv_backward_weight_frame(in, gs);
        }
      }
    }
    if (override_.active) {
      // Forward used the overridden effective weight (stored + delta) for
      // this one connection, so the input gradient must carry the delta too.
      // The stored-weight gradient is unchanged: d(syn)/d(w_stored) is still
      // the input value when the fault is an additive constant on the weight.
      grad_in.row(t)[override_.in_index] +=
          override_.delta * grad_syn.row(t)[override_.out_index];
    }
  }
  return grad_in;
}

std::vector<ParamView> ConvLayer::params() {
  return {{weights_.data(), weight_grads_.data(), weights_.size(), "kernel"}};
}

std::unique_ptr<Layer> ConvLayer::clone() const { return std::make_unique<ConvLayer>(*this); }

}  // namespace snntest::snn
