// Leaky Integrate-and-Fire neuron bank.
//
// Implements the discrete-time LIF dynamics of paper Sec. II (Fig. 1):
// the membrane potential integrates weighted input spikes, leaks
// multiplicatively each step, fires when it crosses the threshold, resets,
// and enters a refractory period during which incoming spikes are dropped.
//
// One `LifBank` holds all neurons of one layer, with *per-neuron* parameter
// vectors so the fault injector can perturb a single neuron's threshold,
// leak or refractory period (timing-variation faults, Sec. III) or force its
// output dead/saturated without touching its siblings.
//
// Backward pass: surrogate-gradient BPTT with detached reset. Notation:
//   u_pre[t]  = leak * u_post[t-1] + syn[t]      (membrane after integration)
//   s[t]      = H(u_pre[t] - threshold)
//   u_post[t] = s[t] ? reset : u_pre[t]
// A refractory step freezes u_post at reset and emits no spike, cutting the
// gradient chain (u no longer depends on its past).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "snn/surrogate.hpp"

namespace snntest::snn {

/// Behavioural operating mode of a neuron; kDead / kSaturated are the
/// extreme neuron fault models of Sec. III.
enum class NeuronMode : uint8_t {
  kNormal = 0,
  kDead = 1,       // halts spike propagation: output forced to 0
  kSaturated = 2,  // fires non-stop regardless of input
};

/// Nominal LIF parameters shared by a bank at construction.
struct LifParams {
  float threshold = 1.0f;       // firing threshold θ (> 0)
  float leak = 0.9f;            // multiplicative membrane decay λ per step, in (0, 1]
  int refractory = 1;           // steps of refractoriness after a spike (>= 0)
  float reset_potential = 0.0f; // membrane value after a spike
};

/// Outcome of one neuron's single-timestep LIF update (lif_step_neuron).
struct LifStepResult {
  float spike = 0.0f;
  float u_pre = 0.0f;       // trace value: post-integration membrane, or the
                            // entering membrane when no integration happened
  bool integrated = false;  // false for dead/saturated/refractory steps
};

/// Advance ONE neuron by one timestep, mutating (u, refrac_left) in place.
/// Single source of truth for the LIF float expressions: LifBank::step and
/// the campaign frontier simulator both call this helper, so a neuron
/// resimulated from a snapshotted (u, refrac_left) reproduces the dense
/// path bit-for-bit. Must be compiled with -ffp-contract=off in every TU
/// that uses it (see src/CMakeLists.txt).
inline LifStepResult lif_step_neuron(float& u, int& refrac_left, float syn, NeuronMode mode,
                                     float threshold, float leak, int refractory,
                                     float reset_potential) {
  LifStepResult r;
  r.u_pre = u;
  switch (mode) {
    case NeuronMode::kDead:
      // Dead neuron halts propagation: no output ever. Membrane is left
      // untouched — the hardware cell produces no events either way.
      break;
    case NeuronMode::kSaturated:
      // Saturated neuron fires non-stop even with zero input (Sec. III).
      r.spike = 1.0f;
      break;
    case NeuronMode::kNormal: {
      if (refrac_left > 0) {
        // Refractory: incoming spikes are dropped, membrane stays at reset.
        --refrac_left;
        u = reset_potential;
      } else {
        r.integrated = true;
        const float u_pre = leak * u + syn;
        r.u_pre = u_pre;
        if (u_pre >= threshold) {
          r.spike = 1.0f;
          u = reset_potential;
          refrac_left = refractory;
        } else {
          u = u_pre;
        }
      }
      break;
    }
  }
  return r;
}

/// State + traces for a bank of `n` LIF neurons advanced one timestep at a
/// time. The forward traces are retained (when recording) for BPTT.
class LifBank {
 public:
  LifBank(size_t n, LifParams defaults);

  size_t size() const { return n_; }
  const LifParams& defaults() const { return defaults_; }

  // --- per-neuron parameters (fault-injection access points) ---
  std::vector<float>& thresholds() { return threshold_; }
  std::vector<float>& leaks() { return leak_; }
  std::vector<int>& refractories() { return refractory_; }
  std::vector<NeuronMode>& modes() { return mode_; }
  const std::vector<float>& thresholds() const { return threshold_; }
  const std::vector<float>& leaks() const { return leak_; }
  const std::vector<int>& refractories() const { return refractory_; }
  const std::vector<NeuronMode>& modes() const { return mode_; }

  /// Restore all per-neuron parameters/modes to the construction defaults.
  void restore_defaults();

  // --- simulation ---

  /// Reset membrane/refractory state and (re)allocate traces for a run of
  /// `T` steps. Must be called before the first `step` of a window.
  void begin_run(size_t num_steps, bool record_traces);

  /// Advance one timestep: `syn` is the frame of synaptic currents
  /// (length n), `spikes_out` receives 0/1 (length n).
  void step(const float* syn, float* spikes_out);

  size_t steps_run() const { return t_; }
  bool recording() const { return recording_; }

  // --- recorded traces (valid after a recording run; time-major [T, n]) ---
  // Read-only access for external gradient references: the gradient-check
  // harness (tests/test_gradcheck.cpp) replays the window in double
  // precision with the branch decisions (spike / integrated) frozen to
  // these traces.
  const std::vector<float>& trace_u_pre() const { return trace_u_pre_; }
  const std::vector<uint8_t>& trace_spikes() const { return trace_spike_; }
  const std::vector<uint8_t>& trace_integrated() const { return trace_integrated_; }

  // --- BPTT (requires a recorded forward run of exactly T steps) ---

  /// Full-window backward: grad_spikes and grad_syn are [T, n] time-major.
  /// grad_syn is overwritten with dL/d(synaptic current).
  void backward(const float* grad_spikes, size_t num_steps, const SurrogateConfig& surrogate,
                float* grad_syn) const;

  /// Stepwise backward for layers with temporal recurrence. Call
  /// `step(t, ...)` strictly for t = T-1, T-2, ..., 0.
  class Backward {
   public:
    Backward(const LifBank& bank, const SurrogateConfig& surrogate, size_t num_steps);
    /// grad_spike_t: dL/ds[t] (length n); grad_syn_t receives dL/dsyn[t].
    void step(size_t t, const float* grad_spike_t, float* grad_syn_t);

   private:
    const LifBank& bank_;
    SurrogateConfig surrogate_;
    size_t num_steps_;
    std::vector<float> carry_;  // dL/du_post[t] flowing backwards
  };

 private:
  friend class Backward;

  size_t n_;
  LifParams defaults_;
  std::vector<float> threshold_;
  std::vector<float> leak_;
  std::vector<int> refractory_;
  std::vector<NeuronMode> mode_;

  // runtime state
  std::vector<float> u_;
  std::vector<int> refrac_left_;
  size_t t_ = 0;
  size_t planned_steps_ = 0;
  bool recording_ = false;

  // traces, time-major [T, n]
  std::vector<float> trace_u_pre_;
  std::vector<uint8_t> trace_spike_;
  std::vector<uint8_t> trace_integrated_;
};

}  // namespace snntest::snn
