#include "snn/spike_train.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace snntest::snn {
namespace {

void require_train(const Tensor& t, const char* what) {
  if (t.shape().rank() != 2) {
    throw std::invalid_argument(std::string(what) + ": spike train must be rank-2 [T, N]");
  }
}

}  // namespace

std::vector<size_t> spike_counts(const Tensor& train) {
  require_train(train, "spike_counts");
  const size_t T = train.shape().dim(0);
  const size_t n = train.shape().dim(1);
  std::vector<size_t> counts(n, 0);
  for (size_t t = 0; t < T; ++t) {
    const float* row = train.data() + t * n;
    for (size_t i = 0; i < n; ++i) counts[i] += row[i] > 0.5f;
  }
  return counts;
}

std::vector<size_t> temporal_diversity(const Tensor& train) {
  require_train(train, "temporal_diversity");
  const size_t T = train.shape().dim(0);
  const size_t n = train.shape().dim(1);
  std::vector<size_t> td(n, 0);
  for (size_t t = 1; t < T; ++t) {
    const float* prev = train.data() + (t - 1) * n;
    const float* cur = train.data() + t * n;
    for (size_t i = 0; i < n; ++i) td[i] += (cur[i] > 0.5f) != (prev[i] > 0.5f);
  }
  return td;
}

double activation_fraction(const Tensor& train, size_t min_spikes) {
  const auto counts = spike_counts(train);
  if (counts.empty()) return 0.0;
  size_t active = 0;
  for (size_t c : counts) active += c >= min_spikes;
  return static_cast<double>(active) / static_cast<double>(counts.size());
}

size_t total_spikes(const Tensor& train) { return train.count_nonzero(); }

double spike_density(const Tensor& train) {
  if (train.numel() == 0) return 0.0;
  return static_cast<double>(train.count_nonzero()) / static_cast<double>(train.numel());
}

Tensor random_spike_train(size_t num_steps, size_t num_neurons, double density, util::Rng& rng) {
  Tensor train(Shape{num_steps, num_neurons});
  float* data = train.data();
  for (size_t i = 0; i < train.numel(); ++i) data[i] = rng.bernoulli(density) ? 1.0f : 0.0f;
  return train;
}

Tensor concat_time(const std::vector<Tensor>& trains) {
  if (trains.empty()) throw std::invalid_argument("concat_time: empty list");
  const size_t n = trains.front().shape().dim(1);
  size_t total_steps = 0;
  for (const auto& t : trains) {
    require_train(t, "concat_time");
    if (t.shape().dim(1) != n) throw std::invalid_argument("concat_time: width mismatch");
    total_steps += t.shape().dim(0);
  }
  Tensor out(Shape{total_steps, n});
  size_t offset = 0;
  for (const auto& t : trains) {
    std::copy(t.data(), t.data() + t.numel(), out.data() + offset);
    offset += t.numel();
  }
  return out;
}

Tensor zero_train(size_t num_steps, size_t num_neurons) {
  return Tensor(Shape{num_steps, num_neurons});
}

double output_distance(const Tensor& a, const Tensor& b) { return tensor::l1_distance(a, b); }

std::string ascii_raster(const Tensor& train, size_t max_neurons, size_t max_steps) {
  require_train(train, "ascii_raster");
  const size_t T = std::min(train.shape().dim(0), max_steps);
  const size_t n = std::min(train.shape().dim(1), max_neurons);
  std::string out;
  out.reserve((T + 1) * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t t = 0; t < T; ++t) {
      out.push_back(train.at(t, i) > 0.5f ? '#' : '.');
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace snntest::snn
