#include "snn/dense_layer.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace snntest::snn {

DenseLayer::DenseLayer(size_t num_inputs, size_t num_neurons, LifParams params)
    : num_inputs_(num_inputs),
      lif_(num_neurons, params),
      weights_(num_inputs * num_neurons, 0.0f),
      weight_grads_(num_inputs * num_neurons, 0.0f) {
  if (num_inputs == 0 || num_neurons == 0) {
    throw std::invalid_argument("DenseLayer: zero-sized layer");
  }
}

std::string DenseLayer::name() const {
  return "dense(" + std::to_string(num_inputs_) + "->" + std::to_string(lif_.size()) + ")";
}

void DenseLayer::init_weights(util::Rng& rng, float gain) {
  // Uniform in [-b, b] with b chosen so the expected drive from a moderately
  // active input frame is on the order of the firing threshold.
  const float bound =
      gain * lif_.defaults().threshold * 3.0f / std::sqrt(static_cast<float>(num_inputs_));
  for (auto& w : weights_) w = static_cast<float>(rng.uniform(-bound, bound));
}

void DenseLayer::forward_into(const Tensor& in, bool record_traces, Tensor& out) {
  if (in.shape().rank() != 2 || in.shape().dim(1) != num_inputs_) {
    throw std::invalid_argument("DenseLayer::forward: expected [T, " +
                                std::to_string(num_inputs_) + "], got " + in.shape().to_string());
  }
  const size_t T = in.shape().dim(0);
  out.resize_zero(Shape{T, lif_.size()});
  lif_.begin_run(T, record_traces);
  syn_scratch_.resize(lif_.size());
  std::vector<float>& syn = syn_scratch_;
  const KernelMode mode = kernel_mode_;
  const bool obs_on = obs::telemetry_enabled();
  if (obs_on) kernel_obs_.ensure_bound(name());
  for (size_t t = 0; t < T; ++t) {
    std::fill(syn.begin(), syn.end(), 0.0f);
    if (mode == KernelMode::kDense) {
      tensor::matvec_accumulate(weights_.data(), lif_.size(), num_inputs_, in.row(t), syn.data());
      if (obs_on) kernel_obs_.record_dense_frame();
    } else {
      const auto view = tensor::make_frame_view(in.row(t), num_inputs_, active_scratch_);
      const bool use_sparse =
          mode == KernelMode::kSparse || sparse_frame_wins(view.num_active, view.size);
      if (obs_on) kernel_obs_.record_frame(view.num_active, view.size, use_sparse);
      if (use_sparse) {
        tensor::matvec_accumulate_gather(weights_.data(), lif_.size(), num_inputs_, view.frame,
                                         view.active, view.num_active, syn.data());
      } else {
        tensor::matvec_accumulate(weights_.data(), lif_.size(), num_inputs_, in.row(t),
                                  syn.data());
      }
    }
    lif_.step(syn.data(), out.row(t));
  }
  if (record_traces) saved_input_ = in;
}

float DenseLayer::frontier_synapse(const float* in_frame, const float* /*prev_out_frame*/,
                                   size_t neuron) const {
  // Row `neuron` of the dense matvec, with the same zero-initialised
  // float destination and cast point as tensor::matvec_accumulate (the
  // sparse/gather kernels are bit-identical to it by DESIGN.md §9).
  const float* row = weights_.data() + neuron * num_inputs_;
  double acc = 0.0;
  for (size_t c = 0; c < num_inputs_; ++c) acc += static_cast<double>(row[c]) * in_frame[c];
  float syn = 0.0f;
  syn += static_cast<float>(acc);
  return syn;
}

void DenseLayer::frontier_synapse_frame(const float* in_frame, const float* /*prev_out_frame*/,
                                        float* syn) const {
  std::fill(syn, syn + lif_.size(), 0.0f);
  tensor::matvec_accumulate(weights_.data(), lif_.size(), num_inputs_, in_frame, syn);
}

bool DenseLayer::frontier_fanout(size_t /*in_index*/, std::vector<uint32_t>& /*out*/) const {
  return false;  // every neuron reads every input
}

bool DenseLayer::frontier_weight_fanout(size_t param, size_t index,
                                        std::vector<uint32_t>& out) const {
  if (param != 0 || index >= weights_.size()) return false;
  out.push_back(static_cast<uint32_t>(index / num_inputs_));
  return true;
}

Tensor DenseLayer::backward(const Tensor& grad_out) {
  const size_t T = grad_out.shape().dim(0);
  if (saved_input_.empty() || saved_input_.shape().dim(0) != T) {
    throw std::logic_error("DenseLayer::backward without matching recorded forward");
  }
  // 1) LIF backward: dL/dspike -> dL/dsyn for the whole window.
  Tensor grad_syn(Shape{T, lif_.size()});
  lif_.backward(grad_out.data(), T, surrogate_, grad_syn.data());
  // 2) Propagate through the weight matrix.
  Tensor grad_in(Shape{T, num_inputs_});
  const KernelMode mode = kernel_mode_;
  for (size_t t = 0; t < T; ++t) {
    if (param_grads_enabled_) {
      const float* in_row = saved_input_.row(t);
      if (mode == KernelMode::kDense) {
        tensor::outer_accumulate(weight_grads_.data(), lif_.size(), num_inputs_, grad_syn.row(t),
                                 in_row, 1.0f);
      } else {
        // dL/dW[i,j] = sum_t grad_syn[t,i] * s_in[t,j]: only the active
        // input columns of the frame contribute (bit-identical skip, see
        // outer_accumulate_gather).
        const auto view = tensor::make_frame_view(in_row, num_inputs_, active_scratch_);
        if (mode == KernelMode::kSparse || sparse_frame_wins(view.num_active, view.size)) {
          tensor::outer_accumulate_gather(weight_grads_.data(), lif_.size(), num_inputs_,
                                          grad_syn.row(t), view.frame, view.active,
                                          view.num_active, 1.0f);
        } else {
          tensor::outer_accumulate(weight_grads_.data(), lif_.size(), num_inputs_,
                                   grad_syn.row(t), in_row, 1.0f);
        }
      }
    }
    // dL/d(input) flows through W^T into every input column (silent columns
    // carry gradient too), so it stays dense in the columns; its row loop
    // already skips zero grad_syn entries.
    tensor::matvec_transpose_accumulate(weights_.data(), lif_.size(), num_inputs_,
                                        grad_syn.row(t), grad_in.row(t));
  }
  return grad_in;
}

std::vector<ParamView> DenseLayer::params() {
  return {{weights_.data(), weight_grads_.data(), weights_.size(), "weight"}};
}

std::unique_ptr<Layer> DenseLayer::clone() const { return std::make_unique<DenseLayer>(*this); }

}  // namespace snntest::snn
