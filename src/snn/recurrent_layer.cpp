#include "snn/recurrent_layer.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace snntest::snn {

RecurrentLayer::RecurrentLayer(size_t num_inputs, size_t num_neurons, LifParams params)
    : num_inputs_(num_inputs),
      lif_(num_neurons, params),
      weights_(num_inputs * num_neurons, 0.0f),
      recurrent_(num_neurons * num_neurons, 0.0f),
      weight_grads_(num_inputs * num_neurons, 0.0f),
      recurrent_grads_(num_neurons * num_neurons, 0.0f) {
  if (num_inputs == 0 || num_neurons == 0) {
    throw std::invalid_argument("RecurrentLayer: zero-sized layer");
  }
}

std::string RecurrentLayer::name() const {
  return "recurrent(" + std::to_string(num_inputs_) + "->" + std::to_string(lif_.size()) + ")";
}

void RecurrentLayer::init_weights(util::Rng& rng, float gain, float recurrent_gain) {
  const float bound =
      gain * lif_.defaults().threshold * 3.0f / std::sqrt(static_cast<float>(num_inputs_));
  for (auto& w : weights_) w = static_cast<float>(rng.uniform(-bound, bound));
  const float rbound =
      recurrent_gain * lif_.defaults().threshold / std::sqrt(static_cast<float>(lif_.size()));
  for (auto& w : recurrent_) w = static_cast<float>(rng.uniform(-rbound, rbound));
  // No self-loops: a neuron does not synapse onto itself.
  for (size_t i = 0; i < lif_.size(); ++i) recurrent_[i * lif_.size() + i] = 0.0f;
}

void RecurrentLayer::forward_into(const Tensor& in, bool record_traces, Tensor& out) {
  if (in.shape().rank() != 2 || in.shape().dim(1) != num_inputs_) {
    throw std::invalid_argument("RecurrentLayer::forward: bad input shape " +
                                in.shape().to_string());
  }
  const size_t T = in.shape().dim(0);
  const size_t n = lif_.size();
  out.resize_zero(Shape{T, n});
  lif_.begin_run(T, record_traces);
  syn_scratch_.resize(n);
  std::vector<float>& syn = syn_scratch_;
  const KernelMode mode = kernel_mode_;
  // Both the feed-forward input and the lateral feedback are spike trains,
  // so each matvec independently picks the sparse gather when its frame is
  // sparse enough (bit-identical either way; see tensor/ops.hpp).
  std::vector<uint32_t> active;
  const bool obs_on = obs::telemetry_enabled();
  if (obs_on) kernel_obs_.ensure_bound(name());
  auto accumulate = [&](const float* w, size_t cols, const float* x) {
    if (mode == KernelMode::kDense) {
      tensor::matvec_accumulate(w, n, cols, x, syn.data());
      if (obs_on) kernel_obs_.record_dense_frame();
      return;
    }
    const auto view = tensor::make_frame_view(x, cols, active);
    const bool use_sparse =
        mode == KernelMode::kSparse || sparse_frame_wins(view.num_active, view.size);
    if (obs_on) kernel_obs_.record_frame(view.num_active, view.size, use_sparse);
    if (use_sparse) {
      tensor::matvec_accumulate_gather(w, n, cols, view.frame, view.active, view.num_active,
                                       syn.data());
    } else {
      tensor::matvec_accumulate(w, n, cols, x, syn.data());
    }
  };
  for (size_t t = 0; t < T; ++t) {
    std::fill(syn.begin(), syn.end(), 0.0f);
    accumulate(weights_.data(), num_inputs_, in.row(t));
    if (t > 0) {
      accumulate(recurrent_.data(), n, out.row(t - 1));
    }
    lif_.step(syn.data(), out.row(t));
  }
  if (record_traces) {
    saved_input_ = in;
    saved_output_ = out;
  }
}

float RecurrentLayer::frontier_synapse(const float* in_frame, const float* prev_out_frame,
                                       size_t neuron) const {
  // forward_into adds TWO separately rounded matvec contributions into the
  // zeroed syn frame (feed-forward, then lateral when t > 0); replicate
  // both cast points exactly.
  const size_t n = lif_.size();
  float syn = 0.0f;
  {
    const float* row = weights_.data() + neuron * num_inputs_;
    double acc = 0.0;
    for (size_t c = 0; c < num_inputs_; ++c) acc += static_cast<double>(row[c]) * in_frame[c];
    syn += static_cast<float>(acc);
  }
  if (prev_out_frame != nullptr) {
    const float* row = recurrent_.data() + neuron * n;
    double acc = 0.0;
    for (size_t c = 0; c < n; ++c) acc += static_cast<double>(row[c]) * prev_out_frame[c];
    syn += static_cast<float>(acc);
  }
  return syn;
}

void RecurrentLayer::frontier_synapse_frame(const float* in_frame, const float* prev_out_frame,
                                            float* syn) const {
  const size_t n = lif_.size();
  std::fill(syn, syn + n, 0.0f);
  tensor::matvec_accumulate(weights_.data(), n, num_inputs_, in_frame, syn);
  if (prev_out_frame != nullptr) {
    tensor::matvec_accumulate(recurrent_.data(), n, n, prev_out_frame, syn);
  }
}

bool RecurrentLayer::frontier_fanout(size_t /*in_index*/, std::vector<uint32_t>& /*out*/) const {
  return false;  // dense fan-out (and the lateral matrix couples everything)
}

bool RecurrentLayer::frontier_weight_fanout(size_t param, size_t index,
                                            std::vector<uint32_t>& out) const {
  if (param == 0 && index < weights_.size()) {
    out.push_back(static_cast<uint32_t>(index / num_inputs_));
    return true;
  }
  if (param == 1 && index < recurrent_.size()) {
    out.push_back(static_cast<uint32_t>(index / lif_.size()));
    return true;
  }
  return false;
}

Tensor RecurrentLayer::backward(const Tensor& grad_out) {
  const size_t T = grad_out.shape().dim(0);
  const size_t n = lif_.size();
  if (saved_input_.empty() || saved_input_.shape().dim(0) != T) {
    throw std::logic_error("RecurrentLayer::backward without matching recorded forward");
  }
  Tensor grad_in(Shape{T, num_inputs_});
  // dL/ds[t] accumulates the external gradient plus the recurrent credit
  // V^T * dL/dsyn[t+1], so the LIF backward must run stepwise from the end.
  std::vector<float> grad_spike(n);
  std::vector<float> grad_syn(n);
  // Both saved spike trains are sparse; each rank-1 weight-grad update can
  // therefore gather over the active columns of its frame (bit-identical,
  // see outer_accumulate_gather). The transpose matvecs stay dense in the
  // columns — every presynaptic channel can carry input gradient.
  const KernelMode mode = kernel_mode_;
  auto outer = [&](float* grads, size_t cols, const float* frame) {
    if (mode == KernelMode::kDense) {
      tensor::outer_accumulate(grads, n, cols, grad_syn.data(), frame, 1.0f);
      return;
    }
    const auto view = tensor::make_frame_view(frame, cols, active_scratch_);
    if (mode == KernelMode::kSparse || sparse_frame_wins(view.num_active, view.size)) {
      tensor::outer_accumulate_gather(grads, n, cols, grad_syn.data(), view.frame, view.active,
                                      view.num_active, 1.0f);
    } else {
      tensor::outer_accumulate(grads, n, cols, grad_syn.data(), frame, 1.0f);
    }
  };
  LifBank::Backward bw(lif_, surrogate_, T);
  for (size_t t = T; t-- > 0;) {
    // grad_spike currently holds V^T grad_syn[t+1] (zero at t = T-1).
    const float* g_ext = grad_out.row(t);
    for (size_t i = 0; i < n; ++i) grad_spike[i] += g_ext[i];
    bw.step(t, grad_spike.data(), grad_syn.data());
    // Parameter gradients for timestep t.
    if (param_grads_enabled_) outer(weight_grads_.data(), num_inputs_, saved_input_.row(t));
    tensor::matvec_transpose_accumulate(weights_.data(), n, num_inputs_, grad_syn.data(),
                                        grad_in.row(t));
    std::fill(grad_spike.begin(), grad_spike.end(), 0.0f);
    if (t > 0) {
      if (param_grads_enabled_) outer(recurrent_grads_.data(), n, saved_output_.row(t - 1));
      // Credit into s_out[t-1] for the next (earlier) iteration.
      tensor::matvec_transpose_accumulate(recurrent_.data(), n, n, grad_syn.data(),
                                          grad_spike.data());
    }
  }
  return grad_in;
}

std::vector<ParamView> RecurrentLayer::params() {
  return {{weights_.data(), weight_grads_.data(), weights_.size(), "weight"},
          {recurrent_.data(), recurrent_grads_.data(), recurrent_.size(), "recurrent"}};
}

std::unique_ptr<Layer> RecurrentLayer::clone() const {
  return std::make_unique<RecurrentLayer>(*this);
}

}  // namespace snntest::snn
