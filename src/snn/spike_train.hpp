// Spike-train utilities shared by the loss functions, the fault-coverage
// evaluation and the benches.
//
// A spike train is a binary Tensor [T, N] time-major (Sec. IV-A: I(i,j)=1
// iff neuron i receives/emits a spike at time t_j).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace snntest::snn {

using tensor::Shape;
using tensor::Tensor;

/// Per-neuron spike counts |O^{l,i}| of one train [T, N] -> length N.
std::vector<size_t> spike_counts(const Tensor& train);

/// Temporal diversity TD of each neuron (Eq. (11)): number of 0<->1 state
/// changes of its output over the window.
std::vector<size_t> temporal_diversity(const Tensor& train);

/// Fraction of neurons with >= min_spikes spikes.
double activation_fraction(const Tensor& train, size_t min_spikes = 1);

/// Total spikes in the train.
size_t total_spikes(const Tensor& train);

/// Mean firing density: spikes / (T*N).
double spike_density(const Tensor& train);

/// Random Bernoulli spike train (used by the random-input baseline [20] and
/// by tests).
Tensor random_spike_train(size_t num_steps, size_t num_neurons, double density, util::Rng& rng);

/// Concatenate trains along time; all must share N.
Tensor concat_time(const std::vector<Tensor>& trains);

/// Zero train ("sleep" input 0^j of Eq. (7)).
Tensor zero_train(size_t num_steps, size_t num_neurons);

/// L1 distance between two output trains (Eq. (3) detection criterion).
double output_distance(const Tensor& a, const Tensor& b);

/// ASCII raster ('.' = silent, '#' = spike) for small trains — used by the
/// figure benches for qualitative snapshots. Rows are neurons, columns time.
std::string ascii_raster(const Tensor& train, size_t max_neurons = 32, size_t max_steps = 80);

}  // namespace snntest::snn
