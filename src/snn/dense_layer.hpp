// Fully connected spiking layer: syn[t] = W * s_in[t], then LIF dynamics.
#pragma once

#include "snn/layer.hpp"
#include "util/rng.hpp"

namespace snntest::snn {

class DenseLayer final : public Layer {
 public:
  /// Weights are stored row-major [num_neurons, num_inputs]; weight (i, j)
  /// is the synapse from presynaptic channel j to neuron i.
  DenseLayer(size_t num_inputs, size_t num_neurons, LifParams params);

  /// Kaiming-style uniform init scaled by threshold so a typical input
  /// frame can drive neurons over threshold within a few steps.
  void init_weights(util::Rng& rng, float gain = 1.0f);

  LayerKind kind() const override { return LayerKind::kDense; }
  std::string name() const override;
  size_t num_inputs() const override { return num_inputs_; }
  size_t num_neurons() const override { return lif_.size(); }
  size_t num_weights() const override { return weights_.size(); }
  size_t num_connections() const override { return weights_.size(); }

  void forward_into(const Tensor& in, bool record_traces, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;

  bool frontier_supported() const override { return true; }
  float frontier_synapse(const float* in_frame, const float* prev_out_frame,
                         size_t neuron) const override;
  void frontier_synapse_frame(const float* in_frame, const float* prev_out_frame,
                              float* syn) const override;
  bool frontier_fanout(size_t in_index, std::vector<uint32_t>& out) const override;
  bool frontier_weight_fanout(size_t param, size_t index,
                              std::vector<uint32_t>& out) const override;

  std::vector<ParamView> params() override;
  LifBank& lif() override { return lif_; }
  const LifBank& lif() const override { return lif_; }
  std::unique_ptr<Layer> clone() const override;

  std::vector<float>& weights() { return weights_; }
  const std::vector<float>& weights() const { return weights_; }

 private:
  size_t num_inputs_;
  LifBank lif_;
  std::vector<float> weights_;
  std::vector<float> weight_grads_;
  Tensor saved_input_;  // [T, num_inputs], kept when recording traces
  std::vector<uint32_t> active_scratch_;  // per-frame active indices (sparse path)
  std::vector<float> syn_scratch_;        // per-frame synaptic currents (no realloc per window)
};

}  // namespace snntest::snn
