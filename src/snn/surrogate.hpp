// Surrogate gradients for the non-differentiable spike function.
//
// The spike is a Heaviside step s = H(u - θ); its derivative is replaced by
// a smooth pseudo-derivative during backpropagation, exactly as done by
// SLAYER-style surrogate-gradient training (paper Sec. IV-C3: "the same
// backpropagation pipeline that is used during the training of the SNN").
#pragma once

#include <cstdint>

namespace snntest::snn {

enum class SurrogateKind : uint8_t {
  kFastSigmoid,  // 1 / (alpha*|x| + 1)^2            (Zenke & Ganguli)
  kAtan,         // 1 / (1 + (pi*alpha*x/2)^2) * alpha/2
  kRectangular,  // alpha/2 within |x| < 1/alpha, else 0
};

struct SurrogateConfig {
  SurrogateKind kind = SurrogateKind::kFastSigmoid;
  /// Slope/steepness of the pseudo-derivative around the threshold.
  float alpha = 2.0f;
};

/// Pseudo-derivative dH/dx evaluated at x = u - threshold.
float surrogate_derivative(const SurrogateConfig& config, float x);

}  // namespace snntest::snn
