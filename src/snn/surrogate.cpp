#include "snn/surrogate.hpp"

#include <cmath>
#include <numbers>

namespace snntest::snn {

float surrogate_derivative(const SurrogateConfig& config, float x) {
  switch (config.kind) {
    case SurrogateKind::kFastSigmoid: {
      const float d = config.alpha * std::fabs(x) + 1.0f;
      return 1.0f / (d * d);
    }
    case SurrogateKind::kAtan: {
      const float z = 0.5f * std::numbers::pi_v<float> * config.alpha * x;
      return 0.5f * config.alpha / (1.0f + z * z);
    }
    case SurrogateKind::kRectangular: {
      return std::fabs(x) < 1.0f / config.alpha ? 0.5f * config.alpha : 0.0f;
    }
  }
  return 0.0f;
}

}  // namespace snntest::snn
