#include "snn/network.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace snntest::snn {

size_t ForwardResult::spike_count(size_t layer, size_t neuron) const {
  const Tensor& o = layer_outputs.at(layer);
  const size_t T = o.shape().dim(0);
  const size_t n = o.shape().dim(1);
  if (neuron >= n) throw std::out_of_range("ForwardResult::spike_count: bad neuron index");
  size_t count = 0;
  for (size_t t = 0; t < T; ++t) count += o.data()[t * n + neuron] > 0.5f;
  return count;
}

size_t ForwardResult::total_spikes() const {
  size_t count = 0;
  for (const auto& o : layer_outputs) count += o.count_nonzero();
  return count;
}

std::vector<size_t> ForwardResult::output_counts() const {
  const Tensor& o = output();
  const size_t T = o.shape().dim(0);
  const size_t n = o.shape().dim(1);
  std::vector<size_t> counts(n, 0);
  for (size_t t = 0; t < T; ++t) {
    const float* row = o.data() + t * n;
    for (size_t i = 0; i < n; ++i) counts[i] += row[i] > 0.5f;
  }
  return counts;
}

std::vector<size_t> ForwardResult::output_first_spike_times() const {
  const Tensor& o = output();
  const size_t T = o.shape().dim(0);
  const size_t n = o.shape().dim(1);
  std::vector<size_t> first(n, T);
  for (size_t t = 0; t < T; ++t) {
    const float* row = o.data() + t * n;
    for (size_t i = 0; i < n; ++i) {
      if (first[i] == T && row[i] > 0.5f) first[i] = t;
    }
  }
  return first;
}

size_t ForwardResult::predicted_class() const {
  const auto counts = output_counts();
  size_t best = 0;
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  return best;
}

size_t ForwardResult::predicted_class(Decoding decoding) const {
  if (decoding == Decoding::kRate) return predicted_class();
  const auto first = output_first_spike_times();
  const auto counts = output_counts();
  size_t best = 0;
  for (size_t i = 1; i < first.size(); ++i) {
    if (first[i] < first[best] || (first[i] == first[best] && counts[i] > counts[best])) {
      best = i;
    }
  }
  return best;
}

Network::Network(const Network& other) : name_(other.name_) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Network& Network::operator=(const Network& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  return *this;
}

void Network::add_layer(std::unique_ptr<Layer> layer) {
  if (!layers_.empty() && layer->num_inputs() != layers_.back()->num_neurons()) {
    throw std::invalid_argument("Network::add_layer: " + layer->name() + " expects " +
                                std::to_string(layer->num_inputs()) + " inputs but previous layer " +
                                layers_.back()->name() + " has " +
                                std::to_string(layers_.back()->num_neurons()) + " neurons");
  }
  layers_.push_back(std::move(layer));
}

size_t Network::input_size() const {
  if (layers_.empty()) throw std::logic_error("Network::input_size: empty network");
  return layers_.front()->num_inputs();
}

size_t Network::output_size() const {
  if (layers_.empty()) throw std::logic_error("Network::output_size: empty network");
  return layers_.back()->num_neurons();
}

size_t Network::total_neurons() const {
  size_t n = 0;
  for (const auto& l : layers_) n += l->num_neurons();
  return n;
}

size_t Network::total_weights() const {
  size_t n = 0;
  for (const auto& l : layers_) n += l->num_weights();
  return n;
}

size_t Network::total_connections() const {
  size_t n = 0;
  for (const auto& l : layers_) n += l->num_connections();
  return n;
}

std::vector<NeuronRef> Network::all_neurons() const {
  std::vector<NeuronRef> refs;
  refs.reserve(total_neurons());
  for (size_t l = 0; l < layers_.size(); ++l) {
    for (size_t i = 0; i < layers_[l]->num_neurons(); ++i) refs.push_back({l, i});
  }
  return refs;
}

std::vector<WeightRef> Network::all_weights() const {
  std::vector<WeightRef> refs;
  refs.reserve(total_weights());
  for (size_t l = 0; l < layers_.size(); ++l) {
    // params() is non-const by design (exposes grads); cast is safe here as
    // we only read sizes.
    auto params = const_cast<Layer&>(*layers_[l]).params();
    for (size_t p = 0; p < params.size(); ++p) {
      for (size_t i = 0; i < params[p].size; ++i) refs.push_back({l, p, i});
    }
  }
  return refs;
}

size_t Network::neuron_flat_index(const NeuronRef& ref) const {
  size_t base = 0;
  for (size_t l = 0; l < ref.layer; ++l) base += layers_[l]->num_neurons();
  return base + ref.index;
}

ForwardResult Network::forward(const Tensor& input, bool record_traces) {
  return forward_from(0, input, record_traces);
}

ForwardResult Network::forward_from(size_t start_layer, const Tensor& input, bool record_traces) {
  if (layers_.empty()) throw std::logic_error("Network::forward: empty network");
  if (start_layer >= layers_.size()) {
    throw std::out_of_range("Network::forward_from: start_layer " + std::to_string(start_layer) +
                            " out of range (network has " + std::to_string(layers_.size()) +
                            " layers)");
  }
  ForwardResult result;
  result.layer_outputs.reserve(layers_.size() - start_layer);
  const Tensor* current = &input;
  for (size_t l = start_layer; l < layers_.size(); ++l) {
    result.layer_outputs.push_back(layers_[l]->forward(*current, record_traces));
    current = &result.layer_outputs.back();
  }
  return result;
}

Tensor Network::backward(const std::vector<Tensor>& grad_outputs) {
  if (grad_outputs.size() != layers_.size()) {
    throw std::invalid_argument("Network::backward: need one grad tensor per layer");
  }
  Tensor grad;  // dL/dO^l flowing down, starts at the top layer
  for (size_t l = layers_.size(); l-- > 0;) {
    const Tensor& external = grad_outputs[l];
    if (grad.empty()) {
      if (external.empty()) {
        // No gradient reaches this layer yet: zero tensor of the right shape
        // would be wasted work, but this only happens for top layers without
        // loss terms, which is a configuration error worth rejecting.
        throw std::invalid_argument("Network::backward: topmost gradient is empty");
      }
      grad = external;
    } else if (!external.empty()) {
      if (external.shape() != grad.shape()) {
        throw std::invalid_argument("Network::backward: grad shape mismatch at layer " +
                                    std::to_string(l));
      }
      tensor::axpy(grad.data(), external.data(), 1.0f, grad.numel());
    }
    grad = layers_[l]->backward(grad);
  }
  return grad;
}

void Network::zero_grad() {
  for (auto& l : layers_) l->zero_grad();
}

std::vector<ParamView> Network::params() {
  std::vector<ParamView> all;
  for (auto& l : layers_) {
    for (ParamView p : l->params()) all.push_back(p);
  }
  return all;
}

void Network::restore_neuron_defaults() {
  for (auto& l : layers_) l->lif().restore_defaults();
}

void Network::set_surrogate(const SurrogateConfig& config) {
  for (auto& l : layers_) l->surrogate() = config;
}

void Network::set_kernel_mode(KernelMode mode) {
  for (auto& l : layers_) l->set_kernel_mode(mode);
}

KernelMode Network::kernel_mode() const {
  return layers_.empty() ? KernelMode::kDense : layers_.front()->kernel_mode();
}

void Network::set_param_grads_enabled(bool enabled) {
  for (auto& l : layers_) l->set_param_grads_enabled(enabled);
}

bool Network::param_grads_enabled() const {
  return layers_.empty() ? true : layers_.front()->param_grads_enabled();
}

}  // namespace snntest::snn
