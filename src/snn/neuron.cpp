#include "snn/neuron.hpp"

#include <cassert>
#include <stdexcept>

namespace snntest::snn {

LifBank::LifBank(size_t n, LifParams defaults)
    : n_(n),
      defaults_(defaults),
      threshold_(n, defaults.threshold),
      leak_(n, defaults.leak),
      refractory_(n, defaults.refractory),
      mode_(n, NeuronMode::kNormal),
      u_(n, defaults.reset_potential),
      refrac_left_(n, 0) {
  if (defaults.threshold <= 0.0f) throw std::invalid_argument("LifParams: threshold must be > 0");
  if (defaults.leak <= 0.0f || defaults.leak > 1.0f) {
    throw std::invalid_argument("LifParams: leak must be in (0, 1]");
  }
  if (defaults.refractory < 0) throw std::invalid_argument("LifParams: refractory must be >= 0");
}

void LifBank::restore_defaults() {
  for (size_t i = 0; i < n_; ++i) {
    threshold_[i] = defaults_.threshold;
    leak_[i] = defaults_.leak;
    refractory_[i] = defaults_.refractory;
    mode_[i] = NeuronMode::kNormal;
  }
}

void LifBank::begin_run(size_t num_steps, bool record_traces) {
  std::fill(u_.begin(), u_.end(), defaults_.reset_potential);
  std::fill(refrac_left_.begin(), refrac_left_.end(), 0);
  t_ = 0;
  planned_steps_ = num_steps;
  recording_ = record_traces;
  if (record_traces) {
    trace_u_pre_.assign(num_steps * n_, 0.0f);
    trace_spike_.assign(num_steps * n_, 0);
    trace_integrated_.assign(num_steps * n_, 0);
  } else {
    trace_u_pre_.clear();
    trace_spike_.clear();
    trace_integrated_.clear();
  }
}

void LifBank::step(const float* syn, float* spikes_out) {
  assert(t_ < planned_steps_ && "LifBank::step beyond planned run length");
  const size_t base = t_ * n_;
  for (size_t i = 0; i < n_; ++i) {
    const LifStepResult r = lif_step_neuron(u_[i], refrac_left_[i], syn[i], mode_[i],
                                            threshold_[i], leak_[i], refractory_[i],
                                            defaults_.reset_potential);
    spikes_out[i] = r.spike;
    if (recording_) {
      trace_u_pre_[base + i] = r.u_pre;
      trace_spike_[base + i] = r.spike > 0.5f ? 1 : 0;
      trace_integrated_[base + i] = r.integrated ? 1 : 0;
    }
  }
  ++t_;
}

LifBank::Backward::Backward(const LifBank& bank, const SurrogateConfig& surrogate,
                            size_t num_steps)
    : bank_(bank), surrogate_(surrogate), num_steps_(num_steps), carry_(bank.size(), 0.0f) {
  if (!bank.recording_ || bank.t_ < num_steps) {
    throw std::logic_error("LifBank backward requires a recorded forward run");
  }
}

void LifBank::Backward::step(size_t t, const float* grad_spike_t, float* grad_syn_t) {
  const size_t n = bank_.n_;
  const size_t base = t * n;
  for (size_t i = 0; i < n; ++i) {
    if (!bank_.trace_integrated_[base + i]) {
      // Refractory / faulted step: no synaptic integration happened and the
      // membrane was held at reset, so the chain through time is cut.
      grad_syn_t[i] = 0.0f;
      carry_[i] = 0.0f;
      continue;
    }
    const float u_pre = bank_.trace_u_pre_[base + i];
    const float surr = surrogate_derivative(surrogate_, u_pre - bank_.threshold_[i]);
    const float spiked = bank_.trace_spike_[base + i] ? 1.0f : 0.0f;
    // dL/du_pre[t] = dL/ds[t] * surrogate + dL/du_post[t] * (1 - s[t])
    // (reset is detached: the u_post -> reset branch carries no gradient).
    const float g_u_pre = grad_spike_t[i] * surr + carry_[i] * (1.0f - spiked);
    grad_syn_t[i] = g_u_pre;  // du_pre/dsyn = 1
    // into u_post[t-1]: du_pre[t]/du_post[t-1] = leak
    carry_[i] = bank_.leak_[i] * g_u_pre;
  }
}

void LifBank::backward(const float* grad_spikes, size_t num_steps,
                       const SurrogateConfig& surrogate, float* grad_syn) const {
  Backward bw(*this, surrogate, num_steps);
  for (size_t t = num_steps; t-- > 0;) {
    bw.step(t, grad_spikes + t * n_, grad_syn + t * n_);
  }
}

}  // namespace snntest::snn
