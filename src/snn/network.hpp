// Feed-forward SNN container: an ordered stack of spiking layers.
//
// Exposes exactly what the paper's algorithm needs:
//  * forward() records O = [O^1, ..., O^L], the spike train of every layer
//    (Sec. IV-A) — the loss functions L1..L5 are defined over all of them;
//  * backward() accepts a gradient w.r.t. *every* layer's output spikes and
//    backpropagates to the input spike train (Eq. (19) pipeline);
//  * global neuron/weight indexing so the fault registry can enumerate the
//    full fault universe (Sec. III).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "snn/layer.hpp"

namespace snntest::snn {

/// Output decoding scheme. The paper's algorithm is agnostic to the coding
/// scheme (Sec. I: "no assumption about the information coding scheme,
/// i.e., rate coding or time-to-first-spike coding"); both decoders are
/// provided so criticality labelling can follow whichever scheme the
/// deployed model uses.
enum class Decoding : uint8_t {
  kRate = 0,             // class = argmax spike count
  kTimeToFirstSpike = 1  // class = earliest first spike (count breaks ties)
};

/// Spike trains of every layer from one inference window.
struct ForwardResult {
  std::vector<Tensor> layer_outputs;  // layer_outputs[l] is [T, N_l]

  const Tensor& output() const { return layer_outputs.back(); }
  size_t num_layers() const { return layer_outputs.size(); }

  /// Spike count of neuron `i` in layer `l` over the window (|O^{l,i}|).
  size_t spike_count(size_t layer, size_t neuron) const;
  /// Total spikes in the window across all layers.
  size_t total_spikes() const;
  /// Per-class output spike counts (rate decoding of the prediction).
  std::vector<size_t> output_counts() const;
  /// First-spike time per output neuron (T if it never fires).
  std::vector<size_t> output_first_spike_times() const;
  /// Predicted class under rate decoding (first wins ties).
  size_t predicted_class() const;
  /// Predicted class under the chosen decoding scheme.
  size_t predicted_class(Decoding decoding) const;
};

/// Identifies one neuron in the network.
struct NeuronRef {
  size_t layer = 0;
  size_t index = 0;
  bool operator==(const NeuronRef&) const = default;
};

/// Identifies one stored weight in the network.
struct WeightRef {
  size_t layer = 0;
  size_t param = 0;  // which ParamView of the layer
  size_t index = 0;  // flat index within that ParamView
  bool operator==(const WeightRef&) const = default;
};

class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  Network(const Network& other);
  Network& operator=(const Network& other);
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Append a layer; its num_inputs must match the current output width.
  void add_layer(std::unique_ptr<Layer> layer);

  size_t num_layers() const { return layers_.size(); }
  Layer& layer(size_t l) { return *layers_[l]; }
  const Layer& layer(size_t l) const { return *layers_[l]; }

  size_t input_size() const;
  size_t output_size() const;

  size_t total_neurons() const;
  size_t total_weights() const;
  size_t total_connections() const;

  /// Enumerate all neurons / weights in a stable order.
  std::vector<NeuronRef> all_neurons() const;
  std::vector<WeightRef> all_weights() const;

  /// Flat neuron numbering (layer-major) used for activation bookkeeping.
  size_t neuron_flat_index(const NeuronRef& ref) const;

  /// Run the full window. `input` is [T, input_size] binary.
  ForwardResult forward(const Tensor& input, bool record_traces = false);

  /// Run only layers [start_layer, num_layers). `input` must be the spike
  /// train feeding `start_layer` — i.e. layer start_layer-1's output, or the
  /// network input when start_layer == 0. This is the differential
  /// fault-campaign entry point: a fault confined to layer k reuses the
  /// cached fault-free outputs of layers 0..k-1 instead of recomputing them.
  /// The returned ForwardResult::layer_outputs are indexed *relative to
  /// start_layer* (output() is still the network output).
  ForwardResult forward_from(size_t start_layer, const Tensor& input,
                             bool record_traces = false);

  /// Backpropagate. `grad_outputs[l]` is dL/dO^l, [T, N_l]; pass an empty
  /// Tensor for layers without loss terms. Accumulates weight grads and
  /// returns dL/d(input spikes) [T, input_size]. Requires a preceding
  /// forward(..., record_traces=true) on the same window length.
  Tensor backward(const std::vector<Tensor>& grad_outputs);

  void zero_grad();
  std::vector<ParamView> params();

  /// Undo every fault: restore neuron defaults in all LifBanks. (Weight
  /// faults are restored by the injector, which saves original values.)
  void restore_neuron_defaults();

  void set_surrogate(const SurrogateConfig& config);

  /// Forward-kernel selection for every layer (see KernelMode in layer.hpp).
  /// All modes produce bit-identical spike trains; kAuto exploits event
  /// sparsity per frame and is what the campaign engine / classifier /
  /// test generators run with.
  void set_kernel_mode(KernelMode mode);
  /// Mode of the first layer (all layers share one mode once set).
  KernelMode kernel_mode() const;

  /// Enable/disable parameter-gradient accumulation in every layer's
  /// backward (see Layer::set_param_grads_enabled). dL/d(input) is
  /// bit-identical either way; the input optimizer disables it because it
  /// discards dL/dW after every step.
  void set_param_grads_enabled(bool enabled);
  /// Flag of the first layer (all layers share one flag once set).
  bool param_grads_enabled() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace snntest::snn
