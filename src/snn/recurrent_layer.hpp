// Recurrent spiking layer: syn[t] = W s_in[t] + V s_out[t-1].
//
// Used by the SHD-style benchmark (audio spike trains benefit from
// recurrence; the paper's Fig. 6 network is SLAYER's SHD topology). The
// paper's algorithm explicitly claims to make "no assumption about the
// architecture ... fully connected, convolutional or recurrent", so the
// reproduction must exercise a recurrent model too.
//
// Backward is BPTT with the extra credit path through V: the gradient of
// syn[t+1] flows into s_out[t].
#pragma once

#include "snn/layer.hpp"
#include "util/rng.hpp"

namespace snntest::snn {

class RecurrentLayer final : public Layer {
 public:
  RecurrentLayer(size_t num_inputs, size_t num_neurons, LifParams params);

  void init_weights(util::Rng& rng, float gain = 1.0f, float recurrent_gain = 0.3f);

  LayerKind kind() const override { return LayerKind::kRecurrent; }
  std::string name() const override;
  size_t num_inputs() const override { return num_inputs_; }
  size_t num_neurons() const override { return lif_.size(); }
  size_t num_weights() const override { return weights_.size() + recurrent_.size(); }
  size_t num_connections() const override { return num_weights(); }

  void forward_into(const Tensor& in, bool record_traces, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;

  bool frontier_supported() const override { return true; }
  float frontier_synapse(const float* in_frame, const float* prev_out_frame,
                         size_t neuron) const override;
  void frontier_synapse_frame(const float* in_frame, const float* prev_out_frame,
                              float* syn) const override;
  bool frontier_fanout(size_t in_index, std::vector<uint32_t>& out) const override;
  bool frontier_weight_fanout(size_t param, size_t index,
                              std::vector<uint32_t>& out) const override;

  std::vector<ParamView> params() override;
  LifBank& lif() override { return lif_; }
  const LifBank& lif() const override { return lif_; }
  std::unique_ptr<Layer> clone() const override;

  std::vector<float>& weights() { return weights_; }
  std::vector<float>& recurrent_weights() { return recurrent_; }
  const std::vector<float>& weights() const { return weights_; }
  const std::vector<float>& recurrent_weights() const { return recurrent_; }

 private:
  size_t num_inputs_;
  LifBank lif_;
  std::vector<float> weights_;     // [N, num_inputs] feedforward
  std::vector<float> recurrent_;   // [N, N] lateral, from column j to row i
  std::vector<float> weight_grads_;
  std::vector<float> recurrent_grads_;
  Tensor saved_input_;
  Tensor saved_output_;  // needed: syn[t] depends on s_out[t-1]
  std::vector<uint32_t> active_scratch_;  // per-frame active indices (sparse backward)
  std::vector<float> syn_scratch_;        // per-frame synaptic currents (no realloc per window)
};

}  // namespace snntest::snn
