// 2-D convolutional spiking layer.
//
// Feature maps are flattened channel-major: index = (c*H + y)*W + x.
// Weights are stored [C_out, C_in, K, K] flat; one stored weight is one
// fault-injection site (weight-memory granularity, see DESIGN.md §2.5),
// while num_connections() reports the unrolled per-connection count used by
// the paper's Table I.
#pragma once

#include "snn/layer.hpp"
#include "util/rng.hpp"

namespace snntest::snn {

struct Conv2dSpec {
  size_t in_channels = 1;
  size_t in_height = 1;
  size_t in_width = 1;
  size_t out_channels = 1;
  size_t kernel = 3;
  size_t stride = 1;
  size_t padding = 0;

  size_t out_height() const { return (in_height + 2 * padding - kernel) / stride + 1; }
  size_t out_width() const { return (in_width + 2 * padding - kernel) / stride + 1; }
  size_t input_size() const { return in_channels * in_height * in_width; }
  size_t output_size() const { return out_channels * out_height() * out_width(); }
  size_t weight_count() const { return out_channels * in_channels * kernel * kernel; }
};

class ConvLayer final : public Layer {
 public:
  ConvLayer(Conv2dSpec spec, LifParams params);

  void init_weights(util::Rng& rng, float gain = 1.0f);

  LayerKind kind() const override { return LayerKind::kConv2d; }
  std::string name() const override;
  size_t num_inputs() const override { return spec_.input_size(); }
  size_t num_neurons() const override { return lif_.size(); }
  size_t num_weights() const override { return weights_.size(); }
  size_t num_connections() const override;

  void forward_into(const Tensor& in, bool record_traces, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;

  bool frontier_supported() const override { return true; }
  float frontier_synapse(const float* in_frame, const float* prev_out_frame,
                         size_t neuron) const override;
  void frontier_synapse_frame(const float* in_frame, const float* prev_out_frame,
                              float* syn) const override;
  bool frontier_fanout(size_t in_index, std::vector<uint32_t>& out) const override;
  bool frontier_weight_fanout(size_t param, size_t index,
                              std::vector<uint32_t>& out) const override;

  std::vector<ParamView> params() override;
  LifBank& lif() override { return lif_; }
  const LifBank& lif() const override { return lif_; }
  std::unique_ptr<Layer> clone() const override;

  const Conv2dSpec& spec() const { return spec_; }
  std::vector<float>& weights() { return weights_; }
  const std::vector<float>& weights() const { return weights_; }

  // --- per-connection fault support ---
  // The paper's Table I counts synapses as *connections*; a physical
  // connection fault in a conv accelerator affects one (output position,
  // kernel tap) pair rather than the shared stored weight. At most one
  // override is active (single-fault assumption); it replaces the effective
  // weight of the connection from flattened input `in_index` to output
  // neuron `out_index` during forward only.

  /// Stored kernel weight serving connection (out_index, in_index).
  /// Throws std::invalid_argument if the pair is not connected.
  float connection_weight(size_t out_index, size_t in_index) const;
  void set_connection_override(size_t out_index, size_t in_index, float new_weight);
  void clear_connection_override();
  bool connection_override_active() const { return override_.active; }

  /// syn frame (length output_size) from one input spike frame — the dense
  /// (oc, oy, ox) gather with ordered double accumulation. Public and const
  /// so the lane-batched simulation path (snn/lane_network.cpp) can compute
  /// the shared fault-free base frame without mutating the layer.
  void conv_forward_frame(const float* in, float* syn) const;

 private:
  /// Event-driven forward: scatter the kernel taps of each active input
  /// pixel instead of gathering all taps of each output. Bit-identical to
  /// conv_forward_frame: iterating active pixels in ascending flat order
  /// feeds every output accumulator the same ordered sequence of double
  /// products (ic, then ky, then kx ascending) that the dense gather uses,
  /// and the skipped terms are exact +/-0.0 contributions.
  void conv_forward_frame_sparse(const float* in, const uint32_t* active, size_t num_active,
                                 float* syn);
  /// Scatter grad_syn into grad_in and weight grads for one timestep
  /// (fused dense path — the seed's exact execution).
  void conv_backward_frame(const float* in, const float* grad_syn, float* grad_in);
  /// Input-gradient half of conv_backward_frame: grad_in += conv^T(grad_syn).
  /// Iterates the identical (oc, oy, ox) -> (ic, ky, kx) order as the fused
  /// path, so every grad_in accumulator receives the same ordered float
  /// terms (bit-identical). Input gradient flows into *every* input pixel —
  /// also the silent ones — so this half cannot exploit input sparsity; the
  /// zeros it does skip are the grad_syn zeros, exactly like the fused path.
  void conv_backward_input_frame(const float* grad_syn, float* grad_in) const;
  /// Weight-gradient half, dense: wg[tap] += grad_syn[o] * in[i] over every
  /// connected (o, tap) pair, in the fused path's order.
  void conv_backward_weight_frame(const float* in, const float* grad_syn);
  /// Weight-gradient half, event-driven: iterate only the active input
  /// pixels (ascending flat order) and scatter into the taps they serve.
  /// Bit-identical to conv_backward_weight_frame: for a fixed tap the
  /// contributing pixels ascend exactly like the fused path's (oy, ox)
  /// sweep, and the skipped terms are grad_syn * 0.0 — exact +/-0.0 adds
  /// into accumulators that can never hold -0.0 (see tensor/ops.hpp).
  void conv_backward_weight_frame_sparse(const float* in, const uint32_t* active,
                                         size_t num_active, const float* grad_syn);

  struct ConnectionOverride {
    size_t out_index = 0;
    size_t in_index = 0;
    float delta = 0.0f;  // effective weight - stored weight
    bool active = false;
  };

  /// Kernel-tap index serving (out_index, in_index), or throws.
  size_t tap_index(size_t out_index, size_t in_index) const;

  Conv2dSpec spec_;
  LifBank lif_;
  std::vector<float> weights_;
  std::vector<float> weight_grads_;
  Tensor saved_input_;
  ConnectionOverride override_;
  std::vector<uint32_t> active_scratch_;  // per-frame active indices (sparse path)
  std::vector<double> syn_acc_;           // per-output double accumulators (sparse path)
  std::vector<float> syn_scratch_;        // per-frame synaptic currents (no realloc per window)
};

}  // namespace snntest::snn
