#include "snn/lane_network.hpp"

#include <algorithm>
#include <stdexcept>

#include "snn/conv_layer.hpp"
#include "snn/dense_layer.hpp"
#include "snn/pool_layer.hpp"
#include "snn/recurrent_layer.hpp"
#include "tensor/simd.hpp"

namespace snntest::snn {

namespace {

/// Faulty dense/recurrent row: the scalar path stores `value` at flat weight
/// `col` and runs the ordered-double matvec row; substituting the value in
/// the same sweep yields the identical float.
float recompute_row(const float* row, size_t cols, size_t col, float value, const float* x) {
  double acc = 0.0;
  for (size_t c = 0; c < cols; ++c) {
    const float w = (c == col) ? value : row[c];
    acc += static_cast<double>(w) * x[c];
  }
  return static_cast<float>(acc);
}

/// recompute_row over the frame's active (nonzero) columns only, ascending.
/// Bit-identical to the dense sweep: every skipped term is w * 0.0f, an
/// exact +/-0.0 double addend that never changes the accumulator (the
/// matvec_accumulate_gather argument). The faulty column needs no special
/// casing — if x[col] is zero its term vanishes for any weight value.
float recompute_row_gather(const float* row, size_t col, float value, const float* x,
                           const uint32_t* active, size_t num_active) {
  double acc = 0.0;
  for (size_t a = 0; a < num_active; ++a) {
    const size_t c = active[a];
    const float w = (c == col) ? value : row[c];
    acc += static_cast<double>(w) * x[c];
  }
  return static_cast<float>(acc);
}

/// Faulty conv output channel: conv_forward_frame restricted to the channel
/// owning `tap`, with the tap's stored weight substituted — the identical
/// (oy, ox) -> (ic, ky, kx) ordered double sums the scalar faulty pass
/// computes for that channel (other channels never read the tap).
void recompute_conv_channel(const ConvLayer& conv, size_t tap, float value, const float* in,
                            float* chan) {
  const Conv2dSpec& s = conv.spec();
  const size_t oh = s.out_height();
  const size_t ow = s.out_width();
  const size_t k = s.kernel;
  const size_t oc = tap / (s.in_channels * k * k);
  const float* weights = conv.weights().data();
  for (size_t oy = 0; oy < oh; ++oy) {
    for (size_t ox = 0; ox < ow; ++ox) {
      double acc = 0.0;
      for (size_t ic = 0; ic < s.in_channels; ++ic) {
        const size_t w_off = ((oc * s.in_channels + ic) * k) * k;
        const float* w_base = weights + w_off;
        const float* in_base = in + ic * s.in_height * s.in_width;
        for (size_t ky = 0; ky < k; ++ky) {
          const long iy = static_cast<long>(oy * s.stride + ky) - static_cast<long>(s.padding);
          if (iy < 0 || iy >= static_cast<long>(s.in_height)) continue;
          for (size_t kx = 0; kx < k; ++kx) {
            const long ix = static_cast<long>(ox * s.stride + kx) - static_cast<long>(s.padding);
            if (ix < 0 || ix >= static_cast<long>(s.in_width)) continue;
            const float w = (w_off + ky * k + kx == tap) ? value : w_base[ky * k + kx];
            acc += static_cast<double>(w) * in_base[iy * static_cast<long>(s.in_width) + ix];
          }
        }
      }
      chan[oy * ow + ox] = static_cast<float>(acc);
    }
  }
}

/// Conv geometry handed to the dispatched lane kernels (tensor/simd.hpp
/// cannot see snn::Conv2dSpec, so the shape crosses as a POD).
tensor::simd::ConvLaneGeom conv_lane_geom(const Conv2dSpec& s) {
  tensor::simd::ConvLaneGeom g;
  g.in_channels = s.in_channels;
  g.in_height = s.in_height;
  g.in_width = s.in_width;
  g.out_channels = s.out_channels;
  g.out_height = s.out_height();
  g.out_width = s.out_width();
  g.kernel = s.kernel;
  g.stride = s.stride;
  g.padding = s.padding;
  return g;
}

/// Lane-strided conv gather: conv_forward_frame with per-lane double
/// accumulators fed in the identical term order (dispatched backend).
void conv_frame_lanes_dense(const ConvLayer& conv, const float* in_lanes, size_t lanes,
                            float* syn_lanes) {
  tensor::simd::lane_ops().conv_lanes_dense(conv_lane_geom(conv.spec()), conv.weights().data(),
                                            in_lanes, lanes, syn_lanes);
}

/// Lane-strided conv scatter over the union-active input pixels. Per lane
/// this is conv_forward_frame_sparse on a superset active list: pixels where
/// the lane is silent contribute exact +/-0.0 terms, so each lane matches
/// the scalar sparse (hence dense) kernel bit for bit. The dispatched
/// kernels expect the caller to zero the double accumulator.
void conv_frame_lanes_scatter(const ConvLayer& conv, const float* in_lanes, size_t lanes,
                              const uint32_t* active, size_t num_active, std::vector<double>& acc,
                              float* syn_lanes) {
  const size_t out_size = conv.spec().output_size();
  acc.assign(out_size * lanes, 0.0);
  tensor::simd::lane_ops().conv_lanes_scatter(conv_lane_geom(conv.spec()), conv.weights().data(),
                                              in_lanes, lanes, active, num_active, acc.data(),
                                              syn_lanes);
}

/// Lane-strided sum pool: float window sums in the scalar (wy, wx) order.
void pool_frame_lanes(const SumPoolLayer& pool, const float* in_lanes, size_t lanes,
                      float* syn_lanes) {
  const SumPoolSpec& s = pool.spec();
  tensor::simd::lane_ops().pool_lanes(s.channels, s.in_height, s.in_width, s.window, in_lanes,
                                      lanes, syn_lanes);
}

}  // namespace

// --- LaneLif -------------------------------------------------------------

void LaneLif::reset(const LifBank& bank, size_t lanes, const LaneFault* faults) {
  if (lanes == 0 || lanes > kMaxLaneWidth) {
    throw std::invalid_argument("LaneLif: lanes out of range");
  }
  bank_ = &bank;
  n_ = bank.size();
  lanes_ = lanes;
  override_.fill(LaneNeuronOverride{});
  if (faults) {
    for (size_t l = 0; l < lanes; ++l) override_[l] = faults[l].neuron;
  }
  rebuild_override_map();
  u_.assign(n_ * lanes, bank.defaults().reset_potential);
  refrac_.assign(n_ * lanes, 0);
}

void LaneLif::rebuild_override_map() {
  overridden_.clear();
  for (size_t l = 0; l < lanes_; ++l) {
    if (!override_[l].active) continue;
    if (overridden_.empty()) overridden_.assign(n_, 0);
    overridden_[override_[l].neuron] = 1;
  }
}

void LaneLif::step(const float* syn_lanes, float* out_lanes) {
  const float reset_v = bank_->defaults().reset_potential;
  const float* thr = bank_->thresholds().data();
  const float* lk = bank_->leaks().data();
  const int* rf = bank_->refractories().data();
  const NeuronMode* md = bank_->modes().data();
  const bool has_overrides = !overridden_.empty();
  const size_t lanes = lanes_;
  const tensor::simd::LaneKernels& ops = tensor::simd::lane_ops();
  for (size_t i = 0; i < n_; ++i) {
    const size_t base = i * lanes;
    if (!has_overrides || !overridden_[i]) {
      // Every lane of this neuron shares the bank parameters: hoist them
      // out of the lane loop and run the dispatched lane LIF kernel (the
      // hot path — overrides exist only on the fault layer, and there on a
      // single neuron per lane).
      const NeuronMode mode = md[i];
      if (mode == NeuronMode::kNormal) {
        ops.lif_lanes(u_.data() + base, refrac_.data() + base, syn_lanes + base,
                      out_lanes + base, lanes, lk[i], thr[i], reset_v, rf[i]);
      } else {
        // Dead / saturated neurons emit a constant and, exactly like
        // LifBank::step, leave their membrane and refractory state alone.
        const float spike = mode == NeuronMode::kSaturated ? 1.0f : 0.0f;
        for (size_t l = 0; l < lanes; ++l) out_lanes[base + l] = spike;
      }
      continue;
    }
    for (size_t l = 0; l < lanes; ++l) {
      float threshold = thr[i];
      float leak = lk[i];
      int refractory = rf[i];
      NeuronMode mode = md[i];
      const LaneNeuronOverride& o = override_[l];
      if (o.active && o.neuron == i) {
        threshold = o.threshold;
        leak = o.leak;
        refractory = o.refractory;
        mode = o.mode;
      }
      float spike = 0.0f;
      switch (mode) {
        case NeuronMode::kDead:
          break;
        case NeuronMode::kSaturated:
          spike = 1.0f;
          break;
        case NeuronMode::kNormal: {
          const size_t s = base + l;
          if (refrac_[s] > 0) {
            --refrac_[s];
            u_[s] = reset_v;
          } else {
            const float u_pre = leak * u_[s] + syn_lanes[s];
            if (u_pre >= threshold) {
              spike = 1.0f;
              u_[s] = reset_v;
              refrac_[s] = refractory;
            } else {
              u_[s] = u_pre;
            }
          }
          break;
        }
      }
      out_lanes[base + l] = spike;
    }
  }
}

void LaneLif::compact(const uint8_t* keep) {
  size_t kept = 0;
  std::array<LaneNeuronOverride, kMaxLaneWidth> packed{};
  for (size_t l = 0; l < lanes_; ++l) {
    if (keep[l]) packed[kept++] = override_[l];
  }
  if (kept == lanes_) return;
  // In-place forward repack: the write index never overtakes the read index
  // (kept <= lanes per neuron), so no slot is read after being overwritten.
  size_t w = 0;
  for (size_t i = 0; i < n_; ++i) {
    const size_t base = i * lanes_;
    for (size_t l = 0; l < lanes_; ++l) {
      if (!keep[l]) continue;
      u_[w] = u_[base + l];
      refrac_[w] = refrac_[base + l];
      ++w;
    }
  }
  override_ = packed;
  lanes_ = kept;
  rebuild_override_map();
  u_.resize(n_ * kept);
  refrac_.resize(n_ * kept);
}

// --- LaneLayerRun --------------------------------------------------------

void LaneLayerRun::reset(const Layer& layer, size_t lanes, const LaneFault* faults,
                         KernelMode mode) {
  layer_ = &layer;
  lanes_ = lanes;
  n_ = layer.num_neurons();
  mode_ = mode;
  t_ = 0;
  has_synapse_faults_ = false;
  faults_.clear();
  if (faults) {
    faults_.assign(faults, faults + lanes);
    for (const LaneFault& f : faults_) {
      has_synapse_faults_ |= f.synapse.kind != LaneSynapseFault::Kind::kNone;
    }
  }
  lif_.reset(layer.lif(), lanes, faults);
  base_.resize(n_);
  syn_.resize(n_ * lanes);
  if (layer.kind() == LayerKind::kRecurrent) {
    prev_out_.assign(n_ * lanes, 0.0f);
  } else {
    prev_out_.clear();
  }
  if (layer.kind() == LayerKind::kConv2d) {
    const auto& conv = static_cast<const ConvLayer&>(layer);
    chan_.resize(conv.spec().out_height() * conv.spec().out_width());
  }
}

void LaneLayerRun::broadcast_base(float* syn_lanes) const {
  for (size_t i = 0; i < n_; ++i) {
    const float v = base_[i];
    float* s = syn_lanes + i * lanes_;
    for (size_t l = 0; l < lanes_; ++l) s[l] = v;
  }
}

void LaneLayerRun::apply_shared_synapse_faults(const float* in_frame, size_t num_active,
                                               float* syn_lanes) {
  for (size_t l = 0; l < lanes_; ++l) {
    const LaneSynapseFault& sf = faults_[l].synapse;
    switch (sf.kind) {
      case LaneSynapseFault::Kind::kNone:
      case LaneSynapseFault::Kind::kRecurrentWeight:
        // Recurrent lateral faults only perturb the feedback term, which is
        // handled after the lane feedback matvec (see step_shared).
        break;
      case LaneSynapseFault::Kind::kWeight: {
        const size_t cols = layer_->num_inputs();
        const float* w = layer_->kind() == LayerKind::kRecurrent
                             ? static_cast<const RecurrentLayer&>(*layer_).weights().data()
                             : static_cast<const DenseLayer&>(*layer_).weights().data();
        const size_t r = sf.index / cols;
        syn_lanes[r * lanes_ + l] =
            num_active == SIZE_MAX
                ? recompute_row(w + r * cols, cols, sf.index % cols, sf.value, in_frame)
                : recompute_row_gather(w + r * cols, sf.index % cols, sf.value, in_frame,
                                       active_.data(), num_active);
        break;
      }
      case LaneSynapseFault::Kind::kConvWeight: {
        const auto& conv = static_cast<const ConvLayer&>(*layer_);
        const Conv2dSpec& s = conv.spec();
        const size_t hw = s.out_height() * s.out_width();
        const size_t oc = sf.index / (s.in_channels * s.kernel * s.kernel);
        recompute_conv_channel(conv, sf.index, sf.value, in_frame, chan_.data());
        for (size_t p = 0; p < hw; ++p) {
          syn_lanes[(oc * hw + p) * lanes_ + l] = chan_[p];
        }
        break;
      }
      case LaneSynapseFault::Kind::kConvConnection: {
        // Mirrors the scalar override: syn[out] += delta * in[in] after the
        // fault-free frame (base already broadcast into this slot).
        syn_lanes[sf.out_index * lanes_ + l] =
            base_[sf.out_index] + sf.delta * in_frame[sf.in_index];
        break;
      }
    }
  }
}

void LaneLayerRun::step_shared(const float* in_frame, float* out_lanes) {
  // Shared fault-free base frame via the scalar kernels (bit-identical
  // dense or sparse; decided per frame like Layer::forward does). Returns
  // the active count when an active set was extracted (SIZE_MAX otherwise)
  // so the weight-fault row recomputes can reuse it.
  auto matvec_base = [&](const float* w, size_t cols) -> size_t {
    std::fill(base_.begin(), base_.end(), 0.0f);
    if (mode_ == KernelMode::kDense) {
      tensor::matvec_accumulate(w, n_, cols, in_frame, base_.data());
      return SIZE_MAX;
    }
    const size_t na = tensor::extract_active(in_frame, cols, active_);
    if (mode_ == KernelMode::kSparse || sparse_frame_wins(na, cols)) {
      tensor::matvec_accumulate_gather(w, n_, cols, in_frame, active_.data(), na, base_.data());
    } else {
      tensor::matvec_accumulate(w, n_, cols, in_frame, base_.data());
    }
    return na;
  };
  size_t num_active = SIZE_MAX;
  switch (layer_->kind()) {
    case LayerKind::kDense:
      num_active = matvec_base(static_cast<const DenseLayer&>(*layer_).weights().data(),
                               layer_->num_inputs());
      break;
    case LayerKind::kRecurrent:
      num_active = matvec_base(static_cast<const RecurrentLayer&>(*layer_).weights().data(),
                               layer_->num_inputs());
      break;
    case LayerKind::kConv2d:
      static_cast<const ConvLayer&>(*layer_).conv_forward_frame(in_frame, base_.data());
      break;
    case LayerKind::kSumPool:
      static_cast<const SumPoolLayer&>(*layer_).pool_frame(in_frame, base_.data());
      break;
  }
  broadcast_base(syn_.data());
  if (has_synapse_faults_) apply_shared_synapse_faults(in_frame, num_active, syn_.data());
  if (layer_->kind() == LayerKind::kRecurrent && t_ > 0) {
    const auto& rec = static_cast<const RecurrentLayer&>(*layer_);
    const float* v = rec.recurrent_weights().data();
    // Per-lane feedback: prev outputs already diverge across lanes, so this
    // is a lane matvec even though the layer input frame is shared.
    if (mode_ == KernelMode::kDense) {
      tensor::matvec_accumulate_lanes(v, n_, n_, prev_out_.data(), lanes_, syn_.data());
    } else {
      const size_t na = tensor::extract_active_union(prev_out_.data(), n_, lanes_, active_);
      if (mode_ == KernelMode::kSparse || sparse_frame_wins(na, n_)) {
        tensor::matvec_accumulate_gather_lanes(v, n_, n_, prev_out_.data(), lanes_,
                                               active_.data(), na, syn_.data());
      } else {
        tensor::matvec_accumulate_lanes(v, n_, n_, prev_out_.data(), lanes_, syn_.data());
      }
    }
    if (has_synapse_faults_) {
      for (size_t l = 0; l < lanes_; ++l) {
        const LaneSynapseFault& sf = faults_[l].synapse;
        if (sf.kind != LaneSynapseFault::Kind::kRecurrentWeight) continue;
        // Scalar path: syn[r] = float(W row . in) then += float(V' row .
        // prev). This lane carries no W fault (single fault), so the first
        // term is base_[r]; recompute the faulty V term against the lane's
        // own prev frame and overwrite the unfaulted feedback added above.
        const size_t r = sf.index / n_;
        const size_t col = sf.index % n_;
        const float* vrow = v + r * n_;
        double acc = 0.0;
        for (size_t c = 0; c < n_; ++c) {
          const float w = (c == col) ? sf.value : vrow[c];
          acc += static_cast<double>(w) * prev_out_[c * lanes_ + l];
        }
        syn_[r * lanes_ + l] = base_[r] + static_cast<float>(acc);
      }
    }
  }
  finish_step(out_lanes);
}

void LaneLayerRun::synaptic_lanes(const float* in_lanes, float* syn_lanes) {
  const size_t cols = layer_->num_inputs();
  auto matvec = [&](const float* w, size_t wc, const float* x_lanes) {
    if (mode_ == KernelMode::kDense) {
      tensor::matvec_accumulate_lanes(w, n_, wc, x_lanes, lanes_, syn_lanes);
      return;
    }
    const size_t na = tensor::extract_active_union(x_lanes, wc, lanes_, active_);
    if (mode_ == KernelMode::kSparse || sparse_frame_wins(na, wc)) {
      tensor::matvec_accumulate_gather_lanes(w, n_, wc, x_lanes, lanes_, active_.data(), na,
                                             syn_lanes);
    } else {
      tensor::matvec_accumulate_lanes(w, n_, wc, x_lanes, lanes_, syn_lanes);
    }
  };
  switch (layer_->kind()) {
    case LayerKind::kDense:
      std::fill(syn_lanes, syn_lanes + n_ * lanes_, 0.0f);
      matvec(static_cast<const DenseLayer&>(*layer_).weights().data(), cols, in_lanes);
      break;
    case LayerKind::kRecurrent: {
      const auto& rec = static_cast<const RecurrentLayer&>(*layer_);
      std::fill(syn_lanes, syn_lanes + n_ * lanes_, 0.0f);
      matvec(rec.weights().data(), cols, in_lanes);
      if (t_ > 0) matvec(rec.recurrent_weights().data(), n_, prev_out_.data());
      break;
    }
    case LayerKind::kConv2d: {
      const auto& conv = static_cast<const ConvLayer&>(*layer_);
      if (mode_ == KernelMode::kDense) {
        conv_frame_lanes_dense(conv, in_lanes, lanes_, syn_lanes);
      } else {
        const size_t na = tensor::extract_active_union(in_lanes, cols, lanes_, active_);
        if (mode_ == KernelMode::kSparse || sparse_frame_wins(na, cols)) {
          conv_frame_lanes_scatter(conv, in_lanes, lanes_, active_.data(), na, acc_, syn_lanes);
        } else {
          conv_frame_lanes_dense(conv, in_lanes, lanes_, syn_lanes);
        }
      }
      break;
    }
    case LayerKind::kSumPool:
      pool_frame_lanes(static_cast<const SumPoolLayer&>(*layer_), in_lanes, lanes_, syn_lanes);
      break;
  }
}

void LaneLayerRun::step_lanes(const float* in_lanes, float* out_lanes) {
  synaptic_lanes(in_lanes, syn_.data());
  finish_step(out_lanes);
}

void LaneLayerRun::finish_step(float* out_lanes) {
  lif_.step(syn_.data(), out_lanes);
  if (layer_->kind() == LayerKind::kRecurrent) {
    std::copy(out_lanes, out_lanes + n_ * lanes_, prev_out_.begin());
  }
  ++t_;
}

void LaneLayerRun::compact(const uint8_t* keep) {
  size_t kept = 0;
  for (size_t l = 0; l < lanes_; ++l) kept += keep[l] ? 1 : 0;
  if (kept == lanes_) return;
  lif_.compact(keep);
  if (!prev_out_.empty()) {
    size_t w = 0;
    for (size_t i = 0; i < n_; ++i) {
      const size_t base = i * lanes_;
      for (size_t l = 0; l < lanes_; ++l) {
        if (keep[l]) prev_out_[w++] = prev_out_[base + l];
      }
    }
    prev_out_.resize(n_ * kept);
  }
  if (!faults_.empty()) {
    size_t w = 0;
    for (size_t l = 0; l < lanes_; ++l) {
      if (keep[l]) faults_[w++] = faults_[l];
    }
    faults_.resize(kept);
    has_synapse_faults_ = false;
    for (const LaneFault& f : faults_) {
      has_synapse_faults_ |= f.synapse.kind != LaneSynapseFault::Kind::kNone;
    }
  }
  lanes_ = kept;
}

}  // namespace snntest::snn
