#include "snn/serialization.hpp"

#include <fstream>
#include <stdexcept>

#include "snn/conv_layer.hpp"
#include "snn/dense_layer.hpp"
#include "snn/pool_layer.hpp"
#include "snn/recurrent_layer.hpp"
#include "util/serialize.hpp"

namespace snntest::snn {
namespace {

constexpr uint32_t kMagic = 0x534E4E54;  // "SNNT"
constexpr uint32_t kVersion = 2;

void write_lif_params(std::ostream& os, const LifParams& p) {
  util::write_f32(os, p.threshold);
  util::write_f32(os, p.leak);
  util::write_u32(os, static_cast<uint32_t>(p.refractory));
  util::write_f32(os, p.reset_potential);
}

LifParams read_lif_params(std::istream& is) {
  LifParams p;
  p.threshold = util::read_f32(is);
  p.leak = util::read_f32(is);
  p.refractory = static_cast<int>(util::read_u32(is));
  p.reset_potential = util::read_f32(is);
  return p;
}

std::vector<float> copy_param(Layer& layer, size_t param_index) {
  auto params = layer.params();
  const ParamView& p = params.at(param_index);
  return std::vector<float>(p.value, p.value + p.size);
}

void load_param(Layer& layer, size_t param_index, const std::vector<float>& data) {
  auto params = layer.params();
  ParamView& p = params.at(param_index);
  if (p.size != data.size()) throw std::runtime_error("load_network: weight size mismatch");
  std::copy(data.begin(), data.end(), p.value);
}

}  // namespace

void save_network(const Network& net, std::ostream& os) {
  util::write_magic(os, kMagic, kVersion);
  util::write_string(os, net.name());
  util::write_u32(os, static_cast<uint32_t>(net.num_layers()));
  for (size_t l = 0; l < net.num_layers(); ++l) {
    // Serialization reads weights through the non-const params() view.
    Layer& layer = const_cast<Network&>(net).layer(l);
    util::write_u32(os, static_cast<uint32_t>(layer.kind()));
    write_lif_params(os, layer.lif().defaults());
    const SurrogateConfig& sg = layer.surrogate();
    util::write_u32(os, static_cast<uint32_t>(sg.kind));
    util::write_f32(os, sg.alpha);
    switch (layer.kind()) {
      case LayerKind::kDense: {
        util::write_u64(os, layer.num_inputs());
        util::write_u64(os, layer.num_neurons());
        util::write_f32_vector(os, copy_param(layer, 0));
        break;
      }
      case LayerKind::kConv2d: {
        const auto& spec = static_cast<ConvLayer&>(layer).spec();
        util::write_u64(os, spec.in_channels);
        util::write_u64(os, spec.in_height);
        util::write_u64(os, spec.in_width);
        util::write_u64(os, spec.out_channels);
        util::write_u64(os, spec.kernel);
        util::write_u64(os, spec.stride);
        util::write_u64(os, spec.padding);
        util::write_f32_vector(os, copy_param(layer, 0));
        break;
      }
      case LayerKind::kSumPool: {
        const auto& spec = static_cast<SumPoolLayer&>(layer).spec();
        util::write_u64(os, spec.channels);
        util::write_u64(os, spec.in_height);
        util::write_u64(os, spec.in_width);
        util::write_u64(os, spec.window);
        break;
      }
      case LayerKind::kRecurrent: {
        util::write_u64(os, layer.num_inputs());
        util::write_u64(os, layer.num_neurons());
        util::write_f32_vector(os, copy_param(layer, 0));
        util::write_f32_vector(os, copy_param(layer, 1));
        break;
      }
    }
  }
}

void save_network(const Network& net, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("save_network: cannot open " + path);
  save_network(net, os);
}

Network load_network(std::istream& is) {
  util::check_magic(is, kMagic, kVersion);
  Network net(util::read_string(is));
  const uint32_t num_layers = util::read_u32(is);
  for (uint32_t l = 0; l < num_layers; ++l) {
    const auto kind = static_cast<LayerKind>(util::read_u32(is));
    const LifParams params = read_lif_params(is);
    SurrogateConfig sg;
    sg.kind = static_cast<SurrogateKind>(util::read_u32(is));
    sg.alpha = util::read_f32(is);
    std::unique_ptr<Layer> layer;
    switch (kind) {
      case LayerKind::kDense: {
        const size_t in = util::read_u64(is);
        const size_t out = util::read_u64(is);
        auto dense = std::make_unique<DenseLayer>(in, out, params);
        load_param(*dense, 0, util::read_f32_vector(is));
        layer = std::move(dense);
        break;
      }
      case LayerKind::kConv2d: {
        Conv2dSpec spec;
        spec.in_channels = util::read_u64(is);
        spec.in_height = util::read_u64(is);
        spec.in_width = util::read_u64(is);
        spec.out_channels = util::read_u64(is);
        spec.kernel = util::read_u64(is);
        spec.stride = util::read_u64(is);
        spec.padding = util::read_u64(is);
        auto conv = std::make_unique<ConvLayer>(spec, params);
        load_param(*conv, 0, util::read_f32_vector(is));
        layer = std::move(conv);
        break;
      }
      case LayerKind::kSumPool: {
        SumPoolSpec spec;
        spec.channels = util::read_u64(is);
        spec.in_height = util::read_u64(is);
        spec.in_width = util::read_u64(is);
        spec.window = util::read_u64(is);
        layer = std::make_unique<SumPoolLayer>(spec, params);
        break;
      }
      case LayerKind::kRecurrent: {
        const size_t in = util::read_u64(is);
        const size_t out = util::read_u64(is);
        auto rec = std::make_unique<RecurrentLayer>(in, out, params);
        load_param(*rec, 0, util::read_f32_vector(is));
        load_param(*rec, 1, util::read_f32_vector(is));
        layer = std::move(rec);
        break;
      }
      default:
        throw std::runtime_error("load_network: unknown layer kind");
    }
    layer->surrogate() = sg;
    net.add_layer(std::move(layer));
  }
  return net;
}

Network load_network(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_network: cannot open " + path);
  return load_network(is);
}

}  // namespace snntest::snn
