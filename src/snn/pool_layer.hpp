// Spiking sum-pooling layer.
//
// SLAYER-style pooling: each output neuron sums the spikes of a
// non-overlapping window with a fixed unit weight and fires through LIF
// dynamics with a low threshold, acting as an event down-sampler. The
// pooling "weights" are fixed (not trained and not a synapse-fault site —
// in hardware the aggregation is wiring, not weight memory), but the pool
// neurons themselves are regular LIF cells and participate in the neuron
// fault universe.
#pragma once

#include "snn/layer.hpp"

namespace snntest::snn {

struct SumPoolSpec {
  size_t channels = 1;
  size_t in_height = 1;
  size_t in_width = 1;
  size_t window = 2;  // pooling window (and stride)

  size_t out_height() const { return in_height / window; }
  size_t out_width() const { return in_width / window; }
  size_t input_size() const { return channels * in_height * in_width; }
  size_t output_size() const { return channels * out_height() * out_width(); }
};

class SumPoolLayer final : public Layer {
 public:
  SumPoolLayer(SumPoolSpec spec, LifParams params);

  LayerKind kind() const override { return LayerKind::kSumPool; }
  std::string name() const override;
  size_t num_inputs() const override { return spec_.input_size(); }
  size_t num_neurons() const override { return lif_.size(); }
  size_t num_weights() const override { return 0; }
  size_t num_connections() const override {
    return spec_.output_size() * spec_.window * spec_.window;
  }

  void forward_into(const Tensor& in, bool record_traces, Tensor& out) override;
  Tensor backward(const Tensor& grad_out) override;

  bool frontier_supported() const override { return true; }
  float frontier_synapse(const float* in_frame, const float* prev_out_frame,
                         size_t neuron) const override;
  void frontier_synapse_frame(const float* in_frame, const float* prev_out_frame,
                              float* syn) const override;
  bool frontier_fanout(size_t in_index, std::vector<uint32_t>& out) const override;

  std::vector<ParamView> params() override { return {}; }
  LifBank& lif() override { return lif_; }
  const LifBank& lif() const override { return lif_; }
  std::unique_ptr<Layer> clone() const override;

  const SumPoolSpec& spec() const { return spec_; }

  /// syn frame (length output_size) from one input spike frame — float
  /// window sums in ascending (wy, wx) order. Public and const so the
  /// lane-batched simulation path (snn/lane_network.cpp) can compute the
  /// shared base frame without mutating the layer.
  void pool_frame(const float* in, float* syn) const;

 private:
  SumPoolSpec spec_;
  LifBank lif_;
  std::vector<float> syn_scratch_;  // per-frame synaptic currents (no realloc per window)
};

}  // namespace snntest::snn
