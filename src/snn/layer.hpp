// Abstract spiking layer.
//
// A layer maps an input spike train [T, num_inputs] to an output spike train
// [T, num_neurons] by computing per-timestep synaptic currents from its
// weights and feeding them through a LifBank. It owns trainable weights and
// their gradients, and exposes both to the optimizer (training) and to the
// fault injector (synapse faults mutate weights in place; neuron faults
// mutate the LifBank's per-neuron vectors).
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "snn/neuron.hpp"
#include "snn/surrogate.hpp"
#include "tensor/tensor.hpp"

namespace snntest::snn {

using tensor::Shape;
using tensor::Tensor;

enum class LayerKind : uint8_t {
  kDense = 0,
  kConv2d = 1,
  kSumPool = 2,
  kRecurrent = 3,
};

/// A view over one trainable parameter array of a layer.
struct ParamView {
  float* value = nullptr;
  float* grad = nullptr;
  size_t size = 0;
  const char* name = "";
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual LayerKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Width of one input frame (number of presynaptic channels).
  virtual size_t num_inputs() const = 0;
  /// Number of neurons (width of one output frame).
  virtual size_t num_neurons() const = 0;

  /// Trainable weight count (synapse-memory fault universe of this layer).
  virtual size_t num_weights() const = 0;
  /// Fan-out synapse-connection count (paper's Table I convention); for
  /// dense layers equals num_weights, for conv layers counts every reuse.
  virtual size_t num_connections() const = 0;

  /// Forward over a full window. `in` is [T, num_inputs] with values {0,1}.
  /// Returns the spike train [T, num_neurons]. When `record_traces`, keeps
  /// everything needed for a subsequent backward().
  virtual Tensor forward(const Tensor& in, bool record_traces) = 0;

  /// BPTT through the recorded window. `grad_out` is dL/d(output spikes),
  /// [T, num_neurons]. Accumulates weight gradients and returns
  /// dL/d(input spikes) [T, num_inputs].
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::vector<ParamView> params() = 0;
  void zero_grad() {
    for (ParamView p : params()) std::fill(p.grad, p.grad + p.size, 0.0f);
  }

  /// The LIF population of this layer (never null for the provided layers).
  virtual LifBank& lif() = 0;
  virtual const LifBank& lif() const = 0;

  /// Deep copy (used by parallel fault-simulation workers).
  virtual std::unique_ptr<Layer> clone() const = 0;

  SurrogateConfig& surrogate() { return surrogate_; }
  const SurrogateConfig& surrogate() const { return surrogate_; }

 protected:
  SurrogateConfig surrogate_{};
};

}  // namespace snntest::snn
