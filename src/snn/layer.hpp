// Abstract spiking layer.
//
// A layer maps an input spike train [T, num_inputs] to an output spike train
// [T, num_neurons] by computing per-timestep synaptic currents from its
// weights and feeding them through a LifBank. It owns trainable weights and
// their gradients, and exposes both to the optimizer (training) and to the
// fault injector (synapse faults mutate weights in place; neuron faults
// mutate the LifBank's per-neuron vectors).
#pragma once

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "snn/neuron.hpp"
#include "snn/surrogate.hpp"
#include "tensor/tensor.hpp"

namespace snntest::snn {

using tensor::Shape;
using tensor::Tensor;

enum class LayerKind : uint8_t {
  kDense = 0,
  kConv2d = 1,
  kSumPool = 2,
  kRecurrent = 3,
};

/// Forward-kernel selection. The sparse kernels exploit event sparsity —
/// they touch only the weight columns (dense) / kernel taps (conv) of the
/// input entries that actually spiked — and are bit-identical to the dense
/// kernels for any input (both accumulate the same ordered double sums; see
/// tensor/ops.hpp and DESIGN.md §9). kAuto decides per frame from the
/// measured input activity, so it is always safe to enable.
enum class KernelMode : uint8_t {
  kDense = 0,   // always run the dense kernels (seed behaviour)
  kSparse = 1,  // always run the sparse kernels
  kAuto = 2,    // per-frame: sparse when the frame is sparse enough to win
};

/// kAuto per-frame decision: the gather/scatter kernels have worse locality
/// per touched element than the dense sweep, so they only pay off below
/// ~25% input activity (measured in bench_sparse_forward; the crossover is
/// near 40-50% but 25% keeps a comfortable margin on all geometries).
inline bool sparse_frame_wins(size_t num_active, size_t frame_size) {
  return num_active * 4 <= frame_size;
}

/// CLI-facing names for KernelMode (bench/example `--kernel-mode` flags).
inline const char* kernel_mode_name(KernelMode mode) {
  switch (mode) {
    case KernelMode::kDense: return "dense";
    case KernelMode::kSparse: return "sparse";
    case KernelMode::kAuto: return "auto";
  }
  return "dense";
}

/// Inverse of kernel_mode_name; throws std::invalid_argument on bad input.
inline KernelMode parse_kernel_mode(const std::string& name) {
  if (name == "dense") return KernelMode::kDense;
  if (name == "sparse") return KernelMode::kSparse;
  if (name == "auto") return KernelMode::kAuto;
  throw std::invalid_argument("unknown kernel mode '" + name + "' (expected dense|sparse|auto)");
}

/// A view over one trainable parameter array of a layer.
struct ParamView {
  float* value = nullptr;
  float* grad = nullptr;
  size_t size = 0;
  const char* name = "";
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual LayerKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Width of one input frame (number of presynaptic channels).
  virtual size_t num_inputs() const = 0;
  /// Number of neurons (width of one output frame).
  virtual size_t num_neurons() const = 0;

  /// Trainable weight count (synapse-memory fault universe of this layer).
  virtual size_t num_weights() const = 0;
  /// Fan-out synapse-connection count (paper's Table I convention); for
  /// dense layers equals num_weights, for conv layers counts every reuse.
  virtual size_t num_connections() const = 0;

  /// Forward over a full window into a caller-owned buffer. `in` is
  /// [T, num_inputs] with values {0,1}; `out` is resized (storage reused)
  /// to [T, num_neurons] and overwritten with the output spike train. When
  /// `record_traces`, keeps everything needed for a subsequent backward().
  /// `out` must not alias `in`. The buffer-reuse entry point of the
  /// fault-simulation hot loop: a worker passes the same two ping-pong
  /// tensors for every fault instead of allocating a train per layer call.
  virtual void forward_into(const Tensor& in, bool record_traces, Tensor& out) = 0;

  /// Forward over a full window. `in` is [T, num_inputs] with values {0,1}.
  /// Returns the spike train [T, num_neurons].
  Tensor forward(const Tensor& in, bool record_traces) {
    Tensor out;
    forward_into(in, record_traces, out);
    return out;
  }

  /// BPTT through the recorded window. `grad_out` is dL/d(output spikes),
  /// [T, num_neurons]. Accumulates weight gradients and returns
  /// dL/d(input spikes) [T, num_inputs].
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::vector<ParamView> params() = 0;
  void zero_grad() {
    for (ParamView p : params()) std::fill(p.grad, p.grad + p.size, 0.0f);
  }

  /// The LIF population of this layer (never null for the provided layers).
  virtual LifBank& lif() = 0;
  virtual const LifBank& lif() const = 0;

  /// Deep copy (used by parallel fault-simulation workers).
  virtual std::unique_ptr<Layer> clone() const = 0;

  SurrogateConfig& surrogate() { return surrogate_; }
  const SurrogateConfig& surrogate() const { return surrogate_; }

  /// Forward-kernel selection; results are bit-identical across modes.
  /// Layers without a sparse kernel (pool) ignore it. Default kDense keeps
  /// the seed's exact execution path; the campaign engine, classifier and
  /// test generators opt into kAuto.
  void set_kernel_mode(KernelMode mode) { kernel_mode_ = mode; }
  KernelMode kernel_mode() const { return kernel_mode_; }

  // --- divergence-frontier recompute hooks (campaign/frontier_sim) ---
  //
  // The frontier simulator replays single neurons from snapshotted golden
  // state, so each hook must reproduce the EXACT float value the layer's
  // full forward produces for that neuron (same ordered double accumulation,
  // same cast points; DESIGN.md §17). Layers that cannot guarantee this
  // keep the default frontier_supported() == false and the engine falls
  // back to dense simulation.

  /// True when the frontier hooks below are implemented bit-identically.
  virtual bool frontier_supported() const { return false; }

  /// Synaptic current of ONE neuron for one frame. `in_frame` is the input
  /// frame [num_inputs]; `prev_out_frame` is this layer's own output at the
  /// previous timestep [num_neurons] (nullptr at t == 0; only recurrent
  /// layers read it). Must equal element `neuron` of the dense kernel's syn
  /// frame bit-for-bit.
  virtual float frontier_synapse(const float* in_frame, const float* prev_out_frame,
                                 size_t neuron) const {
    (void)in_frame;
    (void)prev_out_frame;
    (void)neuron;
    throw std::logic_error("frontier_synapse: not supported by " + name());
  }

  /// Full-frame synaptic currents into `syn` [num_neurons] — the dense
  /// fallback for frames whose frontier exceeds the recompute threshold.
  /// Bit-identical to the frame the forward path feeds LifBank::step.
  virtual void frontier_synapse_frame(const float* in_frame, const float* prev_out_frame,
                                      float* syn) const {
    (void)in_frame;
    (void)prev_out_frame;
    (void)syn;
    throw std::logic_error("frontier_synapse_frame: not supported by " + name());
  }

  /// Output neurons whose synaptic current reads input element `in_index`
  /// (appended to `out`, which the caller clears). Returns false when the
  /// fan-out is effectively dense (every output reads every input), in
  /// which case `out` is left untouched and the caller dirties the whole
  /// layer.
  virtual bool frontier_fanout(size_t in_index, std::vector<uint32_t>& out) const {
    (void)in_index;
    (void)out;
    return false;
  }

  /// Output neurons whose synaptic current reads stored weight `index` of
  /// parameter `param` (same indexing as params()). Returns false when
  /// unknown — the caller then seeds the whole layer as dirty.
  virtual bool frontier_weight_fanout(size_t param, size_t index,
                                      std::vector<uint32_t>& out) const {
    (void)param;
    (void)index;
    (void)out;
    return false;
  }

  /// When disabled, backward() skips accumulating parameter gradients
  /// (dL/dW) and computes only dL/d(input spikes). The input-optimization
  /// hot loop (core/input_optimizer.cpp) zeroes and discards the weight
  /// grads after every step, so skipping them removes roughly half the
  /// backward work; dL/d(input) is bit-identical either way because the
  /// parameter and input gradients use disjoint accumulators. Default on
  /// (training needs dL/dW).
  void set_param_grads_enabled(bool enabled) { param_grads_enabled_ = enabled; }
  bool param_grads_enabled() const { return param_grads_enabled_; }

 protected:
  SurrogateConfig surrogate_{};
  KernelMode kernel_mode_ = KernelMode::kDense;
  bool param_grads_enabled_ = true;
  /// Per-layer kernel-dispatch telemetry ("kernel/<name>/..."): forward
  /// kernels record one dense/sparse dispatch count and the input
  /// active-fraction per frame, gated on obs::telemetry_enabled(). Copied
  /// handles (worker clones) alias the same registry-owned metrics.
  obs::KernelDispatchObs kernel_obs_;
};

}  // namespace snntest::snn
