#include "train/trainer.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "train/schedule.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace snntest::train {

Trainer::Trainer(snn::Network& net, TrainerConfig config) : net_(net), config_(config) {}

EvalResult Trainer::fit(const data::Dataset& train, const data::Dataset& test) {
  AdamConfig adam_config;
  adam_config.lr = config_.lr;
  adam_config.grad_clip_norm = config_.grad_clip_norm;
  AdamOptimizer adam(adam_config);
  adam.attach(net_);

  const SpikeCountLoss loss;
  const CosineSchedule lr_schedule(config_.lr, config_.lr_final);
  util::Rng rng(config_.shuffle_seed);

  const size_t n_train = config_.max_train_samples == 0
                             ? train.size()
                             : std::min(config_.max_train_samples, train.size());

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    OBS_SPAN("train/epoch");
    adam.set_lr(lr_schedule.at(epoch, config_.epochs));
    const auto order = rng.permutation(train.size());
    util::Timer timer;
    double loss_sum = 0.0;
    size_t since_step = 0;
    net_.zero_grad();
    for (size_t k = 0; k < n_train; ++k) {
      const data::Sample sample = train.get(order[k]);
      const auto fwd = net_.forward(sample.input, /*record_traces=*/true);
      const LossResult lr_res = loss.compute(fwd.output(), sample.label);
      loss_sum += lr_res.value;
      // Gradients enter only at the output layer during training.
      std::vector<snn::Tensor> grads(net_.num_layers());
      grads.back() = lr_res.grad_output;
      net_.backward(grads);
      if (++since_step == config_.batch_size || k + 1 == n_train) {
        adam.step();
        net_.zero_grad();
        since_step = 0;
      }
    }
    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = n_train ? loss_sum / static_cast<double>(n_train) : 0.0;
    stats.train_seconds = timer.seconds();
    // Per-epoch registry metrics (coarse — recorded unconditionally).
    {
      obs::Registry& reg = obs::Registry::instance();
      static obs::Counter& epochs = reg.counter("train/epochs");
      static obs::Gauge& epoch_loss = reg.gauge("train/epoch_loss");
      static obs::Gauge& epoch_seconds = reg.gauge("train/epoch_seconds");
      epochs.add(1);
      epoch_loss.set(stats.mean_loss);
      epoch_seconds.set(stats.train_seconds);
    }
    if (config_.verbose) {
      SNNTEST_LOG_INFO("epoch %zu/%zu: mean loss %.4f (%s)", epoch + 1, config_.epochs,
                       stats.mean_loss, util::format_duration(stats.train_seconds).c_str());
    }
    if (epoch_callback_) epoch_callback_(stats);
  }
  return evaluate(net_, test, config_.eval_samples);
}

}  // namespace snntest::train
