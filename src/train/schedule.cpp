#include "train/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace snntest::train {

double CosineSchedule::at(size_t step, size_t total_steps) const {
  if (total_steps <= 1) return initial_;
  const double progress =
      std::min(1.0, static_cast<double>(step) / static_cast<double>(total_steps - 1));
  const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
  return final_ + (initial_ - final_) * cosine;
}

double ExponentialSchedule::at(size_t step, size_t /*total_steps*/) const {
  return std::max(floor_, initial_ * std::pow(rate_, static_cast<double>(step)));
}

double StepDecaySchedule::at(size_t step, size_t /*total_steps*/) const {
  const size_t k = period_ == 0 ? 0 : step / period_;
  return initial_ * std::pow(factor_, static_cast<double>(k));
}

}  // namespace snntest::train
