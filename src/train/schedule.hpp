// Annealing schedules for learning rate and Gumbel-Softmax temperature.
//
// Sec. V-C: "For the temperature τ ... we use an annealing schedule with
// maximum value 0.9. The initial learning rate lr in the Adam optimizer is
// set to 0.1 and adjusts based on an annealing schedule."
#pragma once

#include <cstddef>

namespace snntest::train {

/// Interface so optimizers can be parameterized over the schedule family.
class Schedule {
 public:
  virtual ~Schedule() = default;
  /// Value at `step` out of `total_steps` planned steps.
  virtual double at(size_t step, size_t total_steps) const = 0;
};

/// Cosine annealing from `initial` down to `final` over the planned steps.
class CosineSchedule final : public Schedule {
 public:
  CosineSchedule(double initial, double final_value)
      : initial_(initial), final_(final_value) {}
  double at(size_t step, size_t total_steps) const override;

 private:
  double initial_;
  double final_;
};

/// Exponential decay: value = initial * rate^step (floored at `floor`).
class ExponentialSchedule final : public Schedule {
 public:
  ExponentialSchedule(double initial, double rate, double floor = 0.0)
      : initial_(initial), rate_(rate), floor_(floor) {}
  double at(size_t step, size_t total_steps) const override;

 private:
  double initial_;
  double rate_;
  double floor_;
};

/// Piecewise-constant step decay: value = initial * factor^(step / period).
class StepDecaySchedule final : public Schedule {
 public:
  StepDecaySchedule(double initial, double factor, size_t period)
      : initial_(initial), factor_(factor), period_(period) {}
  double at(size_t step, size_t total_steps) const override;

 private:
  double initial_;
  double factor_;
  size_t period_;
};

/// Constant value (for ablations that disable annealing).
class ConstantSchedule final : public Schedule {
 public:
  explicit ConstantSchedule(double value) : value_(value) {}
  double at(size_t, size_t) const override { return value_; }

 private:
  double value_;
};

}  // namespace snntest::train
