// Surrogate-gradient BPTT trainer.
//
// Replaces the SLAYER/PyTorch training loop of Sec. V-B: per-sample forward
// with trace recording, loss on the output spike train, backward through the
// network, gradient accumulation over a minibatch, Adam step with an
// annealed learning rate.
#pragma once

#include <functional>
#include <string>

#include "data/dataset.hpp"
#include "snn/network.hpp"
#include "train/adam.hpp"
#include "train/loss.hpp"
#include "train/metrics.hpp"
#include "util/rng.hpp"

namespace snntest::train {

struct TrainerConfig {
  size_t epochs = 8;
  size_t batch_size = 8;
  double lr = 2e-3;
  double lr_final = 2e-4;       // cosine-annealed across all epochs
  double grad_clip_norm = 5.0;  // per-parameter-array clip
  size_t max_train_samples = 0; // 0 = all
  size_t eval_samples = 0;      // 0 = all (test set)
  uint64_t shuffle_seed = 0x5EEDF00Dull;
  bool verbose = true;
};

struct EpochStats {
  size_t epoch = 0;
  double mean_loss = 0.0;
  double train_seconds = 0.0;
};

class Trainer {
 public:
  Trainer(snn::Network& net, TrainerConfig config);

  /// Train on `train` with SpikeCountLoss; returns final test accuracy
  /// evaluated on `test`.
  EvalResult fit(const data::Dataset& train, const data::Dataset& test);

  /// Optional per-epoch callback (progress reporting in examples).
  void set_epoch_callback(std::function<void(const EpochStats&)> cb) {
    epoch_callback_ = std::move(cb);
  }

 private:
  snn::Network& net_;
  TrainerConfig config_;
  std::function<void(const EpochStats&)> epoch_callback_;
};

}  // namespace snntest::train
