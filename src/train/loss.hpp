// Training losses on output spike trains (rate decoding).
//
// Two standard choices for surrogate-gradient SNN training:
//  * SpikeCountLoss — SLAYER-style MSE between per-class output spike counts
//    and target counts (high for the true class, low for the rest). Robust
//    and what we default to for the benchmark models.
//  * RateCrossEntropyLoss — softmax cross-entropy over spike counts.
//
// Both return the scalar loss and the gradient dL/dO^L as a [T, N_L] tensor
// that feeds Network::backward.
#pragma once

#include <cstddef>

#include "tensor/tensor.hpp"

namespace snntest::train {

using tensor::Tensor;

struct LossResult {
  double value = 0.0;
  Tensor grad_output;  // [T, N_L]
};

class SpikeCountLoss {
 public:
  /// `target_true` / `target_false` are desired spike counts for the correct
  /// and incorrect classes, as fractions of the window length T.
  SpikeCountLoss(double target_true_fraction = 0.5, double target_false_fraction = 0.05)
      : target_true_(target_true_fraction), target_false_(target_false_fraction) {}

  LossResult compute(const Tensor& output_spikes, size_t label) const;

 private:
  double target_true_;
  double target_false_;
};

class RateCrossEntropyLoss {
 public:
  /// `scale` converts spike counts to logits (logit_i = scale * count_i / T).
  explicit RateCrossEntropyLoss(double scale = 4.0) : scale_(scale) {}

  LossResult compute(const Tensor& output_spikes, size_t label) const;

 private:
  double scale_;
};

}  // namespace snntest::train
