// Adam optimizer (Kingma & Ba) over externally owned parameter arrays.
//
// The same optimizer drives both SNN training and the paper's input
// optimization (Sec. IV-C3: "gradient descent-based Adam optimizer with
// adaptive learning rate lr"). Parameters are attached as raw views so the
// optimizer composes with network ParamViews as well as with the flat
// I_real tensor of the test generator.
#pragma once

#include <cstddef>
#include <vector>

#include "snn/layer.hpp"

namespace snntest::snn {
class Network;
}

namespace snntest::train {

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;  // decoupled (AdamW-style) if nonzero
  /// If > 0, clip each attached slot's gradient to this L2 norm before use.
  double grad_clip_norm = 0.0;
};

class AdamOptimizer {
 public:
  explicit AdamOptimizer(AdamConfig config = {});

  /// Attach a parameter array; `value` and `grad` must outlive the optimizer.
  void attach(float* value, const float* grad, size_t size);
  /// Attach every parameter of a network.
  void attach(snn::Network& net);

  /// Apply one update using current gradients.
  void step();

  /// Reset first/second moment estimates and the step counter.
  void reset_moments();

  void set_lr(double lr) { config_.lr = lr; }
  double lr() const { return config_.lr; }
  size_t steps_taken() const { return t_; }

 private:
  struct Slot {
    float* value;
    const float* grad;
    size_t size;
    std::vector<float> m;
    std::vector<float> v;
  };

  AdamConfig config_;
  std::vector<Slot> slots_;
  size_t t_ = 0;
};

}  // namespace snntest::train
