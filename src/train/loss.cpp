#include "train/loss.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace snntest::train {
namespace {

std::vector<double> count_spikes(const Tensor& output, size_t& T, size_t& n) {
  if (output.shape().rank() != 2) {
    throw std::invalid_argument("loss: output spike train must be [T, N]");
  }
  T = output.shape().dim(0);
  n = output.shape().dim(1);
  std::vector<double> counts(n, 0.0);
  for (size_t t = 0; t < T; ++t) {
    const float* row = output.data() + t * n;
    for (size_t i = 0; i < n; ++i) counts[i] += row[i] > 0.5f ? 1.0 : 0.0;
  }
  return counts;
}

}  // namespace

LossResult SpikeCountLoss::compute(const Tensor& output_spikes, size_t label) const {
  size_t T = 0, n = 0;
  const auto counts = count_spikes(output_spikes, T, n);
  if (label >= n) throw std::invalid_argument("SpikeCountLoss: label out of range");
  LossResult result;
  result.grad_output = Tensor(output_spikes.shape());
  std::vector<double> grad_per_count(n);
  const double dt = static_cast<double>(T);
  for (size_t i = 0; i < n; ++i) {
    const double target = (i == label ? target_true_ : target_false_) * dt;
    const double diff = counts[i] - target;
    result.value += diff * diff / dt;
    // d(diff^2/T)/dcount = 2*diff/T ; count = sum_t s[t] so the gradient is
    // uniform across timesteps.
    grad_per_count[i] = 2.0 * diff / dt;
  }
  for (size_t t = 0; t < T; ++t) {
    float* row = result.grad_output.data() + t * n;
    for (size_t i = 0; i < n; ++i) row[i] = static_cast<float>(grad_per_count[i]);
  }
  return result;
}

LossResult RateCrossEntropyLoss::compute(const Tensor& output_spikes, size_t label) const {
  size_t T = 0, n = 0;
  const auto counts = count_spikes(output_spikes, T, n);
  if (label >= n) throw std::invalid_argument("RateCrossEntropyLoss: label out of range");
  // logits and a numerically stable softmax
  std::vector<double> logits(n);
  double max_logit = -1e300;
  for (size_t i = 0; i < n; ++i) {
    logits[i] = scale_ * counts[i] / static_cast<double>(T);
    max_logit = std::max(max_logit, logits[i]);
  }
  double denom = 0.0;
  for (size_t i = 0; i < n; ++i) denom += std::exp(logits[i] - max_logit);
  LossResult result;
  result.value = -(logits[label] - max_logit) + std::log(denom);
  result.grad_output = Tensor(output_spikes.shape());
  std::vector<double> grad_per_count(n);
  for (size_t i = 0; i < n; ++i) {
    const double softmax = std::exp(logits[i] - max_logit) / denom;
    const double g_logit = softmax - (i == label ? 1.0 : 0.0);
    grad_per_count[i] = g_logit * scale_ / static_cast<double>(T);
  }
  for (size_t t = 0; t < T; ++t) {
    float* row = result.grad_output.data() + t * n;
    for (size_t i = 0; i < n; ++i) row[i] = static_cast<float>(grad_per_count[i]);
  }
  return result;
}

}  // namespace snntest::train
