// Evaluation metrics: top-1 accuracy and confusion matrix over a dataset.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "snn/network.hpp"

namespace snntest::train {

struct EvalResult {
  double accuracy = 0.0;
  size_t correct = 0;
  size_t total = 0;
  /// confusion[true_label][predicted] counts.
  std::vector<std::vector<size_t>> confusion;
};

/// Run inference over up to `max_samples` samples (0 = whole dataset) and
/// score top-1 predictions by output spike count (rate decoding).
EvalResult evaluate(snn::Network& net, const data::Dataset& ds, size_t max_samples = 0);

}  // namespace snntest::train
