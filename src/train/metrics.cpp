#include "train/metrics.hpp"

#include <algorithm>

namespace snntest::train {

EvalResult evaluate(snn::Network& net, const data::Dataset& ds, size_t max_samples) {
  EvalResult result;
  const size_t n = max_samples == 0 ? ds.size() : std::min(max_samples, ds.size());
  result.confusion.assign(ds.num_classes(), std::vector<size_t>(ds.num_classes(), 0));
  for (size_t i = 0; i < n; ++i) {
    const data::Sample sample = ds.get(i);
    const auto fwd = net.forward(sample.input, /*record_traces=*/false);
    const size_t predicted = fwd.predicted_class();
    result.correct += predicted == sample.label;
    ++result.total;
    result.confusion[sample.label][predicted] += 1;
  }
  result.accuracy =
      result.total ? static_cast<double>(result.correct) / static_cast<double>(result.total) : 0.0;
  return result;
}

}  // namespace snntest::train
