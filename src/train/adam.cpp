#include "train/adam.hpp"

#include <cmath>
#include <stdexcept>

#include "snn/network.hpp"

namespace snntest::train {

AdamOptimizer::AdamOptimizer(AdamConfig config) : config_(config) {
  if (config.lr <= 0) throw std::invalid_argument("AdamConfig: lr must be > 0");
  if (config.beta1 < 0 || config.beta1 >= 1 || config.beta2 < 0 || config.beta2 >= 1) {
    throw std::invalid_argument("AdamConfig: betas must be in [0, 1)");
  }
}

void AdamOptimizer::attach(float* value, const float* grad, size_t size) {
  slots_.push_back(Slot{value, grad, size, std::vector<float>(size, 0.0f),
                        std::vector<float>(size, 0.0f)});
}

void AdamOptimizer::attach(snn::Network& net) {
  for (const snn::ParamView& p : net.params()) attach(p.value, p.grad, p.size);
}

void AdamOptimizer::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (Slot& slot : slots_) {
    double clip_scale = 1.0;
    if (config_.grad_clip_norm > 0.0) {
      double norm_sq = 0.0;
      for (size_t i = 0; i < slot.size; ++i) {
        norm_sq += static_cast<double>(slot.grad[i]) * slot.grad[i];
      }
      const double norm = std::sqrt(norm_sq);
      if (norm > config_.grad_clip_norm) clip_scale = config_.grad_clip_norm / norm;
    }
    for (size_t i = 0; i < slot.size; ++i) {
      const double g = slot.grad[i] * clip_scale;
      slot.m[i] = static_cast<float>(config_.beta1 * slot.m[i] + (1.0 - config_.beta1) * g);
      slot.v[i] = static_cast<float>(config_.beta2 * slot.v[i] + (1.0 - config_.beta2) * g * g);
      const double m_hat = slot.m[i] / bc1;
      const double v_hat = slot.v[i] / bc2;
      double update = config_.lr * m_hat / (std::sqrt(v_hat) + config_.eps);
      if (config_.weight_decay > 0.0) update += config_.lr * config_.weight_decay * slot.value[i];
      slot.value[i] = static_cast<float>(slot.value[i] - update);
    }
  }
}

void AdamOptimizer::reset_moments() {
  t_ = 0;
  for (Slot& slot : slots_) {
    std::fill(slot.m.begin(), slot.m.end(), 0.0f);
    std::fill(slot.v.begin(), slot.v.end(), 0.0f);
  }
}

}  // namespace snntest::train
