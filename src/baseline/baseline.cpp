#include "baseline/baseline.hpp"

#include <algorithm>
#include <stdexcept>

#include "snn/spike_train.hpp"
#include "util/timer.hpp"

namespace snntest::baseline {

size_t BaselineResult::total_steps() const {
  size_t steps = 0;
  for (const auto& input : selected_inputs) steps += input.shape().dim(0);
  return steps;
}

double BaselineResult::duration_in_samples(size_t steps_per_sample) const {
  if (steps_per_sample == 0) throw std::invalid_argument("duration_in_samples: zero divisor");
  return static_cast<double>(total_steps()) / static_cast<double>(steps_per_sample);
}

Tensor BaselineResult::assemble() const {
  if (selected_inputs.empty()) throw std::logic_error("BaselineResult::assemble: empty test");
  return snn::concat_time(selected_inputs);
}

BaselineResult greedy_select(const snn::Network& net,
                             const std::vector<fault::FaultDescriptor>& faults,
                             size_t num_candidates, const CandidateProvider& candidate,
                             const GreedyConfig& config, std::string method_name) {
  util::Timer timer;
  BaselineResult result;
  result.method = std::move(method_name);
  result.candidates_evaluated = num_candidates;

  // Detection matrix: candidate x fault. Each row is one full fault
  // simulation campaign — the dominant cost of all greedy prior work.
  std::vector<Tensor> inputs;
  inputs.reserve(num_candidates);
  std::vector<std::vector<uint8_t>> detects(num_candidates);
  fault::CampaignConfig campaign_config;
  campaign_config.num_threads = config.num_threads;
  for (size_t c = 0; c < num_candidates; ++c) {
    inputs.push_back(candidate(c));
    const auto outcome = fault::run_detection_campaign(net, inputs.back(), faults, campaign_config);
    detects[c].resize(faults.size());
    for (size_t j = 0; j < faults.size(); ++j) detects[c][j] = outcome.results[j].detected;
    result.fault_sims += faults.size();
  }

  // Greedy set cover by marginal gain.
  std::vector<uint8_t> covered(faults.size(), 0);
  std::vector<uint8_t> used(num_candidates, 0);
  size_t covered_count = 0;
  const size_t target =
      static_cast<size_t>(config.target_coverage * static_cast<double>(faults.size()));
  while (covered_count < faults.size()) {
    if (config.max_selected && result.selected.size() >= config.max_selected) break;
    size_t best = num_candidates;
    size_t best_gain = 0;
    for (size_t c = 0; c < num_candidates; ++c) {
      if (used[c]) continue;
      size_t gain = 0;
      for (size_t j = 0; j < faults.size(); ++j) gain += (!covered[j] && detects[c][j]);
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    if (best == num_candidates || best_gain == 0) break;  // no candidate helps
    used[best] = 1;
    result.selected.push_back(best);
    result.selected_inputs.push_back(inputs[best]);
    for (size_t j = 0; j < faults.size(); ++j) {
      if (!covered[j] && detects[best][j]) {
        covered[j] = 1;
        ++covered_count;
      }
    }
    if (covered_count >= target) break;
  }

  result.coverage = faults.empty()
                        ? 1.0
                        : static_cast<double>(covered_count) / static_cast<double>(faults.size());
  result.generation_seconds = timer.seconds();
  return result;
}

}  // namespace snntest::baseline
