#include "baseline/random_testgen.hpp"

#include <algorithm>

#include "snn/spike_train.hpp"

namespace snntest::baseline {

BaselineResult random_testgen(const snn::Network& net,
                              const std::vector<fault::FaultDescriptor>& faults,
                              const data::Dataset& dataset,
                              const RandomTestgenConfig& config) {
  double density = config.density;
  if (density <= 0.0) {
    // Match the dataset's mean firing density over a few samples.
    double sum = 0.0;
    const size_t probe = std::min<size_t>(8, dataset.size());
    for (size_t i = 0; i < probe; ++i) sum += snn::spike_density(dataset.get(i).input);
    density = probe ? std::max(0.01, sum / static_cast<double>(probe)) : 0.05;
  }
  util::Rng rng(config.seed);
  std::vector<Tensor> pool;
  pool.reserve(config.candidate_count);
  for (size_t i = 0; i < config.candidate_count; ++i) {
    pool.push_back(
        snn::random_spike_train(dataset.num_steps(), dataset.input_size(), density, rng));
  }
  auto provider = [&pool](size_t i) { return pool[i]; };
  return greedy_select(net, faults, pool.size(), provider, config.greedy, "random[20]");
}

}  // namespace snntest::baseline
