// Baseline [20] (Chen et al., ETS'24): random test inputs, greedily
// compacted. Random spike trains are drawn at the dataset's firing density
// (random inputs "are not designed for detecting faults" — the point of the
// comparison).
#pragma once

#include "baseline/baseline.hpp"
#include "data/dataset.hpp"

namespace snntest::baseline {

struct RandomTestgenConfig {
  size_t candidate_count = 48;
  /// Spike density of the random candidates; 0 = estimate from the dataset.
  double density = 0.0;
  uint64_t seed = 7;
  GreedyConfig greedy;
};

BaselineResult random_testgen(const snn::Network& net,
                              const std::vector<fault::FaultDescriptor>& faults,
                              const data::Dataset& dataset,
                              const RandomTestgenConfig& config = {});

}  // namespace snntest::baseline
