#include "baseline/greedy_dataset.hpp"

#include <algorithm>

namespace snntest::baseline {

BaselineResult greedy_dataset_testgen(const snn::Network& net,
                                      const std::vector<fault::FaultDescriptor>& faults,
                                      const data::Dataset& dataset,
                                      const GreedyDatasetConfig& config) {
  const size_t count = std::min(config.candidate_count, dataset.size());
  auto provider = [&dataset](size_t i) { return dataset.get(i).input; };
  return greedy_select(net, faults, count, provider, config.greedy, "greedy-dataset[18]");
}

}  // namespace snntest::baseline
