// Baseline [18] (El-Sayed et al., TCAD'23): compact functional testing by
// greedy compaction of *dataset samples* — fault-simulate each sample,
// then keep the subset that covers the most faults.
#pragma once

#include "baseline/baseline.hpp"
#include "data/dataset.hpp"

namespace snntest::baseline {

struct GreedyDatasetConfig {
  size_t candidate_count = 48;  // dataset samples considered
  GreedyConfig greedy;
};

BaselineResult greedy_dataset_testgen(const snn::Network& net,
                                      const std::vector<fault::FaultDescriptor>& faults,
                                      const data::Dataset& dataset,
                                      const GreedyDatasetConfig& config = {});

}  // namespace snntest::baseline
