// Baseline [17] (Tseng et al., ICCAD'21): adversarial test patterns.
//
// Candidates are dataset samples perturbed by gradient ascent to maximally
// disturb the network's own response (an adversarial example in the spiking
// domain): starting from the sample's spike train, the input logits are
// pushed to maximize the rate-cross-entropy of the golden prediction, using
// the same Gumbel/STE machinery as the proposed method. The perturbed
// samples are then greedily compacted exactly like the other baselines.
#pragma once

#include "baseline/baseline.hpp"
#include "data/dataset.hpp"

namespace snntest::baseline {

struct AdversarialConfig {
  size_t candidate_count = 32;
  size_t ascent_steps = 40;   // gradient-ascent iterations per candidate
  double lr = 0.1;
  double tau = 0.6;           // fixed Gumbel temperature during the attack
  uint64_t seed = 11;
  GreedyConfig greedy;
};

BaselineResult adversarial_testgen(snn::Network& net,
                                   const std::vector<fault::FaultDescriptor>& faults,
                                   const data::Dataset& dataset,
                                   const AdversarialConfig& config = {});

/// The attack alone: adversarially perturb `input` against `net`.
tensor::Tensor adversarial_perturb(snn::Network& net, const tensor::Tensor& input,
                                   const AdversarialConfig& config, util::Rng& rng);

}  // namespace snntest::baseline
