// Shared machinery for the prior-work baselines the paper compares against
// in Table IV.
//
// All three baselines ([17] adversarial, [18] dataset compaction, [20]
// random inputs) are greedy: build a candidate-input pool, fault-simulate
// every candidate against the fault list (this is the unbounded
// fault-simulation cost the paper criticizes — we count the simulations),
// then greedily select candidates by marginal coverage until coverage
// saturates. The selected inputs applied back-to-back form the baseline
// test, whose duration Table IV compares with the optimized stimulus.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "snn/network.hpp"

namespace snntest::baseline {

using tensor::Tensor;

struct BaselineResult {
  std::string method;
  std::vector<size_t> selected;       // candidate indices in selection order
  std::vector<Tensor> selected_inputs;
  size_t candidates_evaluated = 0;
  /// Total single-fault inference runs spent during generation (the
  /// O(M * T_FS) cost of Sec. IV-B).
  size_t fault_sims = 0;
  double coverage = 0.0;  // on the fault list used during generation
  double generation_seconds = 0.0;

  size_t total_steps() const;
  /// Test duration in dataset-sample equivalents.
  double duration_in_samples(size_t steps_per_sample) const;
  /// Back-to-back concatenation of the selected inputs (the baseline test).
  Tensor assemble() const;
};

struct GreedyConfig {
  /// Stop once this fraction of the fault list is covered (1.0 = only stops
  /// when no candidate adds coverage).
  double target_coverage = 1.0;
  size_t max_selected = 0;  // 0 = unlimited
  size_t num_threads = 0;
};

/// Candidate pool interface: `count` inputs, produced lazily.
using CandidateProvider = std::function<Tensor(size_t)>;

/// Core greedy set-cover: fault-simulate every candidate against `faults`
/// (building the detection matrix), then select by marginal coverage.
BaselineResult greedy_select(const snn::Network& net,
                             const std::vector<fault::FaultDescriptor>& faults,
                             size_t num_candidates, const CandidateProvider& candidate,
                             const GreedyConfig& config, std::string method_name);

}  // namespace snntest::baseline
