#include "baseline/adversarial_testgen.hpp"

#include <algorithm>

#include "core/gumbel.hpp"
#include "train/adam.hpp"
#include "train/loss.hpp"

namespace snntest::baseline {

tensor::Tensor adversarial_perturb(snn::Network& net, const tensor::Tensor& input,
                                   const AdversarialConfig& config, util::Rng& rng) {
  const size_t T = input.shape().dim(0);
  const size_t n = input.shape().dim(1);
  // Candidates are hard 0/1 spike trains — let the forward loops exploit
  // their sparsity (bit-identical to the dense kernels).
  net.set_kernel_mode(snn::KernelMode::kAuto);
  // Golden prediction to attack.
  const size_t golden = net.forward(input).predicted_class();

  core::GumbelSoftmaxInput logits(T, n, rng);
  // Seed logits from the sample so the attack is a perturbation, not a
  // from-scratch search.
  tensor::Tensor& real = logits.mutable_real();
  for (size_t i = 0; i < real.numel(); ++i) real[i] = input[i] > 0.5f ? 2.0f : -2.0f;

  train::AdamConfig adam_config;
  adam_config.lr = config.lr;
  train::AdamOptimizer adam(adam_config);
  adam.attach(logits.real_data(), logits.grad_data(), logits.size());

  const train::RateCrossEntropyLoss ce;
  tensor::Tensor best = input;
  double best_value = -1.0;
  for (size_t step = 0; step < config.ascent_steps; ++step) {
    const tensor::Tensor& candidate = logits.forward(config.tau, /*stochastic=*/true);
    auto fwd = net.forward(candidate, /*record_traces=*/true);
    // Ascend the cross-entropy of the golden class: gradient ascent ==
    // descent on the negated loss.
    train::LossResult loss = ce.compute(fwd.output(), golden);
    tensor::Tensor neg_grad(loss.grad_output.shape());
    for (size_t i = 0; i < neg_grad.numel(); ++i) neg_grad[i] = -loss.grad_output[i];
    std::vector<tensor::Tensor> grads(net.num_layers());
    grads.back() = std::move(neg_grad);
    net.zero_grad();
    const tensor::Tensor grad_input = net.backward(grads);
    logits.backward(grad_input);
    adam.step();
    if (loss.value > best_value) {
      best_value = loss.value;
      best = candidate;
    }
  }
  return best;
}

BaselineResult adversarial_testgen(snn::Network& net,
                                   const std::vector<fault::FaultDescriptor>& faults,
                                   const data::Dataset& dataset,
                                   const AdversarialConfig& config) {
  util::Rng rng(config.seed);
  const size_t count = std::min(config.candidate_count, dataset.size());
  std::vector<tensor::Tensor> pool;
  pool.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    pool.push_back(adversarial_perturb(net, dataset.get(i).input, config, rng));
  }
  auto provider = [&pool](size_t i) { return pool[i]; };
  return greedy_select(net, faults, pool.size(), provider, config.greedy, "adversarial[17]");
}

}  // namespace snntest::baseline
