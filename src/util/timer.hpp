// Wall-clock timing helpers used by the benchmark harness and the
// test-generation time-limit (`t_limit` in the paper's Sec. IV-C).
#pragma once

#include <chrono>
#include <string>

namespace snntest::util {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Render a duration in a human-friendly unit ("431 ms", "2.31 s", "1.2 h").
std::string format_duration(double seconds);

}  // namespace snntest::util
