// Tiny CSV writer + fixed-width console table printer.
//
// Every bench binary both prints a human-readable table (matching the
// paper's row layout) and drops a machine-readable CSV next to it so the
// numbers in EXPERIMENTS.md can be regenerated mechanically.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace snntest::util {

/// Append-style CSV writer; quotes fields containing separators.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string field(double v);
  static std::string field(size_t v);
  static std::string field(int v);

 private:
  std::ofstream out_;
};

/// Fixed-width text table for console output (paper-style tables).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with column auto-sizing; first column left-aligned, the rest
  /// right-aligned (matches the paper's metric tables).
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by benches.
std::string fmt_pct(double fraction);        // 0.9871 -> "98.71%"
std::string fmt_double(double v, int prec);  // fixed precision
std::string fmt_count(size_t v);             // thousands separators

}  // namespace snntest::util
