#include "util/subprocess.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

namespace snntest::util {

pid_t spawn_process(const std::vector<std::string>& argv, const SpawnOptions& options) {
  if (argv.empty()) throw std::runtime_error("spawn_process: empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("spawn_process: fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child. Only async-signal-safe calls between fork and exec.
    if (!options.log_path.empty()) {
      const int fd = open(options.log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd >= 0) {
        dup2(fd, STDOUT_FILENO);
        dup2(fd, STDERR_FILENO);
        if (fd > STDERR_FILENO) close(fd);
      }
    }
    execvp(cargv[0], cargv.data());
    _exit(127);  // exec failed; 127 mirrors the shell's "command not found"
  }
  return pid;
}

namespace {

ProcessStatus decode_status(int status) {
  ProcessStatus out;
  if (WIFEXITED(status)) {
    out.exited = true;
    out.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.signaled = true;
    out.term_signal = WTERMSIG(status);
  }
  return out;
}

}  // namespace

ProcessStatus poll_process(pid_t pid) {
  int status = 0;
  const pid_t r = waitpid(pid, &status, WNOHANG);
  if (r == 0) {
    ProcessStatus out;
    out.running = true;
    return out;
  }
  if (r < 0) {
    // Already reaped (or never ours): report as signaled-unknown so callers
    // treat it as a failure rather than a success.
    ProcessStatus out;
    out.signaled = true;
    out.term_signal = 0;
    return out;
  }
  return decode_status(status);
}

ProcessStatus wait_process(pid_t pid) {
  int status = 0;
  pid_t r;
  do {
    r = waitpid(pid, &status, 0);
  } while (r < 0 && errno == EINTR);
  if (r < 0) {
    ProcessStatus out;
    out.signaled = true;
    out.term_signal = 0;
    return out;
  }
  return decode_status(status);
}

bool kill_process(pid_t pid, int sig) {
  return pid > 0 && ::kill(pid, sig) == 0;
}

void atomic_write_file(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp." + std::to_string(static_cast<long>(getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("atomic_write_file: cannot open " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("atomic_write_file: write failed for " + tmp);
    }
  }
  atomic_replace_file(tmp, path);
}

void atomic_replace_file(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    std::remove(from.c_str());
    throw std::runtime_error("atomic_replace_file: rename " + from + " -> " + to +
                             " failed: " + err);
  }
}

std::string current_executable_path(const std::string& fallback) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return fallback;
  buf[n] = '\0';
  return std::string(buf);
}

}  // namespace snntest::util
