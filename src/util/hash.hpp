// Shared non-cryptographic hashing primitives.
//
// One home for the two digests every serializer in the tree uses, so the
// checkpoint fingerprints, the coverage fault dictionary, and any future
// binary format agree on the exact functions instead of growing per-file
// copies:
//
//  * fnv1a  — 64-bit FNV-1a, the fingerprint hash (campaign checkpoints,
//    coverage-dictionary identity). Chainable: pass the previous digest as
//    `seed` to extend it over multiple fields.
//  * crc32  — CRC-32/ISO-HDLC (poly 0xEDB88320, the zlib/PNG CRC),
//    table-based. Guards individual records of binary formats against
//    corruption; `crc32_update` streams over multiple buffers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace snntest::util {

inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;

/// 64-bit FNV-1a over `bytes` bytes, chained from `seed`.
uint64_t fnv1a(const void* data, size_t bytes, uint64_t seed = kFnvOffsetBasis);

/// CRC-32/ISO-HDLC of one buffer (matches zlib's crc32(0, data, len)).
uint32_t crc32(const void* data, size_t bytes);

/// Streaming form: feed the previous return value back as `crc` to extend
/// the digest over multiple buffers. Start from crc32_init().
inline constexpr uint32_t crc32_init() { return 0; }
uint32_t crc32_update(uint32_t crc, const void* data, size_t bytes);

}  // namespace snntest::util
