// Minimal command-line flag parser for the examples and benches.
//
// Supports `--name value` and `--name=value`; unknown flags are an error so
// typos fail loudly. Bench binaries must also run with zero arguments
// (the reproduction loop is `for b in build/bench/*; do $b; done`), so every
// flag has a default.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace snntest::util {

class CliParser {
 public:
  /// `spec` maps flag name (without leading dashes) -> default value.
  CliParser(std::map<std::string, std::string> spec, std::string description);

  /// Parse argv. On `--help` prints usage and returns false (caller should
  /// exit 0). Throws std::invalid_argument on unknown flags / missing values.
  bool parse(int argc, const char* const* argv);

  const std::string& get(const std::string& name) const;

  // Numeric getters validate the FULL token (no trailing junk, no empty
  // value, in-range) and throw std::invalid_argument naming the flag and
  // the offending value — so `--lane-width=abc` is a clean usage error at
  // the caller's try/catch, not an uncaught std::stoi abort.
  int get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  /// get_int restricted to values >= 0, for flags that feed size_t counts
  /// (a negative int silently cast to size_t wraps to ~2^64).
  size_t get_size(const std::string& name) const;
  bool get_bool(const std::string& name) const;  // "1"/"true"/"yes" -> true

  std::string usage(const std::string& program) const;

 private:
  std::map<std::string, std::string> values_;
  std::string description_;
};

}  // namespace snntest::util
