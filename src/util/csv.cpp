#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace snntest::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path, std::ios::trunc) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    const std::string& f = fields[i];
    if (f.find_first_of(",\"\n") != std::string::npos) {
      out_ << '"';
      for (char c : f) {
        if (c == '"') out_ << '"';
        out_ << c;
      }
      out_ << '"';
    } else {
      out_ << f;
    }
  }
  out_ << '\n';
  out_.flush();
}

std::string CsvWriter::field(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}
std::string CsvWriter::field(size_t v) { return std::to_string(v); }
std::string CsvWriter::field(int v) { return std::to_string(v); }

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c ? "  " : "");
      if (c == 0) {
        os << cell << std::string(width[c] - cell.size(), ' ');
      } else {
        os << std::string(width[c] - cell.size(), ' ') << cell;
      }
    }
    os << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string fmt_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

std::string fmt_double(double v, int prec) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string fmt_count(size_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace snntest::util
