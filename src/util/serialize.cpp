#include "util/serialize.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace snntest::util {
namespace {

template <typename T>
void write_raw(std::ostream& os, T v) {
  // The project targets little-endian hosts only (x86-64/aarch64); a
  // static_assert in check_magic guards the assumption at the format level.
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_raw(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("serialize: truncated stream");
  return v;
}

}  // namespace

void write_u32(std::ostream& os, uint32_t v) { write_raw(os, v); }
void write_u64(std::ostream& os, uint64_t v) { write_raw(os, v); }
void write_f32(std::ostream& os, float v) { write_raw(os, v); }
void write_f64(std::ostream& os, double v) { write_raw(os, v); }

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void write_f32_vector(std::ostream& os, const std::vector<float>& v) {
  write_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(float)));
}

void write_u8_vector(std::ostream& os, const std::vector<uint8_t>& v) {
  write_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()), static_cast<std::streamsize>(v.size()));
}

uint32_t read_u32(std::istream& is) { return read_raw<uint32_t>(is); }
uint64_t read_u64(std::istream& is) { return read_raw<uint64_t>(is); }
float read_f32(std::istream& is) { return read_raw<float>(is); }
double read_f64(std::istream& is) { return read_raw<double>(is); }

std::string read_string(std::istream& is) {
  const uint64_t n = read_u64(is);
  if (n > (1ull << 32)) throw std::runtime_error("serialize: implausible string size");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("serialize: truncated stream");
  return s;
}

std::vector<float> read_f32_vector(std::istream& is) {
  const uint64_t n = read_u64(is);
  if (n > (1ull << 32)) throw std::runtime_error("serialize: implausible vector size");
  std::vector<float> v(n);
  is.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) throw std::runtime_error("serialize: truncated stream");
  return v;
}

std::vector<uint8_t> read_u8_vector(std::istream& is) {
  const uint64_t n = read_u64(is);
  if (n > (1ull << 33)) throw std::runtime_error("serialize: implausible vector size");
  std::vector<uint8_t> v(n);
  is.read(reinterpret_cast<char*>(v.data()), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("serialize: truncated stream");
  return v;
}

void write_magic(std::ostream& os, uint32_t magic, uint32_t version) {
  static_assert(std::endian::native == std::endian::little,
                "serialization format assumes a little-endian host");
  write_u32(os, magic);
  write_u32(os, version);
}

void check_magic(std::istream& is, uint32_t magic, uint32_t version) {
  const uint32_t m = read_u32(is);
  const uint32_t v = read_u32(is);
  if (m != magic) throw std::runtime_error("serialize: bad magic");
  if (v != version) throw std::runtime_error("serialize: version mismatch");
}

}  // namespace snntest::util
