#include "util/cli.hpp"

#include <cstdio>
#include <stdexcept>

namespace snntest::util {

CliParser::CliParser(std::map<std::string, std::string> spec, std::string description)
    : values_(std::move(spec)), description_(std::move(description)) {}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else {
      if (i + 1 >= argc) throw std::invalid_argument("flag --" + name + " needs a value");
      value = argv[++i];
    }
    auto it = values_.find(name);
    if (it == values_.end()) throw std::invalid_argument("unknown flag --" + name);
    it->second = value;
  }
  return true;
}

const std::string& CliParser::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) throw std::invalid_argument("flag not in spec: " + name);
  return it->second;
}

int CliParser::get_int(const std::string& name) const { return std::stoi(get(name)); }
double CliParser::get_double(const std::string& name) const { return std::stod(get(name)); }

bool CliParser::get_bool(const std::string& name) const {
  const std::string& v = get(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::string CliParser::usage(const std::string& program) const {
  std::string out = description_ + "\n\nUsage: " + program + " [flags]\n";
  for (const auto& [name, def] : values_) {
    out += "  --" + name + " (default: " + def + ")\n";
  }
  return out;
}

}  // namespace snntest::util
