#include "util/cli.hpp"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace snntest::util {

CliParser::CliParser(std::map<std::string, std::string> spec, std::string description)
    : values_(std::move(spec)), description_(std::move(description)) {}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else {
      if (i + 1 >= argc) throw std::invalid_argument("flag --" + name + " needs a value");
      value = argv[++i];
    }
    auto it = values_.find(name);
    if (it == values_.end()) throw std::invalid_argument("unknown flag --" + name);
    it->second = value;
  }
  return true;
}

const std::string& CliParser::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) throw std::invalid_argument("flag not in spec: " + name);
  return it->second;
}

namespace {

[[noreturn]] void bad_value(const std::string& name, const std::string& value,
                            const char* expected) {
  throw std::invalid_argument("flag --" + name + ": expected " + expected + ", got '" + value +
                              "'");
}

/// strtoll/strtod skip leading whitespace; the full-token contract of the
/// numeric getters does not.
bool leading_space(const std::string& value) {
  return !value.empty() && std::isspace(static_cast<unsigned char>(value.front()));
}

}  // namespace

int CliParser::get_int(const std::string& name) const {
  const std::string& value = get(name);
  if (leading_space(value)) bad_value(name, value, "an integer");
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  // Reject empty tokens and trailing junk ("12abc"), not just non-numeric
  // prefixes — std::stoi would happily accept "12abc".
  if (end == value.c_str() || *end != '\0') bad_value(name, value, "an integer");
  if (errno == ERANGE || parsed < INT_MIN || parsed > INT_MAX) {
    bad_value(name, value, "an integer in int range");
  }
  return static_cast<int>(parsed);
}

size_t CliParser::get_size(const std::string& name) const {
  const int parsed = get_int(name);
  if (parsed < 0) bad_value(name, get(name), "a non-negative integer");
  return static_cast<size_t>(parsed);
}

double CliParser::get_double(const std::string& name) const {
  const std::string& value = get(name);
  if (leading_space(value)) bad_value(name, value, "a number");
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') bad_value(name, value, "a number");
  // ERANGE with +/-HUGE_VAL is overflow; ERANGE on a denormal-or-zero result
  // is underflow, which is representable and fine.
  if (errno == ERANGE && std::fabs(parsed) == HUGE_VAL) {
    bad_value(name, value, "a number in double range");
  }
  return parsed;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string& v = get(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::string CliParser::usage(const std::string& program) const {
  std::string out = description_ + "\n\nUsage: " + program + " [flags]\n";
  for (const auto& [name, def] : values_) {
    out += "  --" + name + " (default: " + def + ")\n";
  }
  return out;
}

}  // namespace snntest::util
