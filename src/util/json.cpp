#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace snntest::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xFF);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  auto it = object.find(key);
  if (it == object.end()) throw std::runtime_error("missing key: " + key);
  return it->second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;

  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error(std::string(what) + " at offset " + std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) fail("unexpected character");
    ++pos_;
  }
  bool consume(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"':
        v.kind = JsonValue::kString;
        v.str = string();
        return v;
      case 't':
        if (!consume("true")) fail("bad literal");
        v.kind = JsonValue::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume("false")) fail("bad literal");
        v.kind = JsonValue::kBool;
        return v;
      case 'n':
        if (!consume("null")) fail("bad literal");
        return v;
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u digit");
          }
          // Non-ASCII flattens to '?': the emitters in this tree only
          // produce ASCII, so presence is all consumers ever check.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::kNumber;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      fail("bad number");
    }
    return v;
  }
};

void append_json(const JsonValue& v, std::string& out) {
  switch (v.kind) {
    case JsonValue::kNull:
      out += "null";
      break;
    case JsonValue::kBool:
      out += v.boolean ? "true" : "false";
      break;
    case JsonValue::kNumber: {
      if (!std::isfinite(v.number)) {
        out += "null";
        break;
      }
      char buf[40];
      // Integral values within int64 range render exactly (microsecond
      // timestamps must survive a parse/serialize round trip unchanged).
      if (v.number == std::floor(v.number) && std::fabs(v.number) < 9.2e18) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v.number));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      }
      out += buf;
      break;
    }
    case JsonValue::kString:
      out += '"';
      out += json_escape(v.str);
      out += '"';
      break;
    case JsonValue::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& e : v.array) {
        if (!first) out += ',';
        first = false;
        append_json(e, out);
      }
      out += ']';
      break;
    }
    case JsonValue::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.object) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(key);
        out += "\":";
        append_json(value, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

JsonValue parse_json(const std::string& text) { return JsonParser(text).parse(); }

std::optional<JsonValue> try_parse_json(const std::string& text, std::string* error) {
  try {
    return JsonParser(text).parse();
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

std::string to_json(const JsonValue& v) {
  std::string out;
  append_json(v, out);
  return out;
}

}  // namespace snntest::util
