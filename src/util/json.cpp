#include "util/json.hpp"

#include <cstdio>

namespace snntest::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xFF);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace snntest::util
