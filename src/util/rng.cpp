#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace snntest::util {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::next() {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

uint64_t Rng::uniform_index(uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection-free-enough multiply-shift; bias is negligible for
  // the n used here (< 2^32) but we reject to stay exact.
  const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::gumbel() {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(-std::log(u));
}

Rng Rng::split() { return Rng(next()); }

uint64_t mix_seed(uint64_t seed, uint64_t stream, uint64_t substream) {
  // Three chained splitmix64 rounds, folding one component in per round;
  // splitmix64's avalanche decorrelates neighbouring (stream, substream)
  // pairs, and the multiplies keep stream/substream = 0 from collapsing.
  uint64_t s = seed;
  uint64_t h = splitmix64(s);
  s ^= (stream + 1) * 0xBF58476D1CE4E5B9ull + h;
  h = splitmix64(s);
  s ^= (substream + 1) * 0x94D049BB133111EBull + h;
  return splitmix64(s);
}

std::vector<size_t> Rng::permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

std::vector<size_t> Rng::sample_without_replacement(size_t n, size_t k) {
  auto idx = permutation(n);
  if (k < n) idx.resize(k);
  return idx;
}

}  // namespace snntest::util
