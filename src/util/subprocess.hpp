// Child-process management and crash-safe file commits (POSIX).
//
// The sharded campaign orchestrator (campaign/orchestrator.hpp) launches
// one OS process per fault-universe shard so a crash, OOM kill, or hang
// loses only that shard's uncommitted work. These are the primitives it is
// built on:
//
//  * spawn / poll / wait / kill — fork+execvp with stdout/stderr optionally
//    redirected to a log file. Non-blocking poll (waitpid WNOHANG) lets a
//    single-threaded supervisor watch many children.
//  * atomic_write_file / atomic_replace_file — the commit protocol for
//    worker outputs: bytes go to `<path>.tmp.<pid>` first and reach `path`
//    only via rename(2), which POSIX guarantees atomic within a filesystem.
//    A reader therefore sees either the old complete file or the new
//    complete file, never a torn half-write — the property the orchestrator
//    relies on when it treats the presence of a shard file as "this shard
//    committed".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace snntest::util {

struct SpawnOptions {
  /// Redirect the child's stdout+stderr (appending) to this file; empty
  /// inherits the parent's streams.
  std::string log_path;
};

/// fork+execvp `argv` (argv[0] is the program; PATH is searched). Returns
/// the child pid. Throws std::runtime_error when fork fails; an exec failure
/// surfaces as the child exiting with status 127.
pid_t spawn_process(const std::vector<std::string>& argv, const SpawnOptions& options = {});

struct ProcessStatus {
  bool running = false;
  bool exited = false;    ///< normal exit; `exit_code` is valid
  bool signaled = false;  ///< killed by a signal; `term_signal` is valid
  int exit_code = -1;
  int term_signal = 0;

  bool success() const { return exited && exit_code == 0; }
};

/// Non-blocking status check (waitpid WNOHANG). Once a terminal status has
/// been returned the pid is reaped and must not be polled again.
ProcessStatus poll_process(pid_t pid);

/// Blocking wait; reaps the child.
ProcessStatus wait_process(pid_t pid);

/// Send `sig` (default SIGKILL) to the child. Safe on already-dead but
/// unreaped children. Returns false when the signal could not be delivered.
bool kill_process(pid_t pid, int sig = 9);

/// Write `bytes` to `path` atomically: a temp file in the same directory is
/// written, flushed, and renamed over `path`. Throws std::runtime_error on
/// any failure (the temp file is removed).
void atomic_write_file(const std::string& path, const std::string& bytes);

/// rename(2) wrapper: atomically replace `to` with `from` (same
/// filesystem). Throws std::runtime_error on failure.
void atomic_replace_file(const std::string& from, const std::string& to);

/// Absolute path of the running executable (/proc/self/exe), or `fallback`
/// when the platform cannot resolve it. Used by tools that re-exec
/// themselves as shard workers.
std::string current_executable_path(const std::string& fallback = "");

}  // namespace snntest::util
