// Deterministic pseudo-random number generation.
//
// Everything in this repository that involves randomness (weight init,
// synthetic dataset generation, Gumbel noise, fault sampling) draws from a
// `Rng` seeded explicitly, so every experiment is reproducible bit-for-bit
// across runs. The generator is xoshiro256** (public domain, Blackman &
// Vigna), seeded through splitmix64 so that nearby seeds give uncorrelated
// streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace snntest::util {

/// xoshiro256** PRNG with convenience distributions.
/// Satisfies UniformRandomBitGenerator so it can also feed <random>.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n) — n must be > 0.
  uint64_t uniform_index(uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  /// Normal with given mean/stddev.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Sample from standard Gumbel distribution: -log(-log(U)).
  double gumbel();

  /// Derive an independent child stream (for parallel workers).
  Rng split();

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<size_t> permutation(size_t n);

  /// Sample k distinct indices from [0, n) without replacement.
  /// If k >= n, returns the full permuted range.
  std::vector<size_t> sample_without_replacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Deterministically derive a child seed from (seed, stream, substream).
/// Unlike Rng::split(), the result does not depend on any generator state
/// or call order — seeding a worker with mix_seed(master, iteration, r)
/// gives the same stream no matter which thread runs it or when, which is
/// what makes the multi-restart test generator bit-reproducible across
/// thread counts (DESIGN.md §10).
uint64_t mix_seed(uint64_t seed, uint64_t stream, uint64_t substream);

}  // namespace snntest::util
