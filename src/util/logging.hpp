// Lightweight leveled logger.
//
// The library is used both from long-running benchmark harnesses (where
// progress lines are wanted) and from unit tests (where silence is wanted),
// so the level is a process-global that defaults to `info` and can be
// changed at runtime or via the SNNTEST_LOG environment variable
// (trace|debug|info|warn|error|off).
#pragma once

#include <cstdio>
#include <string>

namespace snntest::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-global minimum level; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Unknown strings map to kInfo with a one-time stderr warning naming the
/// bad value and the accepted set.
LogLevel parse_log_level(const std::string& name);

/// Core sink: writes "[level] message\n" to stderr if `level` passes the
/// global filter. Thread-safe (single write call).
void log_message(LogLevel level, const std::string& message);

namespace detail {
std::string format_args(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

// printf-style convenience wrappers.
template <typename... Args>
void log_at(LogLevel level, const char* fmt, Args... args) {
  if (level < log_level()) return;
  if constexpr (sizeof...(Args) == 0) {
    log_message(level, fmt);
  } else {
    log_message(level, detail::format_args(fmt, args...));
  }
}

#define SNNTEST_LOG_TRACE(...) ::snntest::util::log_at(::snntest::util::LogLevel::kTrace, __VA_ARGS__)
#define SNNTEST_LOG_DEBUG(...) ::snntest::util::log_at(::snntest::util::LogLevel::kDebug, __VA_ARGS__)
#define SNNTEST_LOG_INFO(...) ::snntest::util::log_at(::snntest::util::LogLevel::kInfo, __VA_ARGS__)
#define SNNTEST_LOG_WARN(...) ::snntest::util::log_at(::snntest::util::LogLevel::kWarn, __VA_ARGS__)
#define SNNTEST_LOG_ERROR(...) ::snntest::util::log_at(::snntest::util::LogLevel::kError, __VA_ARGS__)

}  // namespace snntest::util
