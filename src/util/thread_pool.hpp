// Minimal fixed-size thread pool with a parallel-for front end.
//
// Fault-simulation campaigns are embarrassingly parallel across faults
// (Sec. III: sequential fault injection — each fault is an independent
// inference). The pool lets the campaign saturate whatever cores exist;
// on a single-core host it degrades gracefully to serial execution.
//
// Exception contract: a task that throws does NOT terminate the process.
// The pool captures the first exception raised by any task (later ones are
// dropped) and rethrows it from the next wait_idle() — which is what
// parallel_for / parallel_for_dynamic call before returning, so a worker
// exception reaches the caller of the parallel loop on its own thread.
// Remaining tasks still run to completion first (no cancellation): the
// barrier semantics stay intact and worker-local state is never abandoned
// mid-item. An exception never retrieved by wait_idle() is discarded when
// the pool stops.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace snntest::util {

class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return num_threads_; }

  /// Enqueue a task; returns immediately. Throws std::runtime_error once
  /// stop() has been called — a stopped pool never silently drops work.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished; then rethrow the first
  /// exception any of them raised since the last wait_idle (clearing it),
  /// if there was one.
  void wait_idle();

  /// Drain the queue (already-submitted tasks run to completion), join all
  /// workers and reject future submit()s. Idempotent; called by the
  /// destructor. Does not rethrow pending task exceptions (destructors must
  /// not throw) — call wait_idle() first if you care.
  void stop();

  bool stopped() const;

 private:
  void worker_loop();

  size_t num_threads_ = 0;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_exception_;
};

/// Run `fn(i)` for i in [0, n). If `pool` is null or has one worker and the
/// caller prefers no thread overhead, runs inline. Blocks until done.
/// Work is distributed in contiguous chunks to keep memory access coherent.
/// Rethrows the first exception any fn(i) raised (see ThreadPool).
void parallel_for(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn);

/// Number of workers `parallel_for_dynamic` will use on `pool` — size
/// worker-local state (network clones, accumulators) with this before
/// calling it. Null / single-threaded pools run inline as one worker.
size_t dynamic_workers(const ThreadPool* pool);

/// Dynamic-schedule variant for uneven per-item cost: workers repeatedly
/// claim `grain`-sized chunks from a shared atomic counter instead of being
/// handed one static range each, so a slow item cannot strand the rest of
/// its chunk behind it while other workers sit idle. `fn(worker, i)` is
/// called with a stable worker id in [0, dynamic_workers(pool)) usable to
/// index worker-local state. `grain == 0` is treated as 1. Blocks until
/// done, then rethrows the first exception any fn raised; a worker that
/// throws stops claiming chunks but the others finish the range.
void parallel_for_dynamic(ThreadPool* pool, size_t n, size_t grain,
                          const std::function<void(size_t, size_t)>& fn);

}  // namespace snntest::util
