#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

namespace snntest::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads_ = num_threads;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    to_join.swap(workers_);  // second concurrent stop() gets an empty list
  }
  task_available_.notify_all();
  for (auto& w : to_join) w.join();
}

bool ThreadPool::stopped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stop_;
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      throw std::runtime_error("ThreadPool::submit: pool is stopped");
    }
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_) {
    std::exception_ptr e = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_exception_) first_exception_ = error;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t workers = pool->size();
  const size_t chunk = (n + workers - 1) / workers;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    pool->submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool->wait_idle();
}

size_t dynamic_workers(const ThreadPool* pool) {
  return (pool == nullptr || pool->size() <= 1) ? 1 : pool->size();
}

void parallel_for_dynamic(ThreadPool* pool, size_t n, size_t grain,
                          const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (dynamic_workers(pool) == 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  const size_t workers = std::min(pool->size(), (n + grain - 1) / grain);
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < workers; ++w) {
    pool->submit([w, n, grain, &next, &fn] {
      for (;;) {
        const size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= n) return;
        const size_t end = std::min(n, begin + grain);
        for (size_t i = begin; i < end; ++i) fn(w, i);
      }
    });
  }
  pool->wait_idle();
}

}  // namespace snntest::util
