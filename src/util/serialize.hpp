// Binary stream serialization primitives.
//
// Used for persisting trained models (zoo cache) and generated test stimuli
// (on-chip test storage for in-field testing per Sec. I). The format is a
// simple little-endian tagged stream; all writers prepend a magic + version
// so stale caches from older builds are rejected rather than misread.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace snntest::util {

void write_u32(std::ostream& os, uint32_t v);
void write_u64(std::ostream& os, uint64_t v);
void write_f32(std::ostream& os, float v);
void write_f64(std::ostream& os, double v);
void write_string(std::ostream& os, const std::string& s);
void write_f32_vector(std::ostream& os, const std::vector<float>& v);
void write_u8_vector(std::ostream& os, const std::vector<uint8_t>& v);

// Readers throw std::runtime_error on a truncated stream.
uint32_t read_u32(std::istream& is);
uint64_t read_u64(std::istream& is);
float read_f32(std::istream& is);
double read_f64(std::istream& is);
std::string read_string(std::istream& is);
std::vector<float> read_f32_vector(std::istream& is);
std::vector<uint8_t> read_u8_vector(std::istream& is);

/// Write a magic tag, or validate it on read (throws on mismatch).
void write_magic(std::ostream& os, uint32_t magic, uint32_t version);
void check_magic(std::istream& is, uint32_t magic, uint32_t version);

}  // namespace snntest::util
