#include "util/hash.hpp"

#include <array>

namespace snntest::util {
namespace {

/// The reflected CRC-32 table for polynomial 0xEDB88320, built once at
/// static initialization (256 * 8 shift/xor steps — negligible).
std::array<uint32_t, 256> build_crc32_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& crc32_table() {
  static const std::array<uint32_t, 256> table = build_crc32_table();
  return table;
}

}  // namespace

uint64_t fnv1a(const void* data, size_t bytes, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint32_t crc32_update(uint32_t crc, const void* data, size_t bytes) {
  const auto& table = crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < bytes; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t crc32(const void* data, size_t bytes) {
  return crc32_update(crc32_init(), data, bytes);
}

}  // namespace snntest::util
