#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace snntest::util {
namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level = [] {
    if (const char* env = std::getenv("SNNTEST_LOG")) {
      return parse_log_level(env);
    }
    return LogLevel::kInfo;
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "quiet") return LogLevel::kOff;
  // Direct fprintf, not log_message: this runs while the level global is
  // still being initialized (SNNTEST_LOG parsing), where a log_level() call
  // would re-enter the in-flight static initializer.
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "[warn] unknown SNNTEST_LOG level '%s'; expected "
                 "trace|debug|info|warn|error|off — using info\n",
                 name.c_str());
  }
  return LogLevel::kInfo;
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

namespace detail {

std::string format_args(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace detail
}  // namespace snntest::util
