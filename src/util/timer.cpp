#include "util/timer.hpp"

#include <cstdio>

namespace snntest::util {

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds < 0) seconds = 0;
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds < 2.0 * 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f h", seconds / 3600.0);
  }
  return buf;
}

}  // namespace snntest::util
