// Shared JSON string escaping.
//
// One escaper for every JSON emitter in the tree (bench `--json` reports,
// the obs run-report writer, the Chrome-trace exporter) so a crafted model
// name or path can never produce invalid JSON in any of them.
#pragma once

#include <string>

namespace snntest::util {

/// Escape `s` for embedding inside a JSON string literal: quote, backslash,
/// and every control character below 0x20 (\b \f \n \r \t get their short
/// forms, the rest become \u00XX). Does NOT add the surrounding quotes.
std::string json_escape(const std::string& s);

}  // namespace snntest::util
