// Shared JSON primitives: string escaping and a minimal strict parser.
//
// One escaper for every JSON emitter in the tree (bench `--json` reports,
// the obs run-report writer, the Chrome-trace exporter) so a crafted model
// name or path can never produce invalid JSON in any of them — and one
// parser for every consumer (trace merging, the test suites' report
// validation), so the documents the tree emits are navigated the same way
// everywhere with no third-party dependency.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace snntest::util {

/// Escape `s` for embedding inside a JSON string literal: quote, backslash,
/// and every control character below 0x20 (\b \f \n \r \t get their short
/// forms, the rest become \u00XX). Does NOT add the surrounding quotes.
std::string json_escape(const std::string& s);

/// One parsed JSON value. Exactly one of the payload members is meaningful,
/// selected by `kind`; the others keep their defaults.
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  /// Object member access; throws std::runtime_error when `kind` is not an
  /// object holding `key`.
  const JsonValue& at(const std::string& key) const;
  bool has(const std::string& key) const { return object.count(key) != 0; }
  /// Non-throwing member lookup: nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
};

/// Strict parse of one complete JSON document (no trailing characters).
/// Throws std::runtime_error with the byte offset on malformed input.
/// Numbers are doubles; \u escapes decode ASCII and flatten anything above
/// 0x7F to '?' (the emitters in this tree never produce non-ASCII).
JsonValue parse_json(const std::string& text);

/// Fail-soft variant: nullopt on malformed input, with the parse error
/// copied to *error when given. Used by readers that must survive torn or
/// foreign files (trace merging).
std::optional<JsonValue> try_parse_json(const std::string& text, std::string* error = nullptr);

/// Compact serialization (object keys in map order). Integral numbers that
/// fit an int64 render without a decimal point so microsecond timestamps
/// round-trip; other numbers use %.17g; non-finite numbers render as null.
std::string to_json(const JsonValue& v);

}  // namespace snntest::util
