// Tests for the paper's loss functions L1..L5 (Sec. IV-C): values on
// constructed spike trains, subgradient directions, target-mask behaviour,
// composite weighting and the Sec. V-C alpha calibration.
#include <gtest/gtest.h>

#include <memory>

#include "core/losses.hpp"
#include "snn/dense_layer.hpp"
#include "snn/spike_train.hpp"
#include "util/rng.hpp"

namespace snntest::core {
namespace {

/// A hand-built ForwardResult with two "layers" whose spike trains we control.
ForwardResult make_result(std::vector<std::vector<std::vector<float>>> layers) {
  ForwardResult r;
  for (auto& rows : layers) {
    const size_t T = rows.size();
    const size_t n = rows[0].size();
    Tensor t(tensor::Shape{T, n});
    for (size_t i = 0; i < T; ++i) {
      for (size_t j = 0; j < n; ++j) t.at(i, j) = rows[i][j];
    }
    r.layer_outputs.push_back(std::move(t));
  }
  return r;
}

TEST(OutputActivation, ZeroWhenAllOutputNeuronsFire) {
  auto r = make_result({{{1, 1}, {0, 0}}, {{1, 0}, {0, 1}}});
  auto grads = make_grad_accumulators(r);
  OutputActivationLoss l1;
  EXPECT_DOUBLE_EQ(l1.compute(r, grads), 0.0);
  for (const auto& g : grads) {
    for (size_t i = 0; i < g.numel(); ++i) EXPECT_EQ(g[i], 0.0f);
  }
}

TEST(OutputActivation, PenalizesSilentOutputs) {
  // output layer: neuron 0 fires, neuron 1 silent -> loss 1
  auto r = make_result({{{1, 1}, {0, 0}}, {{1, 0}, {0, 0}}});
  auto grads = make_grad_accumulators(r);
  OutputActivationLoss l1;
  EXPECT_DOUBLE_EQ(l1.compute(r, grads), 1.0);
  // gradient pushes the silent output neuron's spikes up (negative grad)
  EXPECT_EQ(grads[1].at(0, 1), -1.0f);
  EXPECT_EQ(grads[1].at(1, 1), -1.0f);
  EXPECT_EQ(grads[1].at(0, 0), 0.0f);   // firing neuron untouched
  EXPECT_EQ(grads[0].at(0, 0), 0.0f);   // hidden layer untouched by L1
}

TEST(NeuronActivation, CountsAllLayers) {
  // layer0: 1 of 2 silent; layer1: 2 of 2 silent -> loss 3
  auto r = make_result({{{1, 0}, {0, 0}}, {{0, 0}, {0, 0}}});
  auto grads = make_grad_accumulators(r);
  NeuronActivationLoss l2;
  EXPECT_DOUBLE_EQ(l2.compute(r, grads), 3.0);
  EXPECT_EQ(grads[0].at(0, 1), -1.0f);
  EXPECT_EQ(grads[1].at(0, 0), -1.0f);
}

TEST(NeuronActivation, MaskRestrictsToTargets) {
  auto r = make_result({{{0, 0}, {0, 0}}, {{0, 0}, {0, 0}}});
  NeuronMask mask = {{1, 0}, {0, 0}};  // only layer0/neuron0 targeted
  auto grads = make_grad_accumulators(r);
  NeuronActivationLoss l2(&mask);
  EXPECT_DOUBLE_EQ(l2.compute(r, grads), 1.0);
  EXPECT_EQ(grads[0].at(0, 0), -1.0f);
  EXPECT_EQ(grads[0].at(0, 1), 0.0f);
  EXPECT_EQ(grads[1].at(0, 0), 0.0f);
}

TEST(TemporalDiversity, ValueMatchesEq12) {
  // neuron spikes constantly: TD = 0; with TD_min = 3, loss = 3.
  auto r = make_result({{{1}, {1}, {1}, {1}}});
  auto grads = make_grad_accumulators(r);
  TemporalDiversityLoss l3(3);
  EXPECT_DOUBLE_EQ(l3.compute(r, grads), 3.0);
}

TEST(TemporalDiversity, SatisfiedNeuronNoGradient) {
  // 0,1,0,1 -> TD = 3 >= 2: no loss, no gradient
  auto r = make_result({{{0}, {1}, {0}, {1}}});
  auto grads = make_grad_accumulators(r);
  TemporalDiversityLoss l3(2);
  EXPECT_DOUBLE_EQ(l3.compute(r, grads), 0.0);
  for (size_t i = 0; i < grads[0].numel(); ++i) EXPECT_EQ(grads[0][i], 0.0f);
}

TEST(TemporalDiversity, GradientEncouragesToggling) {
  // constant-1 train, TD deficit: flipping an interior step to 0 adds 2
  // transitions -> the subgradient on interior steps must be positive
  // (pushing spike value down raises TD).
  auto r = make_result({{{1}, {1}, {1}, {1}}});
  auto grads = make_grad_accumulators(r);
  TemporalDiversityLoss l3(3);
  l3.compute(r, grads);
  // interior steps: dTD/ds = sign(s1-s0) - sign(s2-s1) = 0; hmm — for a
  // constant train every pairwise sign is 0, so the subgradient is 0 at the
  // plateau. The loss still reports the deficit (optimizer escapes via the
  // stochastic Gumbel noise). Verify that exactly this holds:
  for (size_t i = 0; i < grads[0].numel(); ++i) EXPECT_EQ(grads[0][i], 0.0f);
  // and a half-toggled train does produce signed gradients:
  auto r2 = make_result({{{0}, {1}, {1}, {1}}});
  auto g2 = make_grad_accumulators(r2);
  l3.compute(r2, g2);
  double norm = 0.0;
  for (size_t i = 0; i < g2[0].numel(); ++i) norm += std::abs(g2[0][i]);
  EXPECT_GT(norm, 0.0);
}

TEST(TemporalDiversity, MaskRespected) {
  auto r = make_result({{{1, 1}, {1, 1}, {1, 1}}});
  NeuronMask mask = {{0, 1}};
  auto grads = make_grad_accumulators(r);
  TemporalDiversityLoss l3(2, &mask);
  EXPECT_DOUBLE_EQ(l3.compute(r, grads), 2.0);  // only neuron 1 counted
}

TEST(SynapseUniformity, ZeroForEqualContributions) {
  // 2-input, 2-neuron dense layer with all weights equal and equal input
  // counts -> all contributions identical -> zero variance.
  snn::LifParams lif;
  snn::Network net("l4net");
  auto l1 = std::make_unique<snn::DenseLayer>(2, 2, lif);
  l1->weights() = {0.5f, 0.5f, 0.5f, 0.5f};
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(2, 1, lif);
  l2->weights() = {0.7f, 0.7f};
  net.add_layer(std::move(l2));

  // layer0 output: both neurons fire twice; layer1: irrelevant
  auto r = make_result({{{1, 1}, {1, 1}}, {{1}, {0}}});
  auto grads = make_grad_accumulators(r);
  SynapseUniformityLoss l4(net);
  EXPECT_NEAR(l4.compute(r, grads), 0.0, 1e-9);
}

TEST(SynapseUniformity, PenalizesImbalanceAndPointsDownhill) {
  snn::LifParams lif;
  snn::Network net("l4net2");
  auto l1 = std::make_unique<snn::DenseLayer>(2, 2, lif);
  l1->weights() = {0.5f, 0.5f, 0.5f, 0.5f};
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(2, 1, lif);
  l2->weights() = {1.0f, 1.0f};  // equal weights, so imbalance comes from counts
  net.add_layer(std::move(l2));

  // layer0 neuron0 fires 3x, neuron1 fires 1x -> contributions 3 vs 1,
  // variance = 1. Gradient must push count0 down (positive) and count1 up
  // (negative).
  auto r = make_result({{{1, 0}, {1, 1}, {1, 0}}, {{1}, {0}, {0}}});
  auto grads = make_grad_accumulators(r);
  SynapseUniformityLoss l4(net);
  const double v = l4.compute(r, grads);
  EXPECT_NEAR(v, 1.0, 1e-6);
  EXPECT_GT(grads[0].at(0, 0), 0.0f);
  EXPECT_LT(grads[0].at(0, 1), 0.0f);
}

TEST(SynapseUniformity, IgnoresZeroWeights) {
  snn::LifParams lif;
  snn::Network net("l4net3");
  auto l1 = std::make_unique<snn::DenseLayer>(3, 3, lif);
  l1->weights().assign(9, 0.5f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(3, 1, lif);
  l2->weights() = {1.0f, 1.0f, 0.0f};  // third synapse dead: excluded
  net.add_layer(std::move(l2));
  // counts 2,2,5 — the outlier neuron only feeds the dead synapse
  auto r = make_result({{{1, 1, 1}, {1, 1, 1}, {0, 0, 1}, {0, 0, 1}, {0, 0, 1}},
                        {{1}, {0}, {0}, {0}, {0}}});
  auto grads = make_grad_accumulators(r);
  SynapseUniformityLoss l4(net);
  EXPECT_NEAR(l4.compute(r, grads), 0.0, 1e-9);
}

TEST(Sparsity, CountsHiddenLayersOnly) {
  auto r = make_result({{{1, 1}, {1, 0}}, {{1, 1}, {1, 1}}});
  auto grads = make_grad_accumulators(r);
  SparsityLoss l5;
  EXPECT_DOUBLE_EQ(l5.compute(r, grads), 3.0);  // hidden spikes only
  // gradient is +1 everywhere on hidden layers (push spikes down)...
  EXPECT_EQ(grads[0].at(0, 0), 1.0f);
  EXPECT_EQ(grads[0].at(1, 1), 1.0f);
  // ...and zero on the output layer
  for (size_t i = 0; i < grads[1].numel(); ++i) EXPECT_EQ(grads[1][i], 0.0f);
}

TEST(OutputConstancy, ZeroWhenIdentical) {
  auto r = make_result({{{1}, {0}}, {{1, 0}, {0, 1}}});
  auto grads = make_grad_accumulators(r);
  OutputConstancyPenalty penalty(r.output(), 4.0);
  EXPECT_DOUBLE_EQ(penalty.compute(r, grads), 0.0);
}

TEST(OutputConstancy, PenalizesAndPushesBack) {
  auto ref = make_result({{{1}, {0}}, {{1, 0}, {0, 1}}});
  auto r = make_result({{{1}, {0}}, {{0, 0}, {0, 1}}});  // lost a spike at (0,0)
  auto grads = make_grad_accumulators(r);
  OutputConstancyPenalty penalty(ref.output(), 4.0);
  EXPECT_DOUBLE_EQ(penalty.compute(r, grads), 4.0);
  // missing spike -> gradient negative (raise it back)
  EXPECT_EQ(grads[1].at(0, 0), -4.0f);
}

TEST(Composite, WeightsScaleValuesAndGradients) {
  auto r = make_result({{{0}, {0}}, {{0, 0}, {0, 0}}});
  CompositeLoss composite;
  composite.add(std::make_shared<OutputActivationLoss>(), 2.0);
  composite.add(std::make_shared<NeuronActivationLoss>(), 0.5);
  auto grads = make_grad_accumulators(r);
  std::vector<double> terms;
  // L1 = 2 (silent outputs), L2 = 3 (all silent) -> 2*2 + 0.5*3 = 5.5
  EXPECT_DOUBLE_EQ(composite.compute(r, grads, &terms), 5.5);
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_DOUBLE_EQ(terms[0], 2.0);
  EXPECT_DOUBLE_EQ(terms[1], 3.0);
  // output layer gradient: L1 contributes -2, L2 contributes -0.5
  EXPECT_FLOAT_EQ(grads[1].at(0, 0), -2.5f);
  // hidden layer: only L2 -> -0.5
  EXPECT_FLOAT_EQ(grads[0].at(0, 0), -0.5f);
}

TEST(Composite, CalibrationInvertsInitialMagnitudes) {
  auto r = make_result({{{0}, {0}}, {{0, 0}, {0, 0}}});
  CompositeLoss composite;
  composite.add(std::make_shared<OutputActivationLoss>());   // L = 2
  composite.add(std::make_shared<NeuronActivationLoss>());   // L = 3
  composite.calibrate_weights(r);
  EXPECT_DOUBLE_EQ(composite.weights()[0], 0.5);
  EXPECT_DOUBLE_EQ(composite.weights()[1], 1.0 / 3.0);
  // after calibration every term contributes ~1
  auto grads = make_grad_accumulators(r);
  EXPECT_NEAR(composite.compute(r, grads), 2.0, 1e-9);
}

TEST(Composite, CalibrationFloorsTinyLosses) {
  auto r = make_result({{{1}, {1}}, {{1, 1}, {1, 1}}});  // all active: L1 = L2 = 0
  CompositeLoss composite;
  composite.add(std::make_shared<OutputActivationLoss>());
  composite.calibrate_weights(r, 1e-3);
  EXPECT_DOUBLE_EQ(composite.weights()[0], 1000.0);
}

TEST(FullMask, MatchesNetworkShape) {
  util::Rng rng(1);
  snn::Network net("m");
  net.add_layer(std::make_unique<snn::DenseLayer>(4, 6, snn::LifParams{}));
  net.add_layer(std::make_unique<snn::DenseLayer>(6, 2, snn::LifParams{}));
  const auto mask = full_mask(net);
  ASSERT_EQ(mask.size(), 2u);
  EXPECT_EQ(mask[0].size(), 6u);
  EXPECT_EQ(mask[1].size(), 2u);
  EXPECT_EQ(mask[0][0], 1);
}

}  // namespace
}  // namespace snntest::core
