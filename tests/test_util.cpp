// Tests for src/util: RNG determinism and statistics, CSV/table formatting,
// CLI parsing, binary serialization, thread pool, duration formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace snntest::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(10);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GumbelMeanIsEulerGamma) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) sum += rng.gumbel();
  EXPECT_NEAR(sum / n, 0.5772, 0.05);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(14);
  const auto p = rng.permutation(100);
  std::set<size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(15);
  const auto s = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::set<size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 20u);
}

TEST(Rng, SampleMoreThanPopulationReturnsAll) {
  Rng rng(16);
  const auto s = rng.sample_without_replacement(5, 99);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(17);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += parent.next() == child.next();
  EXPECT_LT(equal, 2);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.milliseconds(), 15.0);
  t.reset();
  EXPECT_LT(t.milliseconds(), 15.0);
}

TEST(Timer, FormatDurationUnits) {
  EXPECT_EQ(format_duration(0.0005), "500 us");
  EXPECT_EQ(format_duration(0.5), "500 ms");
  EXPECT_EQ(format_duration(2.5), "2.50 s");
  EXPECT_EQ(format_duration(180.0), "3.0 min");
  EXPECT_EQ(format_duration(2.0 * 3600.0), "2.00 h");
}

TEST(Timer, FormatDurationBoundaryUnits) {
  EXPECT_EQ(format_duration(0.0), "0 us");
  EXPECT_EQ(format_duration(-1.0), "0 us");  // negative clamps to zero
  // Each unit's switchover: the value just below stays in the smaller unit,
  // the boundary itself moves to the larger one.
  EXPECT_EQ(format_duration(0.000999), "999 us");
  EXPECT_EQ(format_duration(0.001), "1 ms");
  EXPECT_EQ(format_duration(0.999), "999 ms");
  EXPECT_EQ(format_duration(1.0), "1.00 s");
  EXPECT_EQ(format_duration(119.99), "119.99 s");
  EXPECT_EQ(format_duration(120.0), "2.0 min");
  EXPECT_EQ(format_duration(7199.0), "120.0 min");
  EXPECT_EQ(format_duration(7200.0), "2.00 h");
}

TEST(Json, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("\b\f\r\t"), "\\b\\f\\r\\t");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  // Printable non-ASCII bytes pass through untouched (UTF-8 stays UTF-8).
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(Logging, ParseLogLevelAcceptsKnownNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
}

TEST(Logging, ParseLogLevelWarnsOnceOnUnknownName) {
  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
  const std::string first = testing::internal::GetCapturedStderr();
  testing::internal::CaptureStderr();
  EXPECT_EQ(parse_log_level("also-bogus"), LogLevel::kInfo);
  const std::string second = testing::internal::GetCapturedStderr();
  // First bad value names itself and the accepted set; later ones are silent
  // (the warning is once-per-process).
  if (!first.empty()) {
    EXPECT_NE(first.find("bogus"), std::string::npos);
    EXPECT_NE(first.find("trace|debug|info|warn|error|off"), std::string::npos);
    EXPECT_TRUE(second.empty());
  } else {
    // Another test (or the env) already tripped the warning; the once-only
    // property is still what we observe.
    EXPECT_TRUE(second.empty());
  }
}

TEST(Csv, WritesAndQuotesFields) {
  const std::string path = testing::TempDir() + "/snntest_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b,c", "d\"e"});
    csv.write_row({CsvWriter::field(1.5), CsvWriter::field(size_t{7})});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1.5,7");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "10"});
  t.add_row({"longer", "3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Format, PercentAndCounts) {
  EXPECT_EQ(fmt_pct(0.9871), "98.71%");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(12), "12");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
}

TEST(Cli, ParsesFlagsAndDefaults) {
  CliParser cli({{"alpha", "1.5"}, {"name", "x"}}, "test");
  const char* argv[] = {"prog", "--alpha", "2.5", "--name=hello"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha"), 2.5);
  EXPECT_EQ(cli.get("name"), "hello");
}

TEST(Cli, RejectsUnknownFlag) {
  CliParser cli({{"a", "1"}}, "test");
  const char* argv[] = {"prog", "--bogus", "2"};
  EXPECT_THROW(cli.parse(3, argv), std::invalid_argument);
}

TEST(Cli, BoolParsing) {
  CliParser cli({{"flag", "false"}}, "test");
  const char* argv[] = {"prog", "--flag", "true"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_TRUE(cli.get_bool("flag"));
}

// One parse + getter round trip for the numeric-getter hardening tests.
template <typename Getter>
auto cli_numeric(const char* def, const char* value, Getter getter)
    -> decltype(getter(std::declval<CliParser&>())) {
  CliParser cli({{"n", def}}, "test");
  const std::string arg = std::string("--n=") + value;
  const char* argv[] = {"prog", arg.c_str()};
  EXPECT_TRUE(cli.parse(2, argv));
  return getter(cli);
}

TEST(Cli, GetIntAcceptsFullIntegerTokens) {
  auto get = [](CliParser& c) { return c.get_int("n"); };
  EXPECT_EQ(cli_numeric("0", "42", get), 42);
  EXPECT_EQ(cli_numeric("0", "-3", get), -3);
  EXPECT_EQ(cli_numeric("0", "+7", get), 7);
  EXPECT_EQ(cli_numeric("0", "2147483647", get), 2147483647);
}

TEST(Cli, GetIntRejectsMalformedAndOutOfRangeTokens) {
  auto get = [](CliParser& c) { return c.get_int("n"); };
  // Non-numeric, trailing garbage, empty, and out-of-int-range values must
  // all raise a clean invalid_argument — not abort via an unhandled
  // std::stoi exception with no flag context.
  EXPECT_THROW(cli_numeric("0", "abc", get), std::invalid_argument);
  EXPECT_THROW(cli_numeric("0", "12abc", get), std::invalid_argument);
  EXPECT_THROW(cli_numeric("0", "", get), std::invalid_argument);
  EXPECT_THROW(cli_numeric("0", " 5", get), std::invalid_argument);
  EXPECT_THROW(cli_numeric("0", "3.5", get), std::invalid_argument);
  EXPECT_THROW(cli_numeric("0", "2147483648", get), std::invalid_argument);
  EXPECT_THROW(cli_numeric("0", "-99999999999999999999", get), std::invalid_argument);
}

TEST(Cli, NumericErrorsNameTheFlagAndValue) {
  CliParser cli({{"lane-width", "1"}}, "test");
  const char* argv[] = {"prog", "--lane-width=abc"};
  ASSERT_TRUE(cli.parse(2, argv));
  try {
    cli.get_int("lane-width");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lane-width"), std::string::npos) << what;
    EXPECT_NE(what.find("abc"), std::string::npos) << what;
  }
}

TEST(Cli, GetSizeRejectsNegativeValues) {
  auto get = [](CliParser& c) { return c.get_size("n"); };
  EXPECT_EQ(cli_numeric("0", "8", get), 8u);
  EXPECT_EQ(cli_numeric("0", "0", get), 0u);
  // -1 through get_int would wrap to SIZE_MAX if fed straight into size_t.
  EXPECT_THROW(cli_numeric("0", "-1", get), std::invalid_argument);
  EXPECT_THROW(cli_numeric("0", "-8", get), std::invalid_argument);
}

TEST(Cli, GetDoubleValidatesFullTokenAndRange) {
  auto get = [](CliParser& c) { return c.get_double("n"); };
  EXPECT_DOUBLE_EQ(cli_numeric("0", "2.5", get), 2.5);
  EXPECT_DOUBLE_EQ(cli_numeric("0", "-1e3", get), -1000.0);
  EXPECT_DOUBLE_EQ(cli_numeric("0", ".5", get), 0.5);
  // Underflow quietly flushes toward zero (strtod sets ERANGE but the value
  // is usable); overflow and malformed tokens are hard errors.
  EXPECT_NEAR(cli_numeric("0", "1e-320", get), 0.0, 1e-300);
  EXPECT_THROW(cli_numeric("0", "1e999", get), std::invalid_argument);
  EXPECT_THROW(cli_numeric("0", "abc", get), std::invalid_argument);
  EXPECT_THROW(cli_numeric("0", "1.5x", get), std::invalid_argument);
  EXPECT_THROW(cli_numeric("0", "", get), std::invalid_argument);
}

TEST(Crc32, MatchesKnownVectors) {
  // CRC-32/ISO-HDLC check vectors (zlib-compatible).
  EXPECT_EQ(crc32("", 0), 0x00000000u);
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("a", 1), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc", 3), 0x352441C2u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog", 43), 0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const char* data = "123456789";
  uint32_t crc = crc32_init();
  crc = crc32_update(crc, data, 4);
  crc = crc32_update(crc, data + 4, 5);
  EXPECT_EQ(crc, crc32(data, 9));
  EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string payload(64, '\x5a');
  const uint32_t clean = crc32(payload.data(), payload.size());
  for (size_t byte : {size_t{0}, payload.size() / 2, payload.size() - 1}) {
    std::string corrupt = payload;
    corrupt[byte] ^= 0x01;
    EXPECT_NE(crc32(corrupt.data(), corrupt.size()), clean) << "byte " << byte;
  }
}

TEST(Fnv1a, KnownVectorsAndSeedChaining) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a("", 0), 14695981039346656037ull);
  EXPECT_EQ(fnv1a("a", 1), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(fnv1a("foobar", 6), 0x85944171F73967E8ull);
  // Chaining through the seed is order-sensitive.
  const uint64_t ab = fnv1a("b", 1, fnv1a("a", 1));
  const uint64_t ba = fnv1a("a", 1, fnv1a("b", 1));
  EXPECT_NE(ab, ba);
  EXPECT_EQ(ab, fnv1a("ab", 2));
}

TEST(Serialize, RoundTripScalars) {
  std::stringstream ss;
  write_u32(ss, 0xDEADBEEF);
  write_u64(ss, 0x123456789ABCDEFull);
  write_f32(ss, 3.25f);
  write_f64(ss, -1.5e300);
  write_string(ss, "hello world");
  EXPECT_EQ(read_u32(ss), 0xDEADBEEF);
  EXPECT_EQ(read_u64(ss), 0x123456789ABCDEFull);
  EXPECT_FLOAT_EQ(read_f32(ss), 3.25f);
  EXPECT_DOUBLE_EQ(read_f64(ss), -1.5e300);
  EXPECT_EQ(read_string(ss), "hello world");
}

TEST(Serialize, RoundTripVectors) {
  std::stringstream ss;
  const std::vector<float> v = {1.0f, -2.5f, 0.0f};
  const std::vector<uint8_t> b = {0, 255, 7};
  write_f32_vector(ss, v);
  write_u8_vector(ss, b);
  EXPECT_EQ(read_f32_vector(ss), v);
  EXPECT_EQ(read_u8_vector(ss), b);
}

TEST(Serialize, MagicMismatchThrows) {
  std::stringstream ss;
  write_magic(ss, 0x1111, 1);
  EXPECT_THROW(check_magic(ss, 0x2222, 1), std::runtime_error);
}

TEST(Serialize, VersionMismatchThrows) {
  std::stringstream ss;
  write_magic(ss, 0x1111, 1);
  EXPECT_THROW(check_magic(ss, 0x1111, 2), std::runtime_error);
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream ss;
  write_u32(ss, 5);
  read_u32(ss);
  EXPECT_THROW(read_u32(ss), std::runtime_error);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  parallel_for(&pool, hits.size(), [&hits](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPool, ParallelForSerialFallback) {
  std::vector<int> hits(50, 0);
  parallel_for(nullptr, hits.size(), [&hits](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

TEST(ThreadPool, ParallelForDynamicVisitsEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(997);  // prime: chunks won't divide evenly
  for (auto& h : hits) h.store(0);
  std::atomic<bool> bad_worker{false};
  parallel_for_dynamic(&pool, hits.size(), /*grain=*/8, [&](size_t worker, size_t i) {
    if (worker >= dynamic_workers(&pool)) bad_worker.store(true);
    hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_FALSE(bad_worker.load());
}

TEST(ThreadPool, ParallelForDynamicSerialFallback) {
  std::vector<int> hits(50, 0);
  size_t max_worker = 0;
  parallel_for_dynamic(nullptr, hits.size(), 4, [&](size_t worker, size_t i) {
    max_worker = std::max(max_worker, worker);
    hits[i] += 1;
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
  EXPECT_EQ(max_worker, 0u);
  EXPECT_EQ(dynamic_workers(nullptr), 1u);
}

TEST(ThreadPool, ParallelForDynamicZeroGrainAndEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  parallel_for_dynamic(&pool, 10, /*grain=*/0, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
  parallel_for_dynamic(&pool, 0, 4, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

// --- exception contract (the shard worker runs campaigns on this pool, so
// a swallowed or process-killing task exception would corrupt a shard) ----

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1);
      if (i == 3) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // No cancellation: every submitted task still ran to completion.
  EXPECT_EQ(ran.load(), 20);
  // The exception was cleared: the pool stays usable and a clean batch
  // makes the next wait_idle return normally.
  std::atomic<int> after{0};
  for (int i = 0; i < 10; ++i) pool.submit([&after] { after.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for(&pool, 100,
                            [](size_t i) {
                              if (i == 42) throw std::invalid_argument("bad index");
                            }),
               std::invalid_argument);
  // And the pool survives for the next loop.
  std::atomic<int> count{0};
  parallel_for(&pool, 50, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForDynamicPropagatesBodyException) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for_dynamic(&pool, 100, /*grain=*/4,
                                    [](size_t, size_t i) {
                                      if (i == 7) throw std::out_of_range("bad chunk");
                                    }),
               std::out_of_range);
}

TEST(ThreadPool, SerialFallbackPropagatesBodyException) {
  // With no pool the loops run inline — exceptions must surface unchanged,
  // not be routed through any pool-side capture machinery.
  EXPECT_THROW(parallel_for(nullptr, 10,
                            [](size_t i) {
                              if (i == 5) throw std::runtime_error("serial");
                            }),
               std::runtime_error);
  EXPECT_THROW(parallel_for_dynamic(nullptr, 10, 2,
                                    [](size_t, size_t i) {
                                      if (i == 5) throw std::runtime_error("serial");
                                    }),
               std::runtime_error);
}

TEST(ThreadPool, StopDrainsQueuedTasksAndRejectsNewWork) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  pool.stop();
  // stop() drains: already-submitted work is never silently dropped.
  EXPECT_EQ(ran.load(), 50);
  EXPECT_TRUE(pool.stopped());
  // A stopped pool rejects new work loudly rather than losing it.
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  // Idempotent: a second stop (and the destructor's) is a no-op.
  EXPECT_NO_THROW(pool.stop());
}

}  // namespace
}  // namespace snntest::util
