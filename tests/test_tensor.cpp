// Tests for src/tensor: shape bookkeeping, tensor construction/indexing,
// and the numeric kernels used by the SNN hot loops.
#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace snntest::tensor {
namespace {

TEST(Shape, NumelAndDims) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24u);
  EXPECT_EQ(s.dim(1), 3u);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, EmptyShapeHasZeroElements) {
  Shape s;
  EXPECT_EQ(s.numel(), 0u);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 4});
  EXPECT_EQ(t.numel(), 12u);
  for (size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t(Shape{5}, 2.5f);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_THROW(Tensor(Shape{3}, std::vector<float>{1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, TwoDimensionalIndexing) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_EQ(t.at(1, 2), 7.0f);
  EXPECT_EQ(t.row(1)[2], 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 6}, 1.0f);
  t.reshape(Shape{3, 4});
  EXPECT_EQ(t.shape(), Shape({3, 4}));
  EXPECT_THROW(t.reshape(Shape{5, 5}), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t(Shape{4}, std::vector<float>{1.0f, -2.0f, 3.0f, 0.25f});
  EXPECT_DOUBLE_EQ(t.sum(), 2.25);
  EXPECT_EQ(t.max_value(), 3.0f);
  EXPECT_EQ(t.min_value(), -2.0f);
  EXPECT_EQ(t.count_nonzero(), 2u);  // values > 0.5
}

TEST(Ops, MatvecAccumulate) {
  // A = [[1,2],[3,4],[5,6]], x = [1, -1]
  const std::vector<float> a = {1, 2, 3, 4, 5, 6};
  const std::vector<float> x = {1, -1};
  std::vector<float> y = {10, 10, 10};
  matvec_accumulate(a.data(), 3, 2, x.data(), y.data());
  EXPECT_FLOAT_EQ(y[0], 10 - 1);
  EXPECT_FLOAT_EQ(y[1], 10 - 1);
  EXPECT_FLOAT_EQ(y[2], 10 - 1);
}

TEST(Ops, MatvecTransposeAccumulate) {
  const std::vector<float> a = {1, 2, 3, 4, 5, 6};  // [3, 2]
  const std::vector<float> x = {1, 0, 2};           // length rows=3
  std::vector<float> y = {0, 0};
  matvec_transpose_accumulate(a.data(), 3, 2, x.data(), y.data());
  EXPECT_FLOAT_EQ(y[0], 1 * 1 + 0 * 3 + 2 * 5);
  EXPECT_FLOAT_EQ(y[1], 1 * 2 + 0 * 4 + 2 * 6);
}

TEST(Ops, TransposeConsistentWithForward) {
  // <A x, y> must equal <x, A^T y> for random data.
  const size_t rows = 7, cols = 5;
  std::vector<float> a(rows * cols), x(cols), y(rows);
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(static_cast<int>(i * 13 % 11) - 5);
  for (size_t i = 0; i < cols; ++i) x[i] = static_cast<float>(static_cast<int>(i * 7 % 5) - 2);
  for (size_t i = 0; i < rows; ++i) y[i] = static_cast<float>(static_cast<int>(i * 3 % 7) - 3);
  std::vector<float> ax(rows, 0.0f), aty(cols, 0.0f);
  matvec_accumulate(a.data(), rows, cols, x.data(), ax.data());
  matvec_transpose_accumulate(a.data(), rows, cols, y.data(), aty.data());
  EXPECT_NEAR(dot(ax.data(), y.data(), rows), dot(x.data(), aty.data(), cols), 1e-6);
}

TEST(Ops, OuterAccumulate) {
  std::vector<float> a(6, 0.0f);  // [2, 3]
  const std::vector<float> u = {1, 2};
  const std::vector<float> v = {3, 4, 5};
  outer_accumulate(a.data(), 2, 3, u.data(), v.data(), 2.0f);
  EXPECT_FLOAT_EQ(a[0], 6);
  EXPECT_FLOAT_EQ(a[5], 20);
}

TEST(Ops, AxpyAndScale) {
  std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {10, 20, 30};
  axpy(a.data(), b.data(), 0.5f, 3);
  EXPECT_FLOAT_EQ(a[1], 12);
  scale(a.data(), 2.0f, 3);
  EXPECT_FLOAT_EQ(a[0], 12);
}

TEST(Ops, Clamp) {
  std::vector<float> a = {-5, 0.5f, 5};
  clamp(a.data(), 3, -1, 1);
  EXPECT_FLOAT_EQ(a[0], -1);
  EXPECT_FLOAT_EQ(a[1], 0.5f);
  EXPECT_FLOAT_EQ(a[2], 1);
}

TEST(Ops, L1Distance) {
  Tensor a(Shape{2, 2}, std::vector<float>{0, 1, 1, 0});
  Tensor b(Shape{2, 2}, std::vector<float>{1, 1, 0, 0});
  EXPECT_DOUBLE_EQ(l1_distance(a, b), 2.0);
  Tensor c(Shape{4});
  c.reshape(Shape{4});
  EXPECT_THROW(l1_distance(a, c), std::invalid_argument);
}

TEST(Ops, ArgmaxFirstWinsOnTies) {
  const std::vector<float> v = {1, 3, 3, 2};
  EXPECT_EQ(argmax(v.data(), v.size()), 1u);
}

TEST(SparseOps, ExtractActiveFindsNonzerosInOrder) {
  const std::vector<float> frame = {0.0f, 1.0f, 0.0f, 0.25f, -0.0f, -2.0f};
  std::vector<uint32_t> scratch;
  EXPECT_EQ(extract_active(frame.data(), frame.size(), scratch), 3u);
  EXPECT_EQ(scratch, (std::vector<uint32_t>{1, 3, 5}));  // -0.0 is inactive
  const auto view = make_frame_view(frame.data(), frame.size(), scratch);
  EXPECT_EQ(view.num_active, 3u);
  EXPECT_EQ(view.size, frame.size());
  EXPECT_DOUBLE_EQ(view.density(), 0.5);
  EXPECT_EQ(view.active[2], 5u);
}

TEST(SparseOps, ExtractActiveEmptyFrame) {
  const std::vector<float> frame(8, 0.0f);
  std::vector<uint32_t> scratch = {99};
  EXPECT_EQ(extract_active(frame.data(), frame.size(), scratch), 0u);
  EXPECT_TRUE(scratch.empty());
}

TEST(SparseOps, GatherMatvecBitIdenticalToDense) {
  // Binary frames at several densities plus a relaxed (continuous) frame
  // with exact zeros: the gather kernel must reproduce the dense kernel's
  // float outputs bit-for-bit (same ordered double sums per row).
  const size_t rows = 37, cols = 61;
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  };
  std::vector<float> a(rows * cols);
  for (auto& w : a) w = static_cast<float>(next() * 2.0 - 1.0);
  for (const double density : {0.0, 0.02, 0.1, 0.5, 1.0}) {
    for (const bool binary : {true, false}) {
      std::vector<float> x(cols, 0.0f);
      for (auto& v : x) {
        if (next() < density) v = binary ? 1.0f : static_cast<float>(next() * 2.0 - 1.0);
      }
      std::vector<uint32_t> active;
      extract_active(x.data(), cols, active);
      std::vector<float> y_dense(rows, 0.5f), y_gather(rows, 0.5f);
      matvec_accumulate(a.data(), rows, cols, x.data(), y_dense.data());
      matvec_accumulate_gather(a.data(), rows, cols, x.data(), active.data(), active.size(),
                               y_gather.data());
      for (size_t r = 0; r < rows; ++r) {
        ASSERT_EQ(y_dense[r], y_gather[r]) << "row " << r << " density " << density;
      }
    }
  }
}

TEST(Ops, LaneMatvecBitIdenticalToScalarPerLane) {
  // The lane-strided kernels promise each lane the identical ordered double
  // accumulation the scalar matvec performs on that lane's frame — so lane
  // width must never change a single output bit.
  const size_t rows = 23, cols = 41;
  uint64_t state = 987654321;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) / 9007199254740992.0;
  };
  std::vector<float> a(rows * cols);
  for (auto& w : a) w = static_cast<float>(next() * 2.0 - 1.0);
  for (const size_t lanes : {size_t{1}, size_t{2}, size_t{3}, size_t{8}, kMaxLanes}) {
    for (const double density : {0.05, 0.3, 1.0}) {
      // Lane-minor frame plus a contiguous per-lane copy for the reference.
      std::vector<float> x_lanes(cols * lanes, 0.0f);
      std::vector<std::vector<float>> x_ref(lanes, std::vector<float>(cols, 0.0f));
      for (size_t c = 0; c < cols; ++c) {
        for (size_t l = 0; l < lanes; ++l) {
          if (next() < density) {
            const float v = next() < 0.5 ? 1.0f : static_cast<float>(next() * 2.0 - 1.0);
            x_lanes[c * lanes + l] = v;
            x_ref[l][c] = v;
          }
        }
      }
      std::vector<float> y_lanes(rows * lanes, 0.25f);
      matvec_accumulate_lanes(a.data(), rows, cols, x_lanes.data(), lanes, y_lanes.data());

      std::vector<uint32_t> active;
      const size_t num_active = extract_active_union(x_lanes.data(), cols, lanes, active);
      // The union set is exactly the columns nonzero in any lane, ascending.
      std::vector<uint32_t> expect_active;
      for (size_t c = 0; c < cols; ++c) {
        for (size_t l = 0; l < lanes; ++l) {
          if (x_lanes[c * lanes + l] != 0.0f) {
            expect_active.push_back(static_cast<uint32_t>(c));
            break;
          }
        }
      }
      ASSERT_EQ(num_active, expect_active.size());
      ASSERT_EQ(std::vector<uint32_t>(active.begin(), active.begin() + num_active),
                expect_active);

      std::vector<float> y_gather(rows * lanes, 0.25f);
      matvec_accumulate_gather_lanes(a.data(), rows, cols, x_lanes.data(), lanes, active.data(),
                                     num_active, y_gather.data());

      for (size_t l = 0; l < lanes; ++l) {
        std::vector<float> y_scalar(rows, 0.25f);
        matvec_accumulate(a.data(), rows, cols, x_ref[l].data(), y_scalar.data());
        for (size_t r = 0; r < rows; ++r) {
          ASSERT_EQ(y_lanes[r * lanes + l], y_scalar[r])
              << "lanes " << lanes << " density " << density << " lane " << l << " row " << r;
          ASSERT_EQ(y_gather[r * lanes + l], y_scalar[r])
              << "gather lanes " << lanes << " density " << density << " lane " << l;
        }
      }
    }
  }
}

}  // namespace
}  // namespace snntest::tensor
