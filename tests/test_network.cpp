// Network container tests: stacking validation, forward recording,
// backward gradient routing, global neuron/weight indexing, deep copies,
// and serialization round trips.
#include <gtest/gtest.h>

#include <sstream>

#include "snn/conv_layer.hpp"
#include "snn/dense_layer.hpp"
#include "snn/network.hpp"
#include "snn/recurrent_layer.hpp"
#include "snn/serialization.hpp"
#include "snn/spike_train.hpp"
#include "util/rng.hpp"

namespace snntest::snn {
namespace {

Network make_test_net(uint64_t seed = 1) {
  util::Rng rng(seed);
  LifParams lif;
  Network net("test-net");
  auto l1 = std::make_unique<DenseLayer>(6, 10, lif);
  l1->init_weights(rng, 1.2f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<DenseLayer>(10, 4, lif);
  l2->init_weights(rng, 1.2f);
  net.add_layer(std::move(l2));
  return net;
}

Tensor dense_input(size_t T, size_t n, double density, uint64_t seed) {
  util::Rng rng(seed);
  return random_spike_train(T, n, density, rng);
}

TEST(Network, RejectsMismatchedLayers) {
  Network net;
  net.add_layer(std::make_unique<DenseLayer>(6, 10, LifParams{}));
  EXPECT_THROW(net.add_layer(std::make_unique<DenseLayer>(9, 4, LifParams{})),
               std::invalid_argument);
}

TEST(Network, SizesAndCounts) {
  auto net = make_test_net();
  EXPECT_EQ(net.num_layers(), 2u);
  EXPECT_EQ(net.input_size(), 6u);
  EXPECT_EQ(net.output_size(), 4u);
  EXPECT_EQ(net.total_neurons(), 14u);
  EXPECT_EQ(net.total_weights(), 6u * 10u + 10u * 4u);
}

TEST(Network, EmptyNetworkThrows) {
  Network net;
  EXPECT_THROW(net.input_size(), std::logic_error);
  EXPECT_THROW(net.forward(Tensor(Shape{1, 1})), std::logic_error);
}

TEST(Network, ForwardRecordsEveryLayer) {
  auto net = make_test_net();
  const auto fwd = net.forward(dense_input(7, 6, 0.5, 2));
  ASSERT_EQ(fwd.num_layers(), 2u);
  EXPECT_EQ(fwd.layer_outputs[0].shape(), Shape({7, 10}));
  EXPECT_EQ(fwd.layer_outputs[1].shape(), Shape({7, 4}));
  EXPECT_EQ(&fwd.output(), &fwd.layer_outputs[1]);
}

TEST(Network, ForwardFromMatchesFullForwardSuffix) {
  auto net = make_test_net();
  const auto input = dense_input(9, 6, 0.5, 4);
  const auto full = net.forward(input);
  // Restart from layer 1 with layer 0's recorded output: the suffix must be
  // bit-identical to the full pass (this is the differential-campaign
  // prefix-reuse contract).
  const auto suffix = net.forward_from(1, full.layer_outputs[0]);
  ASSERT_EQ(suffix.num_layers(), 1u);
  ASSERT_EQ(suffix.output().shape(), full.output().shape());
  for (size_t i = 0; i < full.output().numel(); ++i) {
    ASSERT_EQ(suffix.output()[i], full.output()[i]);
  }
  // start_layer == 0 is exactly forward().
  const auto from_zero = net.forward_from(0, input);
  ASSERT_EQ(from_zero.num_layers(), 2u);
  for (size_t i = 0; i < full.output().numel(); ++i) {
    ASSERT_EQ(from_zero.output()[i], full.output()[i]);
  }
}

TEST(Network, ForwardFromValidatesArguments) {
  auto net = make_test_net();
  const auto input = dense_input(5, 6, 0.5, 5);
  EXPECT_THROW(net.forward_from(2, input), std::out_of_range);
  // Width mismatch: layer 1 expects 10 inputs, not 6.
  EXPECT_THROW(net.forward_from(1, input), std::invalid_argument);
}

TEST(Network, OutputCountsAndPrediction) {
  auto net = make_test_net();
  const auto fwd = net.forward(dense_input(10, 6, 0.6, 3));
  const auto counts = fwd.output_counts();
  ASSERT_EQ(counts.size(), 4u);
  size_t best = 0;
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[best]) best = i;
  }
  EXPECT_EQ(fwd.predicted_class(), best);
}

TEST(Network, SpikeCountHelper) {
  auto net = make_test_net();
  const auto fwd = net.forward(dense_input(10, 6, 0.6, 4));
  const auto counts = snn::spike_counts(fwd.layer_outputs[0]);
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(fwd.spike_count(0, i), counts[i]);
  }
  EXPECT_THROW(fwd.spike_count(0, 999), std::out_of_range);
}

TEST(Network, BackwardNeedsPerLayerGrads) {
  auto net = make_test_net();
  net.forward(dense_input(5, 6, 0.5, 5), true);
  std::vector<Tensor> wrong(1);
  EXPECT_THROW(net.backward(wrong), std::invalid_argument);
}

TEST(Network, BackwardTopGradientRequired) {
  auto net = make_test_net();
  net.forward(dense_input(5, 6, 0.5, 6), true);
  std::vector<Tensor> grads(2);  // all empty
  EXPECT_THROW(net.backward(grads), std::invalid_argument);
}

TEST(Network, BackwardProducesInputGradAndWeightGrads) {
  auto net = make_test_net();
  const auto fwd = net.forward(dense_input(5, 6, 0.9, 7), true);
  std::vector<Tensor> grads(2);
  grads[1] = Tensor(fwd.output().shape(), 1.0f);
  net.zero_grad();
  const Tensor gin = net.backward(grads);
  EXPECT_EQ(gin.shape(), Shape({5, 6}));
  double weight_grad_norm = 0.0;
  for (const ParamView& p : net.params()) {
    for (size_t i = 0; i < p.size; ++i) weight_grad_norm += std::abs(p.grad[i]);
  }
  EXPECT_GT(weight_grad_norm, 0.0);
}

TEST(Network, HiddenLayerGradientInjection) {
  // Gradients injected at a hidden layer must reach the input even when the
  // output-layer gradient is all zero.
  auto net = make_test_net();
  const auto fwd = net.forward(dense_input(5, 6, 0.9, 8), true);
  std::vector<Tensor> grads(2);
  grads[1] = Tensor(fwd.output().shape());  // zeros at the output layer
  grads[0] = Tensor(fwd.layer_outputs[0].shape(), 0.5f);
  net.zero_grad();
  const Tensor gin = net.backward(grads);
  double norm = 0.0;
  for (size_t i = 0; i < gin.numel(); ++i) norm += std::abs(gin[i]);
  EXPECT_GT(norm, 0.0);
}

TEST(Network, NeuronEnumerationStable) {
  auto net = make_test_net();
  const auto refs = net.all_neurons();
  ASSERT_EQ(refs.size(), 14u);
  EXPECT_EQ(refs[0].layer, 0u);
  EXPECT_EQ(refs[0].index, 0u);
  EXPECT_EQ(refs[10].layer, 1u);
  EXPECT_EQ(refs[10].index, 0u);
  EXPECT_EQ(net.neuron_flat_index(refs[10]), 10u);
}

TEST(Network, WeightEnumerationCoversAllParams) {
  auto net = make_test_net();
  const auto refs = net.all_weights();
  EXPECT_EQ(refs.size(), net.total_weights());
}

TEST(Network, CopyIsDeep) {
  auto net = make_test_net();
  Network copy(net);
  auto params = copy.params();
  params[0].value[0] += 10.0f;
  EXPECT_NE(net.params()[0].value[0], params[0].value[0]);
  copy.layer(0).lif().modes()[0] = NeuronMode::kDead;
  EXPECT_EQ(net.layer(0).lif().modes()[0], NeuronMode::kNormal);
}

TEST(Network, CopyPreservesBehaviour) {
  auto net = make_test_net();
  Network copy(net);
  const auto input = dense_input(8, 6, 0.5, 9);
  const auto a = net.forward(input).output();
  const auto b = copy.forward(input).output();
  for (size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Network, RestoreNeuronDefaultsClearsAllBanks) {
  auto net = make_test_net();
  net.layer(0).lif().modes()[2] = NeuronMode::kSaturated;
  net.layer(1).lif().thresholds()[1] = 42.0f;
  net.restore_neuron_defaults();
  EXPECT_EQ(net.layer(0).lif().modes()[2], NeuronMode::kNormal);
  EXPECT_EQ(net.layer(1).lif().thresholds()[1], 1.0f);
}

TEST(Serialization, DenseRoundTrip) {
  auto net = make_test_net(77);
  std::stringstream ss;
  save_network(net, ss);
  Network loaded = load_network(ss);
  EXPECT_EQ(loaded.name(), net.name());
  const auto input = dense_input(6, 6, 0.5, 10);
  const auto a = net.forward(input).output();
  const auto b = loaded.forward(input).output();
  for (size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Serialization, ConvRecurrentRoundTrip) {
  util::Rng rng(21);
  LifParams lif;
  Network net("mixed");
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.in_height = 6;
  spec.in_width = 6;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.stride = 2;
  spec.padding = 1;
  auto conv = std::make_unique<ConvLayer>(spec, lif);
  conv->init_weights(rng);
  net.add_layer(std::move(conv));
  auto rec = std::make_unique<RecurrentLayer>(spec.output_size(), 8, lif);
  rec->init_weights(rng);
  net.add_layer(std::move(rec));

  std::stringstream ss;
  save_network(net, ss);
  Network loaded = load_network(ss);
  const auto input = dense_input(5, spec.input_size(), 0.4, 11);
  const auto a = net.forward(input).output();
  const auto b = loaded.forward(input).output();
  for (size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Decoding, TtfsPrefersEarliestFirstSpike) {
  // Hand-built output: class 1 fires first (t=0), class 0 fires more often
  // but starting at t=1.
  ForwardResult fwd;
  Tensor out(Shape{4, 3});
  out.at(0, 1) = 1.0f;
  out.at(1, 0) = 1.0f;
  out.at(2, 0) = 1.0f;
  out.at(3, 0) = 1.0f;
  fwd.layer_outputs.push_back(out);
  EXPECT_EQ(fwd.predicted_class(Decoding::kRate), 0u);
  EXPECT_EQ(fwd.predicted_class(Decoding::kTimeToFirstSpike), 1u);
  const auto first = fwd.output_first_spike_times();
  EXPECT_EQ(first[0], 1u);
  EXPECT_EQ(first[1], 0u);
  EXPECT_EQ(first[2], 4u);  // never fires -> T
}

TEST(Decoding, TtfsBreaksTiesByCount) {
  ForwardResult fwd;
  Tensor out(Shape{3, 2});
  out.at(0, 0) = 1.0f;  // both first-fire at t=0
  out.at(0, 1) = 1.0f;
  out.at(2, 1) = 1.0f;  // class 1 fires again
  fwd.layer_outputs.push_back(out);
  EXPECT_EQ(fwd.predicted_class(Decoding::kTimeToFirstSpike), 1u);
}

TEST(Serialization, CorruptStreamRejected) {
  std::stringstream ss;
  ss << "definitely not a network file";
  EXPECT_THROW(load_network(ss), std::runtime_error);
}

/// Randomized conv+dense stack for the KernelMode identity contract.
Network make_conv_dense_net(uint64_t seed) {
  util::Rng rng(seed);
  LifParams lif;
  Network net("kernel-mode-net");
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.in_height = 8;
  spec.in_width = 8;
  spec.out_channels = 4;
  spec.kernel = 3;
  spec.stride = 2;
  spec.padding = 1;
  auto conv = std::make_unique<ConvLayer>(spec, lif);
  conv->init_weights(rng, 1.3f);
  net.add_layer(std::move(conv));
  auto fc = std::make_unique<DenseLayer>(spec.output_size(), 12, lif);
  fc->init_weights(rng, 1.3f);
  net.add_layer(std::move(fc));
  return net;
}

TEST(KernelMode, PropagatesToAllLayers) {
  Network net = make_conv_dense_net(31);
  EXPECT_EQ(net.kernel_mode(), KernelMode::kDense);
  net.set_kernel_mode(KernelMode::kAuto);
  EXPECT_EQ(net.kernel_mode(), KernelMode::kAuto);
  for (size_t l = 0; l < net.num_layers(); ++l) {
    EXPECT_EQ(net.layer(l).kernel_mode(), KernelMode::kAuto);
  }
  // Deep copies keep the mode (campaign workers clone configured networks).
  Network copy(net);
  EXPECT_EQ(copy.kernel_mode(), KernelMode::kAuto);
}

TEST(KernelMode, SparseForwardBitIdenticalOnConvDenseNetwork) {
  Network reference = make_conv_dense_net(32);
  for (const double density : {0.02, 0.1, 0.5}) {
    const Tensor in = dense_input(20, reference.input_size(), density, 33);
    Network dense_net(reference);
    dense_net.set_kernel_mode(KernelMode::kDense);
    const auto golden = dense_net.forward(in);
    for (const KernelMode mode : {KernelMode::kSparse, KernelMode::kAuto}) {
      Network net(reference);
      net.set_kernel_mode(mode);
      const auto fwd = net.forward(in);
      ASSERT_EQ(fwd.num_layers(), golden.num_layers());
      for (size_t l = 0; l < fwd.num_layers(); ++l) {
        const Tensor& a = fwd.layer_outputs[l];
        const Tensor& b = golden.layer_outputs[l];
        ASSERT_EQ(a.shape(), b.shape());
        for (size_t i = 0; i < a.numel(); ++i) {
          ASSERT_EQ(a[i], b[i]) << "layer " << l << " element " << i << " density " << density;
        }
      }
    }
  }
}

}  // namespace
}  // namespace snntest::snn
