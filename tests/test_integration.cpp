// End-to-end integration scenarios across module boundaries:
// train -> persist -> reload -> generate -> persist stimulus -> reload ->
// fault campaign -> coverage -> in-field signature check. Also cross-cutting
// invariants: campaign results independent of worker count, classification
// decoding modes, and granularity-mixed universes on a trained model.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/test_generator.hpp"
#include "data/synthetic_shd.hpp"
#include "fault/campaign.hpp"
#include "fault/classifier.hpp"
#include "fault/coverage.hpp"
#include "snn/dense_layer.hpp"
#include "snn/serialization.hpp"
#include "snn/spike_train.hpp"
#include "train/trainer.hpp"

namespace snntest {
namespace {

struct Pipeline {
  snn::Network net{"integration"};
  std::shared_ptr<data::Dataset> train;
  std::shared_ptr<data::Dataset> test;
};

/// Small trained model shared by the integration tests (built once — train
/// cost is a few hundred ms).
Pipeline& pipeline() {
  static Pipeline* p = [] {
    auto* pipe = new Pipeline();
    data::SyntheticShdConfig dc;
    dc.count = 240;
    dc.channels = 16;
    dc.num_steps = 16;
    auto ds = std::make_shared<data::SyntheticShd>(dc);
    auto splits = data::split(ds, 180, 60);
    pipe->train = splits.train;
    pipe->test = splits.test;
    util::Rng rng(1);
    snn::LifParams lif;
    auto l1 = std::make_unique<snn::DenseLayer>(16, 24, lif);
    l1->init_weights(rng, 1.2f);
    pipe->net.add_layer(std::move(l1));
    auto l2 = std::make_unique<snn::DenseLayer>(24, 20, lif);
    l2->init_weights(rng, 1.2f);
    pipe->net.add_layer(std::move(l2));
    train::TrainerConfig tc;
    tc.epochs = 6;
    tc.verbose = false;
    train::Trainer trainer(pipe->net, tc);
    trainer.fit(*pipe->train, *pipe->test);
    return pipe;
  }();
  return *p;
}

core::TestGenConfig small_config() {
  core::TestGenConfig cfg;
  cfg.steps_stage1 = 80;
  cfg.max_iterations = 5;
  cfg.t_limit_seconds = 30.0;
  cfg.eval_every = 2;
  return cfg;
}

TEST(Integration, FullFactoryFlow) {
  auto& p = pipeline();

  // 1. persist + reload the trained model
  std::stringstream model_stream;
  snn::save_network(p.net, model_stream);
  snn::Network device = snn::load_network(model_stream);

  // 2. generate the test on the golden model
  core::TestGenerator generator(device, small_config());
  auto report = generator.generate();
  ASSERT_GT(report.stimulus.num_chunks(), 0u);

  // 3. persist + reload the stimulus (on-chip storage round trip)
  std::stringstream stim_stream;
  report.stimulus.save(stim_stream);
  const auto stored = core::TestStimulus::load(stim_stream);
  const auto test_input = stored.assemble();

  // 4. verification campaign + classification + coverage report
  auto universe = fault::enumerate_faults(device);
  util::Rng rng(9);
  auto faults = fault::sample_faults(universe, 120, rng);
  const auto detection = fault::run_detection_campaign(device, test_input, faults);
  fault::ClassifierConfig cc;
  cc.max_samples = 16;
  const auto classes = fault::classify_faults(device, faults, *p.test, cc);
  const auto coverage = fault::build_coverage_report(faults, detection.results, classes.labels);
  EXPECT_EQ(coverage.overall.total, faults.size());
  // a trained, mostly-activated model must detect a solid majority of the
  // critical faults even with a tiny test
  if (coverage.critical_neuron.total > 0) {
    EXPECT_GT(coverage.critical_neuron.coverage(), 0.9);
  }

  // 5. in-field: golden signature, then a latent fault appears
  const auto signature = device.forward(test_input).output();
  fault::FaultInjector injector(device);
  fault::FaultDescriptor latent;
  latent.kind = fault::FaultKind::kNeuronSaturated;
  latent.neuron = {1, 2};
  {
    fault::ScopedFault scoped(injector, latent);
    const auto response = device.forward(test_input).output();
    EXPECT_GT(snn::output_distance(signature, response), 0.0);
  }
  // healthy again after repair/restore
  const auto healthy = device.forward(test_input).output();
  EXPECT_DOUBLE_EQ(snn::output_distance(signature, healthy), 0.0);
}

TEST(Integration, CampaignIndependentOfWorkerCount) {
  auto& p = pipeline();
  auto universe = fault::enumerate_faults(p.net);
  util::Rng rng(10);
  auto faults = fault::sample_faults(universe, 80, rng);
  const auto input = p.test->get(0).input;

  fault::CampaignConfig serial;
  serial.num_threads = 1;
  fault::CampaignConfig parallel;
  parallel.num_threads = 4;
  const auto a = fault::run_detection_campaign(p.net, input, faults, serial);
  const auto b = fault::run_detection_campaign(p.net, input, faults, parallel);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t j = 0; j < a.results.size(); ++j) {
    EXPECT_EQ(a.results[j].detected, b.results[j].detected) << "fault " << j;
    EXPECT_DOUBLE_EQ(a.results[j].output_l1, b.results[j].output_l1);
  }
}

TEST(Integration, ClassificationDecodingModesCanDiffer) {
  auto& p = pipeline();
  auto universe = fault::enumerate_faults(p.net);
  util::Rng rng(11);
  auto faults = fault::sample_faults(universe, 60, rng);
  fault::ClassifierConfig rate_cfg;
  rate_cfg.max_samples = 12;
  rate_cfg.decoding = snn::Decoding::kRate;
  fault::ClassifierConfig ttfs_cfg = rate_cfg;
  ttfs_cfg.decoding = snn::Decoding::kTimeToFirstSpike;
  const auto rate = fault::classify_faults(p.net, faults, *p.test, rate_cfg);
  const auto ttfs = fault::classify_faults(p.net, faults, *p.test, ttfs_cfg);
  ASSERT_EQ(rate.labels.size(), ttfs.labels.size());
  // both must produce sane label sets; they may legitimately disagree on
  // individual faults (different read-out = different criticality)
  EXPECT_GE(rate.golden_accuracy, 0.0);
  EXPECT_GE(ttfs.golden_accuracy, 0.0);
}

TEST(Integration, GeneratorDoesNotPerturbWeights) {
  auto& p = pipeline();
  std::vector<float> before;
  for (const auto& pv : p.net.params()) {
    before.insert(before.end(), pv.value, pv.value + pv.size);
  }
  core::TestGenerator generator(p.net, small_config());
  generator.generate();
  std::vector<float> after;
  for (const auto& pv : p.net.params()) {
    after.insert(after.end(), pv.value, pv.value + pv.size);
  }
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(before[i], after[i]) << "weight " << i << " changed during test generation";
  }
}

TEST(Integration, StimulusRegenerationIsIdempotent) {
  auto& p = pipeline();
  auto cfg = small_config();
  cfg.seed = 42;
  core::TestGenerator g1(p.net, cfg);
  core::TestGenerator g2(p.net, cfg);
  const auto a = g1.generate().stimulus.assemble();
  const auto b = g2.generate().stimulus.assemble();
  ASSERT_EQ(a.numel(), b.numel());
  for (size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace snntest
